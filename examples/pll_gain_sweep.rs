//! Sweep the turbo solver's window-PLL gains over the impairment grid.
//!
//! `RecoveryConfig::robust()` ships fixed PI gains for the per-window
//! phase tracker (`window_pll_kp`, `window_pll_ki`). This example is
//! the tuning harness those defaults come from: it drives the
//! §4.5-style un-peelable robustness sweep
//! ([`zigzag::testbed::run_impairment_sweep`]) once per (kp, ki)
//! candidate and reports how many impaired-link packets each gain pair
//! reclaims, per impairment class and in total.
//!
//! The grid spans the under-damped to over-driven range: a kp too low
//! lets the phase walk outrun the loop, a kp too high amplifies one
//! noisy window into a phase jolt; ki absorbs residual frequency
//! offset but integrates noise if oversized.
//!
//! Run with `cargo run --release --example pll_gain_sweep`.

use zigzag::channel::fading::{DEFAULT_PHASE_NOISE, DEFAULT_SAMPLING_DRIFT};
use zigzag::core::config::{DecoderConfig, RecoveryConfig};
use zigzag::core::engine::BatchEngine;
use zigzag::testbed::{run_impairment_sweep, ExperimentConfig, ImpairmentPoint};

const KP_GRID: [f64; 6] = [0.05, 0.2, 0.4, 0.65, 1.0, 1.6];
const KI_GRID: [f64; 5] = [0.0, 0.02, 0.08, 0.2, 0.4];

fn main() {
    // The impaired half of the bench's robustness grid: the benign cell
    // is flat across gains (the PLL has nothing to track there), so the
    // sweep spends its time where the gains matter.
    let points = [
        ImpairmentPoint {
            phase_noise: DEFAULT_PHASE_NOISE / 2.0,
            snr_db: 16.0,
            sampling_drift: DEFAULT_SAMPLING_DRIFT / 2.0,
        },
        ImpairmentPoint {
            phase_noise: DEFAULT_PHASE_NOISE,
            snr_db: 15.0,
            sampling_drift: DEFAULT_SAMPLING_DRIFT,
        },
        ImpairmentPoint {
            phase_noise: 2.0 * DEFAULT_PHASE_NOISE,
            snr_db: 13.0,
            sampling_drift: 2.0 * DEFAULT_SAMPLING_DRIFT,
        },
        ImpairmentPoint {
            phase_noise: 3.0 * DEFAULT_PHASE_NOISE,
            snr_db: 12.0,
            sampling_drift: 3.0 * DEFAULT_SAMPLING_DRIFT,
        },
    ];
    let seeds = [41u64, 42, 43];
    let senders = 2;
    let base = ExperimentConfig {
        payload: 120,
        rounds: 6,
        decoder: DecoderConfig::with_recovery(),
        ..Default::default()
    };

    let engine = BatchEngine::new(0);
    println!(
        "window-PLL gain sweep: {} x {} gain pairs, {} impairment classes, {} scenarios each",
        KP_GRID.len(),
        KI_GRID.len(),
        points.len(),
        seeds.len()
    );
    println!("{:>5} {:>5}  per-class reclaimed (offered)  total", "kp", "ki");

    let mut totals = [[0usize; KI_GRID.len()]; KP_GRID.len()];
    let mut typicals = [[0usize; KI_GRID.len()]; KP_GRID.len()];
    for (i, &kp) in KP_GRID.iter().enumerate() {
        for (j, &ki) in KI_GRID.iter().enumerate() {
            let turbo = ExperimentConfig {
                decoder: DecoderConfig {
                    recovery: RecoveryConfig {
                        window_pll_kp: kp,
                        window_pll_ki: ki,
                        ..RecoveryConfig::robust()
                    },
                    ..DecoderConfig::default()
                },
                ..base.clone()
            };
            let curve = run_impairment_sweep(&engine, &points, senders, &seeds, &base, &turbo);
            totals[i][j] = curve.iter().map(|c| c.turbo_delivered).sum();
            typicals[i][j] = curve[1].turbo_delivered;
            let cells: Vec<String> = curve
                .iter()
                .map(|c| format!("{:>2}/{:<3}", c.turbo_delivered, c.offered))
                .collect();
            println!("{kp:>5.2} {ki:>5.2}  {}  {:>5}", cells.join("  "), totals[i][j]);
        }
    }

    // Pick the optimum; ties (the grid has a plateau) break toward the
    // typical-link class, then toward the centre of the plateau — the
    // gain pair whose grid neighborhood reclaims the most, i.e. the
    // setting most robust to the gains being slightly wrong for a
    // deployment's actual oscillator.
    let neighborhood = |i: usize, j: usize| -> usize {
        totals[i.saturating_sub(1)..(i + 2).min(KP_GRID.len())]
            .iter()
            .map(|row| row[j.saturating_sub(1)..(j + 2).min(KI_GRID.len())].iter().sum::<usize>())
            .sum()
    };
    let (mut bi, mut bj) = (0, 0);
    for i in 0..KP_GRID.len() {
        for j in 0..KI_GRID.len() {
            let better = (totals[i][j], typicals[i][j], neighborhood(i, j))
                > (totals[bi][bj], typicals[bi][bj], neighborhood(bi, bj));
            if better {
                (bi, bj) = (i, j);
            }
        }
    }

    let shipped = RecoveryConfig::robust();
    println!(
        "\nbest gains: kp = {:.2}, ki = {:.2} ({} reclaimed, {} at the typical class, neighborhood {})",
        KP_GRID[bi],
        KI_GRID[bj],
        totals[bi][bj],
        typicals[bi][bj],
        neighborhood(bi, bj)
    );
    println!(
        "shipped RecoveryConfig::robust(): kp = {:.2}, ki = {:.2}",
        shipped.window_pll_kp, shipped.window_pll_ki
    );
    assert_eq!(
        (totals[bi][bj], typicals[bi][bj]),
        {
            let si = KP_GRID.iter().position(|&k| k == shipped.window_pll_kp).expect("kp on grid");
            let sj = KI_GRID.iter().position(|&k| k == shipped.window_pll_ki).expect("ki on grid");
            (totals[si][sj], typicals[si][sj])
        },
        "shipped gains fell off the sweep optimum — re-tune RecoveryConfig::robust()"
    );
}
