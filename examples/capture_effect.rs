//! Capture effect and single-collision interference cancellation
//! (Fig 4-1d/e).
//!
//! A strong sender's packet is decoded straight through the collision;
//! ZigZag then subtracts it and recovers the weak sender from the same
//! single collision — two packets, one airtime slot.
//!
//! Run: `cargo run --release --example capture_effect`

use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{synth_collision, PlacedTx};
use zigzag_core::capture::capture_decode;
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn main() {
    let mut rng = StdRng::seed_from_u64(41);
    // Alice close to the AP (24 dB), Bob further away (12 dB).
    let alice = LinkProfile::typical(24.0, &mut rng);
    let bob = LinkProfile::typical(12.0, &mut rng);

    let fa = Frame::with_random_payload(0, 1, 9, 400, 3);
    let fb = Frame::with_random_payload(0, 2, 9, 400, 4);
    let preamble = Preamble::default_len();
    let a = encode_frame(&fa, Modulation::Bpsk, &preamble);
    let b = encode_frame(&fb, Modulation::Bpsk, &preamble);

    let ca = alice.draw(&mut rng);
    let cb = bob.draw(&mut rng);
    let delta = 260;
    let collision = synth_collision(
        &[PlacedTx { air: &a, base: &ca, start: 0 }, PlacedTx { air: &b, base: &cb, start: delta }],
        1.0,
        &mut rng,
    );
    println!("one collision: Alice at 24 dB, Bob at 12 dB, offset {delta} samples");

    let mut reg = ClientRegistry::new();
    reg.associate(
        1,
        ClientInfo { omega: alice.association_omega(), snr_db: 24.0, taps: alice.isi.clone() },
    );
    reg.associate(
        2,
        ClientInfo { omega: bob.association_omega(), snr_db: 12.0, taps: bob.isi.clone() },
    );

    let res = capture_decode(
        &collision.buffer,
        0,
        Some(1),
        delta,
        Some(2),
        &reg,
        &preamble,
        &DecoderConfig::default(),
    )
    .expect("capture attempt");

    let ber_a = bit_error_rate(&a.mpdu_bits, &res.strong.scrambled_bits);
    println!("capture: Alice decoded through Bob's interference, BER {ber_a:.2e}");
    assert!(ber_a < 1e-3);

    let weak = res.weak.expect("weak decode attempted");
    let ber_b = bit_error_rate(&b.mpdu_bits, &weak.scrambled_bits);
    println!("interference cancellation: Bob recovered after subtraction, BER {ber_b:.2e}");
    assert!(ber_b < 5e-2, "Bob should be recovered (BER {ber_b})");
    println!("two packets from ONE collision -> normalized throughput 2.0 (Fig 5-4's mid band)");
}
