//! Recovery on a typical link: phase-tracking turbo recovery.
//!
//! `algebraic_recovery` shows the joint solver beating the §4.5
//! Δ₁ = Δ₂ failure case on benign channels. Real links are not benign:
//! oscillators walk (phase noise), sampling clocks drift, and the
//! single-pass solver's channel estimates — taken once from each
//! preamble — decohere over the packet. The CRC fails and the group is
//! lost even though the equations were there.
//!
//! The robust preset (`DecoderConfig::with_robust_recovery`) survives
//! this with three coordinated mechanisms:
//!
//! * a per-window PI phase-locked loop that keeps every `ChannelView`'s
//!   phase estimate tracking the walk as the sliding window advances;
//! * a conditioning gate on salvage-pool recruitment, so near-collinear
//!   equation sets are skipped instead of solved against;
//! * turbo re-estimation — after a CRC-failed pass, each packet's
//!   channel is re-derived from the interference-cancelled buffer (the
//!   other packets' decision images subtracted) and the group is solved
//!   again, until convergence or the iteration cap.
//!
//! Run with `cargo run --release --example turbo_recovery`.

use rand::prelude::*;
use zigzag::channel::fading::{LinkProfile, DEFAULT_PHASE_NOISE, DEFAULT_SAMPLING_DRIFT};
use zigzag::channel::scenario::{synth_collision, PlacedTx};
use zigzag::core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag::core::receiver::{DecodePath, ReceiverEvent};
use zigzag::core::ZigzagReceiver;
use zigzag::phy::frame::{encode_frame, Frame};
use zigzag::phy::modulation::Modulation;
use zigzag::phy::preamble::Preamble;

fn main() {
    // Two hidden senders on TYPICAL links: 15 dB, the default
    // phase-noise walk and full sampling drift on top of the
    // oscillator offsets the AP knows them by.
    let impaired = |omega: f64| {
        let mut l = LinkProfile::clean_with_omega(15.0, omega);
        l.phase_noise = DEFAULT_PHASE_NOISE;
        l.sampling_drift = DEFAULT_SAMPLING_DRIFT;
        l
    };
    let la = impaired(-0.08);
    let lb = impaired(0.09);
    let fa = Frame::with_random_payload(0, 1, 0, 120, 70_131);
    let fb = Frame::with_random_payload(0, 2, 0, 120, 70_262);
    let a = encode_frame(&fa, Modulation::Bpsk, &Preamble::default_len());
    let b = encode_frame(&fb, Modulation::Bpsk, &Preamble::default_len());

    let mut reg = ClientRegistry::new();
    for (id, l) in [(1u16, &la), (2, &lb)] {
        reg.associate(
            id,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }

    // The §4.5 degenerate pair again: Δ₁ = Δ₂ = 300, un-peelable by
    // construction — only the joint solver can decode this stream.
    let mut rng = StdRng::seed_from_u64(0);
    let (ca, cb) = (la.draw(&mut rng), lb.draw(&mut rng));
    let collide = |rng: &mut StdRng| {
        synth_collision(
            &[
                PlacedTx { air: &a, base: &ca, start: 0 },
                PlacedTx { air: &b, base: &cb, start: 300 },
            ],
            1.0,
            rng,
        )
        .buffer
    };
    let c1 = collide(&mut rng);
    let c2 = collide(&mut rng);

    let recovered = |cfg: DecoderConfig| -> Vec<Frame> {
        let mut rx = ZigzagReceiver::new(cfg, reg.clone());
        [&c1, &c2]
            .iter()
            .flat_map(|c| rx.process(c))
            .filter_map(|ev| match ev {
                ReceiverEvent::Delivered { frame, path: DecodePath::Recovered } => Some(frame),
                _ => None,
            })
            .collect()
    };

    // Single-pass solver (PR 5's behaviour, `RecoveryConfig::on`): the
    // phase walk decoheres its one-shot channel estimates and the CRC
    // gate rejects the solve.
    let single_pass = recovered(DecoderConfig::with_recovery());
    println!("single-pass solver on the impaired link: {} frames", single_pass.len());

    // Turbo recovery: the window PLL keeps the estimates on the walk,
    // and re-estimation from the first pass's decision images converges
    // to CRC-clean frames.
    let turbo = recovered(DecoderConfig::with_robust_recovery());
    println!("turbo recovery on the same air:          {} frames", turbo.len());
    for frame in &turbo {
        let ok = *frame == fa || *frame == fb;
        println!(
            "  recovered src {} seq {} ({} bytes) CRC ok, matches transmitted: {ok}",
            frame.src,
            frame.seq,
            frame.payload.len()
        );
    }
    assert!(turbo.len() > single_pass.len(), "the turbo pass must reclaim this group");
}
