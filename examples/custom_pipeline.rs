//! The reorderable decode pipeline: build a receiver whose stage set
//! differs from the standard §5.1d flow.
//!
//! Here an AP drops the ZigZag stages entirely (a "store-only" receiver
//! that still detects and captures but never runs matched-collision
//! decoding — e.g. a monitoring node), and we show that matched stored
//! collisions are preserved, not destroyed, when no stage consumes them.

use rand::prelude::*;
use zigzag::channel::fading::LinkProfile;
use zigzag::channel::scenario::hidden_pair;
use zigzag::core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag::core::engine::{
    CaptureStage, DetectStage, MatchStage, Pipeline, StandardDecodeStage, StoreStage,
};
use zigzag::core::receiver::ZigzagReceiver;
use zigzag::phy::frame::{encode_frame, Frame};
use zigzag::phy::modulation::Modulation;
use zigzag::phy::preamble::Preamble;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let la = LinkProfile::typical(16.0, &mut rng);
    let lb = LinkProfile::typical(16.0, &mut rng);
    let a = encode_frame(
        &Frame::with_random_payload(0, 1, 7, 300, 1),
        Modulation::Bpsk,
        &Preamble::default_len(),
    );
    let b = encode_frame(
        &Frame::with_random_payload(0, 2, 9, 300, 2),
        Modulation::Bpsk,
        &Preamble::default_len(),
    );
    let hp = hidden_pair(&a, &b, &la, &lb, 420, 140, &mut rng);

    let mut registry = ClientRegistry::new();
    for (id, l) in [(1u16, &la), (2u16, &lb)] {
        registry.associate(
            id,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }

    // store-only pipeline: no Plan/Zigzag stages
    let pipeline = Pipeline::from_stages(vec![
        Box::new(DetectStage),
        Box::new(StandardDecodeStage),
        Box::new(CaptureStage),
        Box::new(MatchStage),
        Box::new(StoreStage),
    ]);
    let mut rx = ZigzagReceiver::with_pipeline(DecoderConfig::default(), registry, pipeline);
    println!("custom pipeline: {:?}", rx.pipeline().stage_names());

    for (k, buf) in [&hp.collision1.buffer, &hp.collision2.buffer].iter().enumerate() {
        let events = rx.process(buf);
        println!(
            "collision {}: events {:?}  stored collisions now: {}",
            k + 1,
            events,
            rx.stored_collisions()
        );
    }
    assert_eq!(rx.stored_collisions(), 2, "matched pair must be preserved, not destroyed");
    println!("both collisions retained in the store (nothing consumed them) — contract holds");
}
