//! The §6(a) coding extension: convolutional coding on top of ZigZag.
//!
//! ZigZag leaves a residual uncoded BER (the paper targets < 1e-3 and
//! notes practical channel codes clean that up). This example runs a
//! hidden-terminal pair at a marginal SNR, then shows the 802.11
//! rate-1/2 K=7 convolutional code recovering the payload bits exactly.
//!
//! Run: `cargo run --release --example coded_zigzag`

use rand::prelude::*;
use zigzag::channel::fading::LinkProfile;
use zigzag::channel::scenario::hidden_pair;
use zigzag::core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag::core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag::phy::bits::{bit_error_rate, bits_to_bytes, bytes_to_bits, hamming_distance};
use zigzag::phy::coding;
use zigzag::phy::frame::{encode_frame, Frame};
use zigzag::phy::modulation::Modulation;
use zigzag::phy::preamble::Preamble;

fn main() {
    let mut rng = StdRng::seed_from_u64(6);
    let la = LinkProfile::typical(9.0, &mut rng);
    let lb = LinkProfile::typical(9.0, &mut rng);

    // Alice's payload is itself a coded stream: info bits -> conv encode
    // -> payload bytes.
    let info: Vec<u8> = (0..1200).map(|_| rng.gen_range(0..2u8)).collect();
    let coded_bits = coding::encode(&info);
    let payload = bits_to_bytes(&coded_bits);
    let fa = Frame::new(0, 1, 1, payload);
    let fb = Frame::with_random_payload(0, 2, 1, fa.payload.len(), 2);
    let preamble = Preamble::default_len();
    let a = encode_frame(&fa, Modulation::Bpsk, &preamble);
    let b = encode_frame(&fb, Modulation::Bpsk, &preamble);
    let hp = hidden_pair(&a, &b, &la, &lb, 340, 110, &mut rng);

    let mut reg = ClientRegistry::new();
    reg.associate(
        1,
        ClientInfo { omega: la.association_omega(), snr_db: 9.0, taps: la.isi.clone() },
    );
    reg.associate(
        2,
        ClientInfo { omega: lb.association_omega(), snr_db: 9.0, taps: lb.isi.clone() },
    );
    let dec = ZigzagDecoder::new(DecoderConfig::default(), &reg);
    let out = dec.decode(
        &[
            CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, 340)] },
            CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, 110)] },
        ],
        &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
    );

    let uncoded_ber = bit_error_rate(&a.mpdu_bits, &out.packets[0].scrambled_bits);
    println!("zigzag uncoded BER for Alice at 9 dB: {uncoded_ber:.2e}");

    // descramble the recovered bits back into the payload and run Viterbi
    let mpdu = {
        let mut bytes = bits_to_bytes(&out.packets[0].scrambled_bits);
        zigzag::phy::scramble::Scrambler::new(fa.scramble_seed()).apply_bytes(&mut bytes);
        bytes
    };
    // payload starts after the 7-byte header
    let payload_rx = &mpdu[7..7 + fa.payload.len()];
    let coded_rx = bytes_to_bits(payload_rx);
    let decoded_info = coding::decode_hard(&coded_rx[..coded_bits.len()]);
    let residual = hamming_distance(&decoded_info, &info);
    println!("after rate-1/2 K=7 Viterbi: {residual} residual errors in {} info bits", info.len());
    assert_eq!(residual, 0, "coding should clean up the residual BER");
    println!("the coding layer turns BER<1e-3 deliveries into exact payloads (the paper's footnote 1, §5.1f)");
}
