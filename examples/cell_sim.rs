//! Cell-scale MAC co-simulation: symbolic stations, signal-level
//! collisions.
//!
//! Runs the §5-style hidden-terminal setting at cell scale: 100 000
//! stations offer Poisson traffic over eight APs, carrier sensing and
//! backoff resolve almost everything symbolically, and a sampled
//! fraction of *genuine* collision episodes is lowered to IQ samples —
//! synthesized air decoded by the real ZigZag receiver — with verdicts
//! fed back into the stations' retry state. Then sweeps offered load
//! over slotted ALOHA to show the network-level payoff: a ZigZag AP
//! strictly out-delivers a conventional one past the saturation knee
//! (arXiv:1501.00976's setting, plus the §4.1 reap).
//!
//! Run: `cargo run --release --example cell_sim`

use zigzag_mac::cell::preset::saturation_knee;
use zigzag_mac::cell::{run_cell, symbolic_curve, CellPreset, DecodeModel, SplitResolver};
use zigzag_testbed::SignalResolver;

fn main() {
    // -- Part 1: DCF over hidden-terminal cells, sampled lowering --
    let preset = CellPreset::DcfHidden { cells: 8, groups_per_cell: 2 };
    let cfg = preset.config(100_000, 5_000, 0.8, 2008);
    println!(
        "cell: {} stations over {} APs, {} slots, offered 0.8 frames/slot",
        cfg.stations,
        cfg.sensing.cells(),
        cfg.slots
    );

    // 10% of collision episodes go to the signal level (synthesized air
    // through the real receiver, all decode threads); the rest resolve
    // through the symbolic model keyed to the same seed.
    let mut signal = SignalResolver::with_seed(cfg.seed, 0);
    let mut resolver =
        SplitResolver::new(DecodeModel::zigzag_ap(cfg.seed), &mut signal, 0.1, 4, cfg.seed);
    let out = run_cell(&cfg, &mut resolver);

    let s = &out.stats;
    println!("  active stations      {}", s.stations_active);
    println!("  offered frames       {}", s.offered_frames);
    println!(
        "  delivered            {}  (throughput {:.3}/slot)",
        s.delivered_frames,
        s.throughput(cfg.slots)
    );
    println!("  dropped              {}", s.dropped_frames);
    println!("  clean receptions     {}", s.singles);
    println!("  collision rounds     {}  (deepest pile-up k = {})", s.collision_rounds, s.max_k);
    println!(
        "  lowered to IQ        {} rounds -> {} deliveries, {} retries",
        s.lowered_rounds, s.lowered_deliveries, s.lowered_retries
    );
    println!("  §4.1 reap recoveries {}", s.recovered_frames);
    if let Some((rate, n)) = resolver.signal_tally().rate_all_from(2, 2) {
        println!("  measured signal-level pair-peel rate: {rate:.2} over {n} lowered rounds");
    }
    println!(
        "  trace hash           {:#018x} (bit-identical for any decode thread count)",
        out.trace_hash
    );

    // -- Part 2: the ALOHA throughput curves --
    let loads = [0.2, 0.5, 0.9, 1.4];
    let zz = symbolic_curve(CellPreset::ZigzagAloha { cells: 1 }, 3_000, 3_000, &loads, 77);
    let plain = symbolic_curve(CellPreset::PlainAloha { cells: 1 }, 3_000, 3_000, &loads, 77);
    let knee = saturation_knee(&plain);
    println!("\nslotted ALOHA, 3000 stations (same MAC, different AP):");
    println!("  offered   zigzag-AP   plain-AP");
    for (i, (z, p)) in zz.iter().zip(&plain).enumerate() {
        println!(
            "    {:.1}      {:.4}      {:.4}{}",
            z.offered,
            z.throughput,
            p.throughput,
            if i == knee { "   <- plain saturates" } else { "" }
        );
    }
}
