//! Failure injection: what makes ZigZag fall over, and how it degrades.
//!
//! Sweeps three fault axes the paper discusses — equal offsets (the §4.5
//! undecodable pattern), tracking disabled (Table 5.1), and low SNR — and
//! prints the observed failure modes. The smoltcp-style counterpart of a
//! fault-injection demo.
//!
//! Run: `cargo run --release --example failure_injection`

use rand::prelude::*;
use zigzag::channel::fading::LinkProfile;
use zigzag::channel::scenario::hidden_pair;
use zigzag::core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag::core::schedule::PlanOutcome;
use zigzag::core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag::phy::bits::bit_error_rate;
use zigzag::phy::frame::{encode_frame, Frame};
use zigzag::phy::modulation::Modulation;
use zigzag::phy::preamble::Preamble;

fn run(name: &str, snr: f64, d1: usize, d2: usize, cfg: DecoderConfig, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let la = LinkProfile::typical(snr, &mut rng);
    let lb = LinkProfile::typical(snr, &mut rng);
    let fa = Frame::with_random_payload(0, 1, 1, 400, seed);
    let fb = Frame::with_random_payload(0, 2, 1, 400, seed + 1);
    let a = encode_frame(&fa, Modulation::Bpsk, &Preamble::default_len());
    let b = encode_frame(&fb, Modulation::Bpsk, &Preamble::default_len());
    let hp = hidden_pair(&a, &b, &la, &lb, d1, d2, &mut rng);
    let mut reg = ClientRegistry::new();
    reg.associate(
        1,
        ClientInfo { omega: la.association_omega(), snr_db: snr, taps: la.isi.clone() },
    );
    reg.associate(
        2,
        ClientInfo { omega: lb.association_omega(), snr_db: snr, taps: lb.isi.clone() },
    );
    let dec = ZigzagDecoder::new(cfg, &reg);
    let out = dec.decode(
        &[
            CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, d1)] },
            CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, d2)] },
        ],
        &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
    );
    let ber_a = bit_error_rate(&a.mpdu_bits, &out.packets[0].scrambled_bits);
    let ber_b = bit_error_rate(&b.mpdu_bits, &out.packets[1].scrambled_bits);
    let stuck = out.outcome == PlanOutcome::Stuck;
    println!(
        "{name:<36} outcome={:<9} BER A={ber_a:<9.1e} B={ber_b:<9.1e}",
        if stuck { "STUCK" } else { "complete" }
    );
}

fn main() {
    println!("fault axis                           result");
    run("baseline (12 dB, D=340/110)", 12.0, 340, 110, DecoderConfig::default(), 1);
    run("equal offsets (undecodable, §4.5)", 12.0, 200, 200, DecoderConfig::default(), 2);
    run("tracking disabled (Table 5.1)", 12.0, 340, 110, DecoderConfig::without_tracking(), 3);
    run("ISI filter disabled (Table 5.1)", 10.0, 340, 110, DecoderConfig::without_isi_filter(), 4);
    run("deep fade (4 dB)", 4.0, 340, 110, DecoderConfig::default(), 5);
    run("one-slot offset difference", 12.0, 110, 100, DecoderConfig::default(), 6);
    println!("\nequal offsets leave the scheduler stuck (two identical equations);");
    println!("everything else degrades gracefully in BER, as the paper describes.");
}
