//! Quickstart: decode one hidden-terminal collision pair with ZigZag.
//!
//! Builds the Fig 1-2 scenario end to end — two senders that cannot hear
//! each other collide twice with different offsets — and shows the ZigZag
//! receiver recovering **both** packets, where a standard 802.11 receiver
//! recovers neither.
//!
//! Run: `cargo run --release --example quickstart`

use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::hidden_pair;
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_core::standard::decode_single;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn main() {
    let mut rng = StdRng::seed_from_u64(2008);

    // Alice and Bob: 12 dB links to the AP, realistic radio impairments
    // (frequency offset, sampling offset + drift, multipath ISI, phase
    // noise).
    let alice_link = LinkProfile::typical(12.0, &mut rng);
    let bob_link = LinkProfile::typical(12.0, &mut rng);

    // One 700-byte packet each.
    let alice_pkt = Frame::with_random_payload(0, 1, 1, 700, 0xA11CE);
    let bob_pkt = Frame::with_random_payload(0, 2, 1, 700, 0xB0B);
    let preamble = Preamble::default_len();
    let alice_air = encode_frame(&alice_pkt, Modulation::Bpsk, &preamble);
    let bob_air = encode_frame(&bob_pkt, Modulation::Bpsk, &preamble);

    // They can't hear each other, so they collide; 802.11 retransmission
    // jitter gives the two collisions different offsets (Δ1=340, Δ2=90
    // samples here).
    let (d1, d2) = (340, 90);
    let hp = hidden_pair(&alice_air, &bob_air, &alice_link, &bob_link, d1, d2, &mut rng);
    println!("two collisions synthesized: offsets D1={d1}, D2={d2} samples");

    // What the AP knows from association time: coarse per-client
    // frequency offsets and static ISI taps.
    let mut registry = ClientRegistry::new();
    registry.associate(
        1,
        ClientInfo {
            omega: alice_link.association_omega(),
            snr_db: 12.0,
            taps: alice_link.isi.clone(),
        },
    );
    registry.associate(
        2,
        ClientInfo {
            omega: bob_link.association_omega(),
            snr_db: 12.0,
            taps: bob_link.isi.clone(),
        },
    );

    // A standard 802.11 receiver fails on either collision:
    let std_try = decode_single(
        &hp.collision1.buffer,
        0,
        Some(1),
        &registry,
        &preamble,
        true,
        &DecoderConfig::default(),
    );
    let std_ber =
        std_try.map(|d| bit_error_rate(&alice_air.mpdu_bits, &d.scrambled_bits)).unwrap_or(1.0);
    println!("standard 802.11 decode of collision 1: BER {std_ber:.3} (garbage)");

    // ZigZag decodes both packets from the matched pair:
    let decoder = ZigzagDecoder::new(DecoderConfig::default(), &registry);
    let out = decoder.decode(
        &[
            CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, d1)] },
            CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, d2)] },
        ],
        &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
    );
    for (name, air, res) in
        [("Alice", &alice_air, &out.packets[0]), ("Bob  ", &bob_air, &out.packets[1])]
    {
        let ber = bit_error_rate(&air.mpdu_bits, &res.scrambled_bits);
        println!(
            "ZigZag {name}: BER {ber:.2e}  frame CRC: {}",
            if res.frame.is_some() { "PASS" } else { "fail (delivered if BER<1e-3 with coding)" }
        );
        assert!(ber < 1e-2, "zigzag should recover {name}");
    }
    println!("scheduler outcome: {:?}", out.outcome);
}
