//! Three hidden terminals (§4.5, Fig 4-6, §5.7).
//!
//! Three senders collide three times with MAC-drawn offsets; the greedy
//! chunk scheduler finds a decode order across the three collisions and
//! the executor recovers all three packets.
//!
//! Run: `cargo run --release --example three_hidden_terminals`

use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{synth_collision, PlacedTx};
use zigzag_core::config::DecoderConfig;
use zigzag_core::schedule::{decodable, CollisionLayout, Placement, PlanOutcome};
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_mac::{multi_episode, Backoff, MacParams};
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let params = MacParams::default();
    let payload = 300;

    let links: Vec<LinkProfile> = (0..3).map(|_| LinkProfile::typical(14.0, &mut rng)).collect();
    let airs: Vec<_> = (0..3)
        .map(|i| {
            let f = Frame::with_random_payload(0, i as u16 + 1, 5, payload, 600 + i as u64);
            encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
        })
        .collect();
    let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();

    // Draw MAC jitter until the offset pattern is solvable (a real AP
    // would keep collecting retransmissions).
    let rounds = loop {
        let r = multi_episode(3, 3, Backoff::Exponential, &params, &mut rng);
        let lens = vec![airs[0].len(); 3];
        let layouts: Vec<CollisionLayout> = r
            .iter()
            .map(|offs| CollisionLayout {
                placements: offs
                    .iter()
                    .enumerate()
                    .map(|(q, &o)| Placement { packet: q, start: params.slots_to_symbols(o) })
                    .collect(),
                len: params.slots_to_symbols(*offs.iter().max().unwrap()) + lens[0] + 64,
            })
            .collect();
        if decodable(&lens, &layouts) {
            break r;
        }
        println!("  (offset pattern unsolvable — waiting for another retransmission)");
    };
    println!("three collisions, per-round slot offsets:");
    for (r, offs) in rounds.iter().enumerate() {
        println!("  collision {}: {:?}", r + 1, offs);
    }

    let buffers: Vec<_> = rounds
        .iter()
        .map(|offs| {
            let placed: Vec<PlacedTx<'_>> = (0..3)
                .map(|i| PlacedTx {
                    air: &airs[i],
                    base: &chans[i],
                    start: params.slots_to_symbols(offs[i]),
                })
                .collect();
            synth_collision(&placed, 1.0, &mut rng)
        })
        .collect();

    let reg = zigzag_testbed::registry_for(&[(1, &links[0]), (2, &links[1]), (3, &links[2])]);
    let dec = ZigzagDecoder::new(DecoderConfig::default(), &reg);
    let specs: Vec<CollisionSpec<'_>> = buffers
        .iter()
        .zip(rounds.iter())
        .map(|(b, offs)| CollisionSpec {
            buffer: &b.buffer,
            placements: (0..3).map(|i| (i, params.slots_to_symbols(offs[i]))).collect(),
        })
        .collect();
    let out = dec.decode(
        &specs,
        &[PacketSpec { client: 1 }, PacketSpec { client: 2 }, PacketSpec { client: 3 }],
    );
    assert_eq!(out.outcome, PlanOutcome::Complete, "scheduler should finish");
    for (i, p) in out.packets.iter().enumerate() {
        let ber = bit_error_rate(&airs[i].mpdu_bits, &p.scrambled_bits);
        println!("sender {}: BER {ber:.2e}", i + 1);
        assert!(ber < 1e-2);
    }
    println!(
        "all three packets recovered — each sender effectively got 1/3 of the medium (Fig 5-9)"
    );
}
