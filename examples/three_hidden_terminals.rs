//! Three hidden terminals through the full receiver (§4.5, Fig 4-6, §5.7).
//!
//! Three senders, hidden from each other, collide three times with
//! different MAC offsets. Every receive buffer goes through the actual
//! AP pipeline (`ZigzagReceiver::process`, i.e. `ReceiverCore::receive`):
//! the first two collisions are detected as unresolvable and parked in
//! the keyed collision store; the third completes a decodable 3×3 match
//! set, and the k-way matcher + greedy scheduler + executor recover all
//! three packets in one pass.
//!
//! Run: `cargo run --release --example three_hidden_terminals`

use rand::prelude::*;
use zigzag::channel::fading::LinkProfile;
use zigzag::channel::scenario::{synth_collision, PlacedTx};
use zigzag::core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag::core::receiver::{DecodePath, ReceiverEvent, ZigzagReceiver};
use zigzag::phy::frame::{encode_frame, Frame};
use zigzag::phy::modulation::Modulation;
use zigzag::phy::preamble::Preamble;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let payload = 150;

    // Three clients at distinct oscillator offsets — that is how the AP
    // tells senders apart in the correlation detector (§4.2.1).
    let omegas = [-0.08, 0.02, 0.09];
    let links: Vec<LinkProfile> =
        (0..3).map(|i| LinkProfile::clean_with_omega(18.0, omegas[i])).collect();
    let airs: Vec<_> = (0..3)
        .map(|i| {
            let f = Frame::with_random_payload(0, i as u16 + 1, 5, payload, 600 + i as u64);
            encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
        })
        .collect();
    let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();

    // Per-round offsets as the MAC's backoff jitter would place them:
    // three distinct interference patterns (a decodable 3×3 system; with
    // identical patterns the receiver would keep storing and wait for
    // more retransmissions).
    let offsets = [[0usize, 310, 620], [0, 620, 310], [100, 0, 450]];

    let mut registry = ClientRegistry::new();
    for (i, l) in links.iter().enumerate() {
        registry.associate(
            i as u16 + 1,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }
    let mut rx = ZigzagReceiver::new(DecoderConfig::default(), registry);

    let mut recovered = Vec::new();
    for (round, offs) in offsets.iter().enumerate() {
        let placed: Vec<PlacedTx<'_>> =
            (0..3).map(|i| PlacedTx { air: &airs[i], base: &chans[i], start: offs[i] }).collect();
        let sc = synth_collision(&placed, 1.0, &mut rng);
        let events = rx.process(&sc.buffer);
        print!("collision {} (offsets {:?}): ", round + 1, offs);
        for ev in events {
            match ev {
                ReceiverEvent::CollisionStored => {
                    print!("stored unmatched (store now holds {})", rx.stored_collisions())
                }
                ReceiverEvent::Delivered { frame, path } => {
                    print!("delivered src {} via {:?}  ", frame.src, path);
                    recovered.push((frame, path));
                }
                ReceiverEvent::DecodeFailed => print!("decode failed"),
            }
        }
        println!();
    }

    assert_eq!(recovered.len(), 3, "all three packets should be recovered");
    for (frame, path) in &recovered {
        assert_eq!(*path, DecodePath::Zigzag);
        let sent: &Frame = &airs[(frame.src - 1) as usize].frame;
        assert_eq!(frame, sent, "recovered frame must be bit-exact");
    }
    assert_eq!(rx.stored_collisions(), 0, "matched store entries are consumed");
    println!(
        "all three packets recovered bit-exact through the receiver's k-way \
         store/match/zigzag path — each sender effectively got 1/3 of the medium (Fig 5-9)"
    );
}
