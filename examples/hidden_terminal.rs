//! Hidden-terminal flow through the full AP receiver front end.
//!
//! Drives [`zigzag_core::receiver::ZigzagReceiver`] the way a radio would:
//! buffers arrive one at a time; the first collision is detected and
//! stored, the retransmission is matched (§4.2.2) and both frames pop out
//! of the ZigZag path with their CRCs intact.
//!
//! Run: `cargo run --release --example hidden_terminal`

use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::hidden_pair;
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_core::receiver::{ReceiverEvent, ZigzagReceiver};
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let alice = LinkProfile::typical(16.0, &mut rng);
    let bob = LinkProfile::typical(16.0, &mut rng);

    let mut ap = ZigzagReceiver::new(DecoderConfig::default(), ClientRegistry::new());
    ap.associate(
        1,
        ClientInfo { omega: alice.association_omega(), snr_db: 16.0, taps: alice.isi.clone() },
    );
    ap.associate(
        2,
        ClientInfo { omega: bob.association_omega(), snr_db: 16.0, taps: bob.isi.clone() },
    );

    let fa = Frame::with_random_payload(0, 1, 42, 400, 1);
    let fb = Frame::with_random_payload(0, 2, 43, 400, 2);
    let a = encode_frame(&fa, Modulation::Bpsk, &Preamble::default_len());
    let b = encode_frame(&fb, Modulation::Bpsk, &Preamble::default_len());
    // 802.11 senders retransmit until acked, so the AP keeps receiving
    // collision pairs (fresh jitter each time) until both CRCs pass.
    let mut recovered = 0usize;
    'outer: for (round, (d1, d2)) in [(420, 140), (300, 90), (380, 210)].iter().enumerate() {
        let hp = hidden_pair(&a, &b, &alice, &bob, *d1, *d2, &mut rng);
        println!("-> collision pair {} (offsets {d1}/{d2})", round + 1);
        for buf in [&hp.collision1.buffer, &hp.collision2.buffer] {
            for ev in ap.process(buf) {
                println!("   event: {}", describe(&ev));
                if let ReceiverEvent::Delivered { frame, .. } = &ev {
                    assert!(frame == &fa || frame == &fb);
                    recovered += 1;
                }
            }
            if recovered == 2 {
                break 'outer;
            }
        }
    }
    assert_eq!(recovered, 2, "both frames should be recovered");
    println!("both packets recovered from successive collisions — the hidden");
    println!("terminals got the throughput of separate time slots.");
}

fn describe(ev: &ReceiverEvent) -> String {
    match ev {
        ReceiverEvent::Delivered { frame, path } => {
            format!("Delivered src={} seq={} via {:?}", frame.src, frame.seq, path)
        }
        ReceiverEvent::CollisionStored => {
            "CollisionStored (awaiting a matching retransmission)".into()
        }
        ReceiverEvent::DecodeFailed => "DecodeFailed".into(),
    }
}
