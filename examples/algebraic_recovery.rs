//! When ZigZag fails — and algebra doesn't.
//!
//! The paper's §4.5 failure condition: two collisions of the same two
//! packets with **identical** relative offsets (Δ₁ = Δ₂) are the same
//! combinatorial equation, so the chunk scheduler never finds an
//! interference-free chunk and the iterative decoder is provably stuck.
//! This happens on real air whenever two stations' backoff counters
//! freeze in lockstep (both deafened through the same busy period) and
//! they retransmit with the same spacing, again and again.
//!
//! The two receptions are *not* the same linear equation, though: each
//! carries fresh channel coefficients (carrier phase, fractional timing),
//! so the per-symbol 2×2 systems stay invertible. `zigzag_core::recovery`
//! solves them jointly — block Gaussian elimination over channel-view
//! equations, CRC-gated — and turns the provably-undecodable stream into
//! delivered frames.
//!
//! Run with `cargo run --release --example algebraic_recovery`.

use rand::prelude::*;
use zigzag::channel::fading::LinkProfile;
use zigzag::channel::scenario::{synth_collision, PlacedTx};
use zigzag::core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag::core::receiver::{DecodePath, ReceiverEvent};
use zigzag::core::ZigzagReceiver;
use zigzag::phy::frame::{encode_frame, Frame};
use zigzag::phy::modulation::Modulation;
use zigzag::phy::preamble::Preamble;

fn main() {
    // Two hidden senders at distinct oscillator offsets (how the AP
    // tells them apart, §4.2.1), 17 dB each.
    let la = LinkProfile::clean_with_omega(17.0, -0.08);
    let lb = LinkProfile::clean_with_omega(17.0, 0.09);
    let fa = Frame::with_random_payload(0, 1, 3, 120, 70_134);
    let fb = Frame::with_random_payload(0, 2, 3, 120, 70_265);
    let a = encode_frame(&fa, Modulation::Bpsk, &Preamble::default_len());
    let b = encode_frame(&fb, Modulation::Bpsk, &Preamble::default_len());

    let mut reg = ClientRegistry::new();
    for (id, l) in [(1u16, &la), (2, &lb)] {
        reg.associate(
            id,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }

    // Both collisions place Alice at 0 and Bob at 300 — Δ₁ = Δ₂ = 300.
    // (Channel phase and sampling offset still differ per transmission,
    // as they would over real air.)
    let mut rng = StdRng::seed_from_u64(3);
    let (ca, cb) = (la.draw(&mut rng), lb.draw(&mut rng));
    let collide = |rng: &mut StdRng| {
        synth_collision(
            &[
                PlacedTx { air: &a, base: &ca, start: 0 },
                PlacedTx { air: &b, base: &cb, start: 300 },
            ],
            1.0,
            rng,
        )
        .buffer
    };
    let c1 = collide(&mut rng);
    let c2 = collide(&mut rng);

    // The paper's receiver: stores the first collision, *rejects* the
    // second (the pure-shift alignment is the Δ₁ = Δ₂ case its scheduler
    // cannot decode), stores it too. Nothing ever delivers.
    let mut zigzag_only = ZigzagReceiver::new(DecoderConfig::default(), reg.clone());
    let mut delivered = 0;
    for c in [&c1, &c2] {
        delivered += zigzag_only
            .process(c)
            .iter()
            .filter(|e| matches!(e, ReceiverEvent::Delivered { .. }))
            .count();
    }
    println!("zigzag-only receiver: {delivered} frames from the Δ₁ = Δ₂ pair (provably stuck)");

    // The recovery-enabled receiver: the confirmed-but-undecodable
    // alignment goes to the algebraic batch solver, which decodes both
    // packets jointly across the two buffers.
    let mut rx = ZigzagReceiver::new(DecoderConfig::with_recovery(), reg);
    let _ = rx.process(&c1);
    for ev in rx.process(&c2) {
        if let ReceiverEvent::Delivered { frame, path } = ev {
            assert_eq!(path, DecodePath::Recovered);
            let ok = frame == fa || frame == fb;
            println!(
                "recovered src {} seq {} ({} bytes) CRC ok, matches transmitted: {ok}",
                frame.src,
                frame.seq,
                frame.payload.len()
            );
        }
    }
}
