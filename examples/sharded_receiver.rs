//! Two hidden-terminal client sets through the sharded multi-core
//! receiver.
//!
//! One AP serves two *disjoint* saturated client sets — {1,2} and {3,4}
//! — whose collisions interleave on the air. A `ShardedReceiver` routes
//! each receive buffer by the hash of its detected client set (a
//! detect-only pre-pass whose detections the shard pipeline then
//! reuses), so each set's collisions accumulate in — and match against —
//! their own shard's `CollisionStore`, decoding in parallel. The merged
//! event stream is bit-identical to a single `ReceiverCore` processing
//! the same buffers in order; this example checks that too.
//!
//! Run: `cargo run --release --example sharded_receiver`

use rand::prelude::*;
use zigzag::channel::fading::LinkProfile;
use zigzag::channel::scenario::hidden_pair;
use zigzag::core::config::{ClientInfo, ClientRegistry, DecoderConfig, ShardConfig};
use zigzag::core::engine::ShardedReceiver;
use zigzag::core::receiver::{DecodePath, ReceiverEvent, ZigzagReceiver};
use zigzag::phy::complex::Complex;
use zigzag::phy::frame::{encode_frame, Frame};
use zigzag::phy::modulation::Modulation;
use zigzag::phy::preamble::Preamble;

fn air(src: u16, seq: u16, seed: u64) -> zigzag::phy::frame::AirFrame {
    let f = Frame::with_random_payload(0, src, seq, 150, seed);
    encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
}

/// One set's hidden pair: two collisions of the same frames at
/// different MAC offsets (store → match → zigzag).
fn pair_group(ids: [u16; 2], omegas: [f64; 2], seed: u64) -> ([LinkProfile; 2], Vec<Vec<Complex>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let links = [
        LinkProfile::clean_with_omega(17.0, omegas[0]),
        LinkProfile::clean_with_omega(17.0, omegas[1]),
    ];
    let a = air(ids[0], seed as u16, 60_000 + seed * 7);
    let b = air(ids[1], seed as u16, 61_000 + seed * 11);
    let offsets = [(420, 140), (300, 120)][seed as usize % 2];
    let hp = hidden_pair(&a, &b, &links[0], &links[1], offsets.0, offsets.1, &mut rng);
    (links, vec![hp.collision1.buffer, hp.collision2.buffer])
}

fn main() {
    let (links_a, bufs_a) = pair_group([1, 2], [-0.13, 0.14], 0);
    let (links_b, bufs_b) = pair_group([3, 4], [-0.08, 0.02], 1);

    let mut registry = ClientRegistry::new();
    for (id, l) in [(1u16, &links_a[0]), (2, &links_a[1]), (3, &links_b[0]), (4, &links_b[1])] {
        registry.associate(
            id,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }

    // Interleave the two sets' collisions, as the air would.
    let stream: Vec<Vec<Complex>> =
        vec![bufs_a[0].clone(), bufs_b[0].clone(), bufs_a[1].clone(), bufs_b[1].clone()];

    let mut rx = ShardedReceiver::new(
        DecoderConfig::shared_ap(),
        ShardConfig { shards: 2, queue_depth: 4 },
        registry.clone(),
    );
    println!("sharded receiver: {} shards, queue depth 4", rx.shards());
    let events = rx.process_batch(&stream);
    let mut delivered = 0;
    for (i, evs) in events.iter().enumerate() {
        print!("buffer {i}: ");
        for ev in evs {
            match ev {
                ReceiverEvent::CollisionStored => print!("stored unmatched  "),
                ReceiverEvent::Delivered { frame, path } => {
                    print!("delivered src {} via {path:?}  ", frame.src);
                    delivered += 1;
                    assert_eq!(*path, DecodePath::Zigzag);
                }
                ReceiverEvent::DecodeFailed => print!("decode failed  "),
            }
        }
        println!();
    }
    println!("shard loads: {:?}", rx.loads());
    assert_eq!(delivered, 4, "both pairs must decode through their shards");
    assert!(
        rx.loads().iter().filter(|&&l| l > 0).count() == 2,
        "the two client sets must route to different shards: {:?}",
        rx.loads()
    );

    // The sharding contract: bit-identical to one ReceiverCore fed the
    // same sequence.
    let mut single = ZigzagReceiver::new(DecoderConfig::shared_ap(), registry);
    let reference: Vec<Vec<ReceiverEvent>> = stream.iter().map(|b| single.process(b)).collect();
    assert_eq!(events, reference, "sharded output must equal the single-core receiver's");
    println!("sharded events identical to a single ReceiverCore — all four frames recovered");
}
