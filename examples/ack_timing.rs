//! Synchronous ACKs without MAC changes (§4.4, Fig 4-5, Lemma 4.4.1).
//!
//! Shows the probability that a decoded collision pair can be acked
//! synchronously, and walks one Fig 4-5 schedule.
//!
//! Run: `cargo run --release --example ack_timing`

use rand::prelude::*;
use zigzag::mac::{schedule_acks, sync_ack_probability_bound, sync_ack_probability_mc, MacParams};

fn main() {
    let p = MacParams::default();
    println!("802.11g timing: slot {} us, SIFS {} us, ACK {} us", p.slot_us, p.sifs_us, p.ack_us);
    println!(
        "Lemma 4.4.1 bound: P(sync ack possible) >= {:.4} (paper: 0.9375)",
        sync_ack_probability_bound(&p)
    );
    let mut rng = StdRng::seed_from_u64(44);
    println!(
        "Monte Carlo over backoff draws: {:.4}",
        sync_ack_probability_mc(&p, 200_000, &mut rng)
    );

    // One concrete Fig 4-5 schedule: 1500 B packets offset by 4 slots.
    let len_us = 1514.0 * 8.0 / 0.5; // bits at 500 kb/s
    let s = schedule_acks(80.0, len_us, len_us, &p);
    println!("\nFig 4-5 walk-through (offset 80 us, packets {len_us:.0} us):");
    println!("  synchronous: {}", s.synchronous);
    println!(
        "  ack for Alice at t = {:.0} us (inside Bob's tail — Alice can't hear Bob)",
        s.ack1_at_us
    );
    println!("  ack for Bob   at t = {:.0} us (after the padding signal)", s.ack2_at_us);
}
