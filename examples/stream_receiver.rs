//! Decoding one continuous IQ stream through the flowgraph front end.
//!
//! Every other example hands the receiver pre-cut collision buffers. A
//! real AP never gets those: it gets an unbroken sample stream — noise,
//! then a collision burst, then noise again — from which the receive
//! buffers must be carved. `ShardedReceiver::process_stream` runs that
//! whole flowgraph:
//!
//! * a producer (your SDR callback; here a closure pushing synthesized
//!   air in arbitrary-sized chunks) feeds a bounded sample ring;
//! * a windowed scanner runs the preamble correlation incrementally —
//!   no sample is scanned twice, and the detections are bit-identical
//!   to a one-shot scan of the whole air;
//! * a carver cuts collision regions around detection runs (a region
//!   stays open while new preambles keep landing, so collisions
//!   straddling window boundaries come out whole) and routes each
//!   region to a decode shard by its detected client set;
//! * backpressure runs end-to-end: full shard queue → carver stalls →
//!   ring fills → `push_samples` blocks. Bounded memory, zero drops.
//!
//! The decode events are bit-identical to pre-cutting the same air and
//! batch-decoding the regions — checked at the end.
//!
//! Run: `cargo run --release --example stream_receiver`

use zigzag::channel::fading::LinkProfile;
use zigzag::core::config::{DecoderConfig, ShardConfig, StreamConfig};
use zigzag::core::engine::ShardedReceiver;
use zigzag::core::receiver::ReceiverEvent;
use zigzag::core::stream::carve_buffer;
use zigzag::testbed::{continuous_air, ExperimentConfig, SetScenario};

fn main() {
    // Two hidden senders on clean 17 dB links; six collision groups
    // (each k=2 group needs its k collisions on air to be decodable)
    // spliced into a continuous stream with noise gaps between bursts.
    let scenario = SetScenario {
        links: vec![
            LinkProfile::clean_with_omega(17.0, -0.13),
            LinkProfile::clean_with_omega(17.0, 0.14),
        ],
        p_sense: 0.0,
        seed: 11,
    };
    let exp = ExperimentConfig { payload: 200, ..Default::default() };
    let air = continuous_air(&scenario, &exp, 6, 5000);
    println!(
        "air: {} samples, {} collision bursts, {} clients",
        air.samples.len(),
        air.bursts,
        scenario.links.len()
    );

    let cfg = DecoderConfig::shared_ap();
    let scfg = StreamConfig::default();

    // Stream decode: push the air in SDR-callback-sized chunks from a
    // producer thread while the carver and shard workers run.
    let mut rx = ShardedReceiver::new(
        cfg.clone(),
        ShardConfig { shards: 2, queue_depth: 4 },
        air.registry.clone(),
    );
    let out = rx.process_stream(&scfg, |src| {
        for chunk in air.samples.chunks(2048) {
            src.push_samples(chunk);
        }
    });

    for r in &out.regions {
        let delivered =
            r.events.iter().filter(|e| matches!(e, ReceiverEvent::Delivered { .. })).count();
        println!(
            "region {} @ {:>7}: {:>5} samples, {} events, {} delivered, queue wait {} us",
            r.seq,
            r.start,
            r.len,
            r.events.len(),
            delivered,
            r.queue_wait_ns / 1_000
        );
    }
    let delivered: usize = out
        .regions
        .iter()
        .flat_map(|r| &r.events)
        .filter(|e| matches!(e, ReceiverEvent::Delivered { .. }))
        .count();
    let s = &out.stats;
    println!(
        "stream: {} samples in, {} regions ({} carved samples), {} frames delivered",
        s.samples, s.regions, s.carved_samples, delivered
    );
    println!(
        "backpressure: {} source stalls, ring high water {}, shard stalls {:?}, queue high water {:?}",
        s.source_stalls, s.ring_high_water, s.shard_stalls, s.queue_high_water
    );

    // The determinism contract: same air, pre-cut into regions and
    // batch-decoded, yields the identical event stream.
    let regions = carve_buffer(&air.samples, &cfg, &air.registry, &scfg);
    let buffers: Vec<_> = regions.iter().map(|r| r.samples.clone()).collect();
    let mut batch =
        ShardedReceiver::new(cfg, ShardConfig { shards: 1, queue_depth: 4 }, air.registry.clone());
    let precut = batch.process_batch(&buffers);
    assert_eq!(out.events(), precut, "stream decode must equal pre-cut decode bit-for-bit");
    println!("stream events == pre-cut events: identical ({} bursts decoded)", regions.len());
}
