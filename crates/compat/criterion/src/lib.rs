//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides the API subset the workspace's benches use: [`Criterion`]
//! with `bench_function`/`bench_with_input`, [`BenchmarkId`], `Bencher::iter`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: a short calibration pass sizes the
//! iteration count to a target sampling window, several samples are taken,
//! and the median ns/iter is reported on stdout. Set `CRITERION_QUICK=1`
//! (or pass `--quick`) to shrink the window for CI smoke runs.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark, e.g. `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_target: Duration,
    /// Median duration of one iteration from the last `iter` call, in ns.
    pub last_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // calibration: one timed call decides the per-sample iteration count
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (self.sample_target.as_nanos() / est.as_nanos()).clamp(1, 100_000) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(5);
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = samples[samples.len() / 2];
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_target: Duration,
    /// ns/iter of the most recently completed benchmark.
    pub last_ns: f64,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var_os("CRITERION_QUICK").is_some()
            || std::env::args().any(|a| a == "--quick");
        Self {
            sample_target: if quick {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(120)
            },
            last_ns: 0.0,
        }
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { sample_target: self.sample_target, last_ns: 0.0 };
        f(&mut b);
        self.last_ns = b.last_ns;
        println!("{id:<40} time: {:>12}/iter", human(b.last_ns));
    }

    /// Benchmarks a closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Benchmarks a closure with an input value under a parameterised id.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.id, |b| f(b, input));
        self
    }
}

/// Declares a group function running each benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($g:path),+ $(,)?) => {
        fn main() {
            $($g();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion { sample_target: Duration::from_millis(2), last_ns: 0.0 };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert!(c.last_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("decode", 1500);
        assert_eq!(id.id, "decode/1500");
    }
}
