//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the subset of the proptest API that `tests/properties.rs`
//! uses: the [`proptest!`] macro over functions whose parameters are either
//! `name in strategy` or `name: Type`, scalar range strategies
//! (`0u8..2`, `0.1f64..10.0`), [`any`], tuple strategies, and
//! [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the usual assertion message, and cases are generated from a
//! deterministic per-test seed so failures reproduce exactly. The case
//! count defaults to 64 and can be overridden with `PROPTEST_CASES`.

#![warn(missing_docs)]

use rand::prelude::*;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical whole-domain strategy (`any::<T>()`, `name: T`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runs `case` for the configured number of deterministic cases.
pub fn run_proptest(name: &str, mut case: impl FnMut(&mut StdRng)) {
    let cases: u64 =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
    // FNV-1a over the test name: every test gets its own stable stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    for i in 0..cases {
        let mut rng = StdRng::seed_from_u64(h ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        case(&mut rng);
    }
}

/// Declares property tests. Parameters are `name in strategy` or
/// `name: Type`; bodies use `prop_assert!`/`prop_assert_eq!` (or plain
/// `assert!`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(stringify!($name), |__pt_rng| {
                    $crate::__proptest_bind!(__pt_rng, $($params)*);
                    $body
                });
            }
        )*
    };
}

/// Internal: binds one parameter list entry at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $($crate::__proptest_bind!($rng, $($rest)*);)?
    };
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $($crate::__proptest_bind!($rng, $($rest)*);)?
    };
}

/// Property assertion (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn typed_params_bind(seed: u8, big: u64) {
            let _ = (seed, big);
            prop_assert_eq!(seed as u64 & 0xFF, seed as u64);
        }

        #[test]
        fn tuples_compose(pair in (0usize..4, 1usize..3)) {
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
        }
    }
}
