//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this in-tree crate provides the (small) `rand 0.8` API subset the
//! workspace actually uses: [`StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`, and [`SliceRandom::choose`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 the real `StdRng` uses, but statistically strong far beyond
//! what Monte-Carlo channel simulation needs, `Copy`-free, and fully
//! deterministic across platforms and thread counts (which the
//! `BatchEngine` reproducibility guarantee relies on).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard RNG: xoshiro256** with SplitMix64 seeding.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128) - (lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range called with an empty range");
                // Modulo draw: the bias over a u64 source is negligible for
                // the simulation-sized spans used here.
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(hi > lo || (_inclusive && hi >= lo), "gen_range called with an empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection from slices.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Uniformly random element, `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

/// One-stop import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleUniform, SeedableRng, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let w = rng.gen_range(0..=4u32);
            assert!(w <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }

    #[test]
    fn choose_is_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[*items.as_slice().choose(&mut rng).unwrap()] += 1;
        }
        for c in counts {
            assert!(c > 1_500, "{counts:?}");
        }
    }
}
