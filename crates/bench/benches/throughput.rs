//! Batched decode throughput: buffers decoded/sec through the
//! `BatchEngine`, across two axes — single- vs multi-threaded, and the
//! scalar vs optimized phy kernel backend — on a batch of 64 independent
//! hidden-terminal work units (128 collision buffers).
//!
//! This is the perf anchor for the engine + kernel-backend work, and a
//! regression gate: decode events must be **identical** at every thread
//! count AND under both kernel backends (always asserted — this is the
//! CI smoke check for kernel-backend regressions), the multi-threaded
//! engine must beat single-threaded by ≥ 2× on ≥ 4 real cores, and the
//! optimized backend must measurably beat scalar end-to-end. Perf gates
//! (not the identity asserts) relax under `ZIGZAG_BENCH_RELAXED=1` for
//! shared/noisy runners. Results land in `BENCH_throughput.json` at the
//! repo root so the perf trajectory is tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use std::fmt::Write as _;
use zigzag_bench::airframe;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{hidden_pair, synth_collision, PlacedTx};
use zigzag_core::config::DecoderConfig;
use zigzag_core::engine::{decode_batch, unit_seed, BatchEngine, DecodeUnit};
use zigzag_core::receiver::DecodePath;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_core::ReceiverEvent;
use zigzag_phy::frame::Frame;
use zigzag_phy::kernel::BackendKind;

const UNITS: usize = 64;

/// Per-unit seeds for the k=3 workload, pre-screened so both the
/// ground-truth executor and the full receiver pipeline recover all
/// three frames (the k-way matcher is conservative by design — a
/// detection-starved set stays stored awaiting more retransmissions;
/// that path is covered by the testbed's `run_sets` tests, while this
/// bench pins the successful-decode path's identity and throughput).
const K3_SEEDS: [u64; 16] = [0, 1, 2, 3, 4, 9, 12, 14, 15, 16, 17, 18, 19, 20, 25, 26];

/// Builds the k=3 workload: per unit, three 3-sender collisions through
/// one receiver (store → store → k-way match → zigzag), plus the frames
/// the hand-driven executor recovers from the same buffers with
/// ground-truth placements.
fn build_k3_units(backend: BackendKind) -> (Vec<DecodeUnit>, Vec<Vec<Frame>>) {
    let omegas = [-0.08, 0.02, 0.09];
    let offs = [[0usize, 310, 620], [0, 620, 310], [100, 0, 450]];
    let mut units = Vec::with_capacity(K3_SEEDS.len());
    let mut expected = Vec::with_capacity(K3_SEEDS.len());
    for &seed in &K3_SEEDS {
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let links: Vec<LinkProfile> =
            (0..3).map(|i| LinkProfile::clean_with_omega(17.0, omegas[i])).collect();
        let airs: Vec<_> = (0..3)
            .map(|i| airframe(i as u16 + 1, seed as u16, 150, 90_000 + seed * 7 + i as u64))
            .collect();
        let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();
        let buffers: Vec<_> = offs
            .iter()
            .map(|o| {
                let placed: Vec<PlacedTx<'_>> = (0..3)
                    .map(|i| PlacedTx { air: &airs[i], base: &chans[i], start: o[i] })
                    .collect();
                synth_collision(&placed, 1.0, &mut rng).buffer
            })
            .collect();
        let registry =
            zigzag_testbed::registry_for(&[(1, &links[0]), (2, &links[1]), (3, &links[2])]);
        let dec = ZigzagDecoder::new(DecoderConfig::with_backend(backend), &registry);
        let specs: Vec<CollisionSpec<'_>> = buffers
            .iter()
            .zip(offs.iter())
            .map(|(b, o)| CollisionSpec {
                buffer: b,
                placements: (0..3).map(|i| (i, o[i])).collect(),
            })
            .collect();
        let out = dec.decode(
            &specs,
            &[PacketSpec { client: 1 }, PacketSpec { client: 2 }, PacketSpec { client: 3 }],
        );
        expected.push(out.packets.into_iter().filter_map(|p| p.frame).collect());
        units.push(DecodeUnit { cfg: DecoderConfig::with_backend(backend), registry, buffers });
    }
    (units, expected)
}

/// Builds 64 independent hidden-terminal work units on the given kernel
/// backend: each is a fresh receiver fed the two collisions of one
/// retransmission pair (store → match → zigzag), i.e. 128 collision
/// buffers in total. The signal content is identical across backends.
fn build_units(backend: BackendKind) -> Vec<DecodeUnit> {
    (0..UNITS)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(unit_seed(2008, i));
            let la = LinkProfile::typical(16.0, &mut rng);
            let lb = LinkProfile::typical(16.0, &mut rng);
            let a = airframe(1, i as u16, 200, 10_000 + i as u64);
            let b = airframe(2, i as u16, 200, 20_000 + i as u64);
            let d1 = 200 + 10 * (i % 12);
            let d2 = 60 + 10 * (i % 5);
            let hp = hidden_pair(&a, &b, &la, &lb, d1, d2, &mut rng);
            let registry = zigzag_testbed::registry_for(&[(1, &la), (2, &lb)]);
            DecodeUnit {
                cfg: DecoderConfig::with_backend(backend),
                registry,
                buffers: vec![hp.collision1.buffer, hp.collision2.buffer],
            }
        })
        .collect()
}

fn bench_batch_decode(c: &mut Criterion) {
    let single = BatchEngine::single_threaded();
    let multi = BatchEngine::new(0);
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut events_by_backend = Vec::new();
    let mut n_buffers = 0;

    for backend in [BackendKind::Scalar, BackendKind::Optimized] {
        let units = build_units(backend);
        n_buffers = units.iter().map(|u| u.buffers.len()).sum();
        println!(
            "batch[{}]: {UNITS} work units / {n_buffers} collision buffers; multi = {} threads",
            backend.name(),
            multi.threads()
        );
        for (engine_name, engine) in [("single_thread", &single), ("multi_thread", &multi)] {
            let name = format!("batch_decode_{engine_name}/{}", backend.name());
            c.bench_function(&name, |b| b.iter(|| decode_batch(engine, &units)));
            // the compat criterion reports the median ns/iter of the run
            // it just timed — no extra passes needed
            timings.push((name, c.last_ns));
        }
        // --- determinism across thread counts (per backend) ---
        let events_single = decode_batch(&single, &units);
        let events_multi = decode_batch(&multi, &units);
        assert_eq!(
            events_single,
            events_multi,
            "[{}] multi-threaded decode must be bit-identical to single-threaded",
            backend.name()
        );
        events_by_backend.push(events_single);
    }

    // --- determinism across kernel backends ---
    assert_eq!(
        events_by_backend[0], events_by_backend[1],
        "scalar and optimized kernel backends must produce identical decode events"
    );
    let delivered: usize = events_by_backend[0]
        .iter()
        .flat_map(|ev| ev.iter())
        .filter(|e| matches!(e, zigzag_core::ReceiverEvent::Delivered { .. }))
        .count();

    // --- k=3 workload: 3-sender/3-collision sets through the pipeline ---
    let (k3_units, k3_expected) = build_k3_units(BackendKind::Optimized);
    let k3_buffers: usize = k3_units.iter().map(|u| u.buffers.len()).sum();
    println!("batch[k3]: {} work units / {k3_buffers} collision buffers", k3_units.len());
    for (engine_name, engine) in [("single_thread", &single), ("multi_thread", &multi)] {
        let name = format!("batch_decode_k3_{engine_name}/optimized");
        c.bench_function(&name, |b| b.iter(|| decode_batch(engine, &k3_units)));
        timings.push((name, c.last_ns));
    }
    // identity gates: thread counts agree, and the pipeline's k-way
    // zigzag deliveries equal the hand-driven executor's recoveries
    let k3_events = decode_batch(&single, &k3_units);
    assert_eq!(
        k3_events,
        decode_batch(&multi, &k3_units),
        "[k3] multi-threaded decode must be bit-identical to single-threaded"
    );
    let mut k3_delivered = 0usize;
    for (i, (events, expected)) in k3_events.iter().zip(k3_expected.iter()).enumerate() {
        let got: Vec<&Frame> = events
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Delivered { frame, path: DecodePath::Zigzag } => Some(frame),
                _ => None,
            })
            .collect();
        assert_eq!(got.len(), expected.len(), "k3 unit {i}: pipeline/executor frame count");
        for f in expected {
            assert!(got.contains(&f), "k3 unit {i}: pipeline missed an executor-decoded frame");
        }
        k3_delivered += got.len();
    }
    println!(
        "k3: {k3_delivered} frames via the k-way store/match path, identical to the executor path"
    );

    let ns = |name: &str| timings.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
    let row_buffers = |name: &str| if name.contains("_k3_") { k3_buffers } else { n_buffers };
    for (name, v) in &timings {
        println!(
            "{name:<42} {:>8.1} ms ({:.1} buffers/s)",
            v / 1e6,
            row_buffers(name) as f64 / (v / 1e9)
        );
    }
    let thread_speedup =
        ns("batch_decode_single_thread/optimized") / ns("batch_decode_multi_thread/optimized");
    let backend_speedup =
        ns("batch_decode_single_thread/scalar") / ns("batch_decode_single_thread/optimized");
    let combined =
        ns("batch_decode_single_thread/scalar") / ns("batch_decode_multi_thread/optimized");
    println!(
        "speedups: threads {thread_speedup:.2}x, backend {backend_speedup:.2}x, combined {combined:.2}x   frames delivered: {delivered} (identical across backends and thread counts)"
    );

    // JSON perf trajectory at the repo root.
    let mut s = String::from("{\n  \"bench\": \"throughput\",\n");
    let _ = writeln!(
        s,
        "  \"units\": {UNITS},\n  \"buffers\": {n_buffers},\n  \"threads\": {},",
        multi.threads()
    );
    let _ = writeln!(s, "  \"frames_delivered\": {delivered},");
    s.push_str("  \"results\": [\n");
    for (i, (name, v)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{name}\", \"ms\": {:.2}, \"buffers_per_sec\": {:.1}}}{comma}",
            v / 1e6,
            row_buffers(name) as f64 / (v / 1e9)
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"k3\": {{\"units\": {}, \"buffers\": {k3_buffers}, \"frames_delivered\": {k3_delivered}, \"ms_single\": {:.2}, \"ms_multi\": {:.2}}},",
        k3_units.len(),
        ns("batch_decode_k3_single_thread/optimized") / 1e6,
        ns("batch_decode_k3_multi_thread/optimized") / 1e6
    );
    let _ = writeln!(s, "  \"speedup_threads\": {thread_speedup:.2},");
    let _ = writeln!(s, "  \"speedup_backend\": {backend_speedup:.2},");
    let _ = writeln!(s, "  \"speedup_combined\": {combined:.2}");
    s.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    if let Err(e) = std::fs::write(path, &s) {
        eprintln!("could not write {path}: {e}");
    }
    println!("wrote BENCH_throughput.json");

    // Hard perf gates for dedicated hardware with real parallelism; shared
    // CI runners (SMT vCPUs, noisy neighbors) set ZIGZAG_BENCH_RELAXED=1
    // and rely on the identity asserts above.
    let relaxed = std::env::var_os("ZIGZAG_BENCH_RELAXED").is_some();
    if !relaxed {
        assert!(
            backend_speedup >= 1.2,
            "optimized backend must measurably beat scalar end-to-end, got {backend_speedup:.2}x"
        );
        if multi.threads() >= 4 {
            assert!(
                thread_speedup >= 2.0,
                "multi-threaded BatchEngine must be >= 2x single-threaded on {} threads, got {thread_speedup:.2}x",
                multi.threads()
            );
        }
    }
}

criterion_group!(benches, bench_batch_decode);
criterion_main!(benches);
