//! Batched decode throughput: buffers decoded/sec through the
//! `BatchEngine`, across two axes — single- vs multi-threaded, and the
//! scalar vs optimized vs explicit-simd phy kernel backend — on a batch
//! of 64 independent hidden-terminal work units (128 collision buffers).
//!
//! This is the perf anchor for the engine + kernel-backend work, and a
//! regression gate: decode events must be **identical** at every thread
//! count AND under all three kernel backends (always asserted — this is
//! the CI smoke check for kernel-backend regressions), the
//! multi-threaded engine must beat single-threaded by ≥ 2× on ≥ 4 real
//! cores, the optimized and simd backends must measurably beat scalar
//! end-to-end, and the staged k-way matcher must beat the frozen
//! exhaustive-interp k=3 baseline ([`K3_BASELINE_MS_SINGLE`]) by ≥ 5×.
//! The recovery workload additionally asserts the lockstep-batched
//! `solve_groups` path decodes bit-identically to the per-system
//! reference path (`batch_chunk = 0`). Perf gates (never the identity
//! asserts) relax under `ZIGZAG_BENCH_RELAXED=1`;
//! `ZIGZAG_BENCH_RELAXED=threads` relaxes only the machine-parallelism
//! gates, keeping the backend and staged-matching ratio gates (the CI
//! setting). Results land in `BENCH_throughput.json` at the repo root
//! so the perf trajectory is tracked across PRs.
//!
//! The run also drives the typical-link robustness sweep
//! ([`zigzag_testbed::run_impairment_sweep`]): reclaim fractions of
//! §4.5 un-peelable groups under phase noise × SNR × timing drift,
//! single-pass solver vs the turbo preset. The turbo ≥ baseline and
//! strictly-greater-at-`DEFAULT_PHASE_NOISE` gates never relax; the
//! absolute reclaim floor relaxes with the other perf gates.
//!
//! Finally, the cell co-simulation workload: a million symbolic stations
//! through `zigzag_mac::cell` with a sampled fraction of genuine
//! collisions lowered into this receiver (thread-count identity and
//! lowered-verdict feedback gates never relax), plus the slotted-ALOHA
//! throughput curves whose ZigZag-vs-plain dominance gate relaxes with
//! the perf gates.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use std::fmt::Write as _;
use zigzag_bench::airframe;
use zigzag_channel::fading::{LinkProfile, DEFAULT_PHASE_NOISE, DEFAULT_SAMPLING_DRIFT};
use zigzag_channel::scenario::{hidden_pair, synth_collision, PlacedTx};
use zigzag_core::config::StreamConfig;
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig, RecoveryConfig, ShardConfig};
use zigzag_core::engine::{
    decode_batch, unit_seed, BatchEngine, DecodeUnit, Pipeline, ReceiverCore, ShardedReceiver,
};
use zigzag_core::receiver::DecodePath;
use zigzag_core::stream::carve_buffer;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_core::ReceiverEvent;
use zigzag_mac::cell::preset::saturation_knee;
use zigzag_mac::cell::{run_cell, symbolic_curve, CellPreset, DecodeModel, SplitResolver};
use zigzag_phy::complex::Complex;
use zigzag_phy::frame::Frame;
use zigzag_phy::kernel::BackendKind;
use zigzag_testbed::{
    continuous_air, run_impairment_sweep, ExperimentConfig, ImpairmentPoint, SetScenario,
    SignalResolver,
};

const UNITS: usize = 64;

/// The shard workload's client-set plan: four disjoint hidden pairs
/// behind one AP, every client at its own oscillator offset (that is how
/// the AP tells clients apart, §4.2.1 — and what keeps one set's
/// preambles out of another set's detections).
const SHARD_OMEGA: [f64; 8] = [-0.13, 0.14, -0.08, 0.02, 0.09, -0.18, 0.19, -0.03];
const SHARD_IDS: [[u16; 2]; 4] = [[1, 2], [3, 4], [5, 6], [7, 8]];

/// Per-set retransmission-group seeds, pre-screened (like `K3_SEEDS`) so
/// every group's pair decodes through the full receiver under the
/// 8-client registry — §5.3a false positives from *other sets'* clients
/// can otherwise leave a group stored-unmatched, which is a valid outcome
/// but a poor throughput anchor.
const SHARD_SEEDS: [[u64; 4]; 4] = [[0, 6, 11, 12], [1, 11, 16, 22], [2, 5, 9, 10], [2, 6, 16, 19]];

/// Builds the sharded-receiver workload: four disjoint client sets, four
/// retransmission groups each, interleaved round-robin into one buffer
/// stream (as the air would deliver them to one AP).
fn build_shard_stream() -> (ClientRegistry, Vec<Vec<Complex>>) {
    let link = |id: u16| LinkProfile::clean_with_omega(17.0, SHARD_OMEGA[(id - 1) as usize]);
    let mut registry = ClientRegistry::new();
    for id in 1u16..=8 {
        let l = link(id);
        registry.associate(
            id,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }
    let group = |ids: [u16; 2], seed: u64| -> [Vec<Complex>; 2] {
        let mut rng = StdRng::seed_from_u64(seed);
        let (la, lb) = (link(ids[0]), link(ids[1]));
        let a = airframe(ids[0], seed as u16, 200, 60_000 + seed * 7 + ids[0] as u64 * 101);
        let b = airframe(ids[1], seed as u16, 200, 61_000 + seed * 11 + ids[1] as u64 * 101);
        let offsets = [(420, 140), (300, 120), (420, 180), (360, 150)][seed as usize % 4];
        let hp = hidden_pair(&a, &b, &la, &lb, offsets.0, offsets.1, &mut rng);
        [hp.collision1.buffer, hp.collision2.buffer]
    };
    let mut stream = Vec::new();
    // group-major interleave: every set contributes its g-th group's two
    // collisions before any set starts group g+1, as the air would
    for g in 0..SHARD_SEEDS[0].len() {
        for (ids, seeds) in SHARD_IDS.iter().zip(SHARD_SEEDS.iter()) {
            let [c1, c2] = group(*ids, seeds[g]);
            stream.push(c1);
            stream.push(c2);
        }
    }
    (registry, stream)
}

/// Per-set equal-offset retransmission-group seeds for the recovery
/// workload, pre-screened (like `SHARD_SEEDS`) so every group's joint
/// algebraic solve recovers both frames under the 8-client registry.
const RECOVERY_SEEDS: [[u64; 2]; 4] = [[28, 43], [19, 22], [15, 29], [20, 31]];

/// Builds the algebraic-recovery workload: the shard workload's four
/// disjoint client sets, but every retransmission pair collides at
/// **identical** relative offsets (§4.5's Δ₁ = Δ₂ failure case) — the
/// zigzag-only pipeline provably decodes nothing from this stream, the
/// recovery-enabled one decodes every frame.
fn build_recovery_stream() -> (ClientRegistry, Vec<Vec<Complex>>) {
    let link = |id: u16| LinkProfile::clean_with_omega(17.0, SHARD_OMEGA[(id - 1) as usize]);
    let mut registry = ClientRegistry::new();
    for id in 1u16..=8 {
        let l = link(id);
        registry.associate(
            id,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }
    let group = |ids: [u16; 2], seed: u64| -> [Vec<Complex>; 2] {
        let mut rng = StdRng::seed_from_u64(seed);
        let (la, lb) = (link(ids[0]), link(ids[1]));
        let a = airframe(ids[0], seed as u16, 120, 80_000 + seed * 7 + ids[0] as u64 * 101);
        let b = airframe(ids[1], seed as u16, 120, 81_000 + seed * 11 + ids[1] as u64 * 101);
        let delta = 280 + 20 * (seed as usize % 3);
        let (ca, cb) = (la.draw(&mut rng), lb.draw(&mut rng));
        let mk = |rng: &mut StdRng| {
            synth_collision(
                &[
                    PlacedTx { air: &a, base: &ca, start: 0 },
                    PlacedTx { air: &b, base: &cb, start: delta },
                ],
                1.0,
                rng,
            )
            .buffer
        };
        [mk(&mut rng), mk(&mut rng)]
    };
    let mut stream = Vec::new();
    for g in 0..RECOVERY_SEEDS[0].len() {
        for (ids, seeds) in SHARD_IDS.iter().zip(RECOVERY_SEEDS.iter()) {
            let [c1, c2] = group(*ids, seeds[g]);
            stream.push(c1);
            stream.push(c2);
        }
    }
    (registry, stream)
}

/// Per-unit seeds for the k=3 workload, pre-screened so both the
/// ground-truth executor and the full receiver pipeline recover all
/// three frames (the k-way matcher is conservative by design — a
/// detection-starved set stays stored awaiting more retransmissions;
/// that path is covered by the testbed's `run_sets` tests, while this
/// bench pins the successful-decode path's identity and throughput).
const K3_SEEDS: [u64; 16] = [0, 1, 2, 3, 4, 9, 12, 14, 15, 16, 17, 18, 19, 20, 25, 26];

/// The k=3 single-thread baseline measured on the reference runner
/// *before* the staged coarse-to-fine search and cached correlation
/// footprints landed (the exhaustive interpolate-per-τ matcher). The
/// quick-mode perf gate requires the current build to beat this by ≥ 5×;
/// `ZIGZAG_BENCH_RELAXED=1` relaxes the gate (never the identity
/// asserts) for shared/noisy runners.
const K3_BASELINE_MS_SINGLE: f64 = 6338.42;
const K3_BASELINE_BUFFERS_PER_SEC: f64 = 7.6;

/// Builds the k=3 workload: per unit, three 3-sender collisions through
/// one receiver (store → store → k-way match → zigzag), plus the frames
/// the hand-driven executor recovers from the same buffers with
/// ground-truth placements.
fn build_k3_units(backend: BackendKind) -> (Vec<DecodeUnit>, Vec<Vec<Frame>>) {
    let omegas = [-0.08, 0.02, 0.09];
    let offs = [[0usize, 310, 620], [0, 620, 310], [100, 0, 450]];
    let mut units = Vec::with_capacity(K3_SEEDS.len());
    let mut expected = Vec::with_capacity(K3_SEEDS.len());
    for &seed in &K3_SEEDS {
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let links: Vec<LinkProfile> =
            (0..3).map(|i| LinkProfile::clean_with_omega(17.0, omegas[i])).collect();
        let airs: Vec<_> = (0..3)
            .map(|i| airframe(i as u16 + 1, seed as u16, 150, 90_000 + seed * 7 + i as u64))
            .collect();
        let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();
        let buffers: Vec<_> = offs
            .iter()
            .map(|o| {
                let placed: Vec<PlacedTx<'_>> = (0..3)
                    .map(|i| PlacedTx { air: &airs[i], base: &chans[i], start: o[i] })
                    .collect();
                synth_collision(&placed, 1.0, &mut rng).buffer
            })
            .collect();
        let registry =
            zigzag_testbed::registry_for(&[(1, &links[0]), (2, &links[1]), (3, &links[2])]);
        let dec = ZigzagDecoder::new(DecoderConfig::with_backend(backend), &registry);
        let specs: Vec<CollisionSpec<'_>> = buffers
            .iter()
            .zip(offs.iter())
            .map(|(b, o)| CollisionSpec {
                buffer: b,
                placements: (0..3).map(|i| (i, o[i])).collect(),
            })
            .collect();
        let out = dec.decode(
            &specs,
            &[PacketSpec { client: 1 }, PacketSpec { client: 2 }, PacketSpec { client: 3 }],
        );
        expected.push(out.packets.into_iter().filter_map(|p| p.frame).collect());
        units.push(DecodeUnit { cfg: DecoderConfig::with_backend(backend), registry, buffers });
    }
    (units, expected)
}

/// Builds 64 independent hidden-terminal work units on the given kernel
/// backend: each is a fresh receiver fed the two collisions of one
/// retransmission pair (store → match → zigzag), i.e. 128 collision
/// buffers in total. The signal content is identical across backends.
fn build_units(backend: BackendKind) -> Vec<DecodeUnit> {
    (0..UNITS)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(unit_seed(2008, i));
            let la = LinkProfile::typical(16.0, &mut rng);
            let lb = LinkProfile::typical(16.0, &mut rng);
            let a = airframe(1, i as u16, 200, 10_000 + i as u64);
            let b = airframe(2, i as u16, 200, 20_000 + i as u64);
            let d1 = 200 + 10 * (i % 12);
            let d2 = 60 + 10 * (i % 5);
            let hp = hidden_pair(&a, &b, &la, &lb, d1, d2, &mut rng);
            let registry = zigzag_testbed::registry_for(&[(1, &la), (2, &lb)]);
            DecodeUnit {
                cfg: DecoderConfig::with_backend(backend),
                registry,
                buffers: vec![hp.collision1.buffer, hp.collision2.buffer],
            }
        })
        .collect()
}

fn bench_batch_decode(c: &mut Criterion) {
    let single = BatchEngine::single_threaded();
    let multi = BatchEngine::new(0);
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut events_by_backend = Vec::new();
    let mut n_buffers = 0;

    for backend in [BackendKind::Scalar, BackendKind::Optimized, BackendKind::Simd] {
        let units = build_units(backend);
        n_buffers = units.iter().map(|u| u.buffers.len()).sum();
        println!(
            "batch[{}]: {UNITS} work units / {n_buffers} collision buffers; multi = {} threads",
            backend.name(),
            multi.threads()
        );
        for (engine_name, engine) in [("single_thread", &single), ("multi_thread", &multi)] {
            let name = format!("batch_decode_{engine_name}/{}", backend.name());
            c.bench_function(&name, |b| b.iter(|| decode_batch(engine, &units)));
            // the compat criterion reports the median ns/iter of the run
            // it just timed — no extra passes needed
            timings.push((name, c.last_ns));
        }
        // --- determinism across thread counts (per backend) ---
        let events_single = decode_batch(&single, &units);
        let events_multi = decode_batch(&multi, &units);
        assert_eq!(
            events_single,
            events_multi,
            "[{}] multi-threaded decode must be bit-identical to single-threaded",
            backend.name()
        );
        events_by_backend.push(events_single);
    }

    // --- determinism across kernel backends ---
    assert_eq!(
        events_by_backend[0], events_by_backend[1],
        "scalar and optimized kernel backends must produce identical decode events"
    );
    assert_eq!(
        events_by_backend[0], events_by_backend[2],
        "scalar and simd kernel backends must produce identical decode events"
    );
    let delivered: usize = events_by_backend[0]
        .iter()
        .flat_map(|ev| ev.iter())
        .filter(|e| matches!(e, zigzag_core::ReceiverEvent::Delivered { .. }))
        .count();

    // --- k=3 workload: 3-sender/3-collision sets through the pipeline ---
    let (k3_units, k3_expected) = build_k3_units(BackendKind::Optimized);
    let k3_buffers: usize = k3_units.iter().map(|u| u.buffers.len()).sum();
    println!("batch[k3]: {} work units / {k3_buffers} collision buffers", k3_units.len());
    for (engine_name, engine) in [("single_thread", &single), ("multi_thread", &multi)] {
        let name = format!("batch_decode_k3_{engine_name}/optimized");
        c.bench_function(&name, |b| b.iter(|| decode_batch(engine, &k3_units)));
        timings.push((name, c.last_ns));
    }
    // identity gates: thread counts agree, and the pipeline's k-way
    // zigzag deliveries equal the hand-driven executor's recoveries
    let k3_events = decode_batch(&single, &k3_units);
    assert_eq!(
        k3_events,
        decode_batch(&multi, &k3_units),
        "[k3] multi-threaded decode must be bit-identical to single-threaded"
    );
    let mut k3_delivered = 0usize;
    for (i, (events, expected)) in k3_events.iter().zip(k3_expected.iter()).enumerate() {
        let got: Vec<&Frame> = events
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Delivered { frame, path: DecodePath::Zigzag } => Some(frame),
                _ => None,
            })
            .collect();
        assert_eq!(got.len(), expected.len(), "k3 unit {i}: pipeline/executor frame count");
        for f in expected {
            assert!(got.contains(&f), "k3 unit {i}: pipeline missed an executor-decoded frame");
        }
        k3_delivered += got.len();
    }
    println!(
        "k3: {k3_delivered} frames via the k-way store/match path, identical to the executor path"
    );
    // backend identity on the k=3 workload: the staged matcher's store,
    // footprint cache and early abandonment must not let the backends
    // diverge by a single decode event
    let (k3_scalar_units, _) = build_k3_units(BackendKind::Scalar);
    assert_eq!(
        k3_events,
        decode_batch(&single, &k3_scalar_units),
        "[k3] scalar and optimized kernel backends must produce identical decode events"
    );
    let (k3_simd_units, _) = build_k3_units(BackendKind::Simd);
    assert_eq!(
        k3_events,
        decode_batch(&single, &k3_simd_units),
        "[k3] simd and optimized kernel backends must produce identical decode events"
    );

    // --- shard workload: one AP, four disjoint client sets, sharded ---
    let (shard_registry, shard_stream) = build_shard_stream();
    // The multi-set stream runs the shared-AP config (windowed client-set
    // keys); the k3 identity check keeps the default config its units were
    // pre-screened with. Identity only needs both sides to agree.
    let run_single = |cfg: &DecoderConfig, registry: &ClientRegistry, stream: &[Vec<Complex>]| {
        let pipeline = Pipeline::standard();
        let mut core = ReceiverCore::new(cfg.clone(), registry.clone());
        stream.iter().map(|b| core.receive(&pipeline, b)).collect::<Vec<_>>()
    };
    let run_sharded =
        |cfg: &DecoderConfig, registry: &ClientRegistry, stream: &[Vec<Complex>], shards: usize| {
            let mut rx = ShardedReceiver::new(
                cfg.clone(),
                ShardConfig { shards, queue_depth: 8 },
                registry.clone(),
            );
            rx.process_batch(stream)
        };
    let shared_cfg = DecoderConfig::shared_ap();
    println!(
        "shard: {} buffers / {} client sets through one AP; {} shards",
        shard_stream.len(),
        SHARD_IDS.len(),
        multi.threads()
    );
    c.bench_function("shard_single_core", |b| {
        b.iter(|| run_single(&shared_cfg, &shard_registry, &shard_stream))
    });
    timings.push(("shard_single_core".into(), c.last_ns));
    c.bench_function("shard_sharded", |b| {
        b.iter(|| run_sharded(&shared_cfg, &shard_registry, &shard_stream, 0))
    });
    timings.push(("shard_sharded".into(), c.last_ns));

    // Identity gates: the sharded receiver's merged event stream equals
    // the single ReceiverCore's at 1, 2, and 4 shards — on the k=2
    // multi-set stream, and on the k=3 workload under BOTH kernel
    // backends (each k3 unit is one 3-client set; its buffers all route
    // to one shard — the degenerate case, which must still be exact).
    let shard_reference = run_single(&shared_cfg, &shard_registry, &shard_stream);
    for shards in [1, 2, 4] {
        assert_eq!(
            shard_reference,
            run_sharded(&shared_cfg, &shard_registry, &shard_stream, shards),
            "sharded decode at {shards} shards must be bit-identical to a single ReceiverCore"
        );
    }
    for unit in k3_units.iter().take(4).chain(k3_scalar_units.iter().take(4)) {
        let reference = run_single(&unit.cfg, &unit.registry, &unit.buffers);
        for shards in [1, 2, 4] {
            assert_eq!(
                reference,
                run_sharded(&unit.cfg, &unit.registry, &unit.buffers, shards),
                "[k3/{}] sharded decode at {shards} shards must be bit-identical",
                unit.cfg.backend.name()
            );
        }
    }
    let shard_delivered = shard_reference
        .iter()
        .flatten()
        .filter(|e| matches!(e, ReceiverEvent::Delivered { .. }))
        .count();
    println!(
        "shard: {shard_delivered} frames delivered, identical across 1/2/4 shards and the single core"
    );

    // --- recovery workload: equal-offset collision groups (Δ₁ = Δ₂) ---
    // The stream the zigzag-only receiver provably cannot decode; the
    // algebraic batch-recovery path must decode ALL of it, identically
    // at 1/2/4 shards and on a single core.
    let (rec_registry, rec_stream) = build_recovery_stream();
    let rec_cfg = DecoderConfig {
        key_window: 1024,
        recovery: RecoveryConfig::on(),
        ..DecoderConfig::default()
    };
    println!(
        "recovery: {} buffers / {} client sets of equal-offset collisions",
        rec_stream.len(),
        SHARD_IDS.len()
    );
    c.bench_function("recovery_single_core", |b| {
        b.iter(|| run_single(&rec_cfg, &rec_registry, &rec_stream))
    });
    timings.push(("recovery_single_core".into(), c.last_ns));

    // capability gate: zigzag-only delivers nothing from this stream
    let zigzag_only = run_single(&shared_cfg, &rec_registry, &rec_stream);
    let zigzag_only_delivered = zigzag_only
        .iter()
        .flatten()
        .filter(|e| matches!(e, ReceiverEvent::Delivered { .. }))
        .count();
    assert_eq!(
        zigzag_only_delivered, 0,
        "the equal-offset stream must be undecodable without recovery"
    );
    // identity gates: recovered frames are CRC-gated, recovered-path-
    // tagged, and bit-identical across 1/2/4 shards
    let rec_reference = run_single(&rec_cfg, &rec_registry, &rec_stream);
    let recovery_delivered = rec_reference
        .iter()
        .flatten()
        .filter(|e| matches!(e, ReceiverEvent::Delivered { path: DecodePath::Recovered, .. }))
        .count();
    assert_eq!(
        recovery_delivered,
        rec_stream.len(),
        "every pre-screened group must recover both frames"
    );
    for shards in [1, 2, 4] {
        assert_eq!(
            rec_reference,
            run_sharded(&rec_cfg, &rec_registry, &rec_stream, shards),
            "recovery decode at {shards} shards must be bit-identical to a single ReceiverCore"
        );
    }
    // batched-vs-per-system identity: the lockstep `lstsq_batch` dispatch
    // (the default `batch_chunk`) must not perturb a single recovery
    // decision relative to the per-system reference solve path
    let rec_per_system = DecoderConfig {
        recovery: RecoveryConfig { batch_chunk: 0, ..rec_cfg.recovery.clone() },
        ..rec_cfg.clone()
    };
    assert_eq!(
        rec_reference,
        run_single(&rec_per_system, &rec_registry, &rec_stream),
        "lockstep-batched solve_groups must be bit-identical to the per-system path"
    );
    println!(
        "recovery: {recovery_delivered} frames decoded that the zigzag-only pipeline cannot ({zigzag_only_delivered}), identical across 1/2/4 shards"
    );

    // --- soak workload: one continuous air through the stream front end ---
    // Sustained stream decode: collision bursts spliced into noise,
    // ingested chunk-by-chunk through `process_stream` with end-to-end
    // backpressure. Identity gate (never relaxed): the stream events must
    // be bit-identical to pre-cutting the air with `carve_buffer` and
    // batch-decoding the regions — across 1/2/4 shards, and at
    // queue_depth = 1 with backpressure engaged and zero drops.
    let soak_scenario = SetScenario {
        links: vec![
            LinkProfile::clean_with_omega(17.0, -0.13),
            LinkProfile::clean_with_omega(17.0, 0.14),
        ],
        p_sense: 0.0,
        seed: 7,
    };
    let soak_exp = ExperimentConfig { payload: 200, ..Default::default() };
    let soak_air = continuous_air(&soak_scenario, &soak_exp, 8, 5000);
    let stream_cfg = StreamConfig::default();
    let soak_regions =
        carve_buffer(&soak_air.samples, &shared_cfg, &soak_air.registry, &stream_cfg);
    assert_eq!(soak_regions.len(), soak_air.bursts, "gap > max_packet ⇒ one region per burst");
    let soak_buffers: Vec<Vec<Complex>> = soak_regions.iter().map(|r| r.samples.clone()).collect();
    let soak_precut = run_single(&shared_cfg, &soak_air.registry, &soak_buffers);
    println!(
        "soak: {} samples of continuous air, {} collision bursts",
        soak_air.samples.len(),
        soak_air.bursts
    );
    let run_stream = |shards: usize, depth: usize| {
        let mut rx = ShardedReceiver::new(
            shared_cfg.clone(),
            ShardConfig { shards, queue_depth: depth },
            soak_air.registry.clone(),
        );
        rx.process_stream(&stream_cfg, |src| {
            for chunk in soak_air.samples.chunks(4096) {
                src.push_samples(chunk);
            }
        })
    };
    for (shards, depth) in [(1, 8), (2, 8), (4, 8), (2, 1)] {
        let out = run_stream(shards, depth);
        assert_eq!(
            out.stats.samples,
            soak_air.samples.len() as u64,
            "soak[{shards}x{depth}]: every pushed sample must be accepted (zero drops)"
        );
        assert_eq!(
            out.events(),
            soak_precut,
            "soak[{shards}x{depth}]: stream events must be bit-identical to pre-cut decode"
        );
    }
    let mut soak_rx = ShardedReceiver::new(
        shared_cfg.clone(),
        ShardConfig { shards: 0, queue_depth: 8 },
        soak_air.registry.clone(),
    );
    c.bench_function("soak_stream", |b| {
        b.iter(|| {
            soak_rx.reset_history();
            soak_rx.process_stream(&stream_cfg, |src| {
                for chunk in soak_air.samples.chunks(4096) {
                    src.push_samples(chunk);
                }
            })
        })
    });
    timings.push(("soak_stream".into(), c.last_ns));
    let soak_ms = c.last_ns / 1e6;
    // telemetry from one representative run: p99 shard-queue latency and
    // backpressure counters
    soak_rx.reset_history();
    let soak_out = soak_rx.process_stream(&stream_cfg, |src| {
        for chunk in soak_air.samples.chunks(4096) {
            src.push_samples(chunk);
        }
    });
    let mut waits: Vec<u64> = soak_out.regions.iter().map(|r| r.queue_wait_ns).collect();
    waits.sort_unstable();
    let p99_wait_ns =
        waits.get((waits.len() * 99).div_ceil(100).saturating_sub(1)).copied().unwrap_or(0);
    let soak_samples_per_sec = soak_air.samples.len() as f64 / (soak_ms / 1e3);
    println!(
        "soak: {:.1} buffers/s, {:.2} Msamples/s, p99 queue wait {:.1} us, source stalls {}, ring high water {}",
        soak_air.bursts as f64 / (soak_ms / 1e3),
        soak_samples_per_sec / 1e6,
        p99_wait_ns as f64 / 1e3,
        soak_out.stats.source_stalls,
        soak_out.stats.ring_high_water
    );

    // --- robustness sweep: §4.5 un-peelable groups on impaired links ---
    // Reclaim-fraction curve over phase-noise class × SNR × timing-drift
    // points, single-pass solver (`RecoveryConfig::on`) vs the turbo
    // preset (`RecoveryConfig::robust`). Tracked in BENCH_throughput.json
    // so the robustness trajectory is visible across PRs.
    let sweep_points = [
        ImpairmentPoint { phase_noise: 0.0, snr_db: 17.0, sampling_drift: 0.0 },
        ImpairmentPoint {
            phase_noise: DEFAULT_PHASE_NOISE / 2.0,
            snr_db: 16.0,
            sampling_drift: DEFAULT_SAMPLING_DRIFT / 2.0,
        },
        ImpairmentPoint {
            phase_noise: DEFAULT_PHASE_NOISE,
            snr_db: 15.0,
            sampling_drift: DEFAULT_SAMPLING_DRIFT,
        },
        ImpairmentPoint {
            phase_noise: 2.0 * DEFAULT_PHASE_NOISE,
            snr_db: 13.0,
            sampling_drift: 2.0 * DEFAULT_SAMPLING_DRIFT,
        },
    ];
    const SWEEP_SEEDS: [u64; 3] = [41, 42, 43];
    const SWEEP_SENDERS: usize = 2;
    let sweep_base = ExperimentConfig {
        payload: 120,
        rounds: 6,
        decoder: DecoderConfig::with_recovery(),
        ..Default::default()
    };
    let sweep_turbo =
        ExperimentConfig { decoder: DecoderConfig::with_robust_recovery(), ..sweep_base.clone() };
    let curve = run_impairment_sweep(
        &multi,
        &sweep_points,
        SWEEP_SENDERS,
        &SWEEP_SEEDS,
        &sweep_base,
        &sweep_turbo,
    );
    for cell in &curve {
        println!(
            "robustness: phase_noise={:.3} snr={:.0}dB drift={:.1e}  baseline {}/{} ({:.2})  turbo {}/{} ({:.2})",
            cell.point.phase_noise,
            cell.point.snr_db,
            cell.point.sampling_drift,
            cell.baseline_delivered,
            cell.offered,
            cell.baseline_fraction(),
            cell.turbo_delivered,
            cell.offered,
            cell.turbo_fraction(),
        );
    }
    // capability gates (like the identity asserts, never relaxed): the
    // turbo preset must never reclaim less anywhere on the curve, must
    // leave the benign point unchanged, and must reclaim strictly more
    // at the DEFAULT_PHASE_NOISE (typical-link) class
    for cell in &curve {
        assert!(
            cell.turbo_delivered >= cell.baseline_delivered,
            "turbo recovery must never reclaim less than the single-pass solver: {cell:?}"
        );
    }
    assert_eq!(
        curve[0].turbo_delivered, curve[0].baseline_delivered,
        "benign-link reclaim must be unchanged by the robust preset: {:?}",
        curve[0]
    );
    assert!(
        curve[2].turbo_delivered > curve[2].baseline_delivered,
        "turbo recovery must reclaim strictly more at the typical phase-noise class: {:?}",
        curve[2]
    );

    // --- cell co-simulation: a million symbolic stations over one AP grid ---
    // The cell-scale MAC co-simulator (`zigzag_mac::cell`): arrivals,
    // sensing, backoff and clean receptions stay symbolic; a sampled
    // fraction of genuine collision episodes lowers to synthesized IQ and
    // decodes through this crate's receiver via the testbed's
    // `SignalResolver`. Identity gates (never relaxed): the run replays
    // bit-identically across decode thread counts, at least one collision
    // actually lowers, and lowered verdicts reach station retry state.
    const CELL_STATIONS: u32 = 1_000_000;
    const CELL_SLOTS: u64 = 10_000;
    let cell_preset = CellPreset::DcfHidden { cells: 8, groups_per_cell: 2 };
    let cell_cfg = cell_preset.config(CELL_STATIONS, CELL_SLOTS, 0.8, 2008);
    let cell_run = |threads: usize| {
        let mut signal = SignalResolver::with_seed(2008, threads);
        let mut split =
            SplitResolver::new(DecodeModel::zigzag_ap(2008), &mut signal, 0.05, 4, 2008);
        run_cell(&cell_cfg, &mut split)
    };
    println!("cell: {CELL_STATIONS} stations, {CELL_SLOTS} slots, DCF over 8 hidden-group cells");
    c.bench_function("cell_sim_1m_dcf", |b| b.iter(|| cell_run(0)));
    timings.push(("cell_sim_1m_dcf".into(), c.last_ns));
    let cell_ms = c.last_ns / 1e6;
    let cell_multi = cell_run(0);
    let cell_single = cell_run(1);
    assert_eq!(
        cell_single.trace_hash, cell_multi.trace_hash,
        "the cell run must replay bit-identically across decode thread counts"
    );
    assert_eq!(cell_single.stats, cell_multi.stats);
    let cs = &cell_multi.stats;
    assert!(cs.lowered_rounds >= 1, "the run must lower at least one collision to IQ samples");
    assert!(
        cs.lowered_deliveries + cs.lowered_retries >= 1,
        "signal-level verdicts must be reflected in station delivery/retry state"
    );
    println!(
        "cell: {} active stations, {} offered / {} delivered / {} dropped; {} collision rounds ({} lowered: {} deliveries, {} retries), {} reap recoveries; {:.2} Mslots/s",
        cs.stations_active,
        cs.offered_frames,
        cs.delivered_frames,
        cs.dropped_frames,
        cs.collision_rounds,
        cs.lowered_rounds,
        cs.lowered_deliveries,
        cs.lowered_retries,
        cs.recovered_frames,
        CELL_SLOTS as f64 / (cell_ms / 1e3) / 1e6
    );

    // --- ALOHA throughput curves: ZigZag AP vs conventional AP ---
    // Same MAC on both sides (arXiv:1501.00976's setting); the gap is the
    // AP's pair peeling + §4.1 reap. Gated below: the ZigZag curve must
    // strictly dominate plain slotted ALOHA from the saturation knee on.
    const CELL_LOADS: [f64; 4] = [0.2, 0.5, 0.9, 1.4];
    let zz_curve =
        symbolic_curve(CellPreset::ZigzagAloha { cells: 1 }, 3_000, 3_000, &CELL_LOADS, 77);
    let plain_curve =
        symbolic_curve(CellPreset::PlainAloha { cells: 1 }, 3_000, 3_000, &CELL_LOADS, 77);
    let knee = saturation_knee(&plain_curve);
    for (z, p) in zz_curve.iter().zip(&plain_curve) {
        println!(
            "cell aloha: offered {:.1}  zigzag {:.4}  plain {:.4}{}",
            z.offered,
            z.throughput,
            p.throughput,
            if (z.offered - plain_curve[knee].offered).abs() < 1e-9 {
                "  <- plain knee"
            } else {
                ""
            }
        );
    }

    let ns = |name: &str| timings.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
    let row_buffers = |name: &str| {
        if name.contains("_k3_") {
            k3_buffers
        } else if name.starts_with("shard_") {
            shard_stream.len()
        } else if name.starts_with("recovery_") {
            rec_stream.len()
        } else if name.starts_with("soak_") {
            soak_air.bursts
        } else if name.starts_with("cell_") {
            // for the cell run the natural unit is simulated slots
            CELL_SLOTS as usize
        } else {
            n_buffers
        }
    };
    for (name, v) in &timings {
        println!(
            "{name:<42} {:>8.1} ms ({:.1} buffers/s)",
            v / 1e6,
            row_buffers(name) as f64 / (v / 1e9)
        );
    }
    let thread_speedup =
        ns("batch_decode_single_thread/optimized") / ns("batch_decode_multi_thread/optimized");
    let backend_speedup =
        ns("batch_decode_single_thread/scalar") / ns("batch_decode_single_thread/optimized");
    let simd_speedup =
        ns("batch_decode_single_thread/scalar") / ns("batch_decode_single_thread/simd");
    let combined =
        ns("batch_decode_single_thread/scalar") / ns("batch_decode_multi_thread/optimized");
    let shard_speedup = ns("shard_single_core") / ns("shard_sharded");
    let k3_ms = ns("batch_decode_k3_single_thread/optimized") / 1e6;
    let k3_speedup = K3_BASELINE_MS_SINGLE / k3_ms;
    println!(
        "speedups: threads {thread_speedup:.2}x, backend {backend_speedup:.2}x, simd {simd_speedup:.2}x, combined {combined:.2}x, shard {shard_speedup:.2}x, k3-vs-exhaustive {k3_speedup:.1}x   frames delivered: {delivered} (identical across backends and thread counts)"
    );

    // JSON perf trajectory at the repo root.
    let mut s = String::from("{\n  \"bench\": \"throughput\",\n");
    let _ = writeln!(
        s,
        "  \"units\": {UNITS},\n  \"buffers\": {n_buffers},\n  \"threads\": {},",
        multi.threads()
    );
    let _ = writeln!(s, "  \"frames_delivered\": {delivered},");
    s.push_str("  \"results\": [\n");
    for (i, (name, v)) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{name}\", \"ms\": {:.2}, \"buffers_per_sec\": {:.1}}}{comma}",
            v / 1e6,
            row_buffers(name) as f64 / (v / 1e9)
        );
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"k3\": {{\"units\": {}, \"buffers\": {k3_buffers}, \"frames_delivered\": {k3_delivered}, \"ms_single\": {:.2}, \"ms_multi\": {:.2}}},",
        k3_units.len(),
        ns("batch_decode_k3_single_thread/optimized") / 1e6,
        ns("batch_decode_k3_multi_thread/optimized") / 1e6
    );
    // perf trajectory of the k=3 matcher itself: the frozen pre-staged-
    // search baseline vs this run
    let _ = writeln!(s, "  \"k3_history\": [");
    let _ = writeln!(
        s,
        "    {{\"stage\": \"exhaustive-interp-matcher\", \"ms_single\": {K3_BASELINE_MS_SINGLE}, \"buffers_per_sec\": {K3_BASELINE_BUFFERS_PER_SEC}}},"
    );
    let _ = writeln!(
        s,
        "    {{\"stage\": \"staged-footprint-matcher\", \"ms_single\": {k3_ms:.2}, \"buffers_per_sec\": {:.1}, \"speedup\": {k3_speedup:.1}}}",
        k3_buffers as f64 / (k3_ms / 1e3)
    );
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"shard\": {{\"buffers\": {}, \"client_sets\": {}, \"shards\": {}, \"frames_delivered\": {shard_delivered}, \"ms_single_core\": {:.2}, \"ms_sharded\": {:.2}, \"speedup\": {shard_speedup:.2}}},",
        shard_stream.len(),
        SHARD_IDS.len(),
        multi.threads(),
        ns("shard_single_core") / 1e6,
        ns("shard_sharded") / 1e6
    );
    let _ = writeln!(
        s,
        "  \"recovery\": {{\"buffers\": {}, \"client_sets\": {}, \"frames_recovered\": {recovery_delivered}, \"zigzag_only_delivered\": {zigzag_only_delivered}, \"ms_single_core\": {:.2}}},",
        rec_stream.len(),
        SHARD_IDS.len(),
        ns("recovery_single_core") / 1e6
    );
    let _ = writeln!(
        s,
        "  \"soak\": {{\"samples\": {}, \"buffers\": {}, \"ms\": {soak_ms:.2}, \"buffers_per_sec\": {:.1}, \"msamples_per_sec\": {:.2}, \"p99_queue_wait_us\": {:.1}, \"source_stalls\": {}, \"ring_high_water\": {}, \"stream_equals_precut\": true}},",
        soak_air.samples.len(),
        soak_air.bursts,
        soak_air.bursts as f64 / (soak_ms / 1e3),
        soak_samples_per_sec / 1e6,
        p99_wait_ns as f64 / 1e3,
        soak_out.stats.source_stalls,
        soak_out.stats.ring_high_water
    );
    let _ = writeln!(
        s,
        "  \"robustness\": {{\"senders\": {SWEEP_SENDERS}, \"rounds\": {}, \"scenarios_per_point\": {}, \"curve\": [",
        sweep_base.rounds,
        SWEEP_SEEDS.len()
    );
    for (i, cell) in curve.iter().enumerate() {
        let comma = if i + 1 < curve.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"phase_noise\": {}, \"snr_db\": {}, \"sampling_drift\": {:.1e}, \"offered\": {}, \"baseline_reclaimed\": {}, \"turbo_reclaimed\": {}, \"baseline_fraction\": {:.3}, \"turbo_fraction\": {:.3}}}{comma}",
            cell.point.phase_noise,
            cell.point.snr_db,
            cell.point.sampling_drift,
            cell.offered,
            cell.baseline_delivered,
            cell.turbo_delivered,
            cell.baseline_fraction(),
            cell.turbo_fraction(),
        );
    }
    s.push_str("  ]},\n");
    let _ = writeln!(
        s,
        "  \"cell\": {{\"stations\": {CELL_STATIONS}, \"slots\": {CELL_SLOTS}, \"ms\": {cell_ms:.2}, \"mslots_per_sec\": {:.2}, \"stations_active\": {}, \"offered\": {}, \"delivered\": {}, \"collision_rounds\": {}, \"lowered_rounds\": {}, \"lowered_deliveries\": {}, \"lowered_retries\": {}, \"recovered_frames\": {}, \"aloha_curve\": [",
        CELL_SLOTS as f64 / (cell_ms / 1e3) / 1e6,
        cs.stations_active,
        cs.offered_frames,
        cs.delivered_frames,
        cs.collision_rounds,
        cs.lowered_rounds,
        cs.lowered_deliveries,
        cs.lowered_retries,
        cs.recovered_frames
    );
    for (i, (z, p)) in zz_curve.iter().zip(&plain_curve).enumerate() {
        let comma = if i + 1 < zz_curve.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"offered\": {:.1}, \"zigzag\": {:.4}, \"plain\": {:.4}}}{comma}",
            z.offered, z.throughput, p.throughput
        );
    }
    s.push_str("  ]},\n");
    let _ = writeln!(s, "  \"speedup_threads\": {thread_speedup:.2},");
    let _ = writeln!(s, "  \"speedup_backend\": {backend_speedup:.2},");
    let _ = writeln!(s, "  \"speedup_backend_simd\": {simd_speedup:.2},");
    let _ = writeln!(s, "  \"speedup_shard\": {shard_speedup:.2},");
    let _ = writeln!(s, "  \"speedup_combined\": {combined:.2}");
    s.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    if let Err(e) = std::fs::write(path, &s) {
        eprintln!("could not write {path}: {e}");
    }
    println!("wrote BENCH_throughput.json");

    // Hard perf gates. `ZIGZAG_BENCH_RELAXED=1` (or `all`) relaxes every
    // perf gate (never the identity asserts above); `=threads` relaxes
    // only the machine-parallelism gates (thread/shard — SMT vCPUs and
    // noisy neighbors make wall-clock parallel speedup unreliable on
    // shared CI runners) while keeping the algorithmic gates: the
    // backend ratio is measured within this run, and the staged-matching
    // gate has ~4x headroom over its 5x bar even on slow runners.
    let relax = std::env::var("ZIGZAG_BENCH_RELAXED").unwrap_or_default();
    let relax_all = matches!(relax.as_str(), "1" | "all" | "true");
    let relax_machine = !relax.is_empty();
    if !relax_all {
        assert!(
            backend_speedup >= 1.2,
            "optimized backend must measurably beat scalar end-to-end, got {backend_speedup:.2}x"
        );
        assert!(
            simd_speedup >= 1.2,
            "simd backend must measurably beat scalar end-to-end, got {simd_speedup:.2}x"
        );
        assert!(
            k3_speedup >= 5.0,
            "staged k-way matching must be >= 5x the exhaustive-interp baseline \
             ({K3_BASELINE_MS_SINGLE:.0} ms), got {k3_speedup:.2}x ({k3_ms:.0} ms)"
        );
        // robustness floor: the turbo preset must reclaim a meaningful
        // fraction of the typical-link cell (measured 0.17 at landing);
        // the strictly-greater-than-baseline gate above never relaxes
        assert!(
            curve[2].turbo_fraction() >= 0.15,
            "turbo reclaim fraction at the typical phase-noise class fell below the floor: {:?}",
            curve[2]
        );
        // cell throughput-curve sanity: ZigZag-enhanced slotted ALOHA
        // must strictly dominate the plain baseline from the plain
        // curve's saturation knee on — the network-level payoff the
        // paper (and arXiv:1501.00976) promise from collision decoding
        for i in knee..zz_curve.len() {
            assert!(
                zz_curve[i].throughput > plain_curve[i].throughput,
                "ZigZag ALOHA must strictly beat plain at offered load {:.1} \
                 (got {:.4} vs {:.4})",
                zz_curve[i].offered,
                zz_curve[i].throughput,
                plain_curve[i].throughput
            );
        }
    }
    if !relax_machine && multi.threads() >= 4 {
        assert!(
            thread_speedup >= 2.0,
            "multi-threaded BatchEngine must be >= 2x single-threaded on {} threads, got {thread_speedup:.2}x",
            multi.threads()
        );
        assert!(
            shard_speedup >= 1.5,
            "ShardedReceiver must be >= 1.5x a single ReceiverCore on {} shards, got {shard_speedup:.2}x",
            multi.threads()
        );
    }
}

criterion_group!(benches, bench_batch_decode);
criterion_main!(benches);
