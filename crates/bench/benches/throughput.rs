//! Batched decode throughput: buffers decoded/sec through the
//! `BatchEngine`, single- vs multi-threaded, on a batch of 64 independent
//! hidden-terminal work units (128 collision buffers).
//!
//! This is the perf anchor for the engine refactor: the multi-threaded
//! engine must beat the single-threaded path by ≥ 2× on this batch while
//! producing byte-identical decode results at every thread count (both
//! checked at the end of the run; the run fails loudly otherwise).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use std::time::Instant;
use zigzag_bench::airframe;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::hidden_pair;
use zigzag_core::config::DecoderConfig;
use zigzag_core::engine::{decode_batch, unit_seed, BatchEngine, DecodeUnit};

const UNITS: usize = 64;

/// Builds 64 independent hidden-terminal work units: each is a fresh
/// receiver fed the two collisions of one retransmission pair (store →
/// match → zigzag), i.e. 128 collision buffers in total.
fn build_units() -> Vec<DecodeUnit> {
    (0..UNITS)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(unit_seed(2008, i));
            let la = LinkProfile::typical(16.0, &mut rng);
            let lb = LinkProfile::typical(16.0, &mut rng);
            let a = airframe(1, i as u16, 200, 10_000 + i as u64);
            let b = airframe(2, i as u16, 200, 20_000 + i as u64);
            let d1 = 200 + 10 * (i % 12);
            let d2 = 60 + 10 * (i % 5);
            let hp = hidden_pair(&a, &b, &la, &lb, d1, d2, &mut rng);
            let registry = zigzag_testbed::registry_for(&[(1, &la), (2, &lb)]);
            DecodeUnit {
                cfg: DecoderConfig::default(),
                registry,
                buffers: vec![hp.collision1.buffer, hp.collision2.buffer],
            }
        })
        .collect()
}

fn bench_batch_decode(c: &mut Criterion) {
    let units = build_units();
    let n_buffers: usize = units.iter().map(|u| u.buffers.len()).sum();
    let single = BatchEngine::single_threaded();
    let multi = BatchEngine::new(0);
    println!(
        "batch: {UNITS} work units / {n_buffers} collision buffers; multi = {} threads",
        multi.threads()
    );

    c.bench_function("batch_decode_single_thread", |b| b.iter(|| decode_batch(&single, &units)));
    c.bench_function("batch_decode_multi_thread", |b| b.iter(|| decode_batch(&multi, &units)));

    // Speedup from median-of-3 timed passes per engine (plain std timing,
    // portable to real criterion) — less noise-sensitive than one pass.
    let median_ns = |engine: &BatchEngine| {
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(decode_batch(engine, &units));
                t.elapsed().as_nanos() as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[1]
    };
    let ns_single = median_ns(&single);
    let ns_multi = median_ns(&multi);

    // --- determinism check ---
    let events_single = decode_batch(&single, &units);
    let events_multi = decode_batch(&multi, &units);
    assert_eq!(
        events_single, events_multi,
        "multi-threaded decode must be bit-identical to single-threaded"
    );
    let delivered: usize = events_single
        .iter()
        .flat_map(|ev| ev.iter())
        .filter(|e| matches!(e, zigzag_core::ReceiverEvent::Delivered { .. }))
        .count();
    let speedup = ns_single / ns_multi;
    println!(
        "single: {:>8.1} ms ({:.1} buffers/s)   multi: {:>8.1} ms ({:.1} buffers/s)",
        ns_single / 1e6,
        n_buffers as f64 / (ns_single / 1e9),
        ns_multi / 1e6,
        n_buffers as f64 / (ns_multi / 1e9),
    );
    println!(
        "speedup: {speedup:.2}x   frames delivered: {delivered} (identical across thread counts)"
    );
    // Hard perf gate for dedicated hardware with real parallelism; shared
    // CI runners (SMT vCPUs, noisy neighbors) set ZIGZAG_BENCH_RELAXED=1
    // and rely on the determinism assert above.
    let relaxed = std::env::var_os("ZIGZAG_BENCH_RELAXED").is_some();
    if multi.threads() >= 4 && !relaxed {
        assert!(
            speedup >= 2.0,
            "multi-threaded BatchEngine must be >= 2x single-threaded on {} threads, got {speedup:.2}x",
            multi.threads()
        );
    }
}

criterion_group!(benches, bench_batch_decode);
criterion_main!(benches);
