//! Criterion benches of the receiver's hot phy primitives, run on all
//! three kernel backends (`zigzag_phy::kernel`): the sliding correlation
//! scan, FIR filtering, windowed-sinc resampling, MRC combining and the
//! §4.2.2 match metric (raw and footprint-backed), plus the equalizer
//! design and Viterbi decoding baselines. These quantify the
//! per-buffer detection cost the §4.6 complexity discussion treats as
//! "typical functionality".
//!
//! Besides timing, this bench is a regression gate: each primitive's
//! outputs are checked against the scalar reference (within 1e-9) on
//! the bench inputs, the optimized correlation scan must be ≥ 3× the
//! scalar one on buffers ≥ 4096 samples (the dominant detect cost), and
//! the explicit-SIMD backend must beat optimized ≥ 1.5× on at least two
//! primitive benches. Set `ZIGZAG_BENCH_RELAXED=1` to relax the perf
//! gates (shared CI runners); the equivalence assertions always run.
//! Results are written to `BENCH_phy.json` at the repo root so the perf
//! trajectory is tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use std::fmt::Write as _;
use zigzag_phy::coding;
use zigzag_phy::complex::Complex;
use zigzag_phy::equalize::{design_inverse, estimate_channel_taps};
use zigzag_phy::filter::Fir;
use zigzag_phy::kernel::{BackendKind, CorrFootprint, Kernel, MatchScore};
use zigzag_phy::preamble::Preamble;

const BACKENDS: [BackendKind; 3] = [BackendKind::Scalar, BackendKind::Optimized, BackendKind::Simd];

fn noise(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

/// Checks every fast backend's bench output against the scalar
/// reference (`outputs[0]`), within 1e-9. Always runs, even when the
/// perf gates are relaxed.
fn assert_equivalent(outputs: &[Vec<Complex>], what: &str) {
    let a = &outputs[0];
    for (fast, kind) in outputs[1..].iter().zip(&BACKENDS[1..]) {
        assert_eq!(a.len(), fast.len(), "{what}: backend output lengths differ");
        for (k, (x, y)) in a.iter().zip(fast.iter()).enumerate() {
            assert!(
                (*x - *y).abs() < 1e-9,
                "{what}[{k}]: scalar {x:?} vs {} {y:?} — backend regression",
                kind.name()
            );
        }
    }
}

/// Timing results collected across the benches, flushed to JSON at the
/// end of the run.
struct Results {
    entries: Vec<(String, f64)>,
}

impl Results {
    fn record(&mut self, name: &str, ns: f64) {
        self.entries.push((name.to_string(), ns));
    }

    fn ns(&self, name: &str) -> Option<f64> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, ns)| *ns)
    }

    fn write_json(&self, path: &str) {
        let mut s = String::from("{\n  \"bench\": \"primitives\",\n  \"results\": [\n");
        for (i, (name, ns)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(s, "    {{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}}}{comma}");
        }
        s.push_str("  ],\n  \"speedups\": {\n");
        // one column per fast backend: speedup vs the scalar reference
        let rows: Vec<(String, Vec<(String, f64)>)> = self
            .entries
            .iter()
            .filter(|(n, _)| n.ends_with("/scalar"))
            .map(|(n, scalar_ns)| {
                let base = n.trim_end_matches("/scalar");
                let cols = BACKENDS[1..]
                    .iter()
                    .filter_map(|kind| {
                        self.ns(&format!("{base}/{}", kind.name()))
                            .map(|ns| (kind.name().to_string(), scalar_ns / ns))
                    })
                    .collect();
                (base.to_string(), cols)
            })
            .collect();
        for (i, (base, cols)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let inner: Vec<String> =
                cols.iter().map(|(name, sp)| format!("\"{name}\": {sp:.2}")).collect();
            let _ = writeln!(s, "    \"{base}\": {{{}}}{comma}", inner.join(", "));
        }
        s.push_str("  }\n}\n");
        if let Err(e) = std::fs::write(path, &s) {
            eprintln!("could not write {path}: {e}");
        }
    }
}

fn bench_correlation(c: &mut Criterion, r: &mut Results) {
    let p = Preamble::default_len();
    for n in [4096usize, 16384] {
        let buf = noise(n, 1);
        let mut outputs: Vec<Vec<Complex>> = Vec::new();
        for kind in BACKENDS {
            let mut kernel = Kernel::new(kind);
            let mut out = Vec::new();
            let name = format!("scan_into_{n}/{}", kind.name());
            c.bench_function(&name, |b| {
                b.iter(|| {
                    kernel.scan_into(&buf, p.symbols(), 0.01, 0..buf.len(), &mut out);
                    out.last().copied()
                })
            });
            r.record(&name, c.last_ns);
            kernel.scan_into(&buf, p.symbols(), 0.01, 0..buf.len(), &mut out);
            outputs.push(out.clone());
        }
        assert_equivalent(&outputs, &format!("scan_into_{n}"));
    }
}

fn bench_fir(c: &mut Criterion, r: &mut Results) {
    let buf = noise(4096, 2);
    let fir = Fir::new(
        vec![
            Complex::new(0.05, 0.01),
            Complex::new(0.12, -0.03),
            Complex::real(1.0),
            Complex::new(0.2, 0.05),
            Complex::new(0.07, -0.02),
        ],
        2,
    );
    let mut outputs: Vec<Vec<Complex>> = Vec::new();
    for kind in BACKENDS {
        let mut kernel = Kernel::new(kind);
        let mut out = Vec::new();
        let name = format!("fir_apply_4096_5tap/{}", kind.name());
        c.bench_function(&name, |b| {
            b.iter(|| {
                kernel.fir_apply_into(&fir, &buf, &mut out);
                out.last().copied()
            })
        });
        r.record(&name, c.last_ns);
        kernel.fir_apply_into(&fir, &buf, &mut out);
        outputs.push(out.clone());
    }
    assert_equivalent(&outputs, "fir_apply_4096_5tap");
}

fn bench_resample(c: &mut Criterion, r: &mut Results) {
    let buf = noise(4096, 3);
    let mut outputs: Vec<Vec<Complex>> = Vec::new();
    for kind in BACKENDS {
        let mut kernel = Kernel::new(kind);
        let mut out = Vec::new();
        let name = format!("resample_4096_mu037/{}", kind.name());
        c.bench_function(&name, |b| {
            b.iter(|| {
                kernel.resample_into(&buf, 0.37, 1.0, buf.len(), &mut out);
                out.last().copied()
            })
        });
        r.record(&name, c.last_ns);
        kernel.resample_into(&buf, 0.37, 1.0, buf.len(), &mut out);
        outputs.push(out.clone());
    }
    assert_equivalent(&outputs, "resample_4096_mu037");
}

fn bench_mrc(c: &mut Criterion, r: &mut Results) {
    let s1 = noise(4096, 4);
    let s2 = noise(4096, 5);
    let mut outputs: Vec<Vec<Complex>> = Vec::new();
    for kind in BACKENDS {
        let mut kernel = Kernel::new(kind);
        let mut out = Vec::new();
        let name = format!("mrc_combine_4096_x2/{}", kind.name());
        c.bench_function(&name, |b| {
            b.iter(|| {
                kernel.combine_weighted_into(&[(&s1, 2.0), (&s2, 0.7)], &mut out);
                out.last().copied()
            })
        });
        r.record(&name, c.last_ns);
        kernel.combine_weighted_into(&[(&s1, 2.0), (&s2, 0.7)], &mut out);
        outputs.push(out.clone());
    }
    assert_equivalent(&outputs, "mrc_combine_4096_x2");
}

/// The §4.2.2 match metric at the matcher's production shape: a
/// 512-sample window swept over τ ∈ [−1, 1] at 0.25 steps, raw-buffer
/// and footprint-backed, on both backends. `buf_b` is a shifted, phase-
/// rotated, noisy copy of `buf_a` so the metric is a realistic match
/// (≈ the threshold regime the funnel operates in), not a noise floor.
fn bench_matching(c: &mut Criterion, r: &mut Results) {
    let window = 512usize;
    let buf_a = noise(4096, 6);
    let mut rng = StdRng::seed_from_u64(7);
    let rot = Complex::cis(0.4);
    let buf_b: Vec<Complex> = (0..4096)
        .map(|k| {
            let src = if k >= 32 { buf_a[k - 32] } else { Complex::default() };
            src * rot + Complex::new(rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2))
        })
        .collect();
    let (p, q) = (100usize, 132usize); // aligned spans (32-sample shift)
    let mut fp = CorrFootprint::default();
    Kernel::new(BackendKind::Optimized).ensure_footprint(&mut fp, &buf_b, 0.25, &mut Vec::new);
    let mut raw_scores: Vec<MatchScore> = Vec::new();
    let mut fp_scores: Vec<MatchScore> = Vec::new();
    for kind in BACKENDS {
        let mut kernel = Kernel::new(kind);
        let name = format!("match_score_{window}/{}", kind.name());
        c.bench_function(&name, |b| {
            b.iter(|| kernel.match_score(&buf_a, p, &buf_b, q, window, 0.25, None).metric)
        });
        r.record(&name, c.last_ns);
        raw_scores.push(kernel.match_score(&buf_a, p, &buf_b, q, window, 0.25, None));

        let name = format!("match_score_fp_{window}/{}", kind.name());
        c.bench_function(&name, |b| {
            b.iter(|| kernel.match_score_fp(&buf_a, p, &fp, q, window, 0.25, None).metric)
        });
        r.record(&name, c.last_ns);
        fp_scores.push(kernel.match_score_fp(&buf_a, p, &fp, q, window, 0.25, None));
    }
    for (what, scores) in [("match_score", &raw_scores), ("match_score_fp", &fp_scores)] {
        for (fast, kind) in scores[1..].iter().zip(&BACKENDS[1..]) {
            assert!(
                (scores[0].metric - fast.metric).abs() < 1e-9
                    && (scores[0].tau - fast.tau).abs() < 0.25 + 1e-9,
                "{what}: scalar {:?} vs {} {:?} — backend regression",
                scores[0],
                kind.name(),
                fast
            );
        }
    }
    assert!(
        raw_scores[0].metric > 0.5,
        "bench operands must be a genuine match, got {}",
        raw_scores[0].metric
    );
    assert!(
        (raw_scores[0].metric - fp_scores[0].metric).abs() < 1e-9,
        "footprint path diverged from raw: {} vs {}",
        raw_scores[0].metric,
        fp_scores[0].metric
    );
}

fn bench_equalizer(c: &mut Criterion, r: &mut Results) {
    let p = Preamble::standard(64);
    let ch =
        Fir::new(vec![Complex::new(0.1, 0.02), Complex::real(1.0), Complex::new(0.2, -0.05)], 1);
    let rx = ch.apply(p.symbols());
    c.bench_function("channel_estimate_plus_inverse", |b| {
        b.iter(|| {
            let taps = estimate_channel_taps(&rx, p.symbols(), 5, 2).unwrap();
            design_inverse(&taps, 11).unwrap()
        })
    });
    r.record("channel_estimate_plus_inverse", c.last_ns);
}

fn bench_viterbi(c: &mut Criterion, r: &mut Results) {
    let mut rng = StdRng::seed_from_u64(3);
    let bits: Vec<u8> = (0..1024).map(|_| rng.gen_range(0..2u8)).collect();
    let coded = coding::encode(&bits);
    c.bench_function("viterbi_decode_1024", |b| b.iter(|| coding::decode_hard(&coded)));
    r.record("viterbi_decode_1024", c.last_ns);
}

fn run(c: &mut Criterion) {
    let mut r = Results { entries: Vec::new() };
    bench_correlation(c, &mut r);
    bench_fir(c, &mut r);
    bench_resample(c, &mut r);
    bench_mrc(c, &mut r);
    bench_matching(c, &mut r);
    bench_equalizer(c, &mut r);
    bench_viterbi(c, &mut r);

    for n in [4096usize, 16384] {
        let scalar = r.ns(&format!("scan_into_{n}/scalar")).unwrap();
        let optimized = r.ns(&format!("scan_into_{n}/optimized")).unwrap();
        let speedup = scalar / optimized;
        println!("scan_into_{n}: optimized {speedup:.1}x scalar");
        // The acceptance gate: the dominant detect cost must be >= 3x on
        // buffers >= 4096 samples. Shared/noisy runners relax it but keep
        // the equivalence assertions above.
        if std::env::var_os("ZIGZAG_BENCH_RELAXED").is_none() {
            assert!(
                speedup >= 3.0,
                "optimized scan_into must be >= 3x scalar on {n}-sample buffers, got {speedup:.2}x"
            );
        }
    }

    // The explicit-SIMD gate: where the autovectorized SoA backend left
    // lane-level headroom, the simd backend must claim it — >= 1.5x over
    // optimized on at least two primitive benches (on AVX2 hardware).
    // Relaxable on shared runners like the scan gate; the equivalence
    // assertions above never relax.
    let primitive_benches = [
        "scan_into_4096",
        "scan_into_16384",
        "fir_apply_4096_5tap",
        "resample_4096_mu037",
        "mrc_combine_4096_x2",
        "match_score_512",
        "match_score_fp_512",
    ];
    let mut beats = 0;
    for base in primitive_benches {
        let optimized = r.ns(&format!("{base}/optimized")).unwrap();
        let simd = r.ns(&format!("{base}/simd")).unwrap();
        let vs_opt = optimized / simd;
        println!("{base}: simd {vs_opt:.2}x optimized");
        if vs_opt >= 1.5 {
            beats += 1;
        }
    }
    if std::env::var_os("ZIGZAG_BENCH_RELAXED").is_none() {
        assert!(
            beats >= 2,
            "simd must be >= 1.5x optimized on at least 2 primitive benches, got {beats}"
        );
    }
    r.write_json(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phy.json"));
    println!("wrote BENCH_phy.json");
}

criterion_group!(benches, run);
criterion_main!(benches);
