//! Criterion benches of the receiver's hot primitives: preamble
//! correlation scan, fractional interpolation, equalizer design and
//! Viterbi decoding. These quantify the per-buffer detection cost the
//! §4.6 complexity discussion treats as "typical functionality".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use zigzag_phy::coding;
use zigzag_phy::complex::Complex;
use zigzag_phy::correlate::corr_at;
use zigzag_phy::equalize::{design_inverse, estimate_channel_taps};
use zigzag_phy::filter::Fir;
use zigzag_phy::interp::interp_at;
use zigzag_phy::preamble::Preamble;

fn noise(n: usize, seed: u64) -> Vec<Complex> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

fn bench_correlation(c: &mut Criterion) {
    let p = Preamble::default_len();
    let buf = noise(4096, 1);
    c.bench_function("correlation_scan_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for d in 0..buf.len() {
                acc += corr_at(&buf, p.symbols(), d, 0.01).abs();
            }
            acc
        })
    });
}

fn bench_interp(c: &mut Criterion) {
    let buf = noise(4096, 2);
    c.bench_function("sinc_interp_1k_points", |b| {
        b.iter(|| {
            let mut acc = Complex::default();
            for k in 0..1000 {
                acc += interp_at(&buf, 100.0 + k as f64 * 3.37);
            }
            acc
        })
    });
}

fn bench_equalizer(c: &mut Criterion) {
    let p = Preamble::standard(64);
    let ch =
        Fir::new(vec![Complex::new(0.1, 0.02), Complex::real(1.0), Complex::new(0.2, -0.05)], 1);
    let rx = ch.apply(p.symbols());
    c.bench_function("channel_estimate_plus_inverse", |b| {
        b.iter(|| {
            let taps = estimate_channel_taps(&rx, p.symbols(), 5, 2).unwrap();
            design_inverse(&taps, 11).unwrap()
        })
    });
}

fn bench_viterbi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    for n in [256usize, 1024] {
        let bits: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
        let coded = coding::encode(&bits);
        c.bench_with_input(BenchmarkId::new("viterbi_decode", n), &coded, |b, coded| {
            b.iter(|| coding::decode_hard(coded))
        });
    }
}

criterion_group!(benches, bench_correlation, bench_interp, bench_equalizer, bench_viterbi);
criterion_main!(benches);
