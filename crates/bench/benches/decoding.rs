//! Criterion benches of full decodes: the standard single-packet decoder,
//! the two-packet ZigZag executor vs payload size, and the k-sender
//! generalisation — quantifying §4.6's claim that ZigZag is linear in the
//! number of colliding senders and needs only "two decoding lines".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use zigzag_bench::{airframe, run_zigzag_pair};
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{clean_reception, synth_collision, PlacedTx};
use zigzag_core::config::DecoderConfig;
use zigzag_core::standard::decode_single;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_phy::preamble::Preamble;

fn bench_standard(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let l = LinkProfile::typical(14.0, &mut rng);
    let a = airframe(1, 1, 500, 9);
    let rx = clean_reception(&a, &l, &mut rng);
    let reg = zigzag_testbed::registry_for(&[(1, &l)]);
    c.bench_function("standard_decode_500B", |b| {
        b.iter(|| {
            decode_single(
                &rx.buffer,
                0,
                Some(1),
                &reg,
                &Preamble::default_len(),
                true,
                &DecoderConfig::default(),
            )
        })
    });
}

fn bench_zigzag_pair(c: &mut Criterion) {
    for payload in [200usize, 500, 1500] {
        c.bench_with_input(
            BenchmarkId::new("zigzag_pair_decode", payload),
            &payload,
            |b, &payload| {
                b.iter(|| {
                    run_zigzag_pair(12.0, payload, 300, 100, &DecoderConfig::default(), false, 7)
                })
            },
        );
    }
}

fn bench_zigzag_k_senders(c: &mut Criterion) {
    // k senders, k collisions: wall time should grow ~linearly in k (§4.6)
    for k in [2usize, 3, 4] {
        let mut rng = StdRng::seed_from_u64(20 + k as u64);
        let links: Vec<LinkProfile> = (0..k).map(|_| LinkProfile::clean(14.0)).collect();
        let airs: Vec<_> = (0..k).map(|i| airframe(i as u16 + 1, 1, 200, 40 + i as u64)).collect();
        let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();
        // simple decodable offset structure: round r shifts sender i by
        // a distinct prime multiple
        let offsets: Vec<Vec<usize>> = (0..k)
            .map(|r| (0..k).map(|i| ((i * (83 + 29 * r)) % 331) + i * 37).collect())
            .collect();
        let buffers: Vec<_> = offsets
            .iter()
            .map(|offs| {
                let placed: Vec<PlacedTx<'_>> = (0..k)
                    .map(|i| PlacedTx { air: &airs[i], base: &chans[i], start: offs[i] })
                    .collect();
                synth_collision(&placed, 1.0, &mut rng)
            })
            .collect();
        let pairs: Vec<(u16, &LinkProfile)> =
            links.iter().enumerate().map(|(i, l)| (i as u16 + 1, l)).collect();
        let reg = zigzag_testbed::registry_for(&pairs);
        c.bench_with_input(BenchmarkId::new("zigzag_k_senders", k), &k, |b, &k| {
            b.iter(|| {
                let dec = ZigzagDecoder::new(DecoderConfig::forward_only(), &reg);
                let specs: Vec<CollisionSpec<'_>> = buffers
                    .iter()
                    .zip(offsets.iter())
                    .map(|(buf, offs)| CollisionSpec {
                        buffer: &buf.buffer,
                        placements: (0..k).map(|i| (i, offs[i])).collect(),
                    })
                    .collect();
                let pkts: Vec<PacketSpec> =
                    (0..k).map(|i| PacketSpec { client: i as u16 + 1 }).collect();
                dec.decode(&specs, &pkts)
            })
        });
    }
}

criterion_group!(benches, bench_standard, bench_zigzag_pair, bench_zigzag_k_senders);
criterion_main!(benches);
