//! # zigzag-bench — evaluation reproduction harness
//!
//! One binary per table/figure of the paper's Chapter 5 (plus the
//! Chapter 4 analyses). Each binary prints the same rows/series the paper
//! reports, next to the paper's numbers where applicable; EXPERIMENTS.md
//! records a full paper-vs-measured comparison.
//!
//! Run with `--quick` for CI-sized trial counts; default sizes aim at the
//! paper's statistical weight within laptop minutes.

#![warn(missing_docs)]

use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::hidden_pair;
use zigzag_core::config::DecoderConfig;
use zigzag_core::schedule::PlanOutcome;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::frame::{encode_frame, AirFrame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

/// `true` if `--quick` was passed (reduced trial counts).
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Picks a trial count: full vs `--quick`.
pub fn trials(full: usize, quick_n: usize) -> usize {
    if quick() {
        quick_n
    } else {
        full
    }
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Builds an encoded test frame.
pub fn airframe(src: u16, seq: u16, payload: usize, seed: u64) -> AirFrame {
    let f = Frame::with_random_payload(0, src, seq, payload, seed);
    encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
}

/// Outcome of one ZigZag pair decode for the micro/BER experiments.
pub struct PairDecode {
    /// BER of each packet against the transmitted bits.
    pub ber: [f64; 2],
    /// Scheduler outcome.
    pub outcome: PlanOutcome,
}

/// Synthesizes one hidden-terminal retransmission pair and ZigZag-decodes
/// it. Offsets are in symbols.
#[allow(clippy::too_many_arguments)]
pub fn run_zigzag_pair(
    snr_db: f64,
    payload: usize,
    d1: usize,
    d2: usize,
    cfg: &DecoderConfig,
    typical: bool,
    seed: u64,
) -> PairDecode {
    let mut rng = StdRng::seed_from_u64(seed);
    let (la, lb) = if typical {
        (LinkProfile::typical(snr_db, &mut rng), LinkProfile::typical(snr_db, &mut rng))
    } else {
        (LinkProfile::clean(snr_db), LinkProfile::clean(snr_db))
    };
    let a = airframe(1, seed as u16, payload, 10_000 + seed);
    let b = airframe(2, seed as u16, payload, 20_000 + seed);
    let hp = hidden_pair(&a, &b, &la, &lb, d1, d2, &mut rng);
    let reg = zigzag_testbed::registry_for(&[(1, &la), (2, &lb)]);
    let dec = ZigzagDecoder::new(cfg.clone(), &reg);
    let out = dec.decode(
        &[
            CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, d1)] },
            CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, d2)] },
        ],
        &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
    );
    PairDecode {
        ber: [
            bit_error_rate(&a.mpdu_bits, &out.packets[0].scrambled_bits),
            bit_error_rate(&b.mpdu_bits, &out.packets[1].scrambled_bits),
        ],
        outcome: out.outcome,
    }
}

/// Draws a pair of collision offsets (symbols) from the 802.11 MAC, with
/// distinct signed offsets (retrying ties like a ZigZag AP waiting for a
/// usable retransmission).
pub fn draw_offsets<R: Rng + ?Sized>(rng: &mut R) -> (usize, usize) {
    let params = zigzag_mac::MacParams::default();
    let policy = zigzag_mac::Backoff::Exponential;
    loop {
        let a1 = policy.draw(&params, 0, rng);
        let b1 = policy.draw(&params, 0, rng);
        let a2 = policy.draw(&params, 1, rng);
        let b2 = policy.draw(&params, 1, rng);
        let s1 = b1 as i64 - a1 as i64;
        let s2 = b2 as i64 - a2 as i64;
        if s1 == s2 {
            continue;
        }
        // re-reference each collision so Alice starts at 0 (the canonical
        // layout used by the micro benchmarks; the general executor also
        // handles flipped order)
        if s1 >= 0 && s2 >= 0 {
            let d1 = params.slots_to_symbols(s1 as u32);
            let d2 = params.slots_to_symbols(s2 as u32);
            if d1 != d2 {
                return (d1, d2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_distinct_and_slot_aligned() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let (d1, d2) = draw_offsets(&mut rng);
            assert_ne!(d1, d2);
            assert_eq!(d1 % 10, 0);
            assert_eq!(d2 % 10, 0);
        }
    }

    #[test]
    fn pair_decode_smoke() {
        let out = run_zigzag_pair(12.0, 200, 300, 100, &DecoderConfig::default(), false, 5);
        assert_eq!(out.outcome, PlanOutcome::Complete);
        assert!(out.ber[0] < 1e-2 && out.ber[1] < 1e-2, "{:?}", out.ber);
    }
}
