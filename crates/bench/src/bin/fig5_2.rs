//! Figure 5-2: effects of residual frequency offset and ISI.
//!
//! (a) With reconstruction tracking disabled, bit errors start thousands
//!     of bits into a 1500 B packet and grow — the residual frequency
//!     error's phase ramp (paper: errors from ≈bit 6000).
//! (b) The received value of a BPSK bit depends on its neighbours (ISI):
//!     a "1" preceded by a "1" sits higher than one preceded by a "0".

use rand::prelude::*;
use zigzag_bench::{airframe, section, trials};
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{clean_reception, hidden_pair};
use zigzag_core::config::DecoderConfig;
use zigzag_core::standard::decode_single;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_phy::preamble::Preamble;

fn main() {
    section("(a) error distribution without frequency/phase tracking (1500 B)");
    let n_trials = trials(12, 4);
    let mut rng = StdRng::seed_from_u64(11);
    let buckets = 12;
    let mut errors = vec![0usize; buckets];
    let mut total_bits = 0usize;
    for t in 0..n_trials {
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let a = airframe(1, t as u16, 1500, 400 + t as u64);
        let b = airframe(2, t as u16, 1500, 500 + t as u64);
        let hp = hidden_pair(&a, &b, &la, &lb, 400, 120, &mut rng);
        let reg = zigzag_testbed::registry_for(&[(1, &la), (2, &lb)]);
        let dec = ZigzagDecoder::new(DecoderConfig::without_tracking(), &reg);
        let out = dec.decode(
            &[
                CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, 400)] },
                CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, 120)] },
            ],
            &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
        );
        let bits = &out.packets[0].scrambled_bits;
        let n = a.mpdu_bits.len().min(bits.len());
        total_bits = n;
        for i in 0..n {
            if a.mpdu_bits[i] != bits[i] {
                errors[i * buckets / n] += 1;
            }
        }
    }
    let per = total_bits / buckets;
    println!("bit-position bucket : error rate (over {n_trials} packets)");
    for (k, e) in errors.iter().enumerate() {
        let rate = *e as f64 / (per * n_trials) as f64;
        let bar = "#".repeat((rate * 40.0).min(40.0) as usize);
        println!("{:>6}..{:<6} {:>8.4} {bar}", k * per, (k + 1) * per, rate);
    }
    println!("paper shape: clean early bits, errors growing after ~6000 bits.");

    section("(b) ISI-prone symbols: received value vs neighbour bits");
    let mut rng = StdRng::seed_from_u64(12);
    let l = LinkProfile::typical(20.0, &mut rng);
    let a = airframe(1, 1, 800, 77);
    let rx = clean_reception(&a, &l, &mut rng);
    let reg = zigzag_testbed::registry_for(&[(1, &l)]);
    // disable equalization so the raw ISI shows (the §5.3c "off" view)
    let cfg = DecoderConfig::without_isi_filter();
    let d = decode_single(&rx.buffer, 0, Some(1), &reg, &Preamble::default_len(), true, &cfg)
        .expect("decode");
    // group soft BPSK values of a "1" bit by the previous bit
    let body = 72;
    let mut v_after_one = (0.0, 0usize);
    let mut v_after_zero = (0.0, 0usize);
    for n in 1..a.mpdu_bits.len().min(d.soft.len() - body) {
        if a.mpdu_bits[n] == 1 {
            let v = d.soft[body + n].re;
            if a.mpdu_bits[n - 1] == 1 {
                v_after_one = (v_after_one.0 + v, v_after_one.1 + 1);
            } else {
                v_after_zero = (v_after_zero.0 + v, v_after_zero.1 + 1);
            }
        }
    }
    let m1 = v_after_one.0 / v_after_one.1.max(1) as f64;
    let m0 = v_after_zero.0 / v_after_zero.1.max(1) as f64;
    println!("mean received value of a '1' bit preceded by '1': {m1:+.3}");
    println!("mean received value of a '1' bit preceded by '0': {m0:+.3}");
    println!("paper shape: the two differ — neighbouring bits leak into each other.");
}
