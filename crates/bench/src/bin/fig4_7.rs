//! Figure 4-7: greedy-decoder failure probability vs number of colliding
//! nodes, for fixed congestion windows (a) and exponential backoff (b).
//!
//! Workload: n hidden senders collide n times (one equation per unknown);
//! each round every node redraws its jitter. A trial fails when the
//! position-wise peeling decoder (equivalent to §4.5's greedy algorithm)
//! cannot recover all packets.

use rand::prelude::*;
use zigzag_bench::{section, trials};
use zigzag_core::engine::{unit_seed, BatchEngine};
use zigzag_core::schedule::{decodable, CollisionLayout, Placement};
use zigzag_mac::{multi_episode, Backoff, MacParams};

/// Packet length in slots (1500 B at 500 kb/s ≈ 24 ms ≈ 1212 slots; a
/// shorter abstract length keeps the Monte Carlo fast without changing
/// the combinatorial structure, which is set by the offsets).
const PKT_SLOTS: usize = 256;

/// Monte Carlo over the `BatchEngine`: trials are split into fixed-size
/// chunks, each chunk's RNG seeded from its index, so the result is
/// deterministic at any thread count and on any machine.
fn failure_probability(
    engine: &BatchEngine,
    n: usize,
    policy: Backoff,
    n_trials: usize,
    seed: u64,
) -> f64 {
    let params = MacParams::default();
    // Fixed chunk size: the chunk index seeds the RNG stream, so the split
    // must not depend on the machine's core count or the printed numbers
    // would vary across machines.
    let chunk = 250;
    let chunks: Vec<(usize, usize)> =
        (0..n_trials).step_by(chunk).map(|s| (s, (s + chunk).min(n_trials))).collect();
    let fails: usize = engine
        .map(&chunks, |ci, &(lo, hi)| {
            let mut rng = StdRng::seed_from_u64(unit_seed(seed, ci));
            let mut fails = 0usize;
            for _ in lo..hi {
                let rounds = multi_episode(n, n, policy, &params, &mut rng);
                let collisions: Vec<CollisionLayout> = rounds
                    .iter()
                    .map(|offs| CollisionLayout {
                        placements: offs
                            .iter()
                            .enumerate()
                            .map(|(q, &o)| Placement { packet: q, start: o as usize })
                            .collect(),
                        len: *offs.iter().max().unwrap_or(&0) as usize + PKT_SLOTS + 4,
                    })
                    .collect();
                let lens = vec![PKT_SLOTS; n];
                if !decodable(&lens, &collisions) {
                    fails += 1;
                }
            }
            fails
        })
        .into_iter()
        .sum();
    fails as f64 / n_trials as f64
}

fn main() {
    let n_trials = trials(20_000, 2_000);
    let engine = BatchEngine::new(0);
    println!("Figure 4-7: failure probability of the linear-time greedy decoder");
    println!(
        "({n_trials} trials per point; n collisions of n packets; {} threads)",
        engine.threads()
    );

    section("(a) fixed congestion windows");
    println!("{:>6} {:>10} {:>10} {:>10}", "nodes", "cw=8", "cw=16", "cw=32");
    for n in 2..=9 {
        let p8 = failure_probability(&engine, n, Backoff::Fixed(8), n_trials, 100 + n as u64);
        let p16 = failure_probability(&engine, n, Backoff::Fixed(16), n_trials, 200 + n as u64);
        let p32 = failure_probability(&engine, n, Backoff::Fixed(32), n_trials, 300 + n as u64);
        println!("{n:>6} {p8:>10.4} {p16:>10.4} {p32:>10.4}");
    }

    section("(b) 802.11 exponential backoff (CWmin=31, CWmax=1023)");
    println!("{:>6} {:>12}", "nodes", "P(failure)");
    for n in 2..=9 {
        let p = failure_probability(&engine, n, Backoff::Exponential, n_trials, 400 + n as u64);
        println!("{n:>6} {p:>12.5}");
    }
    println!("\npaper shape: failure probability decreases with cw and stays");
    println!("low (<~1e-2) for >2 nodes under exponential backoff.");
}
