//! §4.3(a) / Fig 4-4: decoding errors die exponentially fast.
//!
//! Inject a single wrong symbol decision into ZigZag's subtraction chain
//! and measure how far the corruption propagates. For BPSK the paper
//! argues each hop flips the next symbol only if the interferer's phase
//! lands within ±60° (probability 1/6), so the propagation length is
//! geometric with ratio ≈ 1/6.

use rand::prelude::*;
use zigzag_bench::trials;
use zigzag_phy::complex::Complex;

fn main() {
    // Direct Monte Carlo of the §4.3a geometry: an erroneous subtraction
    // adds 2·y_A to the estimate of y_B; the next decision flips iff the
    // result crosses the BPSK boundary, i.e. iff the angle between y_B
    // and y_A is under 60°. Chain the event to measure propagation runs.
    let n_trials = trials(2_000_000, 100_000);
    let mut rng = StdRng::seed_from_u64(4);
    let mut run_lengths = [0usize; 12];
    for _ in 0..n_trials {
        let mut len = 0usize;
        loop {
            // independent random phases of equal-power senders
            let phi = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
            let ya = Complex::cis(phi);
            let yb = Complex::real(1.0);
            // wrong-sign subtraction: estimate = y_B + 2·y_A
            let est = yb + ya.scale(2.0);
            if est.re < 0.0 {
                len += 1;
                if len >= run_lengths.len() - 1 {
                    break;
                }
            } else {
                break;
            }
        }
        run_lengths[len] += 1;
    }
    println!("Fig 4-4 / §4.3a: propagation length of an injected symbol error");
    println!("{:>7} {:>12} {:>12}", "hops", "P(measured)", "P(geom 1/3)");
    for (k, &c) in run_lengths.iter().enumerate().take(8) {
        let p = c as f64 / n_trials as f64;
        // flip ⟺ 1 + 2cos(φ) < 0 ⟺ |φ| > 120°, probability exactly 1/3
        let expect = (1.0f64 / 3.0).powi(k as i32) * (2.0 / 3.0);
        println!("{k:>7} {p:>12.6} {expect:>12.6}");
    }
    let p_flip =
        run_lengths.iter().enumerate().map(|(k, &c)| k * c).sum::<usize>() as f64 / n_trials as f64;
    println!("\nmean propagation length: {p_flip:.4} (geometric 1/3 ⇒ 0.5)");
    println!(
        "flip probability per hop: measured {:.4}; exact geometry 1/3 = {:.4}; the paper states 1/6",
        1.0 - run_lengths[0] as f64 / n_trials as f64,
        1.0 / 3.0
    );
    println!("(worst-case wrong-sign subtraction flips the next BPSK symbol iff");
    println!(" 1 + 2cos(φ) < 0, i.e. |φ| > 120°: probability 1/3, not the paper's 1/6;");
    println!(" the paper's claim — exponential decay — holds with ratio 1/3.)");
}
