//! Figure 5-4: normalized throughput in capture-effect scenarios.
//!
//! Alice moves closer to the AP: ΔSNR = SNR_A − SNR_B sweeps 0..16 dB
//! with SNR_B fixed. Plots (a) Alice's, (b) Bob's, (c) total normalized
//! throughput for 802.11, the Collision-Free Scheduler and ZigZag.
//!
//! Paper shape: 802.11 starves Bob and ramps Alice up once capture kicks
//! in (4–6 dB); the scheduler is flat at 0.5/0.5; ZigZag rides capture +
//! interference cancellation to a total of ≈2 in the mid band and falls
//! back toward 1 when Alice's power buries Bob (the cancellation-floor
//! regime; ours sits at −20 dB, see DESIGN.md §2).

use rand::prelude::*;
use zigzag_bench::trials;
use zigzag_channel::fading::LinkProfile;
use zigzag_core::engine::BatchEngine;
use zigzag_testbed::{run_pairs, ExperimentConfig, PairScenario};

fn main() {
    let rounds = trials(40, 12);
    let snr_b = 12.0;
    let cfg = ExperimentConfig { payload: 300, rounds, ..Default::default() };
    let engine = BatchEngine::new(0);
    println!(
        "Figure 5-4: capture sweep (SNR_B = {snr_b} dB, {rounds} rounds/point, {} threads)",
        engine.threads()
    );
    println!(
        "{:>6} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "dSNR", "A:802", "A:cfs", "A:zz", "B:802", "B:cfs", "B:zz", "T:802", "T:cfs", "T:zz"
    );
    // one scenario per ΔSNR point, fanned across the engine
    let points = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0];
    let scenarios: Vec<PairScenario> = points
        .iter()
        .map(|&dsnr| {
            let mut rng = StdRng::seed_from_u64(7_000 + dsnr as u64);
            PairScenario {
                link_a: LinkProfile::typical(snr_b + dsnr, &mut rng),
                link_b: LinkProfile::typical(snr_b, &mut rng),
                p_sense: 0.0,
                seed: 600 + dsnr as u64,
            }
        })
        .collect();
    let runs = run_pairs(&engine, &scenarios, &cfg);
    for (dsnr, run) in points.iter().zip(runs.iter()) {
        println!(
            "{dsnr:>6.1} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2}",
            run.s802.throughput(0),
            run.cfs.throughput(0),
            run.zigzag.throughput(0),
            run.s802.throughput(1),
            run.cfs.throughput(1),
            run.zigzag.throughput(1),
            run.s802.total_throughput(),
            run.cfs.total_throughput(),
            run.zigzag.total_throughput(),
        );
    }
    println!("\npaper shape: zigzag ≥ max(802.11, scheduler) everywhere; total");
    println!("exceeds 1 in the capture band; 802.11 starves Bob at high dSNR.");
}
