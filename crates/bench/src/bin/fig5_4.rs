//! Figure 5-4: normalized throughput in capture-effect scenarios.
//!
//! Alice moves closer to the AP: ΔSNR = SNR_A − SNR_B sweeps 0..16 dB
//! with SNR_B fixed. Plots (a) Alice's, (b) Bob's, (c) total normalized
//! throughput for 802.11, the Collision-Free Scheduler and ZigZag.
//!
//! Paper shape: 802.11 starves Bob and ramps Alice up once capture kicks
//! in (4–6 dB); the scheduler is flat at 0.5/0.5; ZigZag rides capture +
//! interference cancellation to a total of ≈2 in the mid band and falls
//! back toward 1 when Alice's power buries Bob (the cancellation-floor
//! regime; ours sits at −20 dB, see DESIGN.md §2).

use zigzag_bench::trials;
use zigzag_channel::fading::LinkProfile;
use zigzag_testbed::{run_pair, ExperimentConfig};

fn main() {
    let rounds = trials(40, 12);
    let snr_b = 12.0;
    let cfg = ExperimentConfig { payload: 300, rounds, ..Default::default() };
    println!("Figure 5-4: capture sweep (SNR_B = {snr_b} dB, {rounds} rounds/point)");
    println!(
        "{:>6} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "dSNR", "A:802", "A:cfs", "A:zz", "B:802", "B:cfs", "B:zz", "T:802", "T:cfs", "T:zz"
    );
    for dsnr in [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0] {
        let mut rng = rand::prelude::StdRng::seed_from_u64(7_000 + dsnr as u64);
        use rand::prelude::*;
        let la = LinkProfile::typical(snr_b + dsnr, &mut rng);
        let lb = LinkProfile::typical(snr_b, &mut rng);
        let run = run_pair(&la, &lb, 0.0, &cfg, 600 + dsnr as u64);
        println!(
            "{dsnr:>6.1} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2}",
            run.s802.throughput(0),
            run.cfs.throughput(0),
            run.zigzag.throughput(0),
            run.s802.throughput(1),
            run.cfs.throughput(1),
            run.zigzag.throughput(1),
            run.s802.total_throughput(),
            run.cfs.total_throughput(),
            run.zigzag.total_throughput(),
        );
    }
    println!("\npaper shape: zigzag ≥ max(802.11, scheduler) everywhere; total");
    println!("exceeds 1 in the capture band; 802.11 starves Bob at high dSNR.");
}
