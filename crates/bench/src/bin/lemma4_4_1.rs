//! Lemma 4.4.1 + Fig 4-5: synchronous-ACK feasibility without MAC changes.
//!
//! Reports the Appendix-A analytic bound (93.75% for 802.11g), the exact
//! Monte-Carlo probability over backoff draws, and a demonstration of the
//! Fig 4-5 ack schedule over random collision pairs.

use rand::prelude::*;
use zigzag_bench::trials;
use zigzag_mac::{
    schedule_acks, sync_ack_probability_bound, sync_ack_probability_mc, Backoff, MacParams,
};

fn main() {
    let p = MacParams::default();
    println!("Lemma 4.4.1: P(offset sufficient for a synchronous ACK), 802.11g");
    println!(
        "analytic bound (Appendix A): {:.4}  (paper: >= 0.9375)",
        sync_ack_probability_bound(&p)
    );
    let mut rng = StdRng::seed_from_u64(1);
    let mc = sync_ack_probability_mc(&p, trials(1_000_000, 50_000), &mut rng);
    println!("Monte Carlo (exact draws):   {:.4}", mc);
    println!("(the exact probability sits slightly below the Appendix's loose bound)");

    println!("\nFig 4-5 ack schedule over random collision pairs (1500 B at 500 kb/s):");
    let len_us = (1500.0 + 14.0) * 8.0 / 0.5; // payload+overhead bits / (bits/us)
    let policy = Backoff::Exponential;
    let mut sync_ok = 0usize;
    let n = trials(100_000, 5_000);
    for _ in 0..n {
        let a = policy.draw(&p, 1, &mut rng);
        let b = policy.draw(&p, 1, &mut rng);
        let off = a.abs_diff(b) as f64 * p.slot_us;
        let s = schedule_acks(off, len_us, len_us, &p);
        assert!(s.ack2_at_us >= s.ack1_at_us + p.ack_us, "acks overlap");
        if s.synchronous {
            sync_ok += 1;
        }
    }
    println!(
        "episodes where both acks fit synchronously: {:.2}%",
        100.0 * sync_ok as f64 / n as f64
    );
}
