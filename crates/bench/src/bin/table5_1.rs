//! Table 5.1: micro-evaluation of ZigZag's components.
//!
//! Rows:
//! * correlation-based collision detection — false positive / false
//!   negative rates at β = 0.65 over SNR ∈ [6, 20] dB (paper: 3.1% / 1.9%);
//! * frequency & phase tracking — fraction of colliding packets decodable
//!   (BER < 10⁻³) with and without the §4.2.4 tracking, for 800 B and
//!   1500 B packets (paper: 99.6/98.2% with; 89/0% without);
//! * ISI filter — with and without the §4.2.4d inverse filter at 10 and
//!   20 dB (paper: 99.6/100% with; 47/96% without).

use rand::prelude::*;
use zigzag_bench::{airframe, draw_offsets, run_zigzag_pair, section, trials};
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{clean_reception, hidden_pair};
use zigzag_core::config::DecoderConfig;
use zigzag_core::detect::{detect_packets, is_collision};
use zigzag_core::engine::{unit_seed, BatchEngine};
use zigzag_phy::preamble::Preamble;

fn correlation_rates(n_trials: usize) -> (f64, f64) {
    let cfg = DecoderConfig::default();
    let preamble = Preamble::default_len();
    let mut fp = 0usize;
    let mut fneg = 0usize;
    let mut rng = StdRng::seed_from_u64(51);
    for t in 0..n_trials {
        let snr = 6.0 + 14.0 * (t as f64 / n_trials as f64);
        let la = LinkProfile::typical(snr, &mut rng);
        let lb = LinkProfile::typical(snr, &mut rng);
        let reg = zigzag_testbed::registry_for(&[(1, &la), (2, &lb)]);
        let a = airframe(1, t as u16, 300, 900 + t as u64);
        let b = airframe(2, t as u16, 300, 901 + t as u64);
        // clean packet: any extra detection is a false positive
        let rx = clean_reception(&a, &la, &mut rng);
        let det = detect_packets(&rx.buffer, &preamble, &reg, &cfg);
        if is_collision(&det) {
            fp += 1;
        }
        // collision: missing it is a false negative
        let (d1, _) = draw_offsets(&mut rng);
        let hp = hidden_pair(&a, &b, &la, &lb, d1.max(40), 0, &mut rng);
        let det = detect_packets(&hp.collision1.buffer, &preamble, &reg, &cfg);
        if !is_collision(&det) {
            fneg += 1;
        }
    }
    (fp as f64 / n_trials as f64, fneg as f64 / n_trials as f64)
}

/// Fraction of colliding packets decodable (BER < 1e-3), fanned across
/// the engine one trial per work unit.
fn success_rate(
    engine: &BatchEngine,
    payload: usize,
    cfg: &DecoderConfig,
    snr_db: f64,
    n_trials: usize,
    seed: u64,
) -> f64 {
    let ts: Vec<usize> = (0..n_trials).collect();
    let ok: usize = engine
        .map(&ts, |_, &t| {
            let mut rng = StdRng::seed_from_u64(unit_seed(seed, t));
            let (d1, d2) = draw_offsets(&mut rng);
            let out = run_zigzag_pair(snr_db, payload, d1, d2, cfg, true, seed * 1000 + t as u64);
            out.ber.iter().filter(|&&b| b < 1e-3).count()
        })
        .into_iter()
        .sum();
    ok as f64 / (2 * n_trials) as f64
}

fn main() {
    println!("Table 5.1: micro-evaluation of ZigZag's components");
    let n = trials(250, 30);
    let engine = BatchEngine::new(0);

    section("Correlation collision detector (beta = 0.78; paper used 0.65 at 2 sps)");
    let (fp, fneg) = correlation_rates(trials(500, 60));
    println!("false positives: {:.1}%   (paper: 3.1%)", fp * 100.0);
    println!("false negatives: {:.1}%   (paper: 1.9%)", fneg * 100.0);

    section("Frequency & phase tracking (12 dB)");
    let with = DecoderConfig::default();
    let without = DecoderConfig::without_tracking();
    for (payload, paper_with, paper_without) in [(800, "99.6%", "89%"), (1500, "98.2%", "0%")] {
        let s_with = success_rate(&engine, payload, &with, 12.0, n, 7000 + payload as u64);
        let s_without = success_rate(&engine, payload, &without, 12.0, n, 8000 + payload as u64);
        println!(
            "{payload:>5} B: with {:.1}% (paper {paper_with})   without {:.1}% (paper {paper_without})",
            s_with * 100.0,
            s_without * 100.0
        );
    }

    section("ISI filter");
    let with = DecoderConfig::default();
    let without = DecoderConfig::without_isi_filter();
    for (snr, paper_with, paper_without) in [(10.0, "99.6%", "47%"), (20.0, "100%", "96%")] {
        let s_with = success_rate(&engine, 800, &with, snr, n, 9000 + snr as u64);
        let s_without = success_rate(&engine, 800, &without, snr, n, 9500 + snr as u64);
        println!(
            "{snr:>4} dB: with {:.1}% (paper {paper_with})   without {:.1}% (paper {paper_without})",
            s_with * 100.0,
            s_without * 100.0
        );
    }
}
