//! Figures 5-5 to 5-8: whole-testbed throughput and loss.
//!
//! Random sender pairs with a common AP on the 14-node testbed, each run
//! under current 802.11 and ZigZag (plus the Collision-Free Scheduler
//! reference). Reports:
//! * Fig 5-5 — CDF of pairwise aggregate normalized throughput
//!   (paper: ZigZag +31% mean);
//! * Fig 5-6 — CDF of per-flow loss rate (paper: 18.9% → 0.2% mean);
//! * Fig 5-7 — scatter of per-pair throughput, ZigZag vs 802.11
//!   ("helps, never hurts");
//! * Fig 5-8 — loss CDF restricted to full/partial hidden pairs
//!   (paper: 82.3% → 0.7% mean).

use rand::prelude::*;
use zigzag_bench::{section, trials};
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::pathloss::Sensing;
use zigzag_core::engine::BatchEngine;
use zigzag_testbed::{run_pairs, ExperimentConfig, PairScenario, Samples, Testbed};

fn cdf_print(name: &str, s: &Samples) {
    print!("{name} CDF:");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        print!("  p{:02.0}={:.2}", q * 100.0, s.quantile(q));
    }
    println!("  mean={:.3}", s.mean());
}

fn main() {
    let tb = Testbed::paper_like(7);
    let (h, p, f) = tb.sensing_mix();
    println!(
        "testbed sensing mix: hidden {:.0}% / partial {:.0}% / perfect {:.0}%  (paper: 12/8/80)",
        h * 100.0,
        p * 100.0,
        f * 100.0
    );

    let n_pairs = trials(40, 10);
    let cfg = ExperimentConfig { payload: 300, rounds: trials(30, 12), ..Default::default() };
    let engine = BatchEngine::new(0);
    println!("running {n_pairs} sampled pairs on {} threads", engine.threads());
    let mut rng = StdRng::seed_from_u64(42);

    let mut tput_802 = Samples::new();
    let mut tput_zz = Samples::new();
    let mut loss_802 = Samples::new();
    let mut loss_zz = Samples::new();
    let mut hidden_loss_802 = Samples::new();
    let mut hidden_loss_zz = Samples::new();
    let mut scatter: Vec<(f64, f64, bool)> = Vec::new();

    // Sample the pair scenarios sequentially (cheap, keeps the draw order
    // deterministic), then fan the expensive flow experiments across the
    // engine.
    let pairs = tb.sender_pairs();
    let mut scenarios: Vec<PairScenario> = Vec::new();
    let mut hidden_flags: Vec<bool> = Vec::new();
    while scenarios.len() < n_pairs {
        let &(a, b) = pairs.choose(&mut rng).unwrap();
        let aps = tb.common_aps(a, b, 6.0);
        let Some(&ap) = aps.choose(&mut rng) else { continue };
        let snr_a = tb.link_snr_db(a, ap).min(25.0);
        let snr_b = tb.link_snr_db(b, ap).min(25.0);
        let sensing = tb.sensing(a, b);
        scenarios.push(PairScenario {
            link_a: LinkProfile::typical(snr_a, &mut rng),
            link_b: LinkProfile::typical(snr_b, &mut rng),
            p_sense: sensing.probability(),
            seed: 5_000 + scenarios.len() as u64,
        });
        hidden_flags.push(matches!(sensing, Sensing::Hidden | Sensing::Partial(_)));
    }
    let runs = run_pairs(&engine, &scenarios, &cfg);
    for (run, &is_ht) in runs.iter().zip(hidden_flags.iter()) {
        tput_802.push(run.s802.total_throughput());
        tput_zz.push(run.zigzag.total_throughput());
        // per-flow loss, the paper's Fig 5-6/5-8 unit
        for s in 0..2 {
            loss_802.push(run.s802.flow_loss(s));
            loss_zz.push(run.zigzag.flow_loss(s));
        }
        if is_ht {
            for s in 0..2 {
                hidden_loss_802.push(run.s802.flow_loss(s));
                hidden_loss_zz.push(run.zigzag.flow_loss(s));
            }
        }
        scatter.push((run.s802.total_throughput(), run.zigzag.total_throughput(), is_ht));
    }

    section("Figure 5-5: aggregate normalized throughput (whole testbed)");
    cdf_print("  802.11", &tput_802);
    cdf_print("  zigzag", &tput_zz);
    let gain = if tput_802.mean() > 0.0 {
        (tput_zz.mean() / tput_802.mean() - 1.0) * 100.0
    } else {
        f64::INFINITY
    };
    println!("  mean throughput gain: {gain:+.0}%   (paper: +31%)");

    section("Figure 5-6: per-flow loss rate (whole testbed)");
    cdf_print("  802.11", &loss_802);
    cdf_print("  zigzag", &loss_zz);
    println!(
        "  mean loss: 802.11 {:.1}% -> zigzag {:.2}%   (paper: 18.9% -> 0.2%)",
        loss_802.mean() * 100.0,
        loss_zz.mean() * 100.0
    );

    section("Figure 5-7: scatter of pair throughputs (zigzag vs 802.11)");
    println!("  {:>8} {:>8}  hidden?", "802.11", "zigzag");
    for (x, y, ht) in &scatter {
        println!("  {x:>8.2} {y:>8.2}  {}", if *ht { "yes" } else { "" });
    }
    let hurts = scatter.iter().filter(|(x, y, _)| y + 0.12 < *x).count();
    println!("  pairs where zigzag hurts (>0.12): {hurts} of {} (paper: 0)", scatter.len());

    section("Figure 5-8: loss at (full or partial) hidden terminals");
    if hidden_loss_802.is_empty() {
        println!("  (no hidden pairs sampled — increase --quick trials)");
    } else {
        cdf_print("  802.11", &hidden_loss_802);
        cdf_print("  zigzag", &hidden_loss_zz);
        println!(
            "  mean hidden-terminal loss: 802.11 {:.1}% -> zigzag {:.2}%   (paper: 82.3% -> 0.7%)",
            hidden_loss_802.mean() * 100.0,
            hidden_loss_zz.mean() * 100.0
        );
    }
}
