//! Figure 5-3: BER vs SNR for ZigZag against the Collision-Free
//! Scheduler (802.11 is omitted, as in the paper — its BER in this
//! scenario is ≈0.5).
//!
//! Claims to reproduce:
//! * ZigZag (forward only) tracks the collision-free BER at every SNR;
//! * with forward+backward decoding the BER is *lower* than
//!   collision-free (paper: 1.4× on average) — every symbol is received
//!   twice.

use rand::prelude::*;
use zigzag_bench::{airframe, draw_offsets, run_zigzag_pair, trials};
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::clean_reception;
use zigzag_core::config::DecoderConfig;
use zigzag_core::engine::{unit_seed, BatchEngine};
use zigzag_core::standard::decode_single;
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::preamble::Preamble;

fn collision_free_ber(
    engine: &BatchEngine,
    snr_db: f64,
    payload: usize,
    n_trials: usize,
    seed: u64,
) -> f64 {
    let cfg = DecoderConfig::default();
    let ts: Vec<usize> = (0..n_trials).collect();
    let per_trial = engine.map(&ts, |_, &t| {
        let mut rng = StdRng::seed_from_u64(unit_seed(seed, t));
        let l = LinkProfile::typical(snr_db, &mut rng);
        let reg = zigzag_testbed::registry_for(&[(1, &l)]);
        let a = airframe(1, t as u16, payload, seed + t as u64);
        let rx = clean_reception(&a, &l, &mut rng);
        let errs = if let Some(d) =
            decode_single(&rx.buffer, 0, Some(1), &reg, &Preamble::default_len(), true, &cfg)
        {
            (bit_error_rate(&a.mpdu_bits, &d.scrambled_bits) * a.mpdu_bits.len() as f64).round()
                as usize
        } else {
            a.mpdu_bits.len() / 2
        };
        (errs, a.mpdu_bits.len())
    });
    let errs: usize = per_trial.iter().map(|&(e, _)| e).sum();
    let bits: usize = per_trial.iter().map(|&(_, b)| b).sum();
    errs as f64 / bits as f64
}

/// Mean BER over decodable packets plus the catastrophic-failure rate
/// (BER > 0.1 — a bootstrap/estimation collapse rather than bit noise;
/// the paper reports these separately as the Table 5.1 success rates).
fn zigzag_ber(
    engine: &BatchEngine,
    snr_db: f64,
    payload: usize,
    cfg: &DecoderConfig,
    n_trials: usize,
    seed: u64,
) -> (f64, f64) {
    let ts: Vec<usize> = (0..n_trials).collect();
    let bers = engine.map(&ts, |_, &t| {
        let mut rng = StdRng::seed_from_u64(unit_seed(seed, t));
        let (d1, d2) = draw_offsets(&mut rng);
        run_zigzag_pair(snr_db, payload, d1, d2, cfg, true, seed * 977 + t as u64).ber
    });
    let mut acc = 0.0;
    let mut n = 0usize;
    let mut fails = 0usize;
    for b in bers.iter().flatten() {
        if *b > 0.1 {
            fails += 1;
        } else {
            acc += b;
            n += 1;
        }
    }
    (acc / n.max(1) as f64, fails as f64 / (2 * n_trials) as f64)
}

fn main() {
    let n_trials = trials(60, 8);
    let payload = 500;
    let engine = BatchEngine::new(0);
    println!(
        "Figure 5-3: BER vs SNR ({n_trials} packet-pairs per point, {payload} B, {} threads)",
        engine.threads()
    );
    println!(
        "{:>5} {:>16} {:>16} {:>16} {:>10}",
        "SNR", "collision-free", "zigzag fwd", "zigzag fwd+bwd", "zz fail%"
    );
    let mut ratio_acc = 0.0;
    let mut ratio_n = 0;
    for snr in [5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0] {
        let cf = collision_free_ber(&engine, snr, payload, n_trials, 3_000 + snr as u64);
        let (fwd, _) = zigzag_ber(
            &engine,
            snr,
            payload,
            &DecoderConfig::forward_only(),
            n_trials,
            4_000 + snr as u64,
        );
        let (fb, fail) = zigzag_ber(
            &engine,
            snr,
            payload,
            &DecoderConfig::default(),
            n_trials,
            5_000 + snr as u64,
        );
        println!("{snr:>5.1} {cf:>16.6} {fwd:>16.6} {fb:>16.6} {:>10.1}", fail * 100.0);
        if fb > 0.0 && cf > 0.0 {
            ratio_acc += cf / fb;
            ratio_n += 1;
        }
    }
    if ratio_n > 0 {
        println!(
            "\nmean collision-free / fwd+bwd BER ratio: {:.2}x (paper: 1.4x)",
            ratio_acc / ratio_n as f64
        );
    }
    println!("paper shape: zigzag ≈ collision-free at all SNRs; fwd+bwd below both.");
}
