//! Figure 5-9: three hidden terminals.
//!
//! Three senders collide three times (fresh jitter per round); ZigZag's
//! greedy multi-packet decoder recovers all three. Reports the CDF of
//! per-sender normalized throughput — the paper shows all three senders
//! near ⅓ of the medium ("almost as if each … transmitted in a separate
//! time slot").

use rand::prelude::*;
use zigzag_bench::{airframe, trials};
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{synth_collision, PlacedTx};
use zigzag_core::config::DecoderConfig;
use zigzag_core::engine::{unit_seed, BatchEngine};
use zigzag_core::schedule::PlanOutcome;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_mac::{multi_episode, Backoff, MacParams};
use zigzag_phy::bits::bit_error_rate;
use zigzag_testbed::Samples;

fn main() {
    let n_trials = trials(60, 10);
    let payload = 300;
    let snr: f64 = std::env::var("FIG59_SNR").ok().and_then(|v| v.parse().ok()).unwrap_or(16.0);
    let params = MacParams::default();
    println!("Figure 5-9: three hidden terminals ({n_trials} episodes, {snr} dB, {payload} B)");

    let mut per_sender = Samples::new();
    let mut fail_bers = Samples::new();
    let mut episodes_ok = 0usize;
    let engine = BatchEngine::new(0);
    println!("({} threads)", engine.threads());
    let mode = std::env::var("FIG59_MODE").unwrap_or_default();
    let cfg9 = if mode == "fwd" { DecoderConfig::forward_only() } else { DecoderConfig::default() };
    // one independent work unit per episode, seeded by episode index
    let ts: Vec<usize> = (0..n_trials).collect();
    let episodes = engine.map(&ts, |_, &t| {
        let mut rng = StdRng::seed_from_u64(unit_seed(99, t));
        let links: Vec<LinkProfile> = (0..3).map(|_| LinkProfile::typical(snr, &mut rng)).collect();
        let airs: Vec<_> = (0..3)
            .map(|i| airframe(i as u16 + 1, t as u16, payload, 70_000 + t as u64 * 3 + i as u64))
            .collect();
        let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();
        // three collision rounds with MAC jitter; retry until the offsets
        // are decodable in the abstract (the AP would wait for more
        // retransmissions otherwise)
        let rounds = loop {
            let r = multi_episode(3, 3, Backoff::Exponential, &params, &mut rng);
            let lens = vec![payload * 8 + 112; 3];
            let layouts: Vec<zigzag_core::schedule::CollisionLayout> = r
                .iter()
                .map(|offs| zigzag_core::schedule::CollisionLayout {
                    placements: offs
                        .iter()
                        .enumerate()
                        .map(|(q, &o)| zigzag_core::schedule::Placement {
                            packet: q,
                            start: params.slots_to_symbols(o),
                        })
                        .collect(),
                    len: params.slots_to_symbols(*offs.iter().max().unwrap()) + lens[0] + 64,
                })
                .collect();
            if zigzag_core::schedule::decodable(&lens, &layouts) {
                break r;
            }
        };
        let buffers: Vec<_> = rounds
            .iter()
            .map(|offs| {
                let placed: Vec<PlacedTx<'_>> = (0..3)
                    .map(|i| PlacedTx {
                        air: &airs[i],
                        base: &chans[i],
                        start: params.slots_to_symbols(offs[i]),
                    })
                    .collect();
                synth_collision(&placed, 1.0, &mut rng)
            })
            .collect();
        let reg = zigzag_testbed::registry_for(&[(1, &links[0]), (2, &links[1]), (3, &links[2])]);
        let dec = ZigzagDecoder::new(cfg9.clone(), &reg);
        let specs: Vec<CollisionSpec<'_>> = buffers
            .iter()
            .zip(rounds.iter())
            .map(|(b, offs)| CollisionSpec {
                buffer: &b.buffer,
                placements: (0..3).map(|i| (i, params.slots_to_symbols(offs[i]))).collect(),
            })
            .collect();
        let out = dec.decode(
            &specs,
            &[PacketSpec { client: 1 }, PacketSpec { client: 2 }, PacketSpec { client: 3 }],
        );
        let bers: Vec<f64> = (0..3)
            .map(|i| bit_error_rate(&airs[i].mpdu_bits, &out.packets[i].scrambled_bits))
            .collect();
        if std::env::var_os("FIG59_DEBUG").is_some() {
            for (i, ber) in bers.iter().enumerate() {
                if *ber >= 1e-3 {
                    eprintln!("  fail: episode {t} sender {i} BER {ber:.4} offsets {rounds:?}");
                }
            }
        }
        (out.outcome == PlanOutcome::Complete, bers)
    });
    for (complete, bers) in &episodes {
        if *complete {
            episodes_ok += 1;
        }
        // three packets over three collision rounds: perfect = 1/3 each
        for &ber in bers {
            per_sender.push(if ber < 1e-3 { 1.0 / 3.0 } else { 0.0 });
            if ber >= 1e-3 {
                fail_bers.push(ber);
            }
        }
    }

    println!("episodes fully scheduled: {episodes_ok}/{n_trials}");
    print!("per-sender normalized throughput CDF:");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        print!("  p{:02.0}={:.3}", q * 100.0, per_sender.quantile(q));
    }
    println!("  mean={:.3}", per_sender.mean());
    if !fail_bers.is_empty() {
        println!(
            "packets over the 1e-3 bar: {} (median BER {:.1e}, p90 {:.1e}) — near-threshold, not catastrophic",
            fail_bers.len(),
            fail_bers.quantile(0.5),
            fail_bers.quantile(0.9)
        );
    }
    println!("paper shape: all three senders near 1/3 of the medium.");
}
