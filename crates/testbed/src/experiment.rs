//! Flow experiments: saturated sender pairs under the three compared
//! schemes (§5.1e).
//!
//! * **Current 802.11** — the standard decoder over individual packets;
//!   in a collision each packet is decoded treating the other as noise
//!   (so the capture effect emerges naturally).
//! * **ZigZag** — capture/IC on single collisions plus chunk-by-chunk
//!   decoding of matched collision pairs, exactly the §5.1d flow.
//! * **Collision-Free Scheduler** — each sender in its own time slot.
//!
//! Senders are saturated (always have the next packet ready), retransmit
//! with fresh jitter until delivered or the retry limit, and a packet is
//! *delivered* when its uncoded BER is below 10⁻³ (§5.1f; the paper's
//! footnote notes practical channel codes then meet the packet-error
//! target — equivalently, the AP acks on post-coding success).

use crate::metrics::{delivered, SchemeOutcome};
use rand::prelude::*;
use zigzag_channel::fading::{ChannelParams, LinkProfile};
use zigzag_channel::scenario::{synth_collision, PlacedTx, SynthCollision};
use zigzag_core::capture::capture_decode;
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_core::engine::BatchEngine;
use zigzag_core::schedule::PlanOutcome;
use zigzag_core::standard::decode_single;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_mac::{Backoff, MacParams};
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::complex::Complex;
use zigzag_phy::frame::{encode_frame, AirFrame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

/// Experiment knobs.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Payload bytes per packet (paper: 1500; smaller values trade
    /// delivery-granularity for speed).
    pub payload: usize,
    /// Number of airtime rounds to simulate per scheme.
    pub rounds: usize,
    /// MAC parameters.
    pub mac: MacParams,
    /// Receiver configuration.
    pub decoder: DecoderConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            payload: 300,
            rounds: 24,
            mac: MacParams::default(),
            decoder: DecoderConfig::default(),
        }
    }
}

/// Results of one pair experiment under all three schemes.
#[derive(Clone, Debug)]
pub struct PairRun {
    /// Current 802.11.
    pub s802: SchemeOutcome,
    /// ZigZag receiver.
    pub zigzag: SchemeOutcome,
    /// Collision-free (TDMA) scheduler.
    pub cfs: SchemeOutcome,
}

/// Per-sender transmit state in the saturated model.
struct TxState {
    seq: u16,
    retries: u32,
    air: AirFrame,
    /// per-packet channel realisation (quasi-static across its
    /// retransmissions)
    chan: ChannelParams,
}

impl TxState {
    fn new(src: u16, seq: u16, payload: usize, link: &LinkProfile, rng: &mut StdRng) -> Self {
        let f = Frame::with_random_payload(0, src, seq, payload, (src as u64) << 32 | seq as u64);
        let air = encode_frame(&f, Modulation::Bpsk, &Preamble::default_len());
        TxState { seq, retries: 0, air, chan: link.draw(rng) }
    }

    fn advance(&mut self, src: u16, payload: usize, link: &LinkProfile, rng: &mut StdRng) {
        self.seq = self.seq.wrapping_add(1);
        *self = TxState::new(src, self.seq, payload, link, rng);
    }
}

/// Builds the association registry for a sender pair (what the AP learned
/// at association time, §4.2.1).
pub fn registry_for(links: &[(u16, &LinkProfile)]) -> ClientRegistry {
    let mut reg = ClientRegistry::new();
    for (id, l) in links {
        reg.associate(
            *id,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }
    reg
}

fn synth_round(
    a: &TxState,
    b: &TxState,
    start_a: usize,
    start_b: usize,
    rng: &mut StdRng,
) -> SynthCollision {
    synth_collision(
        &[
            PlacedTx { air: &a.air, base: &a.chan, start: start_a },
            PlacedTx { air: &b.air, base: &b.chan, start: start_b },
        ],
        1.0,
        rng,
    )
}

fn clean_ber(
    tx: &TxState,
    reg: &ClientRegistry,
    cfg: &ExperimentConfig,
    src: u16,
    rng: &mut StdRng,
) -> f64 {
    let chan = tx.chan.new_transmission(rng);
    let sc = synth_collision(&[PlacedTx { air: &tx.air, base: &chan, start: 0 }], 1.0, rng);
    match decode_single(&sc.buffer, 0, Some(src), reg, &Preamble::default_len(), true, &cfg.decoder)
    {
        Some(d) => bit_error_rate(&tx.air.mpdu_bits, &d.scrambled_bits),
        None => 1.0,
    }
}

/// Runs the Collision-Free Scheduler: alternate clean slots.
fn run_cfs(
    links: [&LinkProfile; 2],
    reg: &ClientRegistry,
    cfg: &ExperimentConfig,
    seed: u64,
) -> SchemeOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCF5);
    let mut out = SchemeOutcome::default();
    let mut tx = [
        TxState::new(1, 0, cfg.payload, links[0], &mut rng),
        TxState::new(2, 0, cfg.payload, links[1], &mut rng),
    ];
    for round in 0..cfg.rounds {
        let s = round % 2;
        let src = (s + 1) as u16;
        let ber = clean_ber(&tx[s], reg, cfg, src, &mut rng);
        out.offered[s] += 1;
        out.airtime += 1.0;
        out.bits += tx[s].air.mpdu_bits.len();
        out.bit_errors += (ber * tx[s].air.mpdu_bits.len() as f64).round() as usize;
        if delivered(ber) {
            out.delivered[s] += 1;
        }
        tx[s].advance(src, cfg.payload, links[s], &mut rng);
    }
    out
}

/// Shared saturated-pair driver; `zigzag` toggles the ZigZag receiver
/// behaviours (capture subtraction, matched-collision decoding).
fn run_contending(
    links: [&LinkProfile; 2],
    p_sense: f64,
    reg: &ClientRegistry,
    cfg: &ExperimentConfig,
    zigzag: bool,
    seed: u64,
) -> SchemeOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ if zigzag { 0x219 } else { 0x802 });
    let mut out = SchemeOutcome::default();
    let mut tx = [
        TxState::new(1, 0, cfg.payload, links[0], &mut rng),
        TxState::new(2, 0, cfg.payload, links[1], &mut rng),
    ];
    // stored unmatched collision: (seqs, signed offset in slots, buffer,
    // starts)
    type StoredRound = ((u16, u16), i64, SynthCollision, [usize; 2]);
    let mut stored: Option<StoredRound> = None;
    let preamble = Preamble::default_len();
    let policy = Backoff::Exponential;

    let handle_delivery =
        |out: &mut SchemeOutcome, tx: &mut [TxState; 2], s: usize, ber: f64, rng: &mut StdRng| {
            out.bits += tx[s].air.mpdu_bits.len();
            out.bit_errors += (ber * tx[s].air.mpdu_bits.len() as f64).round() as usize;
            if delivered(ber) {
                out.delivered[s] += 1;
                out.offered[s] += 1;
                let src = (s + 1) as u16;
                tx[s].advance(src, cfg.payload, links[s], rng);
                true
            } else {
                tx[s].retries += 1;
                if tx[s].retries > cfg.mac.retry_limit {
                    out.offered[s] += 1; // dropped
                    let src = (s + 1) as u16;
                    tx[s].advance(src, cfg.payload, links[s], rng);
                }
                false
            }
        };

    let mut round = 0usize;
    while round < cfg.rounds {
        if rng.gen_bool(p_sense.clamp(0.0, 1.0)) {
            // carrier sense worked: two clean slots
            for s in 0..2 {
                let src = (s + 1) as u16;
                let ber = clean_ber(&tx[s], reg, cfg, src, &mut rng);
                handle_delivery(&mut out, &mut tx, s, ber, &mut rng);
                out.airtime += 1.0;
                round += 1;
            }
            stored = None;
            continue;
        }

        // collision: both transmit with fresh jitter
        let ja = policy.draw(&cfg.mac, tx[0].retries, &mut rng);
        let jb = policy.draw(&cfg.mac, tx[1].retries, &mut rng);
        let m = ja.min(jb);
        let (sa, sb) = (cfg.mac.slots_to_symbols(ja - m), cfg.mac.slots_to_symbols(jb - m));
        let signed_offset = sb as i64 - sa as i64;
        let sc = synth_round(&tx[0], &tx[1], sa, sb, &mut rng);
        out.airtime += 1.0;
        round += 1;

        // capture / interference cancellation (both schemes attempt the
        // strong decode; only ZigZag subtracts to reach the weak one)
        let mut got = [false; 2];
        let order = if tx[0].chan.gain.abs() >= tx[1].chan.gain.abs() { [0, 1] } else { [1, 0] };
        if zigzag {
            let (s_strong, s_weak) = (order[0], order[1]);
            if let Some(res) = capture_decode(
                &sc.buffer,
                if s_strong == 0 { sa } else { sb },
                Some((s_strong + 1) as u16),
                if s_weak == 0 { sa } else { sb },
                Some((s_weak + 1) as u16),
                reg,
                &preamble,
                &cfg.decoder,
            ) {
                let ber_s = bit_error_rate(&tx[s_strong].air.mpdu_bits, &res.strong.scrambled_bits);
                if delivered(ber_s) {
                    got[s_strong] = true;
                    if let Some(w) = &res.weak {
                        let ber_w = bit_error_rate(&tx[s_weak].air.mpdu_bits, &w.scrambled_bits);
                        if delivered(ber_w) {
                            got[s_weak] = true;
                        }
                    }
                }
            }
        } else {
            // plain 802.11: each packet decoded over the raw collision
            for s in 0..2 {
                let start = if s == 0 { sa } else { sb };
                if let Some(d) = decode_single(
                    &sc.buffer,
                    start,
                    Some((s + 1) as u16),
                    reg,
                    &preamble,
                    false,
                    &cfg.decoder,
                ) {
                    let ber = bit_error_rate(&tx[s].air.mpdu_bits, &d.scrambled_bits);
                    got[s] = delivered(ber);
                }
            }
        }

        // ZigZag: match against the stored collision of the same pair
        if zigzag && !(got[0] && got[1]) {
            let key = (tx[0].seq, tx[1].seq);
            if let Some((k, off, prev, starts)) = &stored {
                if *k == key && *off != signed_offset {
                    let dec = ZigzagDecoder::new(cfg.decoder.clone(), reg);
                    let res = dec.decode(
                        &[
                            CollisionSpec {
                                buffer: &prev.buffer,
                                placements: vec![(0, starts[0]), (1, starts[1])],
                            },
                            CollisionSpec {
                                buffer: &sc.buffer,
                                placements: vec![(0, sa), (1, sb)],
                            },
                        ],
                        &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
                    );
                    if res.outcome == PlanOutcome::Complete {
                        for s in 0..2 {
                            let ber = bit_error_rate(
                                &tx[s].air.mpdu_bits,
                                &res.packets[s].scrambled_bits,
                            );
                            got[s] = got[s] || delivered(ber);
                        }
                    }
                }
            }
        }

        // bookkeeping: store this collision if unresolved, then advance
        let both = got[0] && got[1];
        #[allow(clippy::needless_range_loop)] // `s` indexes got/tx/links in lockstep
        for s in 0..2 {
            let ber = if got[s] { 0.0 } else { 1.0 };
            // deliveries already decided; reuse handler for advance logic
            let _ = handle_delivery(&mut out, &mut tx, s, ber, &mut rng);
        }
        stored = if zigzag && !both {
            Some(((tx[0].seq, tx[1].seq), signed_offset, sc, [sa, sb]))
        } else {
            None
        };
    }
    out
}

/// Runs all three schemes for one sender pair.
pub fn run_pair(
    link_a: &LinkProfile,
    link_b: &LinkProfile,
    p_sense: f64,
    cfg: &ExperimentConfig,
    seed: u64,
) -> PairRun {
    let reg = registry_for(&[(1, link_a), (2, link_b)]);
    PairRun {
        s802: run_contending([link_a, link_b], p_sense, &reg, cfg, false, seed),
        zigzag: run_contending([link_a, link_b], p_sense, &reg, cfg, true, seed),
        cfs: run_cfs([link_a, link_b], &reg, cfg, seed),
    }
}

/// One sender-pair scenario for batched runs: everything [`run_pair`]
/// needs, self-contained so units are independent across threads.
#[derive(Clone, Debug)]
pub struct PairScenario {
    /// Sender 1's link to the AP.
    pub link_a: LinkProfile,
    /// Sender 2's link to the AP.
    pub link_b: LinkProfile,
    /// Probability the senders hear each other per round (0 = hidden).
    pub p_sense: f64,
    /// Per-scenario RNG seed (deterministic regardless of scheduling).
    pub seed: u64,
}

/// Runs many sender-pair experiments across the [`BatchEngine`]. Results
/// are in scenario order and bit-for-bit independent of the engine's
/// thread count: each scenario's randomness comes only from its own seed.
pub fn run_pairs(
    engine: &BatchEngine,
    scenarios: &[PairScenario],
    cfg: &ExperimentConfig,
) -> Vec<PairRun> {
    engine.map(scenarios, |_, s| run_pair(&s.link_a, &s.link_b, s.p_sense, cfg, s.seed))
}

/// One k-sender scenario for the full-stack receiver flow: `k` saturated
/// senders (one link each), a carrier-sense probability, and a seed.
///
/// Where [`PairScenario`]/[`run_pair`] compare the three schemes with a
/// hand-rolled decode flow, a `SetScenario` drives every receive buffer
/// through the *actual* receiver pipeline
/// ([`ZigzagReceiver::process`](zigzag_core::ZigzagReceiver::process), i.e.
/// `ReceiverCore::receive`): collisions accumulate in the keyed store
/// until a decodable k×k match set exists, then ZigZag recovers all k
/// frames. This is the generalization `run_pairs` was the k=2 shadow of.
#[derive(Clone, Debug)]
pub struct SetScenario {
    /// Per-sender links to the AP (sender `i` gets client id `i+1`).
    /// Clients must sit at distinct oscillator offsets — that is what
    /// the AP tells them apart by (§4.2.1).
    pub links: Vec<LinkProfile>,
    /// Probability the senders hear each other per round (0 = hidden).
    pub p_sense: f64,
    /// Per-scenario RNG seed (deterministic regardless of scheduling).
    pub seed: u64,
}

/// Per-sender outcome of one k-sender full-stack run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SetOutcome {
    /// Packets delivered per sender.
    pub delivered: Vec<usize>,
    /// Packets offered per sender (delivered or dropped at retry limit).
    pub offered: Vec<usize>,
    /// Airtime consumed, in packet durations.
    pub airtime: f64,
    /// How many collisions the receiver stored unmatched.
    pub collisions_stored: usize,
    /// Deliveries that took the matched-collision ZigZag path.
    pub zigzag_delivered: usize,
    /// Deliveries that took the algebraic batch-recovery path
    /// (`zigzag_core::recovery`) — collisions the chunk scheduler could
    /// not peel, solved jointly instead of dropped.
    pub recovered_delivered: usize,
}

impl SetOutcome {
    /// Per-sender normalized throughput.
    pub fn throughput(&self, sender: usize) -> f64 {
        if self.airtime <= 0.0 {
            0.0
        } else {
            self.delivered[sender] as f64 / self.airtime
        }
    }

    /// Aggregate normalized throughput of the set.
    pub fn total_throughput(&self) -> f64 {
        (0..self.delivered.len()).map(|s| self.throughput(s)).sum()
    }
}

/// Runs one saturated k-sender scenario end-to-end through the receiver
/// pipeline. Each contention round either resolves by carrier sense
/// (clean slots, one per sender) or all k senders collide with fresh
/// MAC jitter; every receive buffer goes through
/// `ZigzagReceiver::process`, so delivery happens exactly when the
/// pipeline's detect/match/plan/zigzag stages recover a frame.
pub fn run_set(scenario: &SetScenario, cfg: &ExperimentConfig) -> SetOutcome {
    let k = scenario.links.len();
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x5E7);
    let ids: Vec<(u16, &LinkProfile)> =
        scenario.links.iter().enumerate().map(|(i, l)| (i as u16 + 1, l)).collect();
    let reg = registry_for(&ids);
    let mut rx = zigzag_core::ZigzagReceiver::new(cfg.decoder.clone(), reg);
    let mut tx: Vec<TxState> = (0..k)
        .map(|s| TxState::new(s as u16 + 1, 0, cfg.payload, &scenario.links[s], &mut rng))
        .collect();
    let mut out =
        SetOutcome { delivered: vec![0; k], offered: vec![0; k], ..SetOutcome::default() };
    let policy = Backoff::Exponential;

    let mut round = 0usize;
    while round < cfg.rounds {
        let mut got = vec![false; k];
        if rng.gen_bool(scenario.p_sense.clamp(0.0, 1.0)) {
            // carrier sense worked: k clean slots, still through the
            // full receiver pipeline
            for s in 0..k {
                let sc = synth_collision(
                    &[PlacedTx { air: &tx[s].air, base: &tx[s].chan, start: 0 }],
                    1.0,
                    &mut rng,
                );
                for ev in rx.process(&sc.buffer) {
                    record_event(&ev, &tx, &mut got, &mut out);
                }
                out.airtime += 1.0;
                round += 1;
            }
        } else {
            // all k collide with fresh jitter
            let jitters: Vec<u32> =
                (0..k).map(|s| policy.draw(&cfg.mac, tx[s].retries, &mut rng)).collect();
            let m = *jitters.iter().min().expect("k >= 1");
            let placed: Vec<PlacedTx<'_>> = (0..k)
                .map(|s| PlacedTx {
                    air: &tx[s].air,
                    base: &tx[s].chan,
                    start: cfg.mac.slots_to_symbols(jitters[s] - m),
                })
                .collect();
            let sc = synth_collision(&placed, 1.0, &mut rng);
            for ev in rx.process(&sc.buffer) {
                record_event(&ev, &tx, &mut got, &mut out);
            }
            out.airtime += 1.0;
            round += 1;
        }
        for s in 0..k {
            if got[s] {
                out.delivered[s] += 1;
                out.offered[s] += 1;
                tx[s].advance(s as u16 + 1, cfg.payload, &scenario.links[s], &mut rng);
            } else {
                tx[s].retries += 1;
                if tx[s].retries > cfg.mac.retry_limit {
                    out.offered[s] += 1; // dropped
                    tx[s].advance(s as u16 + 1, cfg.payload, &scenario.links[s], &mut rng);
                }
            }
        }
    }
    out
}

/// Scores one receiver event against the senders' in-flight frames.
fn record_event(
    ev: &zigzag_core::ReceiverEvent,
    tx: &[TxState],
    got: &mut [bool],
    out: &mut SetOutcome,
) {
    use zigzag_core::receiver::DecodePath;
    match ev {
        zigzag_core::ReceiverEvent::Delivered { frame, path } => {
            let s = frame.src as usize;
            if s >= 1 && s <= tx.len() && frame.seq == tx[s - 1].seq {
                got[s - 1] = true;
                if *path == DecodePath::Zigzag {
                    out.zigzag_delivered += 1;
                }
                if *path == DecodePath::Recovered {
                    out.recovered_delivered += 1;
                }
            }
        }
        zigzag_core::ReceiverEvent::CollisionStored => out.collisions_stored += 1,
        zigzag_core::ReceiverEvent::DecodeFailed => {}
    }
}

/// A degenerate-backoff hidden-sender scenario: every collision round
/// places the senders at the **same** relative offsets.
///
/// This models the pathological-but-real regime the paper's §4.5 calls
/// out as ZigZag's failure condition (Δ₁ = Δ₂): stations whose backoff
/// counters froze in lockstep (e.g. both deafened through the same busy
/// period) retransmit with identical spacing, so every collision is the
/// same combinatorial equation and the chunk scheduler never finds an
/// interference-free boundary. The iterative receiver stores such
/// collisions forever; the algebraic recovery path
/// (`DecoderConfig::with_recovery`) jointly solves consecutive ones —
/// [`run_recovery_set`] measures exactly that difference.
#[derive(Clone, Debug)]
pub struct RecoveryScenario {
    /// Per-sender links to the AP (sender `i` gets client id `i+1`), at
    /// distinct oscillator offsets.
    pub links: Vec<LinkProfile>,
    /// Fixed start offset of each sender in every collision round.
    pub offsets: Vec<usize>,
    /// Per-scenario RNG seed.
    pub seed: u64,
}

/// Runs one degenerate-backoff scenario end-to-end through the receiver
/// pipeline: every round all senders collide at the scenario's fixed
/// offsets, and each buffer goes through `ZigzagReceiver::process`.
/// With recovery disabled the outcome is (by §4.5) zero deliveries; with
/// recovery enabled, consecutive collisions jointly solve.
pub fn run_recovery_set(scenario: &RecoveryScenario, cfg: &ExperimentConfig) -> SetOutcome {
    let k = scenario.links.len();
    assert_eq!(k, scenario.offsets.len(), "one fixed offset per sender");
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x41EC);
    let ids: Vec<(u16, &LinkProfile)> =
        scenario.links.iter().enumerate().map(|(i, l)| (i as u16 + 1, l)).collect();
    let reg = registry_for(&ids);
    let mut rx = zigzag_core::ZigzagReceiver::new(cfg.decoder.clone(), reg);
    let mut tx: Vec<TxState> = (0..k)
        .map(|s| TxState::new(s as u16 + 1, 0, cfg.payload, &scenario.links[s], &mut rng))
        .collect();
    let mut out =
        SetOutcome { delivered: vec![0; k], offered: vec![0; k], ..SetOutcome::default() };

    for _round in 0..cfg.rounds {
        let placed: Vec<PlacedTx<'_>> = (0..k)
            .map(|s| PlacedTx { air: &tx[s].air, base: &tx[s].chan, start: scenario.offsets[s] })
            .collect();
        let sc = synth_collision(&placed, 1.0, &mut rng);
        let mut got = vec![false; k];
        for ev in rx.process(&sc.buffer) {
            record_event(&ev, &tx, &mut got, &mut out);
        }
        out.airtime += 1.0;
        for s in 0..k {
            if got[s] {
                out.delivered[s] += 1;
                out.offered[s] += 1;
                tx[s].advance(s as u16 + 1, cfg.payload, &scenario.links[s], &mut rng);
            } else {
                tx[s].retries += 1;
                if tx[s].retries > cfg.mac.retry_limit {
                    out.offered[s] += 1; // dropped
                    tx[s].advance(s as u16 + 1, cfg.payload, &scenario.links[s], &mut rng);
                }
            }
        }
    }
    out
}

/// Runs many degenerate-backoff scenarios across the [`BatchEngine`];
/// results are in scenario order and thread-count invariant.
pub fn run_recovery_sets(
    engine: &BatchEngine,
    scenarios: &[RecoveryScenario],
    cfg: &ExperimentConfig,
) -> Vec<SetOutcome> {
    engine.map(scenarios, |_, s| run_recovery_set(s, cfg))
}

/// One cell of the typical-link impairment sweep: a phase-noise class ×
/// SNR × timing-drift point at which degenerate-backoff (§4.5,
/// un-peelable) collisions are offered to the recovery layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImpairmentPoint {
    /// Phase-noise walk step σ, radians/symbol (`0.0` = coherent
    /// oscillator, `DEFAULT_PHASE_NOISE` = the typical-link class).
    pub phase_noise: f64,
    /// Link SNR in dB.
    pub snr_db: f64,
    /// Sampling-clock drift magnitude (timing-jitter class; each link
    /// draws its sign and offset per transmission as usual).
    pub sampling_drift: f64,
}

/// Reclaim fractions measured at one [`ImpairmentPoint`]: how many of
/// the offered §4.5-style un-peelable packets each solver configuration
/// delivered. The denominator is the *offered* count (`rounds × senders`
/// summed over the cell's scenarios) — identical for both configurations
/// by construction, so the two fractions are directly comparable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReclaimPoint {
    /// The sweep cell.
    pub point: ImpairmentPoint,
    /// Un-peelable packets offered (same for both configurations).
    pub offered: usize,
    /// Packets the baseline configuration delivered.
    pub baseline_delivered: usize,
    /// Packets the turbo/robust configuration delivered.
    pub turbo_delivered: usize,
}

impl ReclaimPoint {
    /// Baseline reclaim fraction in `[0, 1]`.
    pub fn baseline_fraction(&self) -> f64 {
        self.baseline_delivered as f64 / self.offered.max(1) as f64
    }

    /// Turbo reclaim fraction in `[0, 1]`.
    pub fn turbo_fraction(&self) -> f64 {
        self.turbo_delivered as f64 / self.offered.max(1) as f64
    }
}

/// Builds the degenerate-backoff scenario for one sweep cell: `senders`
/// typical-link clients ([`LinkProfile::typical`] — random nominal ω,
/// mild random ISI) with the cell's phase-noise and drift classes
/// substituted in, colliding at fixed equal spacing every round (the
/// §4.5 Δ₁ = Δ₂ pattern peeling provably cannot decode).
pub fn impaired_recovery_scenario(
    point: &ImpairmentPoint,
    senders: usize,
    seed: u64,
) -> RecoveryScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_1417);
    let links: Vec<LinkProfile> = (0..senders)
        .map(|_| {
            let mut l = LinkProfile::typical(point.snr_db, &mut rng);
            l.phase_noise = point.phase_noise;
            l.sampling_drift = point.sampling_drift * l.sampling_drift.signum();
            l
        })
        .collect();
    let delta = 280 + (seed as usize % 3) * 20;
    let offsets: Vec<usize> = (0..senders).map(|s| s * delta).collect();
    RecoveryScenario { links, offsets, seed }
}

/// Runs the typical-link robustness sweep: at every [`ImpairmentPoint`],
/// `seeds.len()` degenerate-backoff scenarios are driven end-to-end
/// through the receiver **twice** — once under `baseline` (PR 5's
/// single-pass solver, `RecoveryConfig::on`) and once under `turbo`
/// (`RecoveryConfig::robust`) — and the delivered counts are aggregated
/// into one [`ReclaimPoint`] per cell. All runs fan out across the
/// [`BatchEngine`]; results are in point order and thread-count
/// invariant (each scenario run is self-contained).
pub fn run_impairment_sweep(
    engine: &BatchEngine,
    points: &[ImpairmentPoint],
    senders: usize,
    seeds: &[u64],
    baseline: &ExperimentConfig,
    turbo: &ExperimentConfig,
) -> Vec<ReclaimPoint> {
    // flatten to (point, seed, config) jobs so the engine sees one batch
    let mut jobs: Vec<(usize, RecoveryScenario, bool)> = Vec::new();
    for (pi, point) in points.iter().enumerate() {
        for &seed in seeds {
            let scenario = impaired_recovery_scenario(point, senders, seed);
            jobs.push((pi, scenario.clone(), false));
            jobs.push((pi, scenario, true));
        }
    }
    let outcomes = engine.map(&jobs, |_, (_, scenario, is_turbo)| {
        run_recovery_set(scenario, if *is_turbo { turbo } else { baseline })
    });
    let mut curve: Vec<ReclaimPoint> = points
        .iter()
        .map(|&point| ReclaimPoint { point, offered: 0, baseline_delivered: 0, turbo_delivered: 0 })
        .collect();
    for ((pi, _, is_turbo), out) in jobs.iter().zip(outcomes) {
        let delivered: usize = out.delivered.iter().sum();
        let cell = &mut curve[*pi];
        if *is_turbo {
            cell.turbo_delivered += delivered;
        } else {
            cell.baseline_delivered += delivered;
            // every round offers each sender's packet once; count the
            // denominator from one configuration only
            cell.offered += baseline.rounds * senders;
        }
    }
    curve
}

/// Runs many k-sender scenarios across the [`BatchEngine`]; results are
/// in scenario order and independent of the engine's thread count.
pub fn run_sets(
    engine: &BatchEngine,
    scenarios: &[SetScenario],
    cfg: &ExperimentConfig,
) -> Vec<SetOutcome> {
    engine.map(scenarios, |_, s| run_set(s, cfg))
}

/// Outcome of a [`run_sharded_sets`] run: per-set §5.1f outcomes plus
/// how the router spread the buffers over shards.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardedRun {
    /// One [`SetOutcome`] per input set, in input order.
    pub outcomes: Vec<SetOutcome>,
    /// Buffers each shard decoded (`ShardedReceiver::loads`).
    pub shard_loads: Vec<u64>,
}

/// Drives several *disjoint* saturated client sets through **one**
/// sharded AP receiver — the multi-client-set scenario the
/// client-set-hash routing exists for.
///
/// Set `j`'s sender `i` gets the global client id `base_j + i + 1`
/// (bases are cumulative set sizes), and every set's links must sit at
/// globally distinct oscillator offsets — the AP-wide registry tells
/// clients apart by ω (§4.2.1). Each contention round, every set either
/// resolves by carrier sense (k clean slots) or collides with fresh MAC
/// jitter, exactly as in [`run_set`]; the round's buffers from *all*
/// sets are then interleaved into one batch through
/// [`ShardedReceiver::process_batch`](zigzag_core::ShardedReceiver::process_batch), so collisions of different sets
/// land on (and accumulate in) their owning shard's store concurrently.
///
/// Deterministic for a given scenario list and config at **any** shard
/// count — that is the sharding contract, pinned by the testbed tests.
pub fn run_sharded_sets(
    scenarios: &[SetScenario],
    cfg: &ExperimentConfig,
    shard: zigzag_core::ShardConfig,
) -> ShardedRun {
    let bases: Vec<u16> = scenarios
        .iter()
        .scan(0u16, |acc, s| {
            let base = *acc;
            *acc += s.links.len() as u16;
            Some(base)
        })
        .collect();
    let mut registry = ClientRegistry::new();
    for (s, base) in scenarios.iter().zip(&bases) {
        for (i, l) in s.links.iter().enumerate() {
            registry.associate(
                base + i as u16 + 1,
                ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
            );
        }
    }
    let mut rx = zigzag_core::ShardedReceiver::new(cfg.decoder.clone(), shard, registry);
    let policy = Backoff::Exponential;

    let mut rngs: Vec<StdRng> =
        scenarios.iter().map(|s| StdRng::seed_from_u64(s.seed ^ 0x5A4D)).collect();
    let mut txs: Vec<Vec<TxState>> = scenarios
        .iter()
        .zip(&bases)
        .zip(&mut rngs)
        .map(|((s, base), rng)| {
            (0..s.links.len())
                .map(|i| TxState::new(base + i as u16 + 1, 0, cfg.payload, &s.links[i], rng))
                .collect()
        })
        .collect();
    let mut outcomes: Vec<SetOutcome> = scenarios
        .iter()
        .map(|s| SetOutcome {
            delivered: vec![0; s.links.len()],
            offered: vec![0; s.links.len()],
            ..SetOutcome::default()
        })
        .collect();

    for _ in 0..cfg.rounds {
        // Every set contributes this round's buffers; tags remember the
        // owning set of each batch slot.
        let mut batch: Vec<Vec<Complex>> = Vec::new();
        let mut tags: Vec<usize> = Vec::new();
        for (j, s) in scenarios.iter().enumerate() {
            let k = s.links.len();
            let rng = &mut rngs[j];
            if rng.gen_bool(s.p_sense.clamp(0.0, 1.0)) {
                // carrier sense worked: k clean slots
                for tx in txs[j].iter() {
                    let sc = synth_collision(
                        &[PlacedTx { air: &tx.air, base: &tx.chan, start: 0 }],
                        1.0,
                        rng,
                    );
                    batch.push(sc.buffer);
                    tags.push(j);
                }
                outcomes[j].airtime += k as f64;
            } else {
                // all k of the set collide with fresh jitter
                let jitters: Vec<u32> =
                    txs[j].iter().map(|tx| policy.draw(&cfg.mac, tx.retries, rng)).collect();
                let m = *jitters.iter().min().expect("k >= 1");
                let placed: Vec<PlacedTx<'_>> = txs[j]
                    .iter()
                    .zip(&jitters)
                    .map(|(tx, &jit)| PlacedTx {
                        air: &tx.air,
                        base: &tx.chan,
                        start: cfg.mac.slots_to_symbols(jit - m),
                    })
                    .collect();
                let sc = synth_collision(&placed, 1.0, rng);
                batch.push(sc.buffer);
                tags.push(j);
                outcomes[j].airtime += 1.0;
            }
        }

        let events = rx.process_batch(&batch);
        let mut got: Vec<Vec<bool>> =
            scenarios.iter().map(|s| vec![false; s.links.len()]).collect();
        for (evs, &j) in events.iter().zip(&tags) {
            for ev in evs {
                record_set_event(ev, bases[j], &txs[j], &mut got[j], &mut outcomes[j]);
            }
        }
        for (j, s) in scenarios.iter().enumerate() {
            let rng = &mut rngs[j];
            for (i, tx) in txs[j].iter_mut().enumerate() {
                let src = bases[j] + i as u16 + 1;
                if got[j][i] {
                    outcomes[j].delivered[i] += 1;
                    outcomes[j].offered[i] += 1;
                    tx.advance(src, cfg.payload, &s.links[i], rng);
                } else {
                    tx.retries += 1;
                    if tx.retries > cfg.mac.retry_limit {
                        outcomes[j].offered[i] += 1; // dropped
                        tx.advance(src, cfg.payload, &s.links[i], rng);
                    }
                }
            }
        }
    }
    ShardedRun { outcomes, shard_loads: rx.loads().to_vec() }
}

/// One continuous stretch of receiver air synthesized from a k-sender
/// scenario — what the streaming front end (`zigzag_core::stream`)
/// ingests, where every other experiment driver hands the receiver
/// pre-cut buffers.
#[derive(Clone, Debug)]
pub struct StreamAir {
    /// The AP-wide association registry for the scenario's senders.
    pub registry: ClientRegistry,
    /// The air: collision bursts spliced into unit-variance channel
    /// noise.
    pub samples: Vec<Complex>,
    /// Collision bursts spliced in — with gaps longer than the stream
    /// config's `max_packet`, the carver cuts exactly this many regions.
    pub bursts: usize,
}

/// Emits one continuous air for a k-sender scenario: `groups`
/// retransmission groups, each contributing k collisions of the same k
/// frames at fresh MAC jitter (the §4.3 story: enough collisions for a
/// k×k match set), separated by `gap` samples of unit-variance noise.
///
/// The gap must exceed the stream config's `max_packet` for bursts to
/// carve into separate regions. Deterministic in `scenario.seed`.
pub fn continuous_air(
    scenario: &SetScenario,
    cfg: &ExperimentConfig,
    groups: usize,
    gap: usize,
) -> StreamAir {
    let k = scenario.links.len();
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x57AE);
    let ids: Vec<(u16, &LinkProfile)> =
        scenario.links.iter().enumerate().map(|(i, l)| (i as u16 + 1, l)).collect();
    let registry = registry_for(&ids);
    let policy = Backoff::Exponential;
    let mut samples = zigzag_channel::noise::awgn_vec(&mut rng, gap, 1.0);
    let mut bursts = 0;
    for g in 0..groups {
        let txs: Vec<TxState> = (0..k)
            .map(|s| {
                TxState::new(s as u16 + 1, g as u16, cfg.payload, &scenario.links[s], &mut rng)
            })
            .collect();
        for retry in 0..k as u32 {
            let jitters: Vec<u32> =
                txs.iter().map(|_| policy.draw(&cfg.mac, retry, &mut rng)).collect();
            let m = *jitters.iter().min().expect("k >= 1");
            let placed: Vec<PlacedTx<'_>> = txs
                .iter()
                .zip(&jitters)
                .map(|(tx, &jit)| PlacedTx {
                    air: &tx.air,
                    base: &tx.chan,
                    start: cfg.mac.slots_to_symbols(jit - m),
                })
                .collect();
            let sc = synth_collision(&placed, 1.0, &mut rng);
            samples.extend_from_slice(&sc.buffer);
            samples.extend(zigzag_channel::noise::awgn_vec(&mut rng, gap, 1.0));
            bursts += 1;
        }
    }
    StreamAir { registry, samples, bursts }
}

/// Scores one receiver event against a set's in-flight frames, with the
/// set's global client-id base.
fn record_set_event(
    ev: &zigzag_core::ReceiverEvent,
    base: u16,
    tx: &[TxState],
    got: &mut [bool],
    out: &mut SetOutcome,
) {
    use zigzag_core::receiver::DecodePath;
    match ev {
        zigzag_core::ReceiverEvent::Delivered { frame, path } => {
            let s = frame.src.wrapping_sub(base) as usize;
            if s >= 1 && s <= tx.len() && frame.seq == tx[s - 1].seq {
                got[s - 1] = true;
                if *path == DecodePath::Zigzag {
                    out.zigzag_delivered += 1;
                }
                if *path == DecodePath::Recovered {
                    out.recovered_delivered += 1;
                }
            }
        }
        zigzag_core::ReceiverEvent::CollisionStored => out.collisions_stored += 1,
        zigzag_core::ReceiverEvent::DecodeFailed => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig { payload: 200, rounds: 12, ..Default::default() }
    }

    #[test]
    fn hidden_pair_zigzag_beats_802() {
        let mut rng = StdRng::seed_from_u64(1);
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let run = run_pair(&la, &lb, 0.0, &quick_cfg(), 42);
        // 802.11 hidden terminals: both senders mostly lose
        assert!(run.s802.total_throughput() < 0.4, "802.11 {:?}", run.s802.total_throughput());
        // ZigZag: close to the collision-free scheduler (≈1.0)
        assert!(run.zigzag.total_throughput() > 0.6, "zigzag {:?}", run.zigzag.total_throughput());
        assert!(run.zigzag.total_throughput() > run.s802.total_throughput());
    }

    #[test]
    fn perfect_sensing_all_schemes_equal() {
        let mut rng = StdRng::seed_from_u64(2);
        let la = LinkProfile::typical(14.0, &mut rng);
        let lb = LinkProfile::typical(14.0, &mut rng);
        let run = run_pair(&la, &lb, 1.0, &quick_cfg(), 43);
        // with CSMA working there are no collisions: everything ≈ CFS
        assert!(run.s802.total_throughput() > 0.8, "{}", run.s802.total_throughput());
        assert!(run.zigzag.total_throughput() > 0.8);
        assert!(run.cfs.total_throughput() > 0.8);
        assert!(run.s802.loss_rate() < 0.15);
    }

    #[test]
    fn capture_asymmetry_under_802() {
        // strong Alice (22 dB) vs weak Bob (10 dB), hidden: under plain
        // 802.11 Alice captures, Bob starves (§5.5's unfairness).
        let mut rng = StdRng::seed_from_u64(3);
        let la = LinkProfile::typical(22.0, &mut rng);
        let lb = LinkProfile::typical(10.0, &mut rng);
        let run = run_pair(&la, &lb, 0.0, &quick_cfg(), 44);
        assert!(
            run.s802.throughput(0) > run.s802.throughput(1),
            "Alice {} Bob {}",
            run.s802.throughput(0),
            run.s802.throughput(1)
        );
        // ZigZag is at least as fair and at least as fast in aggregate
        assert!(run.zigzag.total_throughput() >= run.s802.total_throughput() - 0.05);
    }

    #[test]
    fn cfs_throughput_near_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let la = LinkProfile::typical(16.0, &mut rng);
        let lb = LinkProfile::typical(16.0, &mut rng);
        let run = run_pair(&la, &lb, 0.0, &quick_cfg(), 45);
        assert!(run.cfs.total_throughput() > 0.85, "{}", run.cfs.total_throughput());
    }

    fn omega_spread_links(k: usize, snr: f64) -> Vec<LinkProfile> {
        let omegas = [-0.08, 0.02, 0.09, -0.03];
        (0..k).map(|s| LinkProfile::clean_with_omega(snr, omegas[s])).collect()
    }

    #[test]
    fn three_hidden_senders_deliver_through_kway_store() {
        // The tentpole flow at testbed level: three hidden senders, every
        // buffer through the receiver pipeline; collisions accumulate in
        // the keyed store until a 3×3 match set decodes.
        let scenarios: Vec<SetScenario> = (0..4)
            .map(|i| SetScenario {
                links: omega_spread_links(3, 17.0),
                p_sense: 0.0,
                seed: 900 + i,
            })
            .collect();
        let cfg = ExperimentConfig { payload: 150, rounds: 18, ..Default::default() };
        let outs = run_sets(&BatchEngine::single_threaded(), &scenarios, &cfg);
        let zigzag: usize = outs.iter().map(|o| o.zigzag_delivered).sum();
        assert!(zigzag > 0, "the k-way matched-collision path must fire: {outs:?}");
        for o in &outs {
            assert!(o.total_throughput() > 0.3, "{o:?}");
            assert!(o.collisions_stored > 0, "hidden senders must produce stored collisions");
        }
    }

    #[test]
    fn degenerate_backoff_delivers_only_with_recovery() {
        // §4.5's Δ₁ = Δ₂ regime at testbed level: every round the two
        // hidden senders collide at identical offsets. The zigzag-only
        // receiver provably delivers nothing; the algebraic recovery
        // path decodes CRC-verified packets out of the same air.
        let scenario = RecoveryScenario {
            links: vec![
                LinkProfile::clean_with_omega(17.0, -0.08),
                LinkProfile::clean_with_omega(17.0, 0.09),
            ],
            offsets: vec![0, 300],
            seed: 224,
        };
        let cfg = ExperimentConfig { payload: 120, rounds: 8, ..Default::default() };
        let plain = run_recovery_set(&scenario, &cfg);
        assert_eq!(
            plain.delivered.iter().sum::<usize>(),
            0,
            "zigzag-only must deliver nothing under degenerate backoff: {plain:?}"
        );
        assert_eq!(plain.recovered_delivered, 0);
        assert!(plain.collisions_stored > 0);

        let cfg_rec = ExperimentConfig { decoder: DecoderConfig::with_recovery(), ..cfg.clone() };
        let rec = run_recovery_set(&scenario, &cfg_rec);
        assert!(
            rec.recovered_delivered >= 2,
            "recovery must decode packets zigzag cannot: {rec:?}"
        );
        assert!(
            rec.delivered.iter().sum::<usize>() > plain.delivered.iter().sum::<usize>(),
            "recovery must raise delivered throughput: {rec:?} vs {plain:?}"
        );
    }

    #[test]
    fn impairment_sweep_turbo_reclaims_at_least_baseline() {
        // The tracked robustness curve in miniature: at the benign point
        // robust() must not lose anything, and at the typical-link
        // phase-noise class the turbo pass must reclaim strictly more.
        use zigzag_channel::fading::{DEFAULT_PHASE_NOISE, DEFAULT_SAMPLING_DRIFT};
        let points = [
            ImpairmentPoint { phase_noise: 0.0, snr_db: 17.0, sampling_drift: 0.0 },
            ImpairmentPoint {
                phase_noise: DEFAULT_PHASE_NOISE,
                snr_db: 15.0,
                sampling_drift: DEFAULT_SAMPLING_DRIFT,
            },
        ];
        let base = ExperimentConfig {
            payload: 120,
            rounds: 6,
            decoder: DecoderConfig::with_recovery(),
            ..Default::default()
        };
        let turbo =
            ExperimentConfig { decoder: DecoderConfig::with_robust_recovery(), ..base.clone() };
        let curve = run_impairment_sweep(
            &BatchEngine::single_threaded(),
            &points,
            2,
            &[41, 42, 43],
            &base,
            &turbo,
        );
        for cell in &curve {
            eprintln!(
                "phase_noise={:.3} snr={:.0} baseline={}/{} turbo={}/{}",
                cell.point.phase_noise,
                cell.point.snr_db,
                cell.baseline_delivered,
                cell.offered,
                cell.turbo_delivered,
                cell.offered,
            );
            assert!(
                cell.turbo_delivered >= cell.baseline_delivered,
                "turbo must never reclaim less than the single-pass solver: {cell:?}"
            );
        }
        assert!(
            curve[1].turbo_delivered > curve[1].baseline_delivered,
            "at the typical phase-noise class the turbo pass must reclaim strictly more: \
             {:?}",
            curve[1]
        );
    }

    #[test]
    fn recovery_sets_are_thread_count_invariant() {
        let scenarios: Vec<RecoveryScenario> = (0..3)
            .map(|i| RecoveryScenario {
                links: vec![
                    LinkProfile::clean_with_omega(17.0, -0.08),
                    LinkProfile::clean_with_omega(17.0, 0.09),
                ],
                offsets: vec![0, 280 + 20 * i as usize],
                seed: 300 + i,
            })
            .collect();
        let cfg = ExperimentConfig {
            payload: 120,
            rounds: 6,
            decoder: DecoderConfig::with_recovery(),
            ..Default::default()
        };
        let seq = run_recovery_sets(&BatchEngine::single_threaded(), &scenarios, &cfg);
        let par = run_recovery_sets(&BatchEngine::new(3), &scenarios, &cfg);
        assert_eq!(seq, par, "run_recovery_sets must be thread-count invariant");
    }

    #[test]
    fn two_sender_set_reduces_to_pair_flow() {
        // k = 2 through run_sets exercises the same pairwise match path
        // run_pairs always used.
        let s = SetScenario { links: omega_spread_links(2, 16.0), p_sense: 0.0, seed: 901 };
        let cfg = ExperimentConfig { payload: 150, rounds: 16, ..Default::default() };
        let out = run_set(&s, &cfg);
        assert!(out.total_throughput() > 0.4, "{out:?}");
        assert!(out.zigzag_delivered > 0, "{out:?}");
    }

    #[test]
    fn sharded_multi_set_run_is_shard_count_invariant() {
        // Two disjoint hidden client sets (a k=2 pair and a k=3 triple)
        // saturating one sharded AP: outcomes must be bit-identical at
        // every shard count — the sharding contract — and the router
        // must actually spread the sets over shards.
        let scenarios = vec![
            SetScenario {
                links: vec![
                    LinkProfile::clean_with_omega(17.0, -0.13),
                    LinkProfile::clean_with_omega(17.0, 0.14),
                ],
                p_sense: 0.0,
                seed: 1201,
            },
            SetScenario { links: omega_spread_links(3, 17.0), p_sense: 0.0, seed: 1202 },
        ];
        let cfg = ExperimentConfig {
            payload: 150,
            rounds: 10,
            decoder: DecoderConfig::shared_ap(),
            ..Default::default()
        };
        let r1 = run_sharded_sets(&scenarios, &cfg, zigzag_core::ShardConfig::with_shards(1));
        let r2 = run_sharded_sets(&scenarios, &cfg, zigzag_core::ShardConfig::with_shards(2));
        let r4 = run_sharded_sets(
            &scenarios,
            &cfg,
            zigzag_core::ShardConfig { shards: 4, queue_depth: 2 },
        );
        assert_eq!(r1.outcomes, r2.outcomes, "2-shard run diverged from single-shard");
        assert_eq!(r1.outcomes, r4.outcomes, "4-shard run diverged from single-shard");
        let zigzag: usize = r1.outcomes.iter().map(|o| o.zigzag_delivered).sum();
        assert!(zigzag > 0, "matched-collision decoding must fire: {:?}", r1.outcomes);
        for o in &r1.outcomes {
            assert!(o.collisions_stored > 0, "hidden sets must store collisions: {o:?}");
        }
        assert!(
            r4.shard_loads.iter().filter(|&&l| l > 0).count() >= 2,
            "multi-set traffic must exercise routing: {:?}",
            r4.shard_loads
        );
    }

    #[test]
    fn batched_sets_match_sequential_runs() {
        let scenarios: Vec<SetScenario> = (0..3)
            .map(|i| SetScenario { links: omega_spread_links(3, 16.0), p_sense: 0.2, seed: 70 + i })
            .collect();
        let cfg = ExperimentConfig { payload: 120, rounds: 9, ..Default::default() };
        let seq = run_sets(&BatchEngine::single_threaded(), &scenarios, &cfg);
        let par = run_sets(&BatchEngine::new(3), &scenarios, &cfg);
        assert_eq!(seq, par, "run_sets must be thread-count invariant");
    }

    #[test]
    fn continuous_air_carves_one_region_per_burst() {
        let scenario = SetScenario {
            links: vec![
                LinkProfile::clean_with_omega(17.0, -0.13),
                LinkProfile::clean_with_omega(17.0, 0.14),
            ],
            p_sense: 0.0,
            seed: 3,
        };
        let cfg = ExperimentConfig { payload: 150, ..Default::default() };
        let air = continuous_air(&scenario, &cfg, 2, 5000);
        assert_eq!(air.bursts, 4, "k collisions per group, k = 2, 2 groups");
        let regions = zigzag_core::stream::carve_buffer(
            &air.samples,
            &cfg.decoder,
            &air.registry,
            &zigzag_core::config::StreamConfig::default(),
        );
        assert_eq!(regions.len(), air.bursts, "gap > max_packet ⇒ one region per burst");
        assert!(regions.iter().all(|r| !r.detections.is_empty()));
    }

    #[test]
    fn batched_pairs_match_sequential_runs() {
        let mut rng = StdRng::seed_from_u64(9);
        let scenarios: Vec<PairScenario> = (0..3)
            .map(|i| PairScenario {
                link_a: LinkProfile::typical(13.0, &mut rng),
                link_b: LinkProfile::typical(13.0, &mut rng),
                p_sense: 0.0,
                seed: 80 + i,
            })
            .collect();
        let cfg = ExperimentConfig { payload: 150, rounds: 6, ..Default::default() };
        let seq = run_pairs(&BatchEngine::single_threaded(), &scenarios, &cfg);
        let par = run_pairs(&BatchEngine::new(3), &scenarios, &cfg);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.zigzag.delivered, b.zigzag.delivered);
            assert_eq!(a.s802.delivered, b.s802.delivered);
            assert_eq!(a.cfs.delivered, b.cfs.delivered);
            assert_eq!(a.zigzag.bit_errors, b.zigzag.bit_errors);
        }
    }
}
