//! Flow experiments: saturated sender pairs under the three compared
//! schemes (§5.1e).
//!
//! * **Current 802.11** — the standard decoder over individual packets;
//!   in a collision each packet is decoded treating the other as noise
//!   (so the capture effect emerges naturally).
//! * **ZigZag** — capture/IC on single collisions plus chunk-by-chunk
//!   decoding of matched collision pairs, exactly the §5.1d flow.
//! * **Collision-Free Scheduler** — each sender in its own time slot.
//!
//! Senders are saturated (always have the next packet ready), retransmit
//! with fresh jitter until delivered or the retry limit, and a packet is
//! *delivered* when its uncoded BER is below 10⁻³ (§5.1f; the paper's
//! footnote notes practical channel codes then meet the packet-error
//! target — equivalently, the AP acks on post-coding success).

use crate::metrics::{delivered, SchemeOutcome};
use rand::prelude::*;
use zigzag_channel::fading::{ChannelParams, LinkProfile};
use zigzag_channel::scenario::{synth_collision, PlacedTx, SynthCollision};
use zigzag_core::capture::capture_decode;
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_core::engine::BatchEngine;
use zigzag_core::schedule::PlanOutcome;
use zigzag_core::standard::decode_single;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_mac::{Backoff, MacParams};
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::frame::{encode_frame, AirFrame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

/// Experiment knobs.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Payload bytes per packet (paper: 1500; smaller values trade
    /// delivery-granularity for speed).
    pub payload: usize,
    /// Number of airtime rounds to simulate per scheme.
    pub rounds: usize,
    /// MAC parameters.
    pub mac: MacParams,
    /// Receiver configuration.
    pub decoder: DecoderConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            payload: 300,
            rounds: 24,
            mac: MacParams::default(),
            decoder: DecoderConfig::default(),
        }
    }
}

/// Results of one pair experiment under all three schemes.
#[derive(Clone, Debug)]
pub struct PairRun {
    /// Current 802.11.
    pub s802: SchemeOutcome,
    /// ZigZag receiver.
    pub zigzag: SchemeOutcome,
    /// Collision-free (TDMA) scheduler.
    pub cfs: SchemeOutcome,
}

/// Per-sender transmit state in the saturated model.
struct TxState {
    seq: u16,
    retries: u32,
    air: AirFrame,
    /// per-packet channel realisation (quasi-static across its
    /// retransmissions)
    chan: ChannelParams,
}

impl TxState {
    fn new(src: u16, seq: u16, payload: usize, link: &LinkProfile, rng: &mut StdRng) -> Self {
        let f = Frame::with_random_payload(0, src, seq, payload, (src as u64) << 32 | seq as u64);
        let air = encode_frame(&f, Modulation::Bpsk, &Preamble::default_len());
        TxState { seq, retries: 0, air, chan: link.draw(rng) }
    }

    fn advance(&mut self, src: u16, payload: usize, link: &LinkProfile, rng: &mut StdRng) {
        self.seq = self.seq.wrapping_add(1);
        *self = TxState::new(src, self.seq, payload, link, rng);
    }
}

/// Builds the association registry for a sender pair (what the AP learned
/// at association time, §4.2.1).
pub fn registry_for(links: &[(u16, &LinkProfile)]) -> ClientRegistry {
    let mut reg = ClientRegistry::new();
    for (id, l) in links {
        reg.associate(
            *id,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }
    reg
}

fn synth_round(
    a: &TxState,
    b: &TxState,
    start_a: usize,
    start_b: usize,
    rng: &mut StdRng,
) -> SynthCollision {
    synth_collision(
        &[
            PlacedTx { air: &a.air, base: &a.chan, start: start_a },
            PlacedTx { air: &b.air, base: &b.chan, start: start_b },
        ],
        1.0,
        rng,
    )
}

fn clean_ber(
    tx: &TxState,
    reg: &ClientRegistry,
    cfg: &ExperimentConfig,
    src: u16,
    rng: &mut StdRng,
) -> f64 {
    let chan = tx.chan.new_transmission(rng);
    let sc = synth_collision(&[PlacedTx { air: &tx.air, base: &chan, start: 0 }], 1.0, rng);
    match decode_single(&sc.buffer, 0, Some(src), reg, &Preamble::default_len(), true, &cfg.decoder)
    {
        Some(d) => bit_error_rate(&tx.air.mpdu_bits, &d.scrambled_bits),
        None => 1.0,
    }
}

/// Runs the Collision-Free Scheduler: alternate clean slots.
fn run_cfs(
    links: [&LinkProfile; 2],
    reg: &ClientRegistry,
    cfg: &ExperimentConfig,
    seed: u64,
) -> SchemeOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCF5);
    let mut out = SchemeOutcome::default();
    let mut tx = [
        TxState::new(1, 0, cfg.payload, links[0], &mut rng),
        TxState::new(2, 0, cfg.payload, links[1], &mut rng),
    ];
    for round in 0..cfg.rounds {
        let s = round % 2;
        let src = (s + 1) as u16;
        let ber = clean_ber(&tx[s], reg, cfg, src, &mut rng);
        out.offered[s] += 1;
        out.airtime += 1.0;
        out.bits += tx[s].air.mpdu_bits.len();
        out.bit_errors += (ber * tx[s].air.mpdu_bits.len() as f64).round() as usize;
        if delivered(ber) {
            out.delivered[s] += 1;
        }
        tx[s].advance(src, cfg.payload, links[s], &mut rng);
    }
    out
}

/// Shared saturated-pair driver; `zigzag` toggles the ZigZag receiver
/// behaviours (capture subtraction, matched-collision decoding).
fn run_contending(
    links: [&LinkProfile; 2],
    p_sense: f64,
    reg: &ClientRegistry,
    cfg: &ExperimentConfig,
    zigzag: bool,
    seed: u64,
) -> SchemeOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ if zigzag { 0x219 } else { 0x802 });
    let mut out = SchemeOutcome::default();
    let mut tx = [
        TxState::new(1, 0, cfg.payload, links[0], &mut rng),
        TxState::new(2, 0, cfg.payload, links[1], &mut rng),
    ];
    // stored unmatched collision: (seqs, signed offset in slots, buffer,
    // starts)
    type StoredRound = ((u16, u16), i64, SynthCollision, [usize; 2]);
    let mut stored: Option<StoredRound> = None;
    let preamble = Preamble::default_len();
    let policy = Backoff::Exponential;

    let handle_delivery =
        |out: &mut SchemeOutcome, tx: &mut [TxState; 2], s: usize, ber: f64, rng: &mut StdRng| {
            out.bits += tx[s].air.mpdu_bits.len();
            out.bit_errors += (ber * tx[s].air.mpdu_bits.len() as f64).round() as usize;
            if delivered(ber) {
                out.delivered[s] += 1;
                out.offered[s] += 1;
                let src = (s + 1) as u16;
                tx[s].advance(src, cfg.payload, links[s], rng);
                true
            } else {
                tx[s].retries += 1;
                if tx[s].retries > cfg.mac.retry_limit {
                    out.offered[s] += 1; // dropped
                    let src = (s + 1) as u16;
                    tx[s].advance(src, cfg.payload, links[s], rng);
                }
                false
            }
        };

    let mut round = 0usize;
    while round < cfg.rounds {
        if rng.gen_bool(p_sense.clamp(0.0, 1.0)) {
            // carrier sense worked: two clean slots
            for s in 0..2 {
                let src = (s + 1) as u16;
                let ber = clean_ber(&tx[s], reg, cfg, src, &mut rng);
                handle_delivery(&mut out, &mut tx, s, ber, &mut rng);
                out.airtime += 1.0;
                round += 1;
            }
            stored = None;
            continue;
        }

        // collision: both transmit with fresh jitter
        let ja = policy.draw(&cfg.mac, tx[0].retries, &mut rng);
        let jb = policy.draw(&cfg.mac, tx[1].retries, &mut rng);
        let m = ja.min(jb);
        let (sa, sb) = (cfg.mac.slots_to_symbols(ja - m), cfg.mac.slots_to_symbols(jb - m));
        let signed_offset = sb as i64 - sa as i64;
        let sc = synth_round(&tx[0], &tx[1], sa, sb, &mut rng);
        out.airtime += 1.0;
        round += 1;

        // capture / interference cancellation (both schemes attempt the
        // strong decode; only ZigZag subtracts to reach the weak one)
        let mut got = [false; 2];
        let order = if tx[0].chan.gain.abs() >= tx[1].chan.gain.abs() { [0, 1] } else { [1, 0] };
        if zigzag {
            let (s_strong, s_weak) = (order[0], order[1]);
            if let Some(res) = capture_decode(
                &sc.buffer,
                if s_strong == 0 { sa } else { sb },
                Some((s_strong + 1) as u16),
                if s_weak == 0 { sa } else { sb },
                Some((s_weak + 1) as u16),
                reg,
                &preamble,
                &cfg.decoder,
            ) {
                let ber_s = bit_error_rate(&tx[s_strong].air.mpdu_bits, &res.strong.scrambled_bits);
                if delivered(ber_s) {
                    got[s_strong] = true;
                    if let Some(w) = &res.weak {
                        let ber_w = bit_error_rate(&tx[s_weak].air.mpdu_bits, &w.scrambled_bits);
                        if delivered(ber_w) {
                            got[s_weak] = true;
                        }
                    }
                }
            }
        } else {
            // plain 802.11: each packet decoded over the raw collision
            for s in 0..2 {
                let start = if s == 0 { sa } else { sb };
                if let Some(d) = decode_single(
                    &sc.buffer,
                    start,
                    Some((s + 1) as u16),
                    reg,
                    &preamble,
                    false,
                    &cfg.decoder,
                ) {
                    let ber = bit_error_rate(&tx[s].air.mpdu_bits, &d.scrambled_bits);
                    got[s] = delivered(ber);
                }
            }
        }

        // ZigZag: match against the stored collision of the same pair
        if zigzag && !(got[0] && got[1]) {
            let key = (tx[0].seq, tx[1].seq);
            if let Some((k, off, prev, starts)) = &stored {
                if *k == key && *off != signed_offset {
                    let dec = ZigzagDecoder::new(cfg.decoder.clone(), reg);
                    let res = dec.decode(
                        &[
                            CollisionSpec {
                                buffer: &prev.buffer,
                                placements: vec![(0, starts[0]), (1, starts[1])],
                            },
                            CollisionSpec {
                                buffer: &sc.buffer,
                                placements: vec![(0, sa), (1, sb)],
                            },
                        ],
                        &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
                    );
                    if res.outcome == PlanOutcome::Complete {
                        for s in 0..2 {
                            let ber = bit_error_rate(
                                &tx[s].air.mpdu_bits,
                                &res.packets[s].scrambled_bits,
                            );
                            got[s] = got[s] || delivered(ber);
                        }
                    }
                }
            }
        }

        // bookkeeping: store this collision if unresolved, then advance
        let both = got[0] && got[1];
        #[allow(clippy::needless_range_loop)] // `s` indexes got/tx/links in lockstep
        for s in 0..2 {
            let ber = if got[s] { 0.0 } else { 1.0 };
            // deliveries already decided; reuse handler for advance logic
            let _ = handle_delivery(&mut out, &mut tx, s, ber, &mut rng);
        }
        stored = if zigzag && !both {
            Some(((tx[0].seq, tx[1].seq), signed_offset, sc, [sa, sb]))
        } else {
            None
        };
    }
    out
}

/// Runs all three schemes for one sender pair.
pub fn run_pair(
    link_a: &LinkProfile,
    link_b: &LinkProfile,
    p_sense: f64,
    cfg: &ExperimentConfig,
    seed: u64,
) -> PairRun {
    let reg = registry_for(&[(1, link_a), (2, link_b)]);
    PairRun {
        s802: run_contending([link_a, link_b], p_sense, &reg, cfg, false, seed),
        zigzag: run_contending([link_a, link_b], p_sense, &reg, cfg, true, seed),
        cfs: run_cfs([link_a, link_b], &reg, cfg, seed),
    }
}

/// One sender-pair scenario for batched runs: everything [`run_pair`]
/// needs, self-contained so units are independent across threads.
#[derive(Clone, Debug)]
pub struct PairScenario {
    /// Sender 1's link to the AP.
    pub link_a: LinkProfile,
    /// Sender 2's link to the AP.
    pub link_b: LinkProfile,
    /// Probability the senders hear each other per round (0 = hidden).
    pub p_sense: f64,
    /// Per-scenario RNG seed (deterministic regardless of scheduling).
    pub seed: u64,
}

/// Runs many sender-pair experiments across the [`BatchEngine`]. Results
/// are in scenario order and bit-for-bit independent of the engine's
/// thread count: each scenario's randomness comes only from its own seed.
pub fn run_pairs(
    engine: &BatchEngine,
    scenarios: &[PairScenario],
    cfg: &ExperimentConfig,
) -> Vec<PairRun> {
    engine.map(scenarios, |_, s| run_pair(&s.link_a, &s.link_b, s.p_sense, cfg, s.seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig { payload: 200, rounds: 12, ..Default::default() }
    }

    #[test]
    fn hidden_pair_zigzag_beats_802() {
        let mut rng = StdRng::seed_from_u64(1);
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let run = run_pair(&la, &lb, 0.0, &quick_cfg(), 42);
        // 802.11 hidden terminals: both senders mostly lose
        assert!(run.s802.total_throughput() < 0.4, "802.11 {:?}", run.s802.total_throughput());
        // ZigZag: close to the collision-free scheduler (≈1.0)
        assert!(run.zigzag.total_throughput() > 0.6, "zigzag {:?}", run.zigzag.total_throughput());
        assert!(run.zigzag.total_throughput() > run.s802.total_throughput());
    }

    #[test]
    fn perfect_sensing_all_schemes_equal() {
        let mut rng = StdRng::seed_from_u64(2);
        let la = LinkProfile::typical(14.0, &mut rng);
        let lb = LinkProfile::typical(14.0, &mut rng);
        let run = run_pair(&la, &lb, 1.0, &quick_cfg(), 43);
        // with CSMA working there are no collisions: everything ≈ CFS
        assert!(run.s802.total_throughput() > 0.8, "{}", run.s802.total_throughput());
        assert!(run.zigzag.total_throughput() > 0.8);
        assert!(run.cfs.total_throughput() > 0.8);
        assert!(run.s802.loss_rate() < 0.15);
    }

    #[test]
    fn capture_asymmetry_under_802() {
        // strong Alice (22 dB) vs weak Bob (10 dB), hidden: under plain
        // 802.11 Alice captures, Bob starves (§5.5's unfairness).
        let mut rng = StdRng::seed_from_u64(3);
        let la = LinkProfile::typical(22.0, &mut rng);
        let lb = LinkProfile::typical(10.0, &mut rng);
        let run = run_pair(&la, &lb, 0.0, &quick_cfg(), 44);
        assert!(
            run.s802.throughput(0) > run.s802.throughput(1),
            "Alice {} Bob {}",
            run.s802.throughput(0),
            run.s802.throughput(1)
        );
        // ZigZag is at least as fair and at least as fast in aggregate
        assert!(run.zigzag.total_throughput() >= run.s802.total_throughput() - 0.05);
    }

    #[test]
    fn cfs_throughput_near_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let la = LinkProfile::typical(16.0, &mut rng);
        let lb = LinkProfile::typical(16.0, &mut rng);
        let run = run_pair(&la, &lb, 0.0, &quick_cfg(), 45);
        assert!(run.cfs.total_throughput() > 0.85, "{}", run.cfs.total_throughput());
    }

    #[test]
    fn batched_pairs_match_sequential_runs() {
        let mut rng = StdRng::seed_from_u64(9);
        let scenarios: Vec<PairScenario> = (0..3)
            .map(|i| PairScenario {
                link_a: LinkProfile::typical(13.0, &mut rng),
                link_b: LinkProfile::typical(13.0, &mut rng),
                p_sense: 0.0,
                seed: 80 + i,
            })
            .collect();
        let cfg = ExperimentConfig { payload: 150, rounds: 6, ..Default::default() };
        let seq = run_pairs(&BatchEngine::single_threaded(), &scenarios, &cfg);
        let par = run_pairs(&BatchEngine::new(3), &scenarios, &cfg);
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.zigzag.delivered, b.zigzag.delivered);
            assert_eq!(a.s802.delivered, b.s802.delivered);
            assert_eq!(a.cfs.delivered, b.cfs.delivered);
            assert_eq!(a.zigzag.bit_errors, b.zigzag.bit_errors);
        }
    }
}
