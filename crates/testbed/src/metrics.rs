//! Evaluation metrics (§5.1f) and distribution utilities.
//!
//! * **BER** — fraction of incorrect bits.
//! * **Packet delivery** — a packet is delivered if its uncoded BER is
//!   below 10⁻³ ("in accordance with typical wireless design, which
//!   targets a maximum BER of 10⁻³ before coding"; practical channel
//!   codes then achieve the target packet error rate).
//! * **Normalized throughput** — delivered packets normalised by the
//!   airtime consumed, in units of packet durations.

/// The §5.1f delivery criterion.
pub const DELIVERY_BER: f64 = 1e-3;

/// `true` if a packet with this BER counts as delivered.
pub fn delivered(ber: f64) -> bool {
    ber < DELIVERY_BER
}

/// Accumulates per-sender outcomes of one scheme over one flow pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchemeOutcome {
    /// Packets delivered per sender.
    pub delivered: [usize; 2],
    /// Packets offered per sender.
    pub offered: [usize; 2],
    /// Total airtime consumed, in packet durations.
    pub airtime: f64,
    /// Total bit errors across scored packets (for BER curves).
    pub bit_errors: usize,
    /// Total bits scored.
    pub bits: usize,
}

impl SchemeOutcome {
    /// Per-sender normalized throughput (delivered packets per unit
    /// airtime).
    pub fn throughput(&self, sender: usize) -> f64 {
        if self.airtime <= 0.0 {
            0.0
        } else {
            self.delivered[sender] as f64 / self.airtime
        }
    }

    /// Aggregate normalized throughput of the pair.
    pub fn total_throughput(&self) -> f64 {
        self.throughput(0) + self.throughput(1)
    }

    /// Per-flow packet loss rate (the paper's Fig 5-6/5-8 unit: "loss
    /// rates of individual sender-receiver pairs, i.e., the flows").
    pub fn flow_loss(&self, sender: usize) -> f64 {
        if self.offered[sender] == 0 {
            return 0.0;
        }
        1.0 - self.delivered[sender] as f64 / self.offered[sender] as f64
    }

    /// Packet loss rate over both senders.
    pub fn loss_rate(&self) -> f64 {
        let offered: usize = self.offered.iter().sum();
        if offered == 0 {
            return 0.0;
        }
        let delivered: usize = self.delivered.iter().sum();
        1.0 - delivered as f64 / offered as f64
    }

    /// Aggregate BER over scored bits.
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }
}

/// Empirical distribution helper for the CDF figures (5-5, 5-6, 5-8, 5-9).
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Empirical CDF evaluated at `x`: fraction of observations ≤ x.
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&v| v <= x).count() as f64 / self.values.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the observations.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut v = self.values.clone();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }

    /// `(x, F(x))` points of the empirical CDF, for plotting/printing.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        let mut v = self.values.clone();
        v.sort_by(f64::total_cmp);
        let n = v.len() as f64;
        v.into_iter().enumerate().map(|(i, x)| (x, (i + 1) as f64 / n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_threshold() {
        assert!(delivered(0.0));
        assert!(delivered(9.9e-4));
        assert!(!delivered(1e-3));
        assert!(!delivered(0.5));
    }

    #[test]
    fn throughput_accounting() {
        let o = SchemeOutcome {
            delivered: [10, 5],
            offered: [10, 10],
            airtime: 20.0,
            bit_errors: 0,
            bits: 0,
        };
        assert!((o.throughput(0) - 0.5).abs() < 1e-12);
        assert!((o.throughput(1) - 0.25).abs() < 1e-12);
        assert!((o.total_throughput() - 0.75).abs() < 1e-12);
        assert!((o.loss_rate() - 0.25).abs() < 1e-12);
        assert!((o.flow_loss(0) - 0.0).abs() < 1e-12);
        assert!((o.flow_loss(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_airtime_is_zero_throughput() {
        let o = SchemeOutcome::default();
        assert_eq!(o.throughput(0), 0.0);
        assert_eq!(o.loss_rate(), 0.0);
        assert_eq!(o.ber(), 0.0);
    }

    #[test]
    fn samples_statistics() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.cdf_at(2.0) - 0.5).abs() < 1e-12);
        assert!((s.cdf_at(0.0)).abs() < 1e-12);
        assert!((s.cdf_at(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_points_monotone() {
        let mut s = Samples::new();
        for v in [0.5, 0.1, 0.9, 0.3] {
            s.push(v);
        }
        let pts = s.cdf_points();
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
