//! The 14-node testbed (§5.1, Fig 5-1).
//!
//! A synthetic stand-in for the paper's indoor GNURadio testbed: 14 nodes
//! placed in a 2-D floor plan, per-link SNRs from log-distance path loss
//! with seeded shadowing, and carrier-sense classification per sender
//! pair. The default construction is tuned so the sender-pair mix is
//! close to the paper's "12% of the sender-receiver pairs are hidden
//! terminals, 8% sense each other partially, and 80% sense each other
//! perfectly" (§1, §5.6); the exact fractions for a given seed are
//! reported by [`Testbed::sensing_mix`].

use zigzag_channel::pathloss::{PathLossModel, Sensing};

/// Number of nodes, as in the paper.
pub const NODES: usize = 14;

/// The synthetic testbed.
#[derive(Clone, Debug)]
pub struct Testbed {
    /// Node positions (arbitrary indoor units).
    pub positions: Vec<(f64, f64)>,
    /// Path-loss model.
    pub model: PathLossModel,
    /// Below this inter-sender SNR, senders cannot hear each other.
    pub hidden_below_db: f64,
    /// Above this inter-sender SNR, carrier sense always works.
    pub perfect_above_db: f64,
}

impl Testbed {
    /// The default 14-node testbed with the paper-like sensing mix.
    pub fn paper_like(seed: u64) -> Self {
        // A spread-out indoor layout: two rooms and a corridor.
        let positions = vec![
            (0.0, 0.0),
            (2.0, 1.0),
            (4.0, 0.5),
            (6.0, 1.5),
            (8.0, 0.0),
            (10.0, 1.0),
            (1.0, 4.0),
            (3.0, 5.0),
            (5.0, 4.5),
            (7.0, 5.5),
            (9.0, 4.0),
            (11.0, 5.0),
            (2.5, 8.0),
            (8.5, 8.5),
        ];
        Self {
            positions,
            model: PathLossModel { seed, ..PathLossModel::default() },
            hidden_below_db: 6.5,
            perfect_above_db: 10.5,
        }
    }

    /// SNR of the link `a → b` in dB.
    pub fn link_snr_db(&self, a: usize, b: usize) -> f64 {
        self.model.snr_db(a, self.positions[a], b, self.positions[b])
    }

    /// Sensing relation between two senders.
    pub fn sensing(&self, a: usize, b: usize) -> Sensing {
        Sensing::classify(self.link_snr_db(a, b), self.hidden_below_db, self.perfect_above_db)
    }

    /// All sender pairs `(a, b)` with `a < b`.
    pub fn sender_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.positions.len();
        let mut out = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                out.push((a, b));
            }
        }
        out
    }

    /// Fraction of sender pairs that are (hidden, partial, perfect).
    pub fn sensing_mix(&self) -> (f64, f64, f64) {
        let pairs = self.sender_pairs();
        let n = pairs.len() as f64;
        let mut hidden = 0.0;
        let mut partial = 0.0;
        let mut perfect = 0.0;
        for (a, b) in pairs {
            match self.sensing(a, b) {
                Sensing::Hidden => hidden += 1.0,
                Sensing::Partial(_) => partial += 1.0,
                Sensing::Perfect => perfect += 1.0,
            }
        }
        (hidden / n, partial / n, perfect / n)
    }

    /// APs reachable by both senders with at least `min_snr_db`
    /// (candidates for a flow experiment).
    pub fn common_aps(&self, a: usize, b: usize, min_snr_db: f64) -> Vec<usize> {
        (0..self.positions.len())
            .filter(|&ap| {
                ap != a
                    && ap != b
                    && self.link_snr_db(a, ap) >= min_snr_db
                    && self.link_snr_db(b, ap) >= min_snr_db
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_fourteen_nodes() {
        assert_eq!(Testbed::paper_like(7).positions.len(), NODES);
    }

    #[test]
    fn sensing_mix_close_to_paper() {
        // §1: 12% hidden / 8% partial / 80% perfect. With 91 pairs and a
        // synthetic floor plan we accept a loose band; the benches report
        // the exact measured mix.
        let tb = Testbed::paper_like(7);
        let (h, p, f) = tb.sensing_mix();
        assert!((0.02..0.30).contains(&h), "hidden {h}");
        assert!((0.0..0.30).contains(&p), "partial {p}");
        assert!((0.5..0.98).contains(&f), "perfect {f}");
        assert!((h + p + f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sensing_is_symmetric() {
        let tb = Testbed::paper_like(3);
        for (a, b) in tb.sender_pairs() {
            assert_eq!(tb.sensing(a, b).probability(), tb.sensing(b, a).probability());
        }
    }

    #[test]
    fn pair_count() {
        assert_eq!(Testbed::paper_like(1).sender_pairs().len(), 91);
    }

    #[test]
    fn common_aps_exist_for_most_pairs() {
        let tb = Testbed::paper_like(7);
        let with_ap = tb
            .sender_pairs()
            .into_iter()
            .filter(|&(a, b)| !tb.common_aps(a, b, 6.0).is_empty())
            .count();
        assert!(with_ap > 40, "only {with_ap} pairs have a common AP");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Testbed::paper_like(9);
        let b = Testbed::paper_like(9);
        assert_eq!(a.link_snr_db(0, 5), b.link_snr_db(0, 5));
    }
}
