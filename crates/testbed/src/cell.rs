//! Signal-level collision resolver for the cell co-simulator.
//!
//! [`SignalResolver`] is the slow path of `zigzag_mac::cell`: the
//! simulator lowers a [`CollisionRound`] here, and this module
//! synthesises the collided air — one quasi-static channel per episode
//! member, fresh per-round phase/timing, slot offsets scaled to PHY
//! symbols plus sub-slot jitter — and decodes it through the real
//! receiver pipeline via [`CollisionService`]. Per-episode receivers
//! keep stored collisions alive across rounds, so ZigZag pairs peel and
//! a later clean solo reaps its buried peers (§4.1).
//!
//! **Determinism.** Every random draw is keyed: member channels by
//! `(seed, episode, station)`, payloads by `(seed, episode, station,
//! seq)`, per-round synthesis by `(seed, episode, round, slot)`. Decode
//! fan-out runs over a `BatchEngine` whose outputs are order-stable, so
//! resolutions are bit-identical across thread counts.

use std::collections::HashMap;

use rand::prelude::*;
use zigzag_channel::fading::{ChannelParams, LinkProfile};
use zigzag_channel::scenario::{synth_collision, PlacedTx};
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_core::receiver::ReceiverEvent;
use zigzag_core::{CollisionService, EpisodeRound};
use zigzag_mac::cell::{
    mix3, CollisionResolver, CollisionRound, FrameRef, RoundResolution, Verdict,
};
use zigzag_phy::frame::{encode_frame, AirFrame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

const CHAN_TAG: u64 = 0x5a5a_4348_414e_4e45; // "ZZCHANNE"
const FRAME_TAG: u64 = 0x5a5a_4652_414d_4553; // "ZZFRAMES"
const AIR_TAG: u64 = 0x5a5a_4149_5252_4e47; // "ZZAIRRNG"

/// Knobs of the signal-level lowering.
#[derive(Clone, Debug)]
pub struct SignalCellConfig {
    /// Master seed; every stream below derives from it.
    pub seed: u64,
    /// Decode worker threads (`0` = one per CPU).
    pub threads: usize,
    /// Receiver configuration. The default enables the §4.1 solo reap —
    /// without it, lowered solo rounds can never recover peers.
    pub decoder: DecoderConfig,
    /// Per-member link SNR (dB).
    pub snr_db: f64,
    /// Payload bytes of synthesised frames.
    pub payload_bytes: usize,
    /// PHY symbols per MAC slot (802.11g Appendix A: 20 µs slot / 2 µs
    /// symbol = 10).
    pub symbols_per_slot: usize,
    /// Sub-slot start jitter in symbols — the §1 "short random interval"
    /// that gives slot-aligned (ALOHA) collisions their ZigZag Δ.
    pub jitter_symbols: usize,
}

impl SignalCellConfig {
    /// Defaults for `seed`: reaping receiver, 17 dB links, 80-byte
    /// payloads, 802.11g slot scaling, 16-symbol jitter.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            threads: 1,
            decoder: DecoderConfig::with_solo_reap(),
            snr_db: 17.0,
            payload_bytes: 40,
            symbols_per_slot: 10,
            jitter_symbols: 8,
        }
    }
}

/// One episode member's synthesis state: rank-based client identity, the
/// encoded frame, and a quasi-static channel reused across the episode's
/// rounds (fresh phase and sampling offset are drawn per transmission,
/// as in the scenario builders).
struct Member {
    client: u16,
    seq: u32,
    air: AirFrame,
    chan: ChannelParams,
}

struct EpisodeAir {
    members: HashMap<u32, Member>,
    registry: ClientRegistry,
}

/// Decodes lowered collision rounds through the real receiver pipeline.
pub struct SignalResolver {
    cfg: SignalCellConfig,
    svc: CollisionService,
    episodes: HashMap<u64, EpisodeAir>,
    rounds_decoded: u64,
}

impl SignalResolver {
    /// A resolver lowering with `cfg`.
    pub fn new(cfg: SignalCellConfig) -> Self {
        let svc = CollisionService::new(cfg.decoder.clone(), cfg.threads);
        Self { cfg, svc, episodes: HashMap::new(), rounds_decoded: 0 }
    }

    /// Convenience: default config for `seed` over `threads` workers.
    pub fn with_seed(seed: u64, threads: usize) -> Self {
        Self::new(SignalCellConfig { threads, ..SignalCellConfig::new(seed) })
    }

    /// Rounds actually synthesised and decoded so far.
    pub fn rounds_decoded(&self) -> u64 {
        self.rounds_decoded
    }

    /// Episodes currently holding receiver + synthesis state.
    pub fn active_episodes(&self) -> usize {
        self.episodes.len()
    }

    /// Distinct oscillator lane per member rank: the AP tells clients
    /// apart by frequency-compensated correlation (§4.2.1), so every
    /// member of an episode sits at its own ω.
    fn lane(rank: usize) -> f64 {
        0.01 + 0.015 * rank as f64
    }

    /// Gets or creates the member entry for `(station, seq)` in
    /// `episode`, registering it with the episode's receiver registry.
    fn member_for(
        cfg: &SignalCellConfig,
        air: &mut EpisodeAir,
        episode: u64,
        station: u32,
        seq: u32,
    ) -> u16 {
        if let Some(m) = air.members.get(&station) {
            return m.client;
        }
        let rank = air.members.len();
        let client = rank as u16 + 1;
        let link = LinkProfile::clean_with_omega(cfg.snr_db, Self::lane(rank));
        let mut chan_rng =
            StdRng::seed_from_u64(mix3(cfg.seed ^ CHAN_TAG, episode, u64::from(station)));
        let chan = link.draw(&mut chan_rng);
        let payload_seed =
            mix3(cfg.seed ^ FRAME_TAG, episode, (u64::from(station) << 32) | u64::from(seq));
        let frame =
            Frame::with_random_payload(0, client, seq as u16, cfg.payload_bytes, payload_seed);
        let encoded = encode_frame(&frame, Modulation::Bpsk, &Preamble::default_len());
        air.registry.associate(
            client,
            ClientInfo {
                omega: link.association_omega(),
                snr_db: link.snr_db,
                taps: link.isi.clone(),
            },
        );
        air.members.insert(station, Member { client, seq, air: encoded, chan });
        client
    }

    /// Lowers one round to an [`EpisodeRound`]: ensures members exist,
    /// then synthesises the receive buffer.
    fn lower_round(&mut self, round: &CollisionRound) -> EpisodeRound {
        let air = self.episodes.entry(round.episode).or_insert_with(|| EpisodeAir {
            members: HashMap::new(),
            registry: ClientRegistry::new(),
        });
        for tx in &round.txs {
            Self::member_for(&self.cfg, air, round.episode, tx.station, tx.seq);
        }
        let mut rng = StdRng::seed_from_u64(mix3(
            self.cfg.seed ^ AIR_TAG,
            round.episode,
            (u64::from(round.round) << 48) ^ round.slot,
        ));
        let jitter_max = self.cfg.jitter_symbols.max(1);
        let placed: Vec<(usize, &Member)> = round
            .txs
            .iter()
            .map(|tx| {
                let start = tx.offset_slots as usize * self.cfg.symbols_per_slot
                    + rng.gen_range(0..jitter_max as u32) as usize;
                (start, &air.members[&tx.station])
            })
            .collect();
        let placements: Vec<PlacedTx<'_>> = placed
            .iter()
            .map(|(start, m)| PlacedTx { air: &m.air, base: &m.chan, start: *start })
            .collect();
        let synth = synth_collision(&placements, 1.0, &mut rng);
        self.rounds_decoded += 1;
        EpisodeRound {
            episode: round.episode,
            registry: air.registry.clone(),
            buffer: synth.buffer,
        }
    }

    /// Maps one round's receiver events back onto MAC verdicts.
    fn adjudicate(&self, round: &CollisionRound, events: &[ReceiverEvent]) -> RoundResolution {
        let air = &self.episodes[&round.episode];
        let client_to_station: HashMap<u16, (u32, u32)> =
            air.members.iter().map(|(&st, m)| (m.client, (st, m.seq))).collect();
        let mut delivered_stations: Vec<(u32, u32)> = events
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Delivered { frame, .. } => {
                    client_to_station.get(&frame.src).copied()
                }
                _ => None,
            })
            .collect();
        delivered_stations.sort_unstable();
        delivered_stations.dedup();
        let stored = events.iter().any(|e| matches!(e, ReceiverEvent::CollisionStored))
            || self.svc.episode_depth(round.episode).unwrap_or(0) > 0;
        let verdicts = round
            .txs
            .iter()
            .map(|tx| {
                if delivered_stations.iter().any(|&(st, _)| st == tx.station) {
                    Verdict::Delivered
                } else if stored {
                    Verdict::Pending
                } else {
                    Verdict::Lost
                }
            })
            .collect();
        // deliveries of members who were NOT transmitting this round can
        // only come from reaping the store (§4.1)
        let mut recovered: Vec<FrameRef> = delivered_stations
            .iter()
            .filter(|(st, _)| !round.txs.iter().any(|tx| tx.station == *st))
            .map(|&(station, seq)| FrameRef { station, seq })
            .collect();
        recovered.sort_unstable();
        RoundResolution { verdicts, recovered, lowered: true }
    }
}

impl CollisionResolver for SignalResolver {
    fn resolve(&mut self, rounds: &[CollisionRound]) -> Vec<RoundResolution> {
        let service_rounds: Vec<EpisodeRound> =
            rounds.iter().map(|r| self.lower_round(r)).collect();
        let events = self.svc.decode_rounds(&service_rounds);
        rounds.iter().zip(&events).map(|(r, ev)| self.adjudicate(r, ev)).collect()
    }

    fn retire(&mut self, episode: u64) {
        self.episodes.remove(&episode);
        self.svc.retire(episode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_mac::cell::TxAttempt;

    fn pair_round(episode: u64, round_no: u32, slot: u64, d: u32) -> CollisionRound {
        CollisionRound {
            episode,
            round: round_no,
            slot,
            cell: 0,
            txs: vec![
                TxAttempt { station: 10, seq: 3, attempt: round_no - 1, offset_slots: 0 },
                TxAttempt { station: 20, seq: 5, attempt: round_no - 1, offset_slots: d },
            ],
            peers: Vec::new(),
        }
    }

    fn solo_round(episode: u64, round_no: u32, slot: u64) -> CollisionRound {
        CollisionRound {
            episode,
            round: round_no,
            slot,
            cell: 0,
            txs: vec![TxAttempt { station: 10, seq: 3, attempt: round_no, offset_slots: 0 }],
            peers: vec![FrameRef { station: 20, seq: 5 }],
        }
    }

    /// Runs a two-collision episode across a seed range and returns how
    /// often both members were eventually delivered.
    fn pair_success_rate(seeds: std::ops::Range<u64>) -> f64 {
        let total = seeds.end - seeds.start;
        let mut ok = 0u32;
        for seed in seeds {
            let mut r = SignalResolver::with_seed(seed, 1);
            let r1 = r.resolve(&[pair_round(1, 1, 100, 8)]);
            let r2 = r.resolve(&[pair_round(1, 2, 200, 20)]);
            let mut delivered = [false; 2];
            for res in [&r1[0], &r2[0]] {
                for (i, v) in res.verdicts.iter().enumerate() {
                    if *v == Verdict::Delivered {
                        delivered[i] = true;
                    }
                }
                for fr in &res.recovered {
                    if fr.station == 10 {
                        delivered[0] = true;
                    }
                    if fr.station == 20 {
                        delivered[1] = true;
                    }
                }
            }
            if delivered == [true, true] {
                ok += 1;
            }
        }
        f64::from(ok) / total as f64
    }

    #[test]
    fn pair_peels_across_rounds() {
        // decode success per round is probabilistic (timing/phase draws
        // and the size of the interference-free bootstrap stretch);
        // across seeds the two-collision pair must resolve a healthy
        // fraction of the time
        let rate = pair_success_rate(0..24);
        assert!(rate >= 0.4, "pair peel success rate {rate} too low");
    }

    #[test]
    fn first_collision_is_stored_not_lost() {
        let mut r = SignalResolver::with_seed(3, 1);
        let res = r.resolve(&[pair_round(1, 1, 100, 4)]);
        assert!(res[0].lowered);
        assert_eq!(res[0].verdicts.len(), 2);
        assert!(
            res[0].verdicts.iter().any(|v| *v != Verdict::Delivered),
            "a first 2-way collision should not fully resolve: {:?}",
            res[0].verdicts
        );
        assert!(
            res[0].verdicts.iter().all(|v| *v != Verdict::Lost),
            "the stored collision keeps undecoded members pending: {:?}",
            res[0].verdicts
        );
    }

    #[test]
    fn solo_reaps_buried_peer_at_the_signal_level() {
        // collision then a clean solo of station 10: across seeds, the
        // §4.1 reap must recover station 20's frame in a healthy fraction
        let mut reaped = 0u32;
        let trials = 24u64;
        for seed in 0..trials {
            let mut r = SignalResolver::with_seed(seed, 1);
            let _ = r.resolve(&[pair_round(1, 1, 100, 8)]);
            let res = r.resolve(&[solo_round(1, 1, 200)]);
            if res[0].recovered.contains(&FrameRef { station: 20, seq: 5 }) {
                reaped += 1;
            }
        }
        let rate = f64::from(reaped) / trials as f64;
        assert!(rate >= 0.4, "solo reap rate {rate} too low");
    }

    #[test]
    fn resolutions_are_deterministic_across_thread_counts() {
        let rounds1 = [pair_round(1, 1, 100, 4), pair_round(2, 1, 100, 7)];
        let rounds2 = [pair_round(1, 2, 200, 9), solo_round(2, 1, 200)];
        let mut outs = Vec::new();
        for threads in [1, 2, 4] {
            let mut r = SignalResolver::with_seed(11, threads);
            let a = r.resolve(&rounds1);
            let b = r.resolve(&rounds2);
            outs.push((a, b));
        }
        assert_eq!(outs[0], outs[1], "1 vs 2 threads");
        assert_eq!(outs[0], outs[2], "1 vs 4 threads");
    }

    #[test]
    fn retire_releases_state() {
        let mut r = SignalResolver::with_seed(5, 1);
        let _ = r.resolve(&[pair_round(1, 1, 100, 4)]);
        assert_eq!(r.active_episodes(), 1);
        r.retire(1);
        assert_eq!(r.active_episodes(), 0);
    }
}
