//! # zigzag-testbed — the 14-node evaluation harness
//!
//! Rebuilds the paper's experimental environment (§5.1–5.2): a 14-node
//! topology with per-link SNRs and carrier-sense relationships
//! ([`topology`]), saturated sender-pair flow experiments under the three
//! compared schemes ([`experiment`]), and the §5.1f metrics — BER,
//! the BER<10⁻³ delivery rule, normalized throughput, CDFs
//! ([`metrics`]).
//!
//! The evaluation binaries in `crates/bench` drive this crate to
//! regenerate every figure of Chapter 5.

#![warn(missing_docs)]

pub mod cell;
pub mod experiment;
pub mod metrics;
pub mod topology;

pub use cell::{SignalCellConfig, SignalResolver};

pub use experiment::{
    continuous_air, impaired_recovery_scenario, registry_for, run_impairment_sweep, run_pair,
    run_pairs, run_set, run_sets, run_sharded_sets, ExperimentConfig, ImpairmentPoint, PairRun,
    PairScenario, ReclaimPoint, SetOutcome, SetScenario, ShardedRun, StreamAir,
};
pub use metrics::{delivered, Samples, SchemeOutcome, DELIVERY_BER};
pub use topology::Testbed;
