//! End-to-end determinism-contract tests: the symbolic cell simulator
//! ([`zigzag_mac::cell`]) driving the real signal-level receiver through
//! the testbed's [`SignalResolver`].
//!
//! The contracts pinned here are the ones the million-station runs lean
//! on: thread-count invariance of the lowered path, equivalence of the
//! [`SplitResolver`] at its sampling extremes (1.0 ≡ direct signal
//! resolver, 0.0 ≡ pure symbolic model), and the cross-validation loop
//! that refits the [`DecodeModel`] from measured signal-level outcomes.

use zigzag_mac::cell::{
    run_cell, ArrivalModel, CellConfig, CellOutcome, DecodeModel, Discipline, SensingGraph,
    SplitResolver,
};
use zigzag_mac::{Backoff, MacParams};
use zigzag_testbed::SignalResolver;

fn cell_cfg(stations: u32, slots: u64, per_slot: f64, seed: u64) -> CellConfig {
    CellConfig {
        stations,
        slots,
        discipline: Discipline::Dcf { policy: Backoff::Exponential },
        sensing: SensingGraph::hidden_groups(1, 2),
        arrivals: ArrivalModel::Poisson { per_slot },
        packet_slots: 12,
        ack_slots: 2,
        mac: MacParams::default(),
        seed,
        record_trace: false,
    }
}

/// A run whose sampled episodes lower through the real receiver.
fn lowered_run(seed: u64, threads: usize, rate: f64) -> CellOutcome {
    let cfg = cell_cfg(60, 1_500, 0.06, seed);
    let mut signal = SignalResolver::with_seed(seed, threads);
    let mut split = SplitResolver::new(DecodeModel::zigzag_ap(seed), &mut signal, rate, 4, seed);
    run_cell(&cfg, &mut split)
}

#[test]
fn lowered_runs_are_identical_across_thread_counts() {
    let a = lowered_run(11, 1, 1.0);
    assert!(a.stats.lowered_rounds > 0, "the run must actually lower collisions");
    let b = lowered_run(11, 2, 1.0);
    let c = lowered_run(11, 4, 1.0);
    assert_eq!(a.trace_hash, b.trace_hash, "1 vs 2 decode threads");
    assert_eq!(a.trace_hash, c.trace_hash, "1 vs 4 decode threads");
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.counters, c.counters);
}

#[test]
fn full_sampling_equals_the_direct_signal_resolver() {
    let cfg = cell_cfg(60, 1_500, 0.06, 5);
    let split = {
        let mut signal = SignalResolver::with_seed(5, 1);
        let mut r = SplitResolver::new(DecodeModel::zigzag_ap(5), &mut signal, 1.0, 64, 5);
        run_cell(&cfg, &mut r)
    };
    let mut direct = SignalResolver::with_seed(5, 1);
    let d = run_cell(&cfg, &mut direct);
    assert!(
        split.stats.max_k <= 64,
        "premise: no episode wider than the split cap (saw k = {})",
        split.stats.max_k
    );
    assert!(split.stats.lowered_rounds > 0, "the run must actually lower collisions");
    assert_eq!(split.trace_hash, d.trace_hash, "rate 1.0 must replay the direct resolver");
    assert_eq!(split.stats, d.stats);
    assert_eq!(split.counters, d.counters);
}

#[test]
fn zero_sampling_equals_the_pure_model() {
    let cfg = cell_cfg(400, 3_000, 0.08, 21);
    let mut signal = SignalResolver::with_seed(21, 1);
    let mut split = SplitResolver::new(DecodeModel::zigzag_ap(21), &mut signal, 0.0, 4, 21);
    let a = run_cell(&cfg, &mut split);
    let b = run_cell(&cfg, &mut DecodeModel::zigzag_ap(21));
    assert_eq!(a.trace_hash, b.trace_hash, "rate 0.0 must replay the pure model");
    assert_eq!(a.stats, b.stats);
    assert_eq!(signal.rounds_decoded(), 0, "nothing may reach the signal level at rate 0");
}

#[test]
fn lowered_verdicts_reach_backoff_state() {
    let out = lowered_run(7, 2, 1.0);
    let s = &out.stats;
    assert!(s.lowered_rounds > 0, "collisions must lower");
    assert!(
        s.lowered_deliveries + s.lowered_retries > 0,
        "signal-level verdicts must feed back into station state"
    );
}

#[test]
fn sampled_lowering_cross_validates_the_model() {
    let mut cfg = cell_cfg(100, 8_000, 0.05, 33);
    cfg.mac.cw_min = 7;
    cfg.mac.cw_max = 15;
    let mut signal = SignalResolver::with_seed(33, 0);
    let prior = DecodeModel::zigzag_ap(33);
    let mut split = SplitResolver::new(prior.clone(), &mut signal, 1.0, 4, 33);
    let _ = run_cell(&cfg, &mut split);
    let tally = split.signal_tally().clone();

    let (rate, n) = tally.rate_all_from(2, 2).expect("lowered pair rounds must be observed");
    println!("measured signal-level pair rate {rate:.3} over {n} rounds");
    assert!(n >= 8, "need a usable sample of lowered pair rounds, got {n}");

    // the fit must adopt the measured rate when the sample suffices and
    // keep the prior when it does not
    let fitted = prior.fit(&tally, n);
    assert!((fitted.p_pair - rate).abs() < 1e-12, "fit must adopt the measured pair rate");
    assert!((0.0..=1.0).contains(&fitted.p_pair));
    let kept = prior.fit(&tally, n + 1);
    assert!((kept.p_pair - prior.p_pair).abs() < 1e-12, "undersampled buckets keep the prior");
    assert_eq!(fitted.predicted_all(2, 2), fitted.p_pair);
}
