//! Ready-made collision scenarios.
//!
//! These builders assemble the situations the evaluation runs over and
//! over: the canonical hidden-terminal retransmission pair of Fig 1-2
//! (same two packets, colliding twice with different offsets Δ₁ ≠ Δ₂),
//! its k-sender generalisation (§4.5), and single collisions for the
//! capture-effect scenarios of Fig 4-1(d)/(e).
//!
//! A scenario carries, besides the receive buffers, the **ground truth**
//! (who transmitted what, where, through which channel realisation) so
//! experiments can score BER, and the **receiver-visible knowledge** (the
//! per-client coarse frequency estimates from association, §4.2.1).

use crate::fading::{ChannelParams, LinkProfile};
use crate::mixer::{mix, Arrival};
use rand::Rng;
use zigzag_phy::complex::Complex;
use zigzag_phy::frame::AirFrame;

/// Ground truth for one packet inside one synthesized collision.
#[derive(Clone, Debug)]
pub struct TxTruth {
    /// Sender node id (matches `AirFrame.frame.src`).
    pub sender: u16,
    /// Sample index where the packet starts in the receive buffer.
    pub start: usize,
    /// Exact channel realisation the packet traversed.
    pub params: ChannelParams,
}

/// One synthesized receive buffer plus its ground truth.
#[derive(Clone, Debug)]
pub struct SynthCollision {
    /// The receive buffer (signals + noise).
    pub buffer: Vec<Complex>,
    /// Per-packet ground truth, in transmission order.
    pub truth: Vec<TxTruth>,
}

/// Specification of one packet's placement in a collision to synthesize.
pub struct PlacedTx<'a> {
    /// The encoded frame.
    pub air: &'a AirFrame,
    /// The quasi-static channel (a fresh transmission phase/µ is drawn).
    pub base: &'a ChannelParams,
    /// Start offset in samples.
    pub start: usize,
}

/// Extra noise-only samples kept past the last packet.
pub const TAIL_PAD: usize = 64;

/// Synthesizes one receive buffer from placed transmissions, drawing fresh
/// per-transmission phase and sampling offset for each, and adding
/// unit-variance receiver noise (scaled by `sigma`).
pub fn synth_collision<R: Rng + ?Sized>(
    placed: &[PlacedTx<'_>],
    sigma: f64,
    rng: &mut R,
) -> SynthCollision {
    let mut arrivals = Vec::with_capacity(placed.len());
    let mut truth = Vec::with_capacity(placed.len());
    for p in placed {
        let params = p.base.new_transmission(rng);
        let rx = params.apply(&p.air.symbols, rng);
        arrivals.push(Arrival::new(rx, p.start));
        truth.push(TxTruth { sender: p.air.frame.src, start: p.start, params });
    }
    SynthCollision { buffer: mix(&arrivals, TAIL_PAD, sigma, rng), truth }
}

/// The canonical two-sender hidden-terminal scenario: the same two packets
/// collide twice, Alice first at offset 0 in both collisions, Bob at
/// Δ₁/Δ₂ (§4.2.3, Fig 4-3).
#[derive(Clone, Debug)]
pub struct HiddenPair {
    /// First collision.
    pub collision1: SynthCollision,
    /// Second collision.
    pub collision2: SynthCollision,
    /// Bob's offset in collision 1 (samples).
    pub delta1: usize,
    /// Bob's offset in collision 2 (samples).
    pub delta2: usize,
}

/// Builds a [`HiddenPair`] for the given frames, link profiles and offsets.
/// Each sender's channel realisation (gain magnitude, ω, ISI, drift) is
/// quasi-static across the two collisions; carrier phase and sampling
/// offset are re-drawn per transmission.
pub fn hidden_pair<R: Rng + ?Sized>(
    air_a: &AirFrame,
    air_b: &AirFrame,
    link_a: &LinkProfile,
    link_b: &LinkProfile,
    delta1: usize,
    delta2: usize,
    rng: &mut R,
) -> HiddenPair {
    let ch_a = link_a.draw(rng);
    let ch_b = link_b.draw(rng);
    let collision1 = synth_collision(
        &[
            PlacedTx { air: air_a, base: &ch_a, start: 0 },
            PlacedTx { air: air_b, base: &ch_b, start: delta1 },
        ],
        1.0,
        rng,
    );
    let collision2 = synth_collision(
        &[
            PlacedTx { air: air_a, base: &ch_a, start: 0 },
            PlacedTx { air: air_b, base: &ch_b, start: delta2 },
        ],
        1.0,
        rng,
    );
    HiddenPair { collision1, collision2, delta1, delta2 }
}

/// A clean (collision-free) reception of a single frame — what the
/// Collision-Free Scheduler baseline receives in each of its time slots.
pub fn clean_reception<R: Rng + ?Sized>(
    air: &AirFrame,
    link: &LinkProfile,
    rng: &mut R,
) -> SynthCollision {
    let ch = link.draw(rng);
    synth_collision(&[PlacedTx { air, base: &ch, start: 0 }], 1.0, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use zigzag_phy::complex::mean_power;
    use zigzag_phy::frame::{encode_frame, Frame};
    use zigzag_phy::modulation::Modulation;
    use zigzag_phy::preamble::Preamble;

    fn air(src: u16, seq: u16, len: usize) -> zigzag_phy::frame::AirFrame {
        let f = Frame::with_random_payload(0, src, seq, len, 42 + src as u64);
        encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
    }

    #[test]
    fn hidden_pair_layout() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = air(1, 0, 100);
        let b = air(2, 0, 100);
        let la = LinkProfile::clean(10.0);
        let lb = LinkProfile::clean(10.0);
        let hp = hidden_pair(&a, &b, &la, &lb, 120, 40, &mut rng);
        assert_eq!(hp.collision1.truth[0].start, 0);
        assert_eq!(hp.collision1.truth[1].start, 120);
        assert_eq!(hp.collision2.truth[1].start, 40);
        assert_eq!(hp.collision1.buffer.len(), 120 + b.len() + TAIL_PAD);
    }

    #[test]
    fn quasi_static_across_collisions() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = air(1, 0, 64);
        let b = air(2, 0, 64);
        let hp = hidden_pair(
            &a,
            &b,
            &LinkProfile::clean(12.0),
            &LinkProfile::clean(9.0),
            80,
            30,
            &mut rng,
        );
        let t1 = &hp.collision1.truth[0].params;
        let t2 = &hp.collision2.truth[0].params;
        // magnitude, omega, drift stable; phase & sampling offset re-drawn
        assert!((t1.gain.abs() - t2.gain.abs()).abs() < 1e-12);
        assert_eq!(t1.omega, t2.omega);
        assert_eq!(t1.sampling_drift, t2.sampling_drift);
        assert_ne!(t1.gain.arg(), t2.gain.arg());
    }

    #[test]
    fn overlap_region_has_summed_power() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = air(1, 0, 400);
        let b = air(2, 0, 400);
        let la = LinkProfile::clean(10.0);
        let lb = LinkProfile::clean(10.0);
        let hp = hidden_pair(&a, &b, &la, &lb, 500, 200, &mut rng);
        // in collision 1: [0,500) is Alice alone (+noise): power ≈ h²+1 = 11
        let alone = mean_power(&hp.collision1.buffer[100..400]);
        let both = mean_power(&hp.collision1.buffer[600..3000]);
        assert!((alone - 11.0).abs() < 1.5, "alone {alone}");
        assert!((both - 21.0).abs() < 2.5, "both {both}");
    }

    #[test]
    fn clean_reception_power() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = air(1, 0, 300);
        let rx = clean_reception(&a, &LinkProfile::clean(13.0), &mut rng);
        let p = mean_power(&rx.buffer[..a.len()]);
        let expect = 10f64.powf(1.3) + 1.0;
        assert!((p - expect).abs() < 0.15 * expect, "power {p} vs {expect}");
    }

    #[test]
    fn truth_records_sender_ids() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = air(7, 3, 50);
        let b = air(9, 4, 50);
        let hp = hidden_pair(
            &a,
            &b,
            &LinkProfile::clean(10.0),
            &LinkProfile::clean(10.0),
            60,
            20,
            &mut rng,
        );
        assert_eq!(hp.collision1.truth[0].sender, 7);
        assert_eq!(hp.collision1.truth[1].sender, 9);
    }
}
