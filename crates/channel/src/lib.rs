//! # zigzag-channel — software radio channel simulator
//!
//! This crate stands in for the paper's USRP/RFX2400 RF front ends and the
//! physical medium of the 14-node testbed (§5.1a). It generates complex
//! baseband receive buffers with every impairment §3/§3.1 names —
//! flat-fading gain and phase, carrier-frequency offset, fractional
//! sampling offset with clock drift, inter-symbol interference, AWGN —
//! plus oscillator phase noise (the effect that bounds interference
//! cancellation at very high SNR; see DESIGN.md §2).
//!
//! * [`noise`] — AWGN and dB helpers (unit-noise convention).
//! * [`fading`] — [`fading::ChannelParams`] (one packet's
//!   channel realisation) and [`fading::LinkProfile`] (what is
//!   quasi-static per link vs re-drawn per packet).
//! * [`mixer`] — overlaying transmissions into one receive buffer
//!   (collision synthesis, §3's `y = yA + yB + w`).
//! * [`pathloss`] — log-distance + shadowing model and carrier-sense
//!   classification (hidden / partial / perfect, §5.1).
//! * [`scenario`] — canned scenarios: the Fig 1-2 hidden-terminal
//!   retransmission pair, clean receptions, arbitrary k-packet collisions.

#![warn(missing_docs)]

pub mod fading;
pub mod mixer;
pub mod noise;
pub mod pathloss;
pub mod scenario;

pub use fading::{ChannelParams, LinkProfile};
pub use mixer::Arrival;
pub use pathloss::{PathLossModel, Sensing};
pub use scenario::{HiddenPair, PlacedTx, SynthCollision, TxTruth};
