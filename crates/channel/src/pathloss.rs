//! Log-distance path loss with deterministic shadowing.
//!
//! The paper's testbed is 14 physical nodes in an indoor space (Fig 5-1);
//! link qualities and who-can-sense-whom emerge from geometry, walls and
//! multipath. We substitute a standard log-distance model with log-normal
//! shadowing (seeded, so a "testbed" is a reproducible object), which is
//! all the evaluation needs: a realistic joint distribution of per-link
//! SNRs and sensing relationships (see DESIGN.md §2).

/// Path-loss + shadowing model mapping node geometry to link SNR.
#[derive(Clone, Debug)]
pub struct PathLossModel {
    /// Path-loss exponent α (≈3 for indoor non-line-of-sight).
    pub exponent: f64,
    /// SNR in dB at the reference distance (1 unit) — sets transmit power.
    pub ref_snr_db: f64,
    /// Log-normal shadowing standard deviation, dB.
    pub shadowing_sigma_db: f64,
    /// Seed making shadowing a deterministic property of the topology.
    pub seed: u64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        Self { exponent: 3.0, ref_snr_db: 38.0, shadowing_sigma_db: 6.0, seed: 0x5EED }
    }
}

impl PathLossModel {
    /// SNR of the link `a → b` given node positions, in dB. Shadowing is
    /// symmetric (`snr(a,b) == snr(b,a)`) and deterministic in
    /// `(seed, a, b)`.
    pub fn snr_db(&self, a: usize, pa: (f64, f64), b: usize, pb: (f64, f64)) -> f64 {
        let d = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt().max(0.1);
        let mean = self.ref_snr_db - 10.0 * self.exponent * d.log10();
        mean + self.shadowing_sigma_db * self.shadow_normal(a.min(b), a.max(b))
    }

    /// Free-space-style mean (no shadowing), for tests.
    pub fn mean_snr_db(&self, pa: (f64, f64), pb: (f64, f64)) -> f64 {
        let d = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt().max(0.1);
        self.ref_snr_db - 10.0 * self.exponent * d.log10()
    }

    /// Deterministic standard-normal draw for an (unordered) link.
    fn shadow_normal(&self, lo: usize, hi: usize) -> f64 {
        // splitmix64 over (seed, lo, hi), then Irwin–Hall (12 uniforms).
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((lo as u64) << 32 | hi as u64);
        let mut sum = 0.0;
        for _ in 0..12 {
            x = splitmix64(&mut x);
            sum += (x >> 11) as f64 / (1u64 << 53) as f64;
        }
        sum - 6.0
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How well one sender can carrier-sense another (§5.1: pairs either sense
/// each other "perfectly", "partially", or are "hidden terminals").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sensing {
    /// Always defers to the other's transmissions.
    Perfect,
    /// Senses the other with the given probability per transmission.
    Partial(f64),
    /// Never senses the other — the hidden-terminal case.
    Hidden,
}

impl Sensing {
    /// Classifies an inter-sender SNR into a sensing relation.
    ///
    /// Below `hidden_below_db` the senders cannot hear each other at all;
    /// above `perfect_above_db` carrier sense always works; in between the
    /// sensing probability ramps linearly (marginal links sense some
    /// transmissions and miss others).
    pub fn classify(snr_db: f64, hidden_below_db: f64, perfect_above_db: f64) -> Sensing {
        if snr_db <= hidden_below_db {
            Sensing::Hidden
        } else if snr_db >= perfect_above_db {
            Sensing::Perfect
        } else {
            // Partially-sensing pairs miss most marginal transmissions:
            // §5.6 lumps them with hidden terminals (mean loss 82.3%), so
            // the per-transmission sensing probability stays below one
            // half across the band.
            let p = 0.5 * (snr_db - hidden_below_db) / (perfect_above_db - hidden_below_db);
            Sensing::Partial(p)
        }
    }

    /// Probability that a transmission is sensed.
    pub fn probability(&self) -> f64 {
        match *self {
            Sensing::Perfect => 1.0,
            Sensing::Partial(p) => p,
            Sensing::Hidden => 0.0,
        }
    }

    /// `true` for pairs the evaluation counts as (full or partial) hidden
    /// terminals (§5.6 "sender pairs that fail to sense each other fully
    /// or partially").
    pub fn is_hidden_or_partial(&self) -> bool {
        !matches!(self, Sensing::Perfect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::to_db;

    #[test]
    fn snr_decreases_with_distance() {
        let m = PathLossModel { shadowing_sigma_db: 0.0, ..Default::default() };
        let near = m.snr_db(0, (0.0, 0.0), 1, (1.0, 0.0));
        let far = m.snr_db(0, (0.0, 0.0), 1, (8.0, 0.0));
        assert!(near > far);
        // α=3 ⇒ 8x distance ⇒ 30·log10(8) ≈ 27 dB drop.
        assert!((near - far - 27.09).abs() < 0.1, "drop {}", near - far);
    }

    #[test]
    fn shadowing_is_symmetric_and_deterministic() {
        let m = PathLossModel::default();
        let ab = m.snr_db(3, (0.0, 0.0), 7, (4.0, 1.0));
        let ba = m.snr_db(7, (4.0, 1.0), 3, (0.0, 0.0));
        assert_eq!(ab, ba);
        assert_eq!(ab, m.snr_db(3, (0.0, 0.0), 7, (4.0, 1.0)));
    }

    #[test]
    fn different_links_get_different_shadowing() {
        let m = PathLossModel::default();
        let a = m.snr_db(0, (0.0, 0.0), 1, (2.0, 0.0));
        let b = m.snr_db(0, (0.0, 0.0), 2, (2.0, 0.0));
        assert_ne!(a, b);
    }

    #[test]
    fn shadowing_roughly_standard_normal() {
        let m = PathLossModel { shadowing_sigma_db: 1.0, ref_snr_db: 0.0, exponent: 0.0, seed: 42 };
        let draws: Vec<f64> =
            (0..2000).map(|k| m.snr_db(k, (1.0, 0.0), k + 5000, (1.0, 1.0))).collect();
        let n = draws.len() as f64;
        let mean = draws.iter().sum::<f64>() / n;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn sensing_classification_bands() {
        assert_eq!(Sensing::classify(-3.0, 0.0, 10.0), Sensing::Hidden);
        assert_eq!(Sensing::classify(15.0, 0.0, 10.0), Sensing::Perfect);
        match Sensing::classify(5.0, 0.0, 10.0) {
            Sensing::Partial(p) => assert!((p - 0.25).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sensing_probabilities() {
        assert_eq!(Sensing::Perfect.probability(), 1.0);
        assert_eq!(Sensing::Hidden.probability(), 0.0);
        assert!(Sensing::Hidden.is_hidden_or_partial());
        assert!(Sensing::Partial(0.3).is_hidden_or_partial());
        assert!(!Sensing::Perfect.is_hidden_or_partial());
    }

    #[test]
    fn min_distance_clamp() {
        let m = PathLossModel { shadowing_sigma_db: 0.0, ..Default::default() };
        let same = m.snr_db(0, (1.0, 1.0), 1, (1.0, 1.0));
        assert!(same.is_finite());
    }

    #[test]
    fn to_db_sanity() {
        assert!((to_db(100.0) - 20.0).abs() < 1e-12);
    }
}
