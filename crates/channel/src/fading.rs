//! The flat-fading quasi-static channel with real-radio impairments.
//!
//! §3 models reception as `y[n] = H·x[n] + w[n]` with `H = h·e^{jγ}`
//! ("flat-fading quasi-static channels"), and §3.1 adds the three
//! practical impairments a decoder must handle:
//!
//! 1. **Frequency offset** (§3.1.1): `y[n] = H·x[n]·e^{j2πnδfT} + w[n]` —
//!    modelled by `omega` in radians/sample.
//! 2. **Sampling offset** (§3.1.2): the receiver samples the band-limited
//!    continuous signal `µ` seconds away from the transmitter's sample
//!    points, and clock drift makes `µ` wander — modelled by windowed-sinc
//!    resampling at positions `n·(1+drift) + µ`.
//! 3. **Inter-symbol interference** (§3.1.3): neighbouring symbols leak
//!    into each other via multipath/filters — modelled by a short FIR.
//!
//! Beyond §3.1 we add **oscillator phase noise** (a small per-symbol phase
//! random walk). Real USRP front-ends have it, and it is what bounds
//! interference-cancellation quality at very high SNR — the effect behind
//! Fig 5-4's observation that when Alice's power is excessively high,
//! "even a small imperfection in subtracting her signal" swamps Bob.
//! (See DESIGN.md §2.)

use crate::noise::amplitude_for_snr_db;
use rand::Rng;
use zigzag_phy::complex::Complex;
use zigzag_phy::filter::Fir;
use zigzag_phy::interp::resample;

/// Ground-truth parameters of one transmitter→receiver channel for one
/// packet transmission.
#[derive(Clone, Debug)]
pub struct ChannelParams {
    /// Complex channel gain `H = h·e^{jγ}` (§3: attenuation + phase shift).
    pub gain: Complex,
    /// Carrier-frequency offset in radians per sample (`2π·δf·T`).
    pub omega: f64,
    /// Fractional sampling offset `µ` in samples.
    pub sampling_offset: f64,
    /// Sampling-clock drift in samples per sample (ppm-scale).
    pub sampling_drift: f64,
    /// Multipath / hardware ISI taps (main tap ≈ 1; `gain` carries the
    /// overall scale).
    pub isi: Fir,
    /// Phase-noise random-walk standard deviation per symbol, radians.
    pub phase_noise: f64,
}

impl ChannelParams {
    /// An impairment-free unit channel (useful as a test baseline).
    pub fn ideal() -> Self {
        Self {
            gain: Complex::real(1.0),
            omega: 0.0,
            sampling_offset: 0.0,
            sampling_drift: 0.0,
            isi: Fir::identity(),
            phase_noise: 0.0,
        }
    }

    /// An ideal channel with amplitude set for the given SNR against
    /// unit-variance noise.
    pub fn ideal_with_snr(snr_db: f64) -> Self {
        Self { gain: Complex::real(amplitude_for_snr_db(snr_db)), ..Self::ideal() }
    }

    /// Sets the gain for an SNR (keeping the current phase).
    pub fn with_snr_db(mut self, snr_db: f64) -> Self {
        let phase = self.gain.arg();
        self.gain = Complex::from_polar(amplitude_for_snr_db(snr_db), phase);
        self
    }

    /// The SNR this channel produces against unit-variance noise, in dB.
    pub fn snr_db(&self) -> f64 {
        20.0 * self.gain.abs().log10()
    }

    /// Re-randomises what changes between two transmissions over the same
    /// link: the carrier phase at packet start (each transmission begins at
    /// an arbitrary oscillator phase) and the fractional sampling offset.
    /// Amplitude, frequency offset, ISI and drift are quasi-static across a
    /// retransmission pair.
    pub fn new_transmission<R: Rng + ?Sized>(&self, rng: &mut R) -> ChannelParams {
        let mut p = self.clone();
        p.gain = Complex::from_polar(
            self.gain.abs(),
            rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        );
        p.sampling_offset = rng.gen_range(-0.5..0.5);
        p
    }

    /// Passes a transmitted symbol stream through the channel (noiseless —
    /// noise is added once per *receiver* by the [`crate::mixer`], because
    /// colliding signals share one front end).
    ///
    /// Pipeline: resample at `n(1+drift)+µ` → ISI FIR → gain, frequency
    /// offset, phase-noise walk.
    pub fn apply<R: Rng + ?Sized>(&self, tx: &[Complex], rng: &mut R) -> Vec<Complex> {
        let resampled = if self.sampling_offset == 0.0 && self.sampling_drift == 0.0 {
            tx.to_vec()
        } else {
            resample(tx, self.sampling_offset, 1.0 + self.sampling_drift, tx.len())
        };
        let shaped = self.isi.apply(&resampled);
        let mut pn = 0.0f64;
        shaped
            .iter()
            .enumerate()
            .map(|(n, &s)| {
                if self.phase_noise > 0.0 {
                    // Gaussian step via Box–Muller (single value).
                    let u1: f64 = rng.gen_range(1e-300..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    pn += g * self.phase_noise;
                }
                self.gain * s * Complex::cis(self.omega * n as f64 + pn)
            })
            .collect()
    }
}

/// The long-lived radio profile of one sender as seen by one receiver:
/// what is *stable* across packets (nominal oscillator offset, multipath,
/// average SNR) versus what is *redrawn* per packet (oscillator jitter,
/// sampling phase).
///
/// The stable part is what an AP can learn at association time (§4.2.1:
/// "the AP can maintain coarse estimates of the frequency offsets of
/// active clients as obtained at the time of association"); the per-packet
/// part is what the decoder's tracking loops must absorb.
#[derive(Clone, Debug)]
pub struct LinkProfile {
    /// Mean SNR at the receiver, dB (unit noise).
    pub snr_db: f64,
    /// Nominal oscillator offset, radians/sample.
    pub omega_nominal: f64,
    /// Oscillator wander: actual ω per packet is uniform in
    /// `nominal ± jitter`. Default ≈2.5e-4 rad/sample puts the quarter-turn
    /// phase-error point near bit 6000 of a 1500-byte packet, matching
    /// Fig 5-2(a).
    pub omega_jitter: f64,
    /// Static multipath/hardware ISI for this link.
    pub isi: Fir,
    /// Sampling-clock drift (samples/sample).
    pub sampling_drift: f64,
    /// Phase-noise random-walk σ per symbol.
    pub phase_noise: f64,
    /// Quasi-static channel phase γ (stable across a retransmission pair).
    pub phase: f64,
}

/// Default oscillator jitter (rad/sample); see [`LinkProfile::omega_jitter`].
pub const DEFAULT_OMEGA_JITTER: f64 = 2.5e-4;
/// Default sampling-clock drift magnitude (20 ppm).
pub const DEFAULT_SAMPLING_DRIFT: f64 = 2.0e-5;
/// Default phase-noise random-walk σ per symbol (radians).
pub const DEFAULT_PHASE_NOISE: f64 = 0.012;

impl LinkProfile {
    /// Draws a typical link: random oscillator nominal (±0.1 rad/sample),
    /// random mild 5-tap ISI, random static phase — everything else at
    /// defaults.
    pub fn typical<R: Rng + ?Sized>(snr_db: f64, rng: &mut R) -> Self {
        let isi = Fir::new(
            vec![
                Complex::from_polar(rng.gen_range(0.02..0.10), rng.gen_range(-3.0..3.0)),
                Complex::from_polar(rng.gen_range(0.03..0.12), rng.gen_range(-3.0..3.0)),
                Complex::real(1.0),
                Complex::from_polar(rng.gen_range(0.08..0.22), rng.gen_range(-3.0..3.0)),
                Complex::from_polar(rng.gen_range(0.02..0.10), rng.gen_range(-3.0..3.0)),
            ],
            2,
        );
        Self {
            snr_db,
            omega_nominal: rng.gen_range(-0.1..0.1),
            omega_jitter: DEFAULT_OMEGA_JITTER,
            isi,
            sampling_drift: rng.gen_range(-DEFAULT_SAMPLING_DRIFT..DEFAULT_SAMPLING_DRIFT),
            phase_noise: DEFAULT_PHASE_NOISE,
            phase: rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        }
    }

    /// A benign link for unit tests: no ISI, no drift, no phase noise,
    /// small fixed oscillator offset.
    pub fn clean(snr_db: f64) -> Self {
        Self::clean_with_omega(snr_db, 0.02)
    }

    /// A benign link with an explicit oscillator offset. Multi-sender
    /// receiver scenarios need this: the AP tells clients apart by their
    /// frequency-compensated correlations (§4.2.1), so every sender in a
    /// k-way workload must sit at a distinct ω — [`LinkProfile::clean`]
    /// pins all clients to the same oscillator, which makes them
    /// physically indistinguishable to the detector.
    pub fn clean_with_omega(snr_db: f64, omega_nominal: f64) -> Self {
        Self {
            snr_db,
            omega_nominal,
            omega_jitter: 0.0,
            isi: Fir::identity(),
            sampling_drift: 0.0,
            phase_noise: 0.0,
            phase: 0.7,
        }
    }

    /// Draws the concrete channel realisation for one packet transmission.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> ChannelParams {
        let omega = if self.omega_jitter > 0.0 {
            self.omega_nominal + rng.gen_range(-self.omega_jitter..self.omega_jitter)
        } else {
            self.omega_nominal
        };
        ChannelParams {
            gain: Complex::from_polar(amplitude_for_snr_db(self.snr_db), self.phase),
            omega,
            sampling_offset: rng.gen_range(-0.5..0.5),
            sampling_drift: self.sampling_drift,
            isi: self.isi.clone(),
            phase_noise: self.phase_noise,
        }
    }

    /// What the AP learned about this client at association: the nominal
    /// oscillator offset (the "coarse estimate" of §4.2.1).
    pub fn association_omega(&self) -> f64 {
        self.omega_nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use zigzag_phy::complex::mean_power;
    use zigzag_phy::modulation::Modulation;

    fn bpsk(rng: &mut StdRng, n: usize) -> Vec<Complex> {
        let bits: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
        Modulation::Bpsk.modulate(&bits)
    }

    #[test]
    fn ideal_channel_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = bpsk(&mut rng, 100);
        let y = ChannelParams::ideal().apply(&x, &mut rng);
        assert_eq!(y, x);
    }

    #[test]
    fn gain_scales_power() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = bpsk(&mut rng, 5000);
        let ch = ChannelParams::ideal_with_snr(10.0);
        let y = ch.apply(&x, &mut rng);
        let p = mean_power(&y);
        assert!((p - 10.0).abs() < 0.3, "power {p}");
    }

    #[test]
    fn frequency_offset_rotates_linearly() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = vec![Complex::real(1.0); 200];
        let ch = ChannelParams { omega: 0.01, ..ChannelParams::ideal() };
        let y = ch.apply(&x, &mut rng);
        for (n, v) in y.iter().enumerate() {
            let expected = 0.01 * n as f64;
            let diff = (v.arg() - expected).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(!(1e-9..=2.0 * std::f64::consts::PI - 1e-9).contains(&diff), "n={n}");
        }
    }

    #[test]
    fn sampling_offset_shifts_signal() {
        // A fractional offset must reproduce the sinc-interpolated stream.
        let mut rng = StdRng::seed_from_u64(4);
        let x = bpsk(&mut rng, 256);
        let ch = ChannelParams { sampling_offset: 0.3, ..ChannelParams::ideal() };
        let y = ch.apply(&x, &mut rng);
        let expected = zigzag_phy::interp::resample(&x, 0.3, 1.0, 256);
        for k in 16..240 {
            assert!((y[k] - expected[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn isi_mixes_neighbours() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = vec![Complex::default(); 64];
        x[32] = Complex::real(1.0);
        let ch =
            ChannelParams { isi: Fir::from_real(&[0.2, 1.0, 0.3], 1), ..ChannelParams::ideal() };
        let y = ch.apply(&x, &mut rng);
        assert!((y[31].re - 0.2).abs() < 1e-12);
        assert!((y[32].re - 1.0).abs() < 1e-12);
        assert!((y[33].re - 0.3).abs() < 1e-12);
    }

    #[test]
    fn phase_noise_wanders_but_preserves_power() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = vec![Complex::real(1.0); 10_000];
        let ch = ChannelParams { phase_noise: 0.01, ..ChannelParams::ideal() };
        let y = ch.apply(&x, &mut rng);
        assert!((mean_power(&y) - 1.0).abs() < 1e-9);
        // The endpoint phase should have wandered noticeably
        // (σ·√n ≈ 0.01·100 = 1 rad scale).
        let drift = y[9999].arg().abs();
        assert!(drift > 0.05, "phase walked only {drift}");
    }

    #[test]
    fn profile_draw_respects_jitter_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = LinkProfile::typical(12.0, &mut rng);
        for _ in 0..100 {
            let ch = p.draw(&mut rng);
            assert!((ch.omega - p.omega_nominal).abs() <= p.omega_jitter + 1e-12);
            assert!((ch.snr_db() - 12.0).abs() < 1e-9);
        }
    }

    #[test]
    fn clean_profile_is_deterministic_apart_from_sampling_phase() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = LinkProfile::clean(15.0);
        let ch = p.draw(&mut rng);
        assert_eq!(ch.omega, 0.02);
        assert_eq!(ch.phase_noise, 0.0);
        assert!(ch.isi.is_identity());
    }

    #[test]
    fn quasi_static_gain_stable_across_draws() {
        // §4.3's MRC assumes "the channel has not changed between the two
        // receptions": H must be identical across draws of one profile.
        let mut rng = StdRng::seed_from_u64(9);
        let p = LinkProfile::typical(9.0, &mut rng);
        let a = p.draw(&mut rng);
        let b = p.draw(&mut rng);
        assert_eq!(a.gain, b.gain);
    }
}
