//! Collision synthesis: overlaying transmissions at a receiver.
//!
//! "If Alice and Bob transmit concurrently their signals add up, and the
//! received signal can be expressed as `y[n] = yA[n] + yB[n] + w[n]`" (§3).
//! The mixer places each already-channel-distorted transmission at its
//! start offset in one receive buffer and adds a single AWGN realisation —
//! one front end, one noise process.

use crate::noise::add_awgn;
use rand::Rng;
use zigzag_phy::complex::Complex;

/// One transmission as it arrives at the receiver: post-channel samples
/// plus the sample index at which its first sample lands.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Channel-distorted samples (output of
    /// [`ChannelParams::apply`](crate::fading::ChannelParams::apply)).
    pub samples: Vec<Complex>,
    /// Receive-buffer index of the first sample (the packet's time offset;
    /// the Δ of Fig 1-2 is the difference of two of these).
    pub start: usize,
}

impl Arrival {
    /// Creates an arrival.
    pub fn new(samples: Vec<Complex>, start: usize) -> Self {
        Self { samples, start }
    }

    /// Index one past the last sample.
    pub fn end(&self) -> usize {
        self.start + self.samples.len()
    }
}

/// Sums arrivals into a single receive buffer (no noise). The buffer is
/// sized `max(end) + tail_pad`.
pub fn overlay(arrivals: &[Arrival], tail_pad: usize) -> Vec<Complex> {
    let len = arrivals.iter().map(Arrival::end).max().unwrap_or(0) + tail_pad;
    let mut buf = vec![Complex::default(); len];
    for a in arrivals {
        for (k, &s) in a.samples.iter().enumerate() {
            buf[a.start + k] += s;
        }
    }
    buf
}

/// Sums arrivals and adds receiver AWGN of total variance `sigma²`.
pub fn mix<R: Rng + ?Sized>(
    arrivals: &[Arrival],
    tail_pad: usize,
    sigma: f64,
    rng: &mut R,
) -> Vec<Complex> {
    let mut buf = overlay(arrivals, tail_pad);
    if sigma > 0.0 {
        add_awgn(rng, &mut buf, sigma);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use zigzag_phy::complex::mean_power;

    #[test]
    fn overlay_places_at_offsets() {
        let a = Arrival::new(vec![Complex::real(1.0); 4], 0);
        let b = Arrival::new(vec![Complex::real(10.0); 4], 2);
        let buf = overlay(&[a, b], 1);
        assert_eq!(buf.len(), 7);
        assert_eq!(buf[0].re, 1.0);
        assert_eq!(buf[1].re, 1.0);
        assert_eq!(buf[2].re, 11.0);
        assert_eq!(buf[3].re, 11.0);
        assert_eq!(buf[4].re, 10.0);
        assert_eq!(buf[5].re, 10.0);
        assert_eq!(buf[6].re, 0.0);
    }

    #[test]
    fn empty_mix_is_pure_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let buf = mix(&[], 1000, 1.0, &mut rng);
        let p = mean_power(&buf);
        assert!((p - 1.0).abs() < 0.1, "noise power {p}");
    }

    #[test]
    fn signals_add_linearly() {
        // Superposition: mixing then subtracting one arrival recovers the
        // other exactly (noiseless) — the property ZigZag's subtraction
        // step relies on.
        let a = Arrival::new(vec![Complex::new(1.0, 2.0); 16], 0);
        let b = Arrival::new(vec![Complex::new(-0.5, 0.25); 16], 5);
        let buf = overlay(&[a.clone(), b.clone()], 0);
        for (k, &s) in b.samples.iter().enumerate() {
            let resid = buf[b.start + k] - s;
            let expect = a.samples.get(b.start + k).copied().unwrap_or_default();
            assert!((resid - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_sigma_adds_no_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Arrival::new(vec![Complex::real(1.0); 8], 0);
        let buf = mix(&[a], 0, 0.0, &mut rng);
        for s in &buf {
            assert_eq!(s.im, 0.0);
        }
    }

    #[test]
    fn tail_pad_extends_buffer() {
        let a = Arrival::new(vec![Complex::real(1.0); 8], 3);
        assert_eq!(overlay(&[a], 10).len(), 21);
    }
}
