//! Differential harness for the kernel backends: for every hot-loop
//! primitive (correlate, fir, interp, mrc), the `Optimized` and `Simd`
//! backends must match the `Scalar` reference within 1e-9 across random
//! lengths, taps and frequency offsets — including the edge cases (empty
//! input, scan offset at the buffer end, ω = 0, identity filter). This
//! is the numerical-equivalence bar that lets the decode engine switch
//! backends without bit-level decode divergence. The batched
//! least-squares entry point (`lstsq_batch`) is held to the same bar
//! against the per-system reference solver.

use proptest::prelude::*;
use zigzag_phy::complex::Complex;
use zigzag_phy::filter::Fir;
use zigzag_phy::kernel::{BackendKind, CorrFootprint, Kernel, MatchScore};
use zigzag_phy::linalg::{lstsq_batch, lstsq_cond, LstsqSystem};

/// The non-reference backends, each diffed against `Scalar`.
const FAST: [BackendKind; 2] = [BackendKind::Optimized, BackendKind::Simd];

fn to_complex(raw: &[(f64, f64)]) -> Vec<Complex> {
    raw.iter().map(|&(re, im)| Complex::new(re, im)).collect()
}

fn assert_close(a: &[Complex], b: &[Complex], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch {} vs {}", a.len(), b.len());
    for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!((*x - *y).abs() < tol, "{what}[{k}]: {x:?} vs {y:?} (err {})", (*x - *y).abs());
    }
}

proptest! {
    #[test]
    fn scan_matches_scalar(
        y_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..300),
        s_raw in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 0..80),
        omega in -0.5f64..0.5,
    ) {
        let y = to_complex(&y_raw);
        let s = to_complex(&s_raw);
        let mut scalar = Kernel::new(BackendKind::Scalar);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        // positions deliberately run past the buffer end: offsets with a
        // partial (or empty) overlap must agree too
        let positions = 0..y.len() + 4;
        scalar.scan_into(&y, &s, omega, positions.clone(), &mut a);
        for kind in FAST {
            let mut fast = Kernel::new(kind);
            fast.scan_into(&y, &s, omega, positions.clone(), &mut b);
            assert_close(&a, &b, 1e-9, kind.name());
        }
    }

    #[test]
    fn fir_matches_scalar(
        x_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..200),
        taps_raw in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..12),
        delay_pick in 0usize..12,
    ) {
        let x = to_complex(&x_raw);
        let taps = to_complex(&taps_raw);
        let fir = Fir::new(taps.clone(), delay_pick % taps.len());
        let mut scalar = Kernel::new(BackendKind::Scalar);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar.fir_apply_into(&fir, &x, &mut a);
        for kind in FAST {
            let mut fast = Kernel::new(kind);
            fast.fir_apply_into(&fir, &x, &mut b);
            assert_close(&a, &b, 1e-9, kind.name());
        }
    }

    #[test]
    fn resample_matches_scalar(
        x_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..200),
        start in -20.0f64..220.0,
        drift in -0.01f64..0.01,
        n in 0usize..250,
        integer_step in 0u8..2,
    ) {
        let x = to_complex(&x_raw);
        // step = 1 exercises the cached-tap fast path; step = 1 + drift
        // the per-output cache-miss path
        let step = if integer_step == 1 { 1.0 } else { 1.0 + drift };
        let mut scalar = Kernel::new(BackendKind::Scalar);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar.resample_into(&x, start, step, n, &mut a);
        for kind in FAST {
            let mut fast = Kernel::new(kind);
            fast.resample_into(&x, start, step, n, &mut b);
            assert_close(&a, &b, 1e-9, kind.name());
        }
    }

    #[test]
    fn mrc_matches_scalar(
        s1_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..120),
        s2_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..120),
        s3_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..120),
        w1 in 0.0f64..10.0,
        w2 in 0.0f64..10.0,
        w3 in 0.0f64..10.0,
    ) {
        let (s1, s2, s3) = (to_complex(&s1_raw), to_complex(&s2_raw), to_complex(&s3_raw));
        let streams: Vec<(&[Complex], f64)> = vec![(&s1, w1), (&s2, w2), (&s3, w3)];
        let mut scalar = Kernel::new(BackendKind::Scalar);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar.combine_weighted_into(&streams, &mut a);
        for kind in FAST {
            let mut fast = Kernel::new(kind);
            // 1- and 2-stream prefixes hit dedicated kernels; cover them
            // alongside the 3-stream general path
            for take in 1..=streams.len() {
                let (mut sa, mut sb) = (Vec::new(), Vec::new());
                scalar.combine_weighted_into(&streams[..take], &mut sa);
                fast.combine_weighted_into(&streams[..take], &mut sb);
                assert_close(&sa, &sb, 1e-9, kind.name());
            }
            fast.combine_weighted_into(&streams, &mut b);
            assert_close(&a, &b, 1e-9, kind.name());
        }
    }
}

/// Asserts the match-metric agreement bar: metrics within `tol`, and the
/// argmax τ within one sweep step of each other (ties between adjacent τ
/// candidates are the only sanctioned divergence — both backends sweep
/// ascending and break exact ties toward the earlier τ, but a ≤1e-9
/// metric difference may flip a near-tie to a neighbouring step).
fn assert_match_close(a: MatchScore, b: MatchScore, tau_step: f64, tol: f64, what: &str) {
    assert!(
        (a.metric - b.metric).abs() < tol,
        "{what}: metric {} vs {} (err {})",
        a.metric,
        b.metric,
        (a.metric - b.metric).abs()
    );
    assert!(
        (a.tau - b.tau).abs() < tau_step + 1e-9,
        "{what}: argmax τ {} vs {} further than one step ({tau_step})",
        a.tau,
        b.tau
    );
}

proptest! {
    /// `match_score` differential: with `bail: None` the optimized and
    /// simd sweeps must reproduce the scalar reference loop — metric
    /// ≤ 1e-9, argmax τ within one step — across random spans, windows
    /// and sweep resolutions (including spans that overhang either
    /// buffer).
    #[test]
    fn match_score_matches_scalar(
        a_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..260),
        b_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 0..260),
        start_a in 0usize..280,
        start_b in 0usize..280,
        window in 0usize..200,
        step_pick in 0u8..3,
    ) {
        let a = to_complex(&a_raw);
        let b = to_complex(&b_raw);
        let tau_step = [0.25, 0.5, 1.0][step_pick as usize];
        let mut scalar = Kernel::new(BackendKind::Scalar);
        let ms = scalar.match_score(&a, start_a, &b, start_b, window, tau_step, None);
        for kind in FAST {
            let mut fast = Kernel::new(kind);
            let mf = fast.match_score(&a, start_a, &b, start_b, window, tau_step, None);
            assert_match_close(ms, mf, tau_step, 1e-9, kind.name());
        }
    }

    /// The bail contract: when the exact metric clears the bail bar the
    /// abandoning backends must return it exactly (abandonment never
    /// clips a survivor); below the bar any returned value must itself
    /// stay below the bar (a rejection, never a fake survivor).
    #[test]
    fn match_score_bail_contract(
        a_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 8..200),
        b_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 8..200),
        start_b in 0usize..64,
        window in 16usize..160,
        bail in 0.0f64..1.0,
    ) {
        let a = to_complex(&a_raw);
        let b = to_complex(&b_raw);
        let mut scalar = Kernel::new(BackendKind::Scalar);
        let exact = scalar.match_score(&a, 0, &b, start_b, window, 0.25, None);
        for kind in FAST {
            let mut fast = Kernel::new(kind);
            let bailed = fast.match_score(&a, 0, &b, start_b, window, 0.25, Some(bail));
            if exact.metric >= bail {
                assert_match_close(exact, bailed, 0.25, 1e-9, kind.name());
            } else {
                prop_assert!(
                    bailed.metric < bail + 1e-9,
                    "{}: abandoned metric {} breached the bail bar {bail}",
                    kind.name(), bailed.metric
                );
            }
        }
    }

    /// Footprint-backed scoring is the raw path, cached: for a footprint
    /// built by `ensure_footprint`, `match_score_fp` must agree with
    /// `match_score` on the raw buffer — on every backend, including at
    /// the coarser sweeps (0.5, 1.0) whose lanes are a subset of the
    /// 0.25 build.
    #[test]
    fn footprint_scoring_matches_raw(
        a_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 4..200),
        b_raw in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 4..200),
        start_a in 0usize..64,
        start_b in 0usize..64,
        window in 1usize..160,
        step_pick in 0u8..3,
    ) {
        let a = to_complex(&a_raw);
        let b = to_complex(&b_raw);
        let tau_step = [0.25, 0.5, 1.0][step_pick as usize];
        let mut builder = Kernel::new(BackendKind::Optimized);
        let mut fp = CorrFootprint::default();
        builder.ensure_footprint(&mut fp, &b, 0.25, &mut Vec::new);
        prop_assert!(fp.covers(b.len(), tau_step));
        for kind in [BackendKind::Scalar, BackendKind::Optimized, BackendKind::Simd] {
            let mut kernel = Kernel::new(kind);
            let raw = kernel.match_score(&a, start_a, &b, start_b, window, tau_step, None);
            let cached = kernel.match_score_fp(&a, start_a, &fp, start_b, window, tau_step, None);
            assert_match_close(raw, cached, tau_step, 1e-9, kind.name());
        }
    }

    /// The batched least-squares solver is the per-system reference,
    /// packed: across random bucket mixes (system sizes 0–4 unknowns,
    /// interleaved), `lstsq_batch` must return bit-identical solutions
    /// and conditioning estimates to `lstsq_cond` run system-by-system —
    /// including `None` for the singular systems.
    #[test]
    fn lstsq_batch_matches_per_system(
        sizes in proptest::collection::vec((0usize..5, 1usize..9), 1..7),
        entropy in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 256..257),
        lambda in 0.0f64..0.5,
    ) {
        let mut pool = entropy.iter().cycle().map(|&(re, im)| Complex::new(re, im));
        let mut draw = |n: usize| -> Vec<Complex> { (0..n).map(|_| pool.next().unwrap()).collect() };
        let systems: Vec<(Vec<Vec<Complex>>, Vec<Complex>)> = sizes
            .iter()
            .map(|&(m, rows)| ((0..rows).map(|_| draw(m)).collect(), draw(rows)))
            .collect();
        let refs: Vec<LstsqSystem> = systems
            .iter()
            .map(|(rows, b)| LstsqSystem { rows, b, lambda })
            .collect();
        let batched = lstsq_batch(&refs);
        for ((rows, b), got) in systems.iter().zip(batched) {
            // bit-identical, not merely close: the batch path must not
            // perturb the decode decisions it feeds
            prop_assert_eq!(got, lstsq_cond(rows, b, lambda));
        }
    }
}

#[test]
fn match_score_edge_cases() {
    let a: Vec<Complex> = (0..96).map(|k| Complex::cis(0.13 * k as f64)).collect();
    let b: Vec<Complex> = (0..64).map(|k| Complex::cis(0.13 * k as f64 + 0.4)).collect();
    let mut builder = Kernel::new(BackendKind::Optimized);
    let mut fp = CorrFootprint::default();
    builder.ensure_footprint(&mut fp, &b, 0.25, &mut Vec::new);
    let zero = MatchScore::default();
    for kind in [BackendKind::Scalar, BackendKind::Optimized, BackendKind::Simd] {
        let mut kernel = Kernel::new(kind);
        // empty span: a zero-length window scores zero, not NaN
        assert_eq!(kernel.match_score(&a, 0, &b, 0, 0, 0.25, None), zero);
        assert_eq!(kernel.match_score_fp(&a, 0, &fp, 0, 0, 0.25, None), zero);
        // empty buffers on either side
        assert_eq!(kernel.match_score(&[], 0, &b, 0, 64, 0.25, None), zero);
        assert_eq!(kernel.match_score(&a, 0, &[], 0, 64, 0.25, None), zero);
        // start exactly at (and past) the buffer tail: zero overlap
        assert_eq!(kernel.match_score(&a, a.len(), &b, 0, 64, 0.25, None), zero);
        assert_eq!(kernel.match_score(&a, 0, &b, b.len(), 64, 0.25, None), zero);
        assert_eq!(kernel.match_score_fp(&a, 0, &fp, b.len() + 7, 64, 0.25, None), zero);
    }
    // window longer than either buffer: clamps to the shorter tail and
    // still agrees across backends and against the footprint path
    let mut scalar = Kernel::new(BackendKind::Scalar);
    let ms = scalar.match_score(&a, 10, &b, 3, 10_000, 0.25, None);
    assert!(ms.metric > 0.9, "aligned tones must correlate, got {}", ms.metric);
    for kind in FAST {
        let mut fast = Kernel::new(kind);
        let mo = fast.match_score(&a, 10, &b, 3, 10_000, 0.25, None);
        let mf = fast.match_score_fp(&a, 10, &fp, 3, 10_000, 0.25, None);
        assert_match_close(ms, mo, 0.25, 1e-9, "clamped window");
        assert_match_close(ms, mf, 0.25, 1e-9, "clamped window fp");
    }
}

#[test]
fn scan_edge_cases() {
    let y: Vec<Complex> = (0..64).map(|k| Complex::cis(0.21 * k as f64)).collect();
    let s: Vec<Complex> = (0..16).map(|k| Complex::cis(-0.4 * k as f64)).collect();
    let mut scalar = Kernel::new(BackendKind::Scalar);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for kind in FAST {
        let mut fast = Kernel::new(kind);
        for omega in [0.0, 0.1] {
            // empty received buffer
            scalar.scan_into(&[], &s, omega, 0..4, &mut a);
            fast.scan_into(&[], &s, omega, 0..4, &mut b);
            assert_close(&a, &b, 1e-12, "scan empty y");
            // empty reference sequence
            scalar.scan_into(&y, &[], omega, 0..y.len(), &mut a);
            fast.scan_into(&y, &[], omega, 0..y.len(), &mut b);
            assert_close(&a, &b, 1e-12, "scan empty s");
            // δ exactly at / one past the buffer end (zero-sample overlap)
            scalar.scan_into(&y, &s, omega, y.len() - 1..y.len() + 1, &mut a);
            fast.scan_into(&y, &s, omega, y.len() - 1..y.len() + 1, &mut b);
            assert_close(&a, &b, 1e-9, "scan at buffer end");
            // empty position range
            scalar.scan_into(&y, &s, omega, 5..5, &mut a);
            fast.scan_into(&y, &s, omega, 5..5, &mut b);
            assert!(a.is_empty() && b.is_empty());
        }
    }
}

#[test]
fn fir_identity_and_empty() {
    let x: Vec<Complex> = (0..32).map(|k| Complex::new(k as f64, -(k as f64))).collect();
    let mut scalar = Kernel::new(BackendKind::Scalar);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for kind in FAST {
        let mut fast = Kernel::new(kind);
        // identity filter takes the pass-through shortcut on both backends
        scalar.fir_apply_into(&Fir::identity(), &x, &mut a);
        fast.fir_apply_into(&Fir::identity(), &x, &mut b);
        assert_eq!(a, x);
        assert_eq!(b, x);
        // empty input
        let f = Fir::from_real(&[0.2, 1.0, -0.1], 1);
        scalar.fir_apply_into(&f, &[], &mut a);
        fast.fir_apply_into(&f, &[], &mut b);
        assert!(a.is_empty() && b.is_empty());
        // single-tap non-identity (delay 0 edge)
        let f1 = Fir::from_real(&[-0.7], 0);
        scalar.fir_apply_into(&f1, &x, &mut a);
        fast.fir_apply_into(&f1, &x, &mut b);
        assert_close(&a, &b, 1e-12, "single tap");
    }
}

#[test]
fn resample_edge_cases() {
    let x: Vec<Complex> = (0..40).map(|k| Complex::cis(0.07 * k as f64)).collect();
    let mut scalar = Kernel::new(BackendKind::Scalar);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for kind in FAST {
        let mut fast = Kernel::new(kind);
        // empty input buffer, and n = 0
        scalar.resample_into(&[], 0.3, 1.0, 8, &mut a);
        fast.resample_into(&[], 0.3, 1.0, 8, &mut b);
        assert_close(&a, &b, 1e-12, "resample empty buffer");
        scalar.resample_into(&x, 0.3, 1.0, 0, &mut a);
        fast.resample_into(&x, 0.3, 1.0, 0, &mut b);
        assert!(a.is_empty() && b.is_empty());
        // positions entirely out of range on both sides
        for start in [-1e4, 1e4] {
            scalar.resample_into(&x, start, 1.0, 8, &mut a);
            fast.resample_into(&x, start, 1.0, 8, &mut b);
            assert_close(&a, &b, 1e-12, "resample out of range");
        }
        // exactly integer positions (the sinc(0) = 1 special case)
        scalar.resample_into(&x, 0.0, 1.0, x.len(), &mut a);
        fast.resample_into(&x, 0.0, 1.0, x.len(), &mut b);
        assert_close(&a, &b, 1e-12, "resample integer grid");
    }
}

#[test]
fn mrc_edge_cases() {
    let s: Vec<Complex> = (0..8).map(|k| Complex::real(k as f64)).collect();
    let mut scalar = Kernel::new(BackendKind::Scalar);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for kind in FAST {
        let mut fast = Kernel::new(kind);
        // all-zero weights must yield zeros, not NaNs, on both backends
        let streams: Vec<(&[Complex], f64)> = vec![(&s, 0.0), (&s, 0.0)];
        scalar.combine_weighted_into(&streams, &mut a);
        fast.combine_weighted_into(&streams, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| *v == Complex::default()));
        // empty streams
        let empty: Vec<(&[Complex], f64)> = vec![(&[], 1.0)];
        scalar.combine_weighted_into(&empty, &mut a);
        fast.combine_weighted_into(&empty, &mut b);
        assert!(a.is_empty() && b.is_empty());
    }
}
