//! Measures fractional-interpolation truncation error vs TX band-limiting,
//! then compares the kernel backends on the production resampling path —
//! minimal usage docs for constructing a `zigzag_phy::kernel::Kernel`
//! explicitly and checking scalar/optimized agreement.
use rand::prelude::*;
use zigzag_phy::complex::Complex;
use zigzag_phy::filter::Fir;
use zigzag_phy::interp::interp_at_width;
use zigzag_phy::kernel::{BackendKind, Kernel};

fn lowpass(n: usize, cutoff: f64) -> Fir {
    // Hamming-windowed sinc, linear phase, unit energy
    let half = (n / 2) as isize;
    let mut taps: Vec<f64> = (-half..=half)
        .map(|k| {
            let x = k as f64;
            let s = if x == 0.0 {
                cutoff
            } else {
                (std::f64::consts::PI * cutoff * x).sin() / (std::f64::consts::PI * x)
            };
            let w = 0.54 + 0.46 * (std::f64::consts::PI * x / (half as f64 + 1.0)).cos();
            s * w
        })
        .collect();
    let e: f64 = taps.iter().map(|t| t * t).sum::<f64>().sqrt();
    for t in taps.iter_mut() {
        *t /= e;
    }
    Fir::from_real(&taps, half as usize)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 4096;
    let x: Vec<Complex> =
        (0..n).map(|_| Complex::real(if rng.gen_bool(0.5) { 1.0 } else { -1.0 })).collect();
    for (name, pulse) in [
        ("none        ", Fir::identity()),
        ("lp11 c=0.88 ", lowpass(11, 0.88)),
        ("lp13 c=0.85 ", lowpass(13, 0.85)),
        ("lp17 c=0.80 ", lowpass(17, 0.80)),
        ("lp21 c=0.75 ", lowpass(21, 0.75)),
    ] {
        let s = pulse.apply(&x);
        for w in [8usize, 12] {
            let mut err2 = 0.0;
            let mut sig2 = 0.0;
            for k in 600..n - 600 {
                let t = k as f64 + 0.5;
                let approx = interp_at_width(&s, t, w);
                let reference = interp_at_width(&s, t, 512);
                err2 += (approx - reference).norm_sq();
                sig2 += reference.norm_sq();
            }
            println!("{name} w={w}: err {:.1} dB", 10.0 * (err2 / sig2).log10());
        }
        // main tap fraction (gain convention)
        let main = pulse.taps()[pulse.delay()].abs();
        println!("{name} main tap {main:.3}");
    }

    // --- kernel backends on the production resample path ---
    // A Kernel is a backend choice + its SoA scratch; construct one per
    // decode context and reuse it across calls.
    let mut scalar = Kernel::new(BackendKind::Scalar);
    let mut optimized = Kernel::new(BackendKind::Optimized);
    let (mut ys, mut yo) = (Vec::new(), Vec::new());
    for (label, start, step) in
        [("half-sample grid", 0.5, 1.0), ("drifting grid   ", 0.37, 1.0 + 1.5e-5)]
    {
        let t = std::time::Instant::now();
        scalar.resample_into(&x, start, step, n, &mut ys);
        let t_s = t.elapsed();
        let t = std::time::Instant::now();
        optimized.resample_into(&x, start, step, n, &mut yo);
        let t_o = t.elapsed();
        let max_err = ys.iter().zip(yo.iter()).map(|(a, b)| (*a - *b).abs()).fold(0.0f64, f64::max);
        println!(
            "backend {label}: scalar {:>7.1?}  optimized {:>7.1?}  ({:.1}x)  max |Δ| {max_err:.2e}",
            t_s,
            t_o,
            t_s.as_secs_f64() / t_o.as_secs_f64().max(1e-12),
        );
    }
}
