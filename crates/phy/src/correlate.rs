//! Sliding correlation against known sequences.
//!
//! §4.2.1: "The AP detects a collision by correlating the known preamble
//! with the received signal … the AP should compute the value of the
//! correlation after compensating for the frequency offset:
//! `Γ'(Δ) = Σ_k s*[k]·y[k+Δ]·e^{−j2πkδf_B T}`. The magnitude of Γ'(Δ) …
//! spikes when the preamble aligns with the beginning of Bob's packet."
//!
//! The same primitive, pointed at stored samples instead of the preamble,
//! implements collision *matching* (§4.2.2).

use crate::complex::{Complex, ZERO};

/// Frequency-compensated correlation of the known sequence `s` against `y`
/// at offset `delta`:
/// `Γ'(Δ) = Σ_k s*[k] · y[Δ+k] · e^{−j·ω·k}` where `ω = 2π·δf·T` is the
/// frequency offset in radians per sample. Samples past the end of `y`
/// contribute zero.
pub fn corr_at(y: &[Complex], s: &[Complex], delta: usize, omega: f64) -> Complex {
    let mut acc = ZERO;
    let end = s.len().min(y.len().saturating_sub(delta));
    for k in 0..end {
        acc += s[k].conj() * y[delta + k] * Complex::cis(-omega * k as f64);
    }
    acc
}

/// Runs the sliding correlation over `positions` (typically `0..y.len()`),
/// returning the complex correlation at each offset.
pub fn scan(
    y: &[Complex],
    s: &[Complex],
    omega: f64,
    positions: std::ops::Range<usize>,
) -> Vec<Complex> {
    let mut out = Vec::new();
    scan_into(y, s, omega, positions, &mut out);
    out
}

/// In-place variant of [`scan`]: fills `out` (cleared first) with the
/// correlation at each offset, reusing its allocation. The collision
/// detector runs one full-buffer scan per associated client per sampling
/// grid, so this is the single largest allocation in the receive path.
pub fn scan_into(
    y: &[Complex],
    s: &[Complex],
    omega: f64,
    positions: std::ops::Range<usize>,
    out: &mut Vec<Complex>,
) {
    out.clear();
    out.extend(positions.map(|d| corr_at(y, s, d, omega)));
}

/// One detected correlation spike.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Peak {
    /// Offset in the scanned range where the spike occurs.
    pub pos: usize,
    /// The complex correlation value at the spike. Its magnitude divided by
    /// the sequence energy estimates the channel amplitude, its angle the
    /// channel phase (§4.2.4a: `H = Γ'/Σ|s[k]|²`).
    pub value: Complex,
}

impl Peak {
    /// Magnitude of the correlation at the peak.
    pub fn mag(&self) -> f64 {
        self.value.abs()
    }
}

/// Finds local maxima of the correlation magnitudes that exceed
/// `threshold`, enforcing a minimum separation (in samples) between
/// reported peaks — two packets cannot start closer than a preamble.
pub fn find_peaks(corr: &[Complex], threshold: f64, min_separation: usize) -> Vec<Peak> {
    let mags: Vec<f64> = corr.iter().map(|c| c.abs()).collect();
    let mut peaks: Vec<Peak> = Vec::new();
    for pos in 0..mags.len() {
        if mags[pos] < threshold {
            continue;
        }
        // local maximum over the separation window
        let lo = pos.saturating_sub(min_separation);
        let hi = (pos + min_separation + 1).min(mags.len());
        if (lo..hi).any(|j| mags[j] > mags[pos] || (mags[j] == mags[pos] && j < pos)) {
            continue;
        }
        peaks.push(Peak { pos, value: corr[pos] });
    }
    peaks
}

/// Convenience: scan + peak-find in one call over the whole buffer.
pub fn detect_sequence(
    y: &[Complex],
    s: &[Complex],
    omega: f64,
    threshold: f64,
    min_separation: usize,
) -> Vec<Peak> {
    let corr = scan(y, s, omega, 0..y.len());
    find_peaks(&corr, threshold, min_separation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preamble::Preamble;
    use rand::prelude::*;

    fn noise(rng: &mut StdRng, n: usize, sigma: f64) -> Vec<Complex> {
        // Box–Muller
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * sigma / 2.0_f64.sqrt();
                Complex::from_polar(r, 2.0 * std::f64::consts::PI * u2)
            })
            .collect()
    }

    #[test]
    fn peak_at_embedded_preamble() {
        let p = Preamble::standard(32);
        let mut rng = StdRng::seed_from_u64(11);
        let mut y = noise(&mut rng, 500, 0.3);
        let at = 200;
        for (k, &s) in p.symbols().iter().enumerate() {
            y[at + k] += s;
        }
        let peaks = detect_sequence(&y, p.symbols(), 0.0, 0.6 * p.energy(), 16);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].pos, at);
    }

    #[test]
    fn peak_value_estimates_channel() {
        // §4.2.4a: at the peak, Γ' = H·Σ|s|².
        let p = Preamble::standard(32);
        let h = Complex::from_polar(0.8, 1.1);
        let mut y = vec![ZERO; 100];
        for (k, &s) in p.symbols().iter().enumerate() {
            y[30 + k] = h * s;
        }
        let c = corr_at(&y, p.symbols(), 30, 0.0);
        let h_est = c / p.energy();
        assert!((h_est - h).abs() < 1e-9);
    }

    #[test]
    fn frequency_offset_destroys_uncompensated_correlation() {
        // §4.2.1: "the terms inside the sum have different angles and may
        // cancel each other" — and compensation restores the spike.
        let p = Preamble::standard(64);
        let omega = 0.25; // strong offset: ~2.5 full rotations over the preamble
        let mut y = vec![ZERO; 128];
        for (k, &s) in p.symbols().iter().enumerate() {
            y[20 + k] = s * Complex::cis(omega * k as f64);
        }
        let plain = corr_at(&y, p.symbols(), 20, 0.0).abs();
        let comp = corr_at(&y, p.symbols(), 20, omega).abs();
        assert!(comp > 0.99 * p.energy());
        assert!(plain < 0.3 * comp, "plain {plain} comp {comp}");
    }

    #[test]
    fn two_packets_two_peaks() {
        // The collision-detection picture of Fig 4-2: a second preamble in
        // the middle of a reception spikes at the colliding packet's start.
        let p = Preamble::standard(32);
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<Complex> =
            (0..400).map(|_| Complex::real(if rng.gen_bool(0.5) { 1.0 } else { -1.0 })).collect();
        let mut y = vec![ZERO; 600];
        // packet 1 at 50: preamble + data
        for (k, &s) in p.symbols().iter().enumerate() {
            y[50 + k] += s;
        }
        for (k, &d) in data.iter().enumerate() {
            y[50 + 32 + k] += d;
        }
        // packet 2 at 300 (inside packet 1's body)
        for (k, &s) in p.symbols().iter().enumerate() {
            y[300 + k] += s;
        }
        for (k, &d) in data.iter().take(200).enumerate() {
            y[300 + 32 + k] += d * Complex::cis(1.0);
        }
        let peaks = detect_sequence(&y, p.symbols(), 0.0, 0.62 * p.energy(), 16);
        let positions: Vec<usize> = peaks.iter().map(|p| p.pos).collect();
        assert!(positions.contains(&50), "positions {positions:?}");
        assert!(positions.contains(&300), "positions {positions:?}");
    }

    #[test]
    fn no_peak_in_pure_noise() {
        let p = Preamble::standard(32);
        let mut rng = StdRng::seed_from_u64(17);
        let y = noise(&mut rng, 2000, 1.0);
        let peaks = detect_sequence(&y, p.symbols(), 0.0, 0.65 * p.energy(), 16);
        assert!(peaks.is_empty(), "false peaks: {peaks:?}");
    }

    #[test]
    fn min_separation_suppresses_shoulders() {
        let p = Preamble::standard(32);
        let mut y = vec![ZERO; 100];
        for (k, &s) in p.symbols().iter().enumerate() {
            y[40 + k] = s * 2.0;
        }
        // Autocorrelation sidelobes extend over the whole ±(L−1) overlap
        // range, so the suppression window must cover the preamble length —
        // which is how the collision detector in zigzag-core uses it.
        let peaks = detect_sequence(&y, p.symbols(), 0.0, 0.3 * p.energy(), 32);
        assert_eq!(peaks.len(), 1, "{peaks:?}");
    }

    #[test]
    fn corr_beyond_buffer_is_partial() {
        let p = Preamble::standard(32);
        let y = vec![Complex::real(1.0); 16];
        // Only 16 of 32 samples overlap; must not panic.
        let c = corr_at(&y, p.symbols(), 0, 0.0);
        assert!(c.abs() <= 16.0 + 1e-9);
    }
}
