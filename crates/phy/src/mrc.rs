//! Maximal-ratio combining (MRC).
//!
//! §4.1 footnote: "If the AP receives two versions of the iᵗʰ bit … MRC
//! estimates the bit as the average of these two receptions" (for equal
//! channel gains; in general, receptions are weighted by their
//! signal-to-noise ratios, Brennan 1955). ZigZag uses MRC twice:
//!
//! * combining the **forward and backward decoding passes** of a collision
//!   pair (§4.3b), which is why ZigZag's BER beats collision-free
//!   transmission (every symbol is received twice);
//! * combining **two faulty versions of Bob's packet** recovered by
//!   subtracting different Alice packets in capture scenarios (Fig 4-1d).

use crate::complex::{Complex, ZERO};

/// Combines two equally-weighted soft symbol streams (the equal-gain case
/// of MRC — appropriate when both copies traversed the same quasi-static
/// channel, as for the two collisions of a retransmission pair).
///
/// Streams may have different lengths; the tail of the longer one is passed
/// through unchanged.
pub fn combine_pair(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    let n = a.len().max(b.len());
    (0..n)
        .map(|k| match (a.get(k), b.get(k)) {
            (Some(&x), Some(&y)) => (x + y).scale(0.5),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => ZERO,
        })
        .collect()
}

/// Full MRC: combines streams with per-stream weights
/// `w_i = SNRᵢ` (∝ |Hᵢ|²/σᵢ²), returning `Σ wᵢ·sᵢ / Σ wᵢ` per symbol.
///
/// Panics if `streams` is empty. Missing symbols (short streams) simply
/// drop out of the weighted sum for that position.
pub fn combine_weighted(streams: &[(&[Complex], f64)]) -> Vec<Complex> {
    let mut out = Vec::new();
    combine_weighted_into(streams, &mut out);
    out
}

/// In-place variant of [`combine_weighted`]: fills `out` (cleared first)
/// with the combined stream, reusing its allocation.
pub fn combine_weighted_into(streams: &[(&[Complex], f64)], out: &mut Vec<Complex>) {
    assert!(!streams.is_empty(), "MRC needs at least one stream");
    let n = streams.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
    out.clear();
    out.extend((0..n).map(|k| {
        let mut num = ZERO;
        let mut den = 0.0;
        for &(s, w) in streams {
            if let Some(&v) = s.get(k) {
                num += v.scale(w);
                den += w;
            }
        }
        if den > 0.0 {
            num / den
        } else {
            ZERO
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::Modulation;
    use rand::prelude::*;

    fn awgn(rng: &mut StdRng, sigma: f64) -> Complex {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        Complex::from_polar(
            (-2.0 * u1.ln()).sqrt() * sigma / 2.0_f64.sqrt(),
            2.0 * std::f64::consts::PI * u2,
        )
    }

    #[test]
    fn paper_footnote_example() {
        // "The first version is −0.2 and the second is +0.5 … MRC estimates
        // the bit as the average (0.5 − 0.2)/2 = 0.15 > 0 hence a 1 bit."
        let combined = combine_pair(&[Complex::real(-0.2)], &[Complex::real(0.5)]);
        assert!((combined[0].re - 0.15).abs() < 1e-12);
        let (bits, _) = Modulation::Bpsk.decide(combined[0]);
        assert_eq!(bits[0], 1);
    }

    #[test]
    fn combining_halves_error_rate_significantly() {
        // Two noisy BPSK copies at ~7 dB: combined BER must be well below
        // single-copy BER (this is the §4.3b mechanism behind Fig 5-3's
        // 1.4x BER gain).
        let mut rng = StdRng::seed_from_u64(10);
        let n = 60_000;
        let bits: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
        let clean = Modulation::Bpsk.modulate(&bits);
        let sigma = 0.45_f64; // ~6.9 dB
        let copy = |rng: &mut StdRng| -> Vec<Complex> {
            clean.iter().map(|&s| s + awgn(rng, sigma)).collect()
        };
        let a = copy(&mut rng);
        let b = copy(&mut rng);
        let ber = |syms: &[Complex]| -> f64 {
            let dec = Modulation::Bpsk.demodulate(syms);
            crate::bits::bit_error_rate(&bits, &dec)
        };
        let single = ber(&a);
        let combined = ber(&combine_pair(&a, &b));
        assert!(single > 0.0);
        assert!(combined < single / 3.0, "single {single:.5} combined {combined:.5}");
    }

    #[test]
    fn weighted_favours_strong_stream() {
        // A clean stream with weight 9 against garbage with weight 1: the
        // combination must follow the clean stream's sign.
        let good = [Complex::real(1.0); 8];
        let bad = [Complex::real(-1.0); 8];
        let out = combine_weighted(&[(&good, 9.0), (&bad, 1.0)]);
        for v in out {
            assert!(v.re > 0.5);
        }
    }

    #[test]
    fn weighted_equal_weights_matches_pair() {
        let a: Vec<Complex> = (0..16).map(|k| Complex::cis(k as f64 * 0.3)).collect();
        let b: Vec<Complex> = (0..16).map(|k| Complex::cis(k as f64 * -0.2)).collect();
        let w = combine_weighted(&[(&a, 1.0), (&b, 1.0)]);
        let p = combine_pair(&a, &b);
        for (x, y) in w.iter().zip(p.iter()) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn length_mismatch_passes_through_tail() {
        let a = [Complex::real(1.0); 4];
        let b = [Complex::real(0.0); 2];
        let out = combine_pair(&a, &b);
        assert_eq!(out.len(), 4);
        assert!((out[0].re - 0.5).abs() < 1e-12);
        assert!((out[3].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_weight_yields_zero() {
        let a = [Complex::real(1.0); 2];
        let out = combine_weighted(&[(&a, 0.0)]);
        assert_eq!(out[0], ZERO);
    }
}
