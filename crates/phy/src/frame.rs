//! Frame anatomy and symbol-level encoding.
//!
//! Over-the-air layout (mirroring 802.11's PLCP + MPDU split):
//!
//! ```text
//! | preamble (BPSK, known) | PLCP header (BPSK) |   MPDU (payload rate)    |
//! |   32 symbols default   |  5 bytes = 40 syms | (9 + payload + 4) bytes  |
//! ```
//!
//! * The **preamble** is the network-wide known sequence (§4.2.1).
//! * The **PLCP header** is always BPSK (like 802.11's base-rate PLCP) and
//!   carries `{rate, scramble seed, MPDU length}` plus a CRC-8, so the
//!   receiver learns how to decode the body. This is what lets two colliding
//!   packets use different modulations "without requiring any special
//!   treatment" (§4.2.3a).
//! * The **MPDU** is `{dst, src, seq, flags} ‖ payload ‖ CRC-32`, scrambled
//!   (whitened) with the seed advertised in the PLCP. Scrambling keeps the
//!   body pseudo-random, which collision detection and matching rely on.
//!
//! Retransmissions are bit-identical: the scramble seed is derived from
//! `(src, seq)` and the retry flag is not flipped over the air (see
//! DESIGN.md §2 for why this is a faithful simplification).

use crate::bits::{bits_to_bytes, bytes_to_bits, read_u16, write_u16};
use crate::complex::Complex;
use crate::crc::{append_crc, verify_crc};
use crate::modulation::Modulation;
use crate::preamble::Preamble;
use crate::scramble::Scrambler;

/// MPDU header length: dst(2) + src(2) + seq(2) + flags(1) = 7 bytes.
pub const MPDU_HEADER_LEN: usize = 7;
/// CRC-32 trailer length.
pub const CRC_LEN: usize = 4;
/// PLCP header length: rate(1) + seed(1) + length(2) + crc8(1) = 5 bytes.
pub const PLCP_LEN: usize = 5;
/// PLCP header length in BPSK symbols.
pub const PLCP_SYMBOLS: usize = PLCP_LEN * 8;
/// Default payload size used throughout the evaluation (§5.1c: 1500 bytes).
pub const DEFAULT_PAYLOAD_LEN: usize = 1500;

/// A link-layer frame, before PHY encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Destination node id (the AP in the evaluation scenarios).
    pub dst: u16,
    /// Source node id.
    pub src: u16,
    /// MAC sequence number; with `src` it identifies a packet across
    /// retransmissions.
    pub seq: u16,
    /// Retry flag (kept in metadata; not flipped over the air).
    pub retry: bool,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame with the given addressing and payload.
    pub fn new(dst: u16, src: u16, seq: u16, payload: Vec<u8>) -> Self {
        Self { dst, src, seq, retry: false, payload }
    }

    /// A frame with a deterministic pseudo-random payload of `len` bytes —
    /// handy for experiments that only care about bit statistics.
    pub fn with_random_payload(dst: u16, src: u16, seq: u16, len: usize, seed: u64) -> Self {
        // xorshift64* keeps this dependency-free and reproducible.
        let mut state = seed.wrapping_mul(2_685_821_657_736_338_717).wrapping_add(1);
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            payload.push((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8);
        }
        Self::new(dst, src, seq, payload)
    }

    /// The scramble seed used for this frame (deterministic in `(src, seq)`
    /// so retransmissions whiten identically).
    pub fn scramble_seed(&self) -> u8 {
        let s = (self.src.wrapping_mul(31) ^ self.seq.wrapping_mul(131)) as u8;
        (s | 1) & 0x7F // never zero
    }

    /// Serialises the MPDU: header ‖ payload ‖ CRC-32 (unscrambled).
    pub fn mpdu_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MPDU_HEADER_LEN + self.payload.len() + CRC_LEN);
        write_u16(&mut out, self.dst);
        write_u16(&mut out, self.src);
        write_u16(&mut out, self.seq);
        out.push(u8::from(self.retry));
        out.extend_from_slice(&self.payload);
        append_crc(&mut out);
        out
    }

    /// Parses and CRC-checks an (already descrambled) MPDU.
    pub fn from_mpdu(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < MPDU_HEADER_LEN + CRC_LEN || !verify_crc(bytes) {
            return None;
        }
        Some(Self {
            dst: read_u16(&bytes[0..2]),
            src: read_u16(&bytes[2..4]),
            seq: read_u16(&bytes[4..6]),
            retry: bytes[6] != 0,
            payload: bytes[MPDU_HEADER_LEN..bytes.len() - CRC_LEN].to_vec(),
        })
    }

    /// MPDU length in bytes for this frame.
    pub fn mpdu_len(&self) -> usize {
        MPDU_HEADER_LEN + self.payload.len() + CRC_LEN
    }
}

/// PLCP rate field encoding of a [`Modulation`].
fn rate_code(m: Modulation) -> u8 {
    match m {
        Modulation::Bpsk => 0,
        Modulation::Qpsk => 1,
        Modulation::Qam16 => 2,
        Modulation::Qam64 => 3,
    }
}

/// Decodes a PLCP rate field.
fn rate_from_code(code: u8) -> Option<Modulation> {
    match code {
        0 => Some(Modulation::Bpsk),
        1 => Some(Modulation::Qpsk),
        2 => Some(Modulation::Qam16),
        3 => Some(Modulation::Qam64),
        _ => None,
    }
}

/// CRC-8 (poly 0x07) protecting the PLCP header.
fn crc8(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 { (crc << 1) ^ 0x07 } else { crc << 1 };
        }
    }
    crc
}

/// Contents of a decoded PLCP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlcpHeader {
    /// Payload (MPDU) modulation.
    pub modulation: Modulation,
    /// Scramble seed for the MPDU.
    pub seed: u8,
    /// MPDU length in bytes.
    pub mpdu_len: u16,
}

impl PlcpHeader {
    /// Serialises the PLCP header (5 bytes, CRC-8 protected).
    pub fn to_bytes(self) -> [u8; PLCP_LEN] {
        let mut b = [0u8; PLCP_LEN];
        b[0] = rate_code(self.modulation);
        b[1] = self.seed;
        b[2..4].copy_from_slice(&self.mpdu_len.to_le_bytes());
        b[4] = crc8(&b[..4]);
        b
    }

    /// Parses and validates a PLCP header.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < PLCP_LEN || crc8(&b[..4]) != b[4] {
            return None;
        }
        Some(Self {
            modulation: rate_from_code(b[0])?,
            seed: b[1],
            mpdu_len: u16::from_le_bytes([b[2], b[3]]),
        })
    }
}

/// A fully PHY-encoded frame: the transmitted symbol stream plus the
/// reference data needed by the evaluation (transmitted bits for BER).
#[derive(Clone, Debug)]
pub struct AirFrame {
    /// The link-layer frame this encodes.
    pub frame: Frame,
    /// MPDU modulation.
    pub modulation: Modulation,
    /// Complete over-the-air symbol stream
    /// (preamble ‖ PLCP ‖ modulated scrambled MPDU).
    pub symbols: Vec<Complex>,
    /// Scrambled MPDU bits exactly as modulated — the reference stream for
    /// uncoded-BER measurements (§5.1f measures BER before channel coding).
    pub mpdu_bits: Vec<u8>,
    /// Preamble length in symbols (offset of the PLCP).
    pub preamble_len: usize,
}

impl AirFrame {
    /// Symbol index where the MPDU starts.
    pub fn mpdu_start(&self) -> usize {
        self.preamble_len + PLCP_SYMBOLS
    }

    /// Total length in symbols.
    #[allow(clippy::len_without_is_empty)] // frames are never empty
    pub fn len(&self) -> usize {
        self.symbols.len()
    }
}

/// Encodes a frame into its over-the-air symbol stream.
pub fn encode_frame(frame: &Frame, modulation: Modulation, preamble: &Preamble) -> AirFrame {
    let seed = frame.scramble_seed();
    let mpdu = frame.mpdu_bytes();
    let plcp = PlcpHeader { modulation, seed, mpdu_len: mpdu.len() as u16 };

    let mut scrambled = mpdu;
    Scrambler::new(seed).apply_bytes(&mut scrambled);
    let mpdu_bits = bytes_to_bits(&scrambled);

    let mut symbols = Vec::with_capacity(
        preamble.len() + PLCP_SYMBOLS + modulation.symbols_for_bits(mpdu_bits.len()),
    );
    symbols.extend_from_slice(preamble.symbols());
    symbols.extend(Modulation::Bpsk.modulate(&bytes_to_bits(&plcp.to_bytes())));
    symbols.extend(modulation.modulate(&mpdu_bits));

    AirFrame { frame: frame.clone(), modulation, symbols, mpdu_bits, preamble_len: preamble.len() }
}

/// Decodes an MPDU from its (already demodulated) scrambled bits.
///
/// Returns the frame if the CRC-32 passes. This is the tail end of the
/// "standard decoder" black box; the sample-to-bits front half lives in
/// `zigzag-core::standard`.
pub fn decode_mpdu(scrambled_bits: &[u8], seed: u8) -> Option<Frame> {
    let mut bytes = bits_to_bytes(scrambled_bits);
    Scrambler::new(seed).apply_bytes(&mut bytes);
    Frame::from_mpdu(&bytes)
}

/// Number of symbols an encoded frame occupies for a given payload length
/// and modulation (with the default preamble).
pub fn frame_symbol_len(payload_len: usize, modulation: Modulation, preamble_len: usize) -> usize {
    let mpdu_bits = (MPDU_HEADER_LEN + payload_len + CRC_LEN) * 8;
    preamble_len + PLCP_SYMBOLS + modulation.symbols_for_bits(mpdu_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_frame() -> Frame {
        Frame::with_random_payload(1, 2, 77, 256, 0xABCD)
    }

    #[test]
    fn mpdu_roundtrip() {
        let f = test_frame();
        let parsed = Frame::from_mpdu(&f.mpdu_bytes()).expect("parse");
        assert_eq!(parsed, f);
    }

    #[test]
    fn mpdu_rejects_corruption() {
        let f = test_frame();
        let mut bytes = f.mpdu_bytes();
        bytes[10] ^= 0x40;
        assert!(Frame::from_mpdu(&bytes).is_none());
    }

    #[test]
    fn plcp_roundtrip() {
        let h = PlcpHeader { modulation: Modulation::Qam16, seed: 0x3C, mpdu_len: 1511 };
        assert_eq!(PlcpHeader::from_bytes(&h.to_bytes()), Some(h));
    }

    #[test]
    fn plcp_rejects_bad_crc() {
        let h = PlcpHeader { modulation: Modulation::Bpsk, seed: 1, mpdu_len: 100 };
        let mut b = h.to_bytes();
        b[2] ^= 1;
        assert!(PlcpHeader::from_bytes(&b).is_none());
    }

    #[test]
    fn plcp_rejects_unknown_rate() {
        let mut b = [9u8, 1, 0, 1, 0];
        b[4] = super::crc8(&b[..4]);
        assert!(PlcpHeader::from_bytes(&b).is_none());
    }

    #[test]
    fn encode_decode_noiseless() {
        let f = test_frame();
        let p = Preamble::default_len();
        for m in Modulation::ALL {
            let air = encode_frame(&f, m, &p);
            // Demodulate the MPDU region noiselessly and parse.
            let mpdu_syms = &air.symbols[air.mpdu_start()..];
            let bits = m.demodulate(mpdu_syms);
            let bits = &bits[..air.mpdu_bits.len()];
            let decoded = decode_mpdu(bits, f.scramble_seed()).expect("decode");
            assert_eq!(decoded, f, "{m:?}");
        }
    }

    #[test]
    fn retransmission_is_bit_identical() {
        let f = test_frame();
        let mut retry = f.clone();
        retry.retry = false; // MAC metadata only; over-the-air stream derives from (src, seq)
        let p = Preamble::default_len();
        let a = encode_frame(&f, Modulation::Bpsk, &p);
        let b = encode_frame(&retry, Modulation::Bpsk, &p);
        assert_eq!(a.mpdu_bits, b.mpdu_bits);
    }

    #[test]
    fn frame_symbol_len_matches_encoder() {
        let p = Preamble::default_len();
        for m in Modulation::ALL {
            for len in [0usize, 1, 100, 1500] {
                let f = Frame::with_random_payload(1, 2, 3, len, 9);
                let air = encode_frame(&f, m, &p);
                assert_eq!(air.len(), frame_symbol_len(len, m, p.len()), "{m:?} len {len}");
            }
        }
    }

    #[test]
    fn paper_default_frame_size() {
        // §5.1c: 32-bit preamble, 1500-byte payload, 32-bit CRC, BPSK.
        let n = frame_symbol_len(DEFAULT_PAYLOAD_LEN, Modulation::Bpsk, 32);
        // 32 + 40 + (7 + 1500 + 4)*8 = 12160
        assert_eq!(n, 12160);
    }

    #[test]
    fn different_frames_have_different_bits() {
        let p = Preamble::default_len();
        let a = encode_frame(&Frame::with_random_payload(1, 2, 1, 64, 5), Modulation::Bpsk, &p);
        let b = encode_frame(&Frame::with_random_payload(1, 2, 2, 64, 6), Modulation::Bpsk, &p);
        assert_ne!(a.mpdu_bits, b.mpdu_bits);
    }

    #[test]
    fn seed_never_zero() {
        for src in 0..64u16 {
            for seq in 0..64u16 {
                let f = Frame::new(0, src, seq, vec![]);
                assert_ne!(f.scramble_seed(), 0);
            }
        }
    }
}
