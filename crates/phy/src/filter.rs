//! FIR filtering.
//!
//! Two places in the system are FIR filters: the multipath/hardware
//! distortion the channel applies (§3.1.3, inter-symbol interference), and
//! the receiver's linear equalizer that undoes it (§3.1.3: "practical
//! receivers apply linear equalizers to mitigate the effect of ISI").
//! ZigZag additionally needs to *re-apply* the distortion when it
//! reconstructs a chunk image ("we can take the filter from the decoder and
//! invert it", §4.2.4d), so the filter type is shared by all three users.

use crate::complex::{Complex, ZERO};

/// A finite-impulse-response filter with complex taps.
///
/// `delay` is the index of the tap treated as "time zero": applying the
/// filter with delay `d` produces an output aligned with the input (the
/// output at index `n` is `Σ_l taps[l]·x[n + d − l]`). This matches the
/// paper's two-sided sum `x[i] = Σ_{l=−L..L} h_l·x_isi[i+l]` with
/// `delay = L`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fir {
    taps: Vec<Complex>,
    delay: usize,
}

impl Fir {
    /// Creates a filter from taps and its nominal delay (index of the
    /// "main" tap).
    pub fn new(taps: Vec<Complex>, delay: usize) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        assert!(delay < taps.len(), "delay must index a tap");
        Self { taps, delay }
    }

    /// A pass-through (identity) filter.
    pub fn identity() -> Self {
        Self { taps: vec![Complex::real(1.0)], delay: 0 }
    }

    /// Creates a causal filter (delay 0) from real taps.
    pub fn from_real(taps: &[f64], delay: usize) -> Self {
        Self::new(taps.iter().map(|&t| Complex::real(t)).collect(), delay)
    }

    /// The taps.
    pub fn taps(&self) -> &[Complex] {
        &self.taps
    }

    /// The delay (index of the time-zero tap).
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Number of taps.
    #[allow(clippy::len_without_is_empty)] // non-empty by construction
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if the filter is the exact identity.
    pub fn is_identity(&self) -> bool {
        self.taps.len() == 1 && self.delay == 0 && self.taps[0] == Complex::real(1.0)
    }

    /// Filters a signal, producing an output of the same length aligned
    /// with the input (out-of-range input treated as zero).
    pub fn apply(&self, x: &[Complex]) -> Vec<Complex> {
        let mut y = Vec::new();
        self.apply_into(x, &mut y);
        y
    }

    /// In-place variant of [`Fir::apply`]: fills `y` (cleared first) with
    /// the filtered signal, reusing its allocation. This is the hot-path
    /// entry point used by the decode engine's scratch buffers.
    pub fn apply_into(&self, x: &[Complex], y: &mut Vec<Complex>) {
        y.clear();
        if self.is_identity() {
            y.extend_from_slice(x);
            return;
        }
        y.resize(x.len(), ZERO);
        for (n, out) in y.iter_mut().enumerate() {
            *out = self.tap_sum(x, n);
        }
    }

    /// The shared tap-accumulation loop: output sample `n` is
    /// `Σ_l taps[l]·x[n + delay − l]` with out-of-range inputs as zero.
    /// Both [`Fir::apply_into`] and [`Fir::apply_at`] (the equalizer's
    /// single-sample path) go through this, so they cannot drift apart.
    #[inline]
    fn tap_sum(&self, x: &[Complex], n: usize) -> Complex {
        let mut acc = ZERO;
        for (l, &t) in self.taps.iter().enumerate() {
            let idx = n as isize + self.delay as isize - l as isize;
            if idx >= 0 && (idx as usize) < x.len() {
                acc += t * x[idx as usize];
            }
        }
        acc
    }

    /// Filters a single output sample at position `n` of signal `x`.
    pub fn apply_at(&self, x: &[Complex], n: usize) -> Complex {
        self.tap_sum(x, n)
    }

    /// Convolves this filter with another, composing their effects
    /// (`(self ∘ other).apply(x) ≈ self.apply(&other.apply(x))`).
    pub fn compose(&self, other: &Fir) -> Fir {
        let n = self.taps.len() + other.taps.len() - 1;
        let mut taps = vec![ZERO; n];
        for (i, &a) in self.taps.iter().enumerate() {
            for (j, &b) in other.taps.iter().enumerate() {
                taps[i + j] += a * b;
            }
        }
        Fir::new(taps, self.delay + other.delay)
    }

    /// Energy of the taps, `Σ|h_l|²`.
    pub fn energy(&self) -> f64 {
        self.taps.iter().map(|t| t.norm_sq()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: usize) -> Vec<Complex> {
        (0..n).map(|k| Complex::cis(0.3 * k as f64).scale(1.0 + 0.1 * (k % 5) as f64)).collect()
    }

    #[test]
    fn identity_passthrough() {
        let x = sig(20);
        assert_eq!(Fir::identity().apply(&x), x);
    }

    #[test]
    fn delay_alignment() {
        // taps [0, 1] with delay 1 is the identity; with delay 0 it is a
        // one-sample delay.
        let x = sig(10);
        let f_id = Fir::from_real(&[0.0, 1.0], 1);
        let got = f_id.apply(&x);
        for k in 0..10 {
            assert!((got[k] - x[k]).abs() < 1e-12);
        }
        let f_delay = Fir::from_real(&[0.0, 1.0], 0);
        let got = f_delay.apply(&x);
        for k in 1..10 {
            assert!((got[k] - x[k - 1]).abs() < 1e-12);
        }
        assert_eq!(got[0], ZERO);
    }

    #[test]
    fn symmetric_isi_filter() {
        // The paper's two-sided ISI sum: h = [0.1, 1.0, 0.2], delay 1.
        let f = Fir::from_real(&[0.1, 1.0, 0.2], 1);
        let x = vec![ZERO, Complex::real(1.0), ZERO, ZERO];
        let y = f.apply(&x);
        // impulse response centered at the impulse position
        assert!((y[0].re - 0.1).abs() < 1e-12);
        assert!((y[1].re - 1.0).abs() < 1e-12);
        assert!((y[2].re - 0.2).abs() < 1e-12);
    }

    #[test]
    fn apply_at_matches_apply() {
        let f = Fir::from_real(&[0.2, 0.9, -0.1, 0.05], 1);
        let x = sig(32);
        let y = f.apply(&x);
        #[allow(clippy::needless_range_loop)]
        for n in 0..32 {
            assert!((f.apply_at(&x, n) - y[n]).abs() < 1e-12);
        }
    }

    #[test]
    fn compose_equals_sequential_application() {
        let a = Fir::from_real(&[0.1, 1.0, 0.2], 1);
        let b = Fir::from_real(&[0.9, -0.3], 0);
        let x = sig(64);
        let seq = a.apply(&b.apply(&x));
        let comp = a.compose(&b).apply(&x);
        // identical away from edges (edge handling differs by zero-padding)
        for k in 4..60 {
            assert!((seq[k] - comp[k]).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn energy() {
        let f = Fir::from_real(&[3.0, 4.0], 0);
        assert!((f.energy() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_taps_panics() {
        let _ = Fir::new(vec![], 0);
    }

    #[test]
    #[should_panic]
    fn bad_delay_panics() {
        let _ = Fir::from_real(&[1.0], 1);
    }
}
