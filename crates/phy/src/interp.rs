//! Band-limited fractional-delay interpolation.
//!
//! §4.2.3(b): "we leverage the fact that we have a band-limited signal
//! sampled according to the Nyquist criterion. Nyquist says that under
//! these conditions, one can interpolate the signal at any discrete
//! position … with complete accuracy using `y[n+µ] = Σ y[i]·sinc(π(n+µ−i))`.
//! In practice, the above equation is approximated by taking the summation
//! over few symbols (about 8 symbols) in the neighbourhood of n."
//!
//! We use exactly that: a truncated sinc kernel, Hann-windowed to tame the
//! truncation sidelobes, with a default half-width of 8 taps per side. Both
//! the channel simulator (applying a *sampling offset*, §3.1.2) and the
//! ZigZag re-encoder (reconstructing a chunk image on the receiver's
//! sampling grid) use this module — which is important: re-encoding inverts
//! the channel's resampling only because both sides share the same
//! interpolation model.

use crate::complex::{Complex, ZERO};

/// Default interpolation half-width (taps each side), per §4.2.3(b).
pub const DEFAULT_HALF_WIDTH: usize = 8;

/// Normalised sinc, `sin(πx)/(πx)`.
#[inline]
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

/// Hann window of half-width `w` evaluated at offset `x ∈ [−w, w]`.
/// Shared with the optimized kernel backend's cached-tap resampler.
#[inline]
pub(crate) fn hann(x: f64, w: f64) -> f64 {
    let t = (x / w).clamp(-1.0, 1.0);
    0.5 * (1.0 + (std::f64::consts::PI * t).cos())
}

/// Interpolates `samples` at fractional position `t` (in sample units) with
/// the given kernel half-width. Positions outside the buffer are treated as
/// zero (signals are zero-padded at the edges, like a quiet channel).
pub fn interp_at_width(samples: &[Complex], t: f64, half_width: usize) -> Complex {
    let w = half_width as f64;
    let lo = (t - w).ceil() as isize;
    let hi = (t + w).floor() as isize;
    let mut acc = ZERO;
    for i in lo..=hi {
        if i < 0 || i as usize >= samples.len() {
            continue;
        }
        let d = t - i as f64;
        acc += samples[i as usize] * (sinc(d) * hann(d, w + 1.0));
    }
    acc
}

/// Interpolates at position `t` with the default half-width.
pub fn interp_at(samples: &[Complex], t: f64) -> Complex {
    interp_at_width(samples, t, DEFAULT_HALF_WIDTH)
}

/// Resamples a signal at positions `start + k·step` for `k = 0..n`.
///
/// `step = 1 + drift` models sampling-clock drift (§3.1.2: "the drift in
/// the transmitter's and receiver's clocks results in a drift in the
/// sampling offset").
pub fn resample(samples: &[Complex], start: f64, step: f64, n: usize) -> Vec<Complex> {
    let mut out = Vec::new();
    resample_into(samples, start, step, n, &mut out);
    out
}

/// In-place variant of [`resample`]: fills `out` (cleared first) with the
/// resampled signal, reusing its allocation.
pub fn resample_into(samples: &[Complex], start: f64, step: f64, n: usize, out: &mut Vec<Complex>) {
    out.clear();
    out.extend((0..n).map(|k| interp_at(samples, start + k as f64 * step)));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A band-limited test signal: sum of slow complex exponentials
    /// (well inside the Nyquist band).
    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|k| {
                let t = k as f64;
                Complex::cis(0.05 * t)
                    + Complex::cis(-0.11 * t).scale(0.5)
                    + Complex::cis(0.23 * t).scale(0.25)
            })
            .collect()
    }

    fn reference(t: f64) -> Complex {
        Complex::cis(0.05 * t)
            + Complex::cis(-0.11 * t).scale(0.5)
            + Complex::cis(0.23 * t).scale(0.25)
    }

    #[test]
    fn integer_positions_are_exact() {
        let s = test_signal(64);
        for k in 10..50 {
            let v = interp_at(&s, k as f64);
            assert!((v - s[k]).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn fractional_positions_match_analytic_signal() {
        let s = test_signal(256);
        for k in 20..230 {
            for frac in [0.1, 0.25, 0.5, 0.75, 0.9] {
                let t = k as f64 + frac;
                let v = interp_at(&s, t);
                let r = reference(t);
                assert!((v - r).abs() < 2e-3, "t={t}: got {v:?} want {r:?} err {}", (v - r).abs());
            }
        }
    }

    #[test]
    fn wider_kernel_is_more_accurate() {
        let s = test_signal(256);
        let t = 100.37;
        let r = reference(t);
        let e4 = (interp_at_width(&s, t, 4) - r).abs();
        let e16 = (interp_at_width(&s, t, 16) - r).abs();
        assert!(e16 < e4, "e4={e4} e16={e16}");
    }

    #[test]
    fn out_of_range_is_zero() {
        let s = test_signal(16);
        assert_eq!(interp_at(&s, -100.0), ZERO);
        assert_eq!(interp_at(&s, 1e6), ZERO);
    }

    #[test]
    fn resample_identity() {
        let s = test_signal(64);
        let r = resample(&s, 0.0, 1.0, 64);
        for k in 8..56 {
            assert!((r[k] - s[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_shift_then_unshift() {
        // Shifting by +µ then by −µ must reproduce the original (away from
        // the edges) — the core requirement for re-encoding (§4.2.3b).
        let s = test_signal(256);
        let mu = 0.31;
        let shifted = resample(&s, mu, 1.0, 256);
        let back = resample(&shifted, -mu, 1.0, 256);
        for k in 32..224 {
            assert!((back[k] - s[k]).abs() < 5e-3, "k={k} err={}", (back[k] - s[k]).abs());
        }
    }

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-12);
        assert!(sinc(2.0).abs() < 1e-12);
        assert!((sinc(0.5) - 2.0 / std::f64::consts::PI).abs() < 1e-12);
    }
}
