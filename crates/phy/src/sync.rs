//! Synchronisation: frequency-offset estimation, phase tracking, timing
//! recovery.
//!
//! §3.1.1: "there is always a small frequency difference δf between
//! transmitter and receiver … the receiver estimates δf and compensates for
//! it. … Any typical decoder tracks the signal phase and corrects for the
//! residual errors in the frequency offset." §3.1.2: "decoders have
//! algorithms to estimate µ and track it over the duration of a packet",
//! and footnote 2 of §4.2.4 names the Mueller-and-Müller algorithm.
//!
//! This module provides those three standard blocks:
//! * [`estimate_freq`] — data-aided frequency estimate from a known
//!   sequence (the preamble), used for the coarse per-client estimates the
//!   AP keeps "at the time of association" (§4.2.1);
//! * [`PhaseTracker`] — a second-order decision-directed PLL that absorbs
//!   residual frequency error while decoding;
//! * [`TimingTracker`] — a Mueller–Müller timing-error-detector loop that
//!   tracks the fractional sampling offset µ and its drift.

use crate::complex::{Complex, ZERO};

/// Data-aided frequency-offset estimate from a known sequence.
///
/// Removes the data by `z[k] = rx[k]·conj(known[k])`, leaving
/// `z[k] ≈ H·e^{jωk}`, then applies the Fitz estimator: autocorrelations
/// `R(m) = Σ_k z[k+m]·z*[k]` have phase `m·ω`; a least-squares slope fit
/// through the unwrapped phases of `R(1..M)` (M = half the sequence)
/// estimates ω far more accurately than adjacent-sample products — at
/// 14 dB over a 32-symbol preamble the error is ~10⁻³ rad/sample, small
/// enough for the decoder PLL to absorb without BPSK cycle slips.
/// Unambiguous for `|ω| < π`.
pub fn estimate_freq(rx: &[Complex], known: &[Complex]) -> f64 {
    let n = rx.len().min(known.len());
    if n < 2 {
        return 0.0;
    }
    let z: Vec<Complex> = (0..n).map(|k| rx[k] * known[k].conj()).collect();
    let m_max = (n / 2).max(1);
    let mut prev_phase = 0.0f64;
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for m in 1..=m_max {
        let mut r = ZERO;
        for k in 0..n - m {
            r += z[k + m] * z[k].conj();
        }
        if r.abs() < 1e-30 {
            continue;
        }
        // unwrap: consecutive lags differ by ≈ ω < π
        let raw = r.arg();
        let mut phase = raw;
        let two_pi = 2.0 * std::f64::consts::PI;
        while phase - prev_phase > std::f64::consts::PI {
            phase -= two_pi;
        }
        while phase - prev_phase < -std::f64::consts::PI {
            phase += two_pi;
        }
        // weight longer lags more (they carry more phase per noise unit)
        num += phase * m as f64;
        den += (m * m) as f64;
        prev_phase = phase;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Data-aided channel estimate `Ĥ` given the frequency offset `omega`
/// (radians/sample): `Ĥ = Σ_k rx[k]·conj(known[k])·e^{−jωk} / Σ|known[k]|²`
/// — §4.2.4(a)'s "correlation trick" normalised by the preamble energy.
pub fn estimate_channel(rx: &[Complex], known: &[Complex], omega: f64) -> Complex {
    let n = rx.len().min(known.len());
    let mut num = ZERO;
    let mut den = 0.0;
    for k in 0..n {
        num += rx[k] * known[k].conj() * Complex::cis(-omega * k as f64);
        den += known[k].norm_sq();
    }
    if den == 0.0 {
        ZERO
    } else {
        num / den
    }
}

/// Second-order decision-directed phase-locked loop.
///
/// Tracks a phase ramp `θ[n] = θ₀ + ω·n` whose slope ω (the residual
/// frequency offset) may itself be slightly wrong; the proportional path
/// absorbs phase noise, the integral path re-estimates ω. This is the
/// "phase tracking" whose absence Table 5.1 shows to be fatal for 1500-byte
/// packets.
#[derive(Clone, Debug)]
pub struct PhaseTracker {
    phase: f64,
    freq: f64,
    kp: f64,
    ki: f64,
}

/// Default proportional gain of the decoder PLL.
pub const DEFAULT_PLL_KP: f64 = 0.08;
/// Default integral gain of the decoder PLL.
pub const DEFAULT_PLL_KI: f64 = 0.002;

impl PhaseTracker {
    /// Creates a tracker from an initial phase, an initial frequency
    /// (radians/sample) and loop gains.
    pub fn new(phase: f64, freq: f64, kp: f64, ki: f64) -> Self {
        Self { phase, freq, kp, ki }
    }

    /// Creates a tracker with the default loop gains.
    pub fn with_defaults(phase: f64, freq: f64) -> Self {
        Self::new(phase, freq, DEFAULT_PLL_KP, DEFAULT_PLL_KI)
    }

    /// Current phase estimate (radians).
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Current frequency estimate (radians/sample).
    pub fn freq(&self) -> f64 {
        self.freq
    }

    /// De-rotates a received sample by the current phase estimate.
    pub fn correct(&self, y: Complex) -> Complex {
        y.rotate(-self.phase)
    }

    /// Feeds back the phase error of the current symbol
    /// (`err = ∠(y_corrected · conj(decision))`) and advances one symbol.
    pub fn update(&mut self, err: f64) {
        self.freq += self.ki * err;
        self.phase += self.kp * err + self.freq;
    }

    /// Advances one symbol without feedback (e.g. over symbols another
    /// sender owns).
    pub fn advance(&mut self) {
        self.phase += self.freq;
    }

    /// Advances `n` symbols without feedback.
    pub fn advance_by(&mut self, n: usize) {
        self.phase += self.freq * n as f64;
    }

    /// Applies an external correction to the frequency estimate — ZigZag's
    /// chunk-image feedback `δf̂ ← δf̂ + α·δφ/δt` (§4.2.4b).
    pub fn nudge_freq(&mut self, delta: f64) {
        self.freq += delta;
    }

    /// Applies an external correction to the phase estimate.
    pub fn nudge_phase(&mut self, delta: f64) {
        self.phase += delta;
    }
}

/// Mueller–Müller decision-directed timing recovery.
///
/// Maintains the fractional sampling position `τ` (in samples). After each
/// symbol decision, `err = Re{ conj(d[n−1])·y[n] − conj(d[n])·y[n−1] }`
/// measures whether we are sampling early or late; the loop steers `τ`
/// to the zero crossing.
#[derive(Clone, Debug)]
pub struct TimingTracker {
    tau: f64,
    gain: f64,
    prev_sample: Complex,
    prev_decision: Complex,
    primed: bool,
}

/// Default Mueller–Müller loop gain.
pub const DEFAULT_MM_GAIN: f64 = 0.02;

impl TimingTracker {
    /// Creates a tracker starting at fractional offset `tau`.
    pub fn new(tau: f64, gain: f64) -> Self {
        Self { tau, gain, prev_sample: ZERO, prev_decision: ZERO, primed: false }
    }

    /// Creates a tracker with the default gain.
    pub fn with_defaults(tau: f64) -> Self {
        Self::new(tau, DEFAULT_MM_GAIN)
    }

    /// Current fractional sampling position (samples).
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Feeds one (phase-corrected) sample and its hard decision; returns
    /// the raw timing error (0 until two symbols have been seen).
    pub fn update(&mut self, sample: Complex, decision: Complex) -> f64 {
        let err = if self.primed {
            (self.prev_decision.conj() * sample - decision.conj() * self.prev_sample).re
        } else {
            0.0
        };
        self.prev_sample = sample;
        self.prev_decision = decision;
        self.primed = true;
        // For sinc-interpolated symbol-rate sampling the M&M S-curve has a
        // stable zero at the symbol centre under a positive-gain update
        // with this sign (verified by `mm_timing_converges_to_true_offset`).
        self.tau += self.gain * err;
        err
    }

    /// Applies an external correction (ZigZag's chunk-image residual
    /// feedback for the sampling offset, §4.2.4c).
    pub fn nudge(&mut self, delta: f64) {
        self.tau += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::interp_at;
    use crate::modulation::Modulation;
    use crate::preamble::Preamble;
    use rand::prelude::*;

    #[test]
    fn freq_estimate_exact_on_clean_signal() {
        let p = Preamble::standard(64);
        for &omega in &[0.001, -0.02, 0.3, -1.0] {
            let rx: Vec<Complex> = p
                .symbols()
                .iter()
                .enumerate()
                .map(|(k, &s)| s * Complex::cis(omega * k as f64))
                .collect();
            let est = estimate_freq(&rx, p.symbols());
            assert!((est - omega).abs() < 1e-9, "omega {omega}: est {est}");
        }
    }

    #[test]
    fn freq_estimate_with_noise() {
        let p = Preamble::standard(64);
        let omega = 0.05;
        let mut rng = StdRng::seed_from_u64(2);
        let rx: Vec<Complex> = p
            .symbols()
            .iter()
            .enumerate()
            .map(|(k, &s)| {
                let n = Complex::new(rng.gen_range(-0.05..0.05), rng.gen_range(-0.05..0.05));
                s * Complex::cis(omega * k as f64) + n
            })
            .collect();
        let est = estimate_freq(&rx, p.symbols());
        assert!((est - omega).abs() < 5e-3, "est {est}");
    }

    #[test]
    fn channel_estimate_recovers_h() {
        let p = Preamble::standard(32);
        let h = Complex::from_polar(0.7, -2.0);
        let omega = 0.01;
        let rx: Vec<Complex> = p
            .symbols()
            .iter()
            .enumerate()
            .map(|(k, &s)| h * s * Complex::cis(omega * k as f64))
            .collect();
        let est = estimate_channel(&rx, p.symbols(), omega);
        assert!((est - h).abs() < 1e-9);
    }

    #[test]
    fn pll_locks_onto_residual_frequency() {
        // A BPSK stream with a residual frequency error the PLL was not
        // told about: after convergence the corrected symbols must decide
        // cleanly and the internal freq estimate must approach the truth.
        let mut rng = StdRng::seed_from_u64(3);
        let bits: Vec<u8> = (0..4000).map(|_| rng.gen_range(0..2u8)).collect();
        let syms = Modulation::Bpsk.modulate(&bits);
        let omega_true = 2e-4;
        let mut pll = PhaseTracker::with_defaults(0.0, 0.0);
        let mut errors = 0usize;
        for (n, &s) in syms.iter().enumerate() {
            let y = s * Complex::cis(omega_true * n as f64);
            let c = pll.correct(y);
            let (dec_bits, point) = Modulation::Bpsk.decide(c);
            if dec_bits[0] != bits[n] && n > 500 {
                errors += 1;
            }
            let err = (c * point.conj()).arg();
            pll.update(err);
        }
        assert_eq!(errors, 0);
        assert!((pll.freq() - omega_true).abs() < 5e-5, "freq {}", pll.freq());
    }

    #[test]
    fn pll_without_updates_accumulates_error() {
        // The Table 5.1 ablation in miniature: no tracking ⇒ the phase ramp
        // eventually flips BPSK decisions.
        let omega_true = 2e-4;
        let pll = PhaseTracker::with_defaults(0.0, 0.0);
        let n_flip = (std::f64::consts::FRAC_PI_2 / omega_true) as usize;
        let y = Complex::real(1.0) * Complex::cis(omega_true * (n_flip as f64 * 1.3));
        let c = pll.correct(y); // never updated
        assert!(c.re < 0.0, "phase ramp should have flipped the symbol");
    }

    #[test]
    fn mm_timing_converges_to_true_offset() {
        // Band-limited BPSK: modulate, then present samples taken at
        // n + true_offset. Decision-directed MM must steer tau so that the
        // interpolated samples land on symbol centres.
        let mut rng = StdRng::seed_from_u64(4);
        let bits: Vec<u8> = (0..3000).map(|_| rng.gen_range(0..2u8)).collect();
        let syms = Modulation::Bpsk.modulate(&bits);
        let true_offset = 0.25;
        let mut tt = TimingTracker::with_defaults(0.0);
        // The receiver interpolates the *received* stream at n − tau; the
        // received stream is the transmitted one delayed by true_offset, so
        // perfect tracking drives tau → −true_offset (or equivalently
        // sampling position n + tau aligned with symbol centres).
        let mut taus = Vec::new();
        for n in 8..syms.len() - 8 {
            let pos = n as f64 + true_offset + tt.tau();
            let y = interp_at(&syms, pos);
            let (_, d) = Modulation::Bpsk.decide(y);
            tt.update(y, d);
            taus.push(tt.tau());
        }
        let settled: f64 = taus[taus.len() - 200..].iter().sum::<f64>() / 200.0;
        assert!(
            (settled + true_offset).abs() < 0.06,
            "tau settled at {settled}, want {}",
            -true_offset
        );
    }

    #[test]
    fn mm_stays_put_when_aligned() {
        let mut rng = StdRng::seed_from_u64(5);
        let bits: Vec<u8> = (0..2000).map(|_| rng.gen_range(0..2u8)).collect();
        let syms = Modulation::Bpsk.modulate(&bits);
        let mut tt = TimingTracker::with_defaults(0.0);
        for n in 8..syms.len() - 8 {
            let pos = n as f64 + tt.tau();
            let y = interp_at(&syms, pos);
            let (_, d) = Modulation::Bpsk.decide(y);
            tt.update(y, d);
        }
        assert!(tt.tau().abs() < 0.03, "tau drifted to {}", tt.tau());
    }

    #[test]
    fn advance_by_matches_repeated_advance() {
        let mut a = PhaseTracker::with_defaults(0.1, 0.01);
        let mut b = a.clone();
        for _ in 0..37 {
            a.advance();
        }
        b.advance_by(37);
        assert!((a.phase() - b.phase()).abs() < 1e-12);
    }
}
