//! Data scrambler (whitener).
//!
//! 802.11 scrambles every frame with the self-synchronising LFSR
//! `S(x) = x⁷ + x⁴ + 1` so that the transmitted bit stream looks
//! pseudo-random regardless of payload content. ZigZag *depends* on this
//! property twice:
//!
//! * collision detection (§4.2.1) requires the preamble to be uncorrelated
//!   with "Alice's data", and
//! * collision matching (§4.2.2) requires two *different* packets to be
//!   uncorrelated with each other.
//!
//! A run of zero bytes in an unscrambled payload would violate both. We use
//! the synchronous (additive) form: the same seed regenerates the same
//! whitening sequence, so scrambling is its own inverse.

/// 802.11 frame scrambler, LFSR `x⁷ + x⁴ + 1`.
#[derive(Clone, Debug)]
pub struct Scrambler {
    state: u8, // 7-bit state, never all-zero
}

impl Scrambler {
    /// Creates a scrambler from a 7-bit seed. An all-zero seed would lock
    /// the LFSR, so it is mapped to the 802.11 default `0b1011101`.
    pub fn new(seed: u8) -> Self {
        let s = seed & 0x7F;
        Self { state: if s == 0 { 0b101_1101 } else { s } }
    }

    /// Produces the next whitening bit and advances the LFSR.
    #[inline]
    pub fn next_bit(&mut self) -> u8 {
        // Feedback = x7 xor x4 (bits 6 and 3 of the 7-bit state).
        let fb = ((self.state >> 6) ^ (self.state >> 3)) & 1;
        self.state = ((self.state << 1) | fb) & 0x7F;
        fb
    }

    /// Scrambles (or descrambles — the operation is an involution) a bit
    /// slice in place.
    pub fn apply_bits(&mut self, bits: &mut [u8]) {
        for b in bits {
            *b ^= self.next_bit();
        }
    }

    /// Scrambles (or descrambles) a byte slice in place, LSB-first.
    pub fn apply_bytes(&mut self, bytes: &mut [u8]) {
        for byte in bytes {
            let mut mask = 0u8;
            for i in 0..8 {
                mask |= self.next_bit() << i;
            }
            *byte ^= mask;
        }
    }
}

/// Scrambles a copy of `bytes` with the given seed.
pub fn scramble(bytes: &[u8], seed: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    Scrambler::new(seed).apply_bytes(&mut out);
    out
}

/// Descrambles a copy of `bytes` with the given seed (same as
/// [`scramble`]; XOR whitening is an involution).
pub fn descramble(bytes: &[u8], seed: u8) -> Vec<u8> {
    scramble(bytes, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let data: Vec<u8> = (0..200).map(|i| (i * 7 + 3) as u8).collect();
        assert_eq!(descramble(&scramble(&data, 0x5A), 0x5A), data);
    }

    #[test]
    fn zero_seed_does_not_lock() {
        let zeros = vec![0u8; 64];
        let s = scramble(&zeros, 0);
        assert_ne!(s, zeros, "scrambler with zero seed must still whiten");
    }

    #[test]
    fn whitens_constant_input() {
        // A run of zeros must come out with roughly balanced bit counts.
        let zeros = vec![0u8; 512];
        let s = scramble(&zeros, 0x7F);
        let ones: u32 = s.iter().map(|b| b.count_ones()).sum();
        let total = 512 * 8;
        let frac = ones as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "ones fraction {frac}");
    }

    #[test]
    fn lfsr_period_is_127() {
        // x^7+x^4+1 is primitive: the whitening sequence repeats every 127 bits.
        let mut s = Scrambler::new(1);
        let seq: Vec<u8> = (0..254).map(|_| s.next_bit()).collect();
        assert_eq!(&seq[..127], &seq[127..]);
        // and no shorter period
        for p in 1..127 {
            if 127 % p == 0 && p < 127 && seq[..127 - p] == seq[p..127] {
                panic!("period {p} < 127");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let data = vec![0u8; 32];
        assert_ne!(scramble(&data, 1), scramble(&data, 2));
    }

    #[test]
    fn bit_and_byte_paths_agree() {
        let bytes = vec![0xC3u8; 16];
        let mut by = bytes.clone();
        Scrambler::new(0x2B).apply_bytes(&mut by);

        let mut bits = crate::bits::bytes_to_bits(&bytes);
        Scrambler::new(0x2B).apply_bits(&mut bits);
        assert_eq!(crate::bits::bits_to_bytes(&bits), by);
    }
}
