//! # zigzag-phy — complex-baseband DSP substrate
//!
//! Physical-layer building blocks for the ZigZag reproduction ("ZigZag
//! Decoding: Combating Hidden Terminals in Wireless Networks", SIGCOMM
//! 2008). This crate corresponds to the GNU Radio signal-processing blocks
//! the paper's prototype was built from (§5.1a): everything between bits
//! and complex baseband samples.
//!
//! ## Layout
//!
//! * [`complex`] — the [`complex::Complex`] sample type and signal
//!   arithmetic.
//! * [`bits`] — bit/byte packing and BER computation.
//! * [`crc`] / [`scramble`] — CRC-32 frame check and 802.11-style data
//!   whitening.
//! * [`modulation`] — BPSK/QPSK/16-QAM/64-QAM constellations (the paper's
//!   prototype runs BPSK; the rest demonstrate modulation-independence).
//! * [`preamble`] / [`frame`] — the known preamble and the over-the-air
//!   frame anatomy (preamble ‖ PLCP ‖ scrambled MPDU).
//! * [`correlate`] — frequency-compensated sliding correlation (§4.2.1's
//!   collision detector primitive).
//! * [`interp`] — windowed-sinc fractional interpolation (§4.2.3b).
//! * [`kernel`] — pluggable scalar/optimized compute backends for the
//!   four hot-loop primitives (correlate/fir/interp/mrc).
//! * [`filter`] / [`equalize`] / [`linalg`] — ISI channels, least-squares
//!   channel estimation and zero-forcing equalizers (§3.1.3, §4.2.4d).
//! * [`sync`] — frequency estimation, decision-directed phase tracking and
//!   Mueller–Müller timing recovery (§3.1.1–3.1.2, §4.2.4b–c).
//! * [`mrc`] — maximal-ratio combining (§4.3b, Fig 4-1d).
//! * [`coding`] — 802.11 convolutional code + Viterbi (the §6a extension).
//!
//! Nothing in this crate knows about collisions: it is the "standard
//! decoder" toolbox that `zigzag-core` composes, uses as a black box, and
//! inverts for re-encoding.

#![warn(missing_docs)]

pub mod bits;
pub mod coding;
pub mod complex;
pub mod correlate;
pub mod crc;
pub mod equalize;
pub mod filter;
pub mod frame;
pub mod interp;
pub mod kernel;
pub mod linalg;
pub mod modulation;
pub mod mrc;
pub mod preamble;
pub mod scramble;
pub mod sync;

pub use complex::Complex;
pub use filter::Fir;
pub use frame::{AirFrame, Frame, PlcpHeader};
pub use kernel::{Backend, BackendKind, Kernel};
pub use modulation::Modulation;
pub use preamble::Preamble;
