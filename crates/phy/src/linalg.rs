//! Small dense complex linear algebra.
//!
//! The receiver solves two kinds of tiny least-squares problems: channel
//! (ISI tap) estimation from the known preamble, and zero-forcing inverse
//! filter design (§4.2.4d). Systems are at most ~15 unknowns, so plain
//! Gaussian elimination with partial pivoting on the normal equations is
//! both adequate and dependency-free.

use crate::complex::{Complex, ZERO};

/// Solves the dense square system `A·x = b` in place by Gaussian
/// elimination with partial pivoting. Returns `None` for (numerically)
/// singular systems.
pub fn solve_in_place(a: &mut [Vec<Complex>], b: &mut [Complex]) -> Option<Vec<Complex>> {
    solve_tracking(a, b).map(|(x, _)| x)
}

/// [`solve_in_place`] that additionally reports a conditioning
/// diagnostic: the min/max pivot-magnitude ratio observed during
/// elimination (`1.0` = perfectly balanced, `→ 0` = nearly singular).
/// The arithmetic is identical to [`solve_in_place`] — the ratio is a
/// pure observation of the pivots the elimination takes anyway.
pub fn solve_tracking(a: &mut [Vec<Complex>], b: &mut [Complex]) -> Option<(Vec<Complex>, f64)> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    for row in a.iter() {
        assert_eq!(row.len(), n, "matrix must be square");
    }

    let mut pivot_min = f64::INFINITY;
    let mut pivot_max = 0.0f64;
    for col in 0..n {
        // partial pivot
        let (pivot_row, pivot_mag) =
            (col..n).map(|r| (r, a[r][col].norm_sq())).max_by(|x, y| x.1.total_cmp(&y.1))?;
        if pivot_mag < 1e-24 {
            return None;
        }
        pivot_min = pivot_min.min(pivot_mag);
        pivot_max = pivot_max.max(pivot_mag);
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let inv_pivot = a[col][col].inv();
        for r in col + 1..n {
            let factor = a[r][col] * inv_pivot;
            if factor == ZERO {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // pivot search indexes rows by position
            for c in col..n {
                let v = a[col][c];
                a[r][c] -= factor * v;
            }
            let bv = b[col];
            b[r] -= factor * bv;
        }
    }

    // back substitution
    let mut x = vec![ZERO; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in row + 1..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc * a[row][row].inv();
    }
    // pivot magnitudes are norm_sq; report the amplitude-domain ratio
    let cond = if n == 0 || pivot_max <= 0.0 { 1.0 } else { (pivot_min / pivot_max).sqrt() };
    Some((x, cond))
}

/// Solves the least-squares problem `min ‖A·x − b‖²` via the normal
/// equations `AᴴA·x = Aᴴb`, with Tikhonov regularisation `λ` on the
/// diagonal for robustness against ill-conditioned training sequences.
///
/// `rows` holds the rows of `A`; every row must have the same length.
pub fn lstsq(rows: &[Vec<Complex>], b: &[Complex], lambda: f64) -> Option<Vec<Complex>> {
    lstsq_cond(rows, b, lambda).map(|(x, _)| x)
}

/// [`lstsq`] that also reports the regularised normal matrix's measured
/// conditioning (the elimination pivot ratio of
/// [`solve_tracking`], `1.0` = balanced, `→ 0` = nearly singular) so
/// callers can log it or adapt their ridge between solves. Identical
/// arithmetic to [`lstsq`].
pub fn lstsq_cond(
    rows: &[Vec<Complex>],
    b: &[Complex],
    lambda: f64,
) -> Option<(Vec<Complex>, f64)> {
    assert_eq!(rows.len(), b.len(), "row/observation count mismatch");
    let m = rows.first()?.len();
    let mut ata = vec![vec![ZERO; m]; m];
    let mut atb = vec![ZERO; m];
    for (row, &obs) in rows.iter().zip(b.iter()) {
        debug_assert_eq!(row.len(), m);
        for i in 0..m {
            let ci = row[i].conj();
            for j in 0..m {
                ata[i][j] += ci * row[j];
            }
            atb[i] += ci * obs;
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += Complex::real(lambda);
    }
    solve_tracking(&mut ata, &mut atb)
}

/// One independent least-squares system of a [`lstsq_batch`] pack — the
/// `rows`/`b`/`lambda` triple of a [`lstsq_cond`] call.
#[derive(Clone, Copy, Debug)]
pub struct LstsqSystem<'a> {
    /// Rows of the design matrix `A`; every row must share one length.
    pub rows: &'a [Vec<Complex>],
    /// Observations `b`, one per row.
    pub b: &'a [Complex],
    /// Tikhonov ridge added to the normal-equation diagonal.
    pub lambda: f64,
}

/// Solves many independent least-squares systems in one dispatch,
/// returning per system exactly what [`lstsq_cond`] would — **bit for
/// bit**, including the `None` on singular or empty systems.
///
/// The win is structural: systems are bucketed by unknown count and each
/// bucket's regularised normal matrices are packed into one
/// structure-of-systems layout (`ata[(i·m + j)·s + lane]`, `lane` = the
/// system index within the bucket, innermost), so the elimination and
/// back-substitution loops stream across all systems of a bucket at each
/// `(col, r, c)` step — contiguous, autovectorizable traffic instead of
/// one pointer-chasing `Vec<Vec<Complex>>` walk per tiny system. Per-lane
/// control flow (partial-pivot row choice, the singular bail, the
/// `factor == 0` skip) is tracked in per-lane masks; each lane's
/// arithmetic chain — assembly order, pivot selection (last maximum under
/// `total_cmp`, as `Iterator::max_by`), update order, back-substitution
/// order — is the reference's, which is what makes the batch safe to
/// drop into recovery's CRC-gated solve loop.
///
/// Callers that need systems solved in lockstep *rounds* (recovery's
/// sliding windows advance one window per round across a chunk of
/// groups) simply call this once per round with that round's systems.
pub fn lstsq_batch(systems: &[LstsqSystem<'_>]) -> Vec<Option<(Vec<Complex>, f64)>> {
    let mut out: Vec<Option<(Vec<Complex>, f64)>> = vec![None; systems.len()];
    // Bucket system indices by unknown count so one pack has one
    // geometry. BTreeMap keeps the bucket visit order deterministic
    // (results land by index, but debugging a deterministic decoder
    // through a nondeterministic solver would be miserable).
    let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (idx, sys) in systems.iter().enumerate() {
        assert_eq!(sys.rows.len(), sys.b.len(), "row/observation count mismatch");
        if let Some(r0) = sys.rows.first() {
            buckets.entry(r0.len()).or_default().push(idx);
        }
        // no rows: `lstsq_cond`'s `rows.first()?` → stays None
    }
    for (m, idxs) in buckets {
        lstsq_bucket(systems, m, &idxs, &mut out);
    }
    out
}

/// Solves one same-geometry bucket of a [`lstsq_batch`] pack.
fn lstsq_bucket(
    systems: &[LstsqSystem<'_>],
    m: usize,
    idxs: &[usize],
    out: &mut [Option<(Vec<Complex>, f64)>],
) {
    let s = idxs.len();
    if m == 0 {
        // zero unknowns: `solve_tracking` on the empty system
        for &idx in idxs {
            out[idx] = Some((Vec::new(), 1.0));
        }
        return;
    }
    // normal-equation assembly, `lstsq_cond`'s accumulation order per lane
    let mut ata = vec![ZERO; m * m * s];
    let mut atb = vec![ZERO; m * s];
    for (lane, &idx) in idxs.iter().enumerate() {
        let sys = &systems[idx];
        for (row, &obs) in sys.rows.iter().zip(sys.b.iter()) {
            debug_assert_eq!(row.len(), m);
            for i in 0..m {
                let ci = row[i].conj();
                for j in 0..m {
                    ata[(i * m + j) * s + lane] += ci * row[j];
                }
                atb[i * s + lane] += ci * obs;
            }
        }
        for i in 0..m {
            ata[(i * m + i) * s + lane] += Complex::real(sys.lambda);
        }
    }
    // elimination with per-lane pivoting and liveness
    let mut alive = vec![true; s];
    let mut pmin = vec![f64::INFINITY; s];
    let mut pmax = vec![0.0f64; s];
    let mut factor = vec![ZERO; s];
    let mut skip = vec![false; s];
    for col in 0..m {
        for lane in 0..s {
            if !alive[lane] {
                continue;
            }
            // partial pivot: the *last* maximum under `total_cmp`, as
            // `Iterator::max_by` resolves ties in `solve_tracking`
            let mut prow = col;
            let mut pmag = ata[(col * m + col) * s + lane].norm_sq();
            for r in col + 1..m {
                let mag = ata[(r * m + col) * s + lane].norm_sq();
                if mag.total_cmp(&pmag) != std::cmp::Ordering::Less {
                    prow = r;
                    pmag = mag;
                }
            }
            if pmag < 1e-24 {
                alive[lane] = false;
                continue;
            }
            pmin[lane] = pmin[lane].min(pmag);
            pmax[lane] = pmax[lane].max(pmag);
            if prow != col {
                // Swapping only columns `col..` (plus b) is bit-identical
                // to the reference's whole-row swap: entries left of the
                // pivot column are stale and never read again.
                for c in col..m {
                    ata.swap((col * m + c) * s + lane, (prow * m + c) * s + lane);
                }
                atb.swap(col * s + lane, prow * s + lane);
            }
        }
        for r in col + 1..m {
            for lane in 0..s {
                let f = ata[(r * m + col) * s + lane] * ata[(col * m + col) * s + lane].inv();
                factor[lane] = f;
                skip[lane] = !alive[lane] || f == ZERO;
            }
            for c in col..m {
                let pivot_base = (col * m + c) * s;
                let row_base = (r * m + c) * s;
                for lane in 0..s {
                    if skip[lane] {
                        continue;
                    }
                    let v = ata[pivot_base + lane];
                    ata[row_base + lane] -= factor[lane] * v;
                }
            }
            for lane in 0..s {
                if skip[lane] {
                    continue;
                }
                let bv = atb[col * s + lane];
                atb[r * s + lane] -= factor[lane] * bv;
            }
        }
    }
    // back substitution, lanes innermost
    let mut x = vec![ZERO; m * s];
    for row in (0..m).rev() {
        for lane in 0..s {
            if !alive[lane] {
                continue;
            }
            let mut acc = atb[row * s + lane];
            for c in row + 1..m {
                acc -= ata[(row * m + c) * s + lane] * x[c * s + lane];
            }
            x[row * s + lane] = acc * ata[(row * m + row) * s + lane].inv();
        }
    }
    for (lane, &idx) in idxs.iter().enumerate() {
        if !alive[lane] {
            continue;
        }
        let xs: Vec<Complex> = (0..m).map(|i| x[i * s + lane]).collect();
        let cond = if pmax[lane] <= 0.0 { 1.0 } else { (pmin[lane] / pmax[lane]).sqrt() };
        out[idx] = Some((xs, cond));
    }
}

/// Normalised Gram determinant of a set of equation rows:
/// `|det(G)| / ∏ G[i][i]` where `G[i][j] = ⟨rowᵢ, rowⱼ⟩` — `1.0` for
/// mutually orthogonal rows, `0.0` for a linearly dependent set
/// (Hadamard's inequality bounds it to `[0, 1]` for the Gram matrix of
/// any row set). Recovery's salvage-pool recruitment scores candidate
/// equation sets with this before committing to a solve: a recruit whose
/// channel-proxy row is near-collinear with the rows already admitted
/// contributes no diversity and drags the joint normal matrix toward
/// singularity.
///
/// An empty set and a single row trivially score `1.0` (nothing to be
/// collinear with); an all-zero row among others scores `0.0` (it can
/// never add an equation).
pub fn gram_conditioning(rows: &[Vec<Complex>]) -> f64 {
    let m = rows.len();
    if m <= 1 {
        return 1.0;
    }
    let mut g = vec![vec![ZERO; m]; m];
    for i in 0..m {
        for j in 0..m {
            let mut acc = ZERO;
            for (a, b) in rows[i].iter().zip(rows[j].iter()) {
                acc += a.conj() * *b;
            }
            g[i][j] = acc;
        }
    }
    let mut denom = 1.0f64;
    for (i, row) in g.iter().enumerate() {
        let d = row[i].re;
        if d <= 0.0 {
            return 0.0;
        }
        denom *= d;
    }
    // |det(G)| = ∏ |pivots| under partial pivoting (row swaps only flip
    // the sign)
    let mut det = 1.0f64;
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&x, &y| g[x][col].norm_sq().total_cmp(&g[y][col].norm_sq()))
            .expect("non-empty pivot range");
        if g[pivot_row][col].norm_sq() < 1e-24 * denom.powf(1.0 / m as f64).max(1e-300) {
            return 0.0;
        }
        g.swap(col, pivot_row);
        det *= g[col][col].abs();
        let inv_pivot = g[col][col].inv();
        let (pivot_rows, rest) = g.split_at_mut(col + 1);
        let pivot = &pivot_rows[col];
        for row in rest.iter_mut() {
            let factor = row[col] * inv_pivot;
            if factor == ZERO {
                continue;
            }
            for (dst, &src) in row[col..m].iter_mut().zip(pivot[col..m].iter()) {
                *dst -= factor * src;
            }
        }
    }
    (det / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn solve_identity() {
        let mut a = vec![vec![c(1.0, 0.0), ZERO], vec![ZERO, c(1.0, 0.0)]];
        let mut b = vec![c(3.0, 1.0), c(-2.0, 0.5)];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - c(3.0, 1.0)).abs() < 1e-12);
        assert!((x[1] - c(-2.0, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn solve_known_complex_system() {
        // A = [[1+j, 2], [3, 4-j]], x = [1-j, 2+j]; b = A·x
        let a0 = vec![vec![c(1.0, 1.0), c(2.0, 0.0)], vec![c(3.0, 0.0), c(4.0, -1.0)]];
        let x_true = [c(1.0, -1.0), c(2.0, 1.0)];
        let b0: Vec<Complex> =
            a0.iter().map(|row| row[0] * x_true[0] + row[1] * x_true[1]).collect();
        let mut a = a0.clone();
        let mut b = b0.clone();
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-10);
        assert!((x[1] - x_true[1]).abs() < 1e-10);
    }

    #[test]
    fn singular_returns_none() {
        let mut a = vec![vec![c(1.0, 0.0), c(2.0, 0.0)], vec![c(2.0, 0.0), c(4.0, 0.0)]];
        let mut b = vec![c(1.0, 0.0), c(2.0, 0.0)];
        assert!(solve_in_place(&mut a, &mut b).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = vec![vec![ZERO, c(1.0, 0.0)], vec![c(1.0, 0.0), ZERO]];
        let mut b = vec![c(5.0, 0.0), c(7.0, 0.0)];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - c(7.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(5.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn lstsq_exact_system() {
        // Overdetermined but consistent.
        let rows = vec![
            vec![c(1.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(1.0, 0.0)],
        ];
        let b = vec![c(2.0, 0.0), c(3.0, 0.0), c(5.0, 0.0)];
        let x = lstsq(&rows, &b, 0.0).unwrap();
        assert!((x[0] - c(2.0, 0.0)).abs() < 1e-10);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-10);
    }

    #[test]
    fn lstsq_minimises_residual() {
        // Inconsistent system: solution must beat small perturbations.
        let rows = vec![vec![c(1.0, 0.0)], vec![c(1.0, 0.0)]];
        let b = vec![c(0.0, 0.0), c(2.0, 0.0)];
        let x = lstsq(&rows, &b, 0.0).unwrap();
        assert!((x[0] - c(1.0, 0.0)).abs() < 1e-10); // mean
    }

    #[test]
    fn lstsq_cond_matches_lstsq_and_ranks_conditioning() {
        let rows = vec![
            vec![c(1.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(1.0, 0.0)],
        ];
        let b = vec![c(2.0, 0.0), c(3.0, 0.0), c(5.0, 0.0)];
        let (x, cond) = lstsq_cond(&rows, &b, 0.0).unwrap();
        let x_plain = lstsq(&rows, &b, 0.0).unwrap();
        assert_eq!(x, x_plain, "the diagnostic must not perturb the solve");
        assert!(cond > 0.0 && cond <= 1.0, "cond {cond}");

        // a nearly-collinear system must measure as worse conditioned
        let bad_rows = vec![vec![c(1.0, 0.0), c(1.0, 0.0)], vec![c(1.0, 0.0), c(1.0 + 1e-3, 0.0)]];
        let bad_b = vec![c(1.0, 0.0), c(1.0, 0.0)];
        let (_, bad_cond) = lstsq_cond(&bad_rows, &bad_b, 1e-9).unwrap();
        assert!(bad_cond < cond, "collinear rows: {bad_cond} vs {cond}");
    }

    #[test]
    fn gram_conditioning_spans_orthogonal_to_collinear() {
        // orthogonal rows: perfectly conditioned
        let ortho = vec![vec![c(2.0, 0.0), ZERO], vec![ZERO, c(0.5, 0.0)]];
        assert!((gram_conditioning(&ortho) - 1.0).abs() < 1e-12);
        // scaled duplicates: no diversity at all
        let dup = vec![vec![c(1.0, 0.5), c(2.0, 0.0)], vec![c(2.0, 1.0), c(4.0, 0.0)]];
        assert!(gram_conditioning(&dup) < 1e-9);
        // a global phase rotation is still a duplicate equation
        let rot: Vec<Vec<Complex>> =
            vec![dup[0].clone(), dup[0].iter().map(|&v| v * Complex::cis(1.1)).collect()];
        assert!(gram_conditioning(&rot) < 1e-9);
        // partial overlap lands strictly between
        let mid = vec![vec![c(1.0, 0.0), ZERO], vec![c(1.0, 0.0), c(1.0, 0.0)]];
        let g = gram_conditioning(&mid);
        assert!(g > 0.1 && g < 0.9, "partial overlap: {g}");
        // trivial sets
        assert!((gram_conditioning(&[]) - 1.0).abs() < 1e-12);
        assert!((gram_conditioning(&[vec![c(3.0, 0.0)]]) - 1.0).abs() < 1e-12);
        assert_eq!(gram_conditioning(&[vec![c(1.0, 0.0)], vec![ZERO]]), 0.0);
    }

    #[test]
    fn batch_matches_per_system_bit_for_bit() {
        // mixed geometries in one batch: 1, 2 and 3 unknowns, varying
        // observation counts and ridges, plus a singular and an empty
        // system interleaved
        let r1 = vec![vec![c(1.0, 0.2)], vec![c(0.7, -0.4)], vec![c(-0.3, 0.9)]];
        let b1 = vec![c(2.0, 0.0), c(0.1, -1.0), c(0.5, 0.5)];
        let r2 = vec![
            vec![c(1.0, 1.0), c(2.0, 0.0)],
            vec![c(3.0, 0.0), c(4.0, -1.0)],
            vec![c(-0.5, 0.25), c(0.0, 1.5)],
        ];
        let b2 = vec![c(1.0, -1.0), c(2.0, 1.0), c(0.0, 0.3)];
        let r2b = vec![vec![c(0.4, -0.1), c(-1.2, 0.8)], vec![c(2.2, 0.6), c(0.9, -1.7)]];
        let b2b = vec![c(-0.6, 0.2), c(1.4, 0.0)];
        let r3: Vec<Vec<Complex>> = (0..5)
            .map(|k| {
                (0..3)
                    .map(|j| Complex::cis(0.7 * k as f64 + 1.3 * j as f64).scale(1.0 + j as f64))
                    .collect()
            })
            .collect();
        let b3: Vec<Complex> = (0..5).map(|k| Complex::cis(-0.2 * k as f64)).collect();
        let sing = vec![vec![c(1.0, 0.0), c(2.0, 0.0)], vec![c(2.0, 0.0), c(4.0, 0.0)]];
        let bsing = vec![c(1.0, 0.0), c(2.0, 0.0)];
        let systems = [
            LstsqSystem { rows: &r1, b: &b1, lambda: 0.0 },
            LstsqSystem { rows: &sing, b: &bsing, lambda: 0.0 },
            LstsqSystem { rows: &r2, b: &b2, lambda: 1e-6 },
            LstsqSystem { rows: &[], b: &[], lambda: 0.0 },
            LstsqSystem { rows: &r3, b: &b3, lambda: 1e-4 },
            LstsqSystem { rows: &r2b, b: &b2b, lambda: 0.0 },
        ];
        let batch = lstsq_batch(&systems);
        assert_eq!(batch.len(), systems.len());
        for (k, (sys, got)) in systems.iter().zip(batch.iter()).enumerate() {
            let reference = lstsq_cond(sys.rows, sys.b, sys.lambda);
            assert_eq!(*got, reference, "system {k}: batch must equal lstsq_cond bit-for-bit");
        }
        // sanity: the singular and empty systems actually exercised None
        assert!(batch[1].is_none() && batch[3].is_none());
        assert!(batch[0].is_some() && batch[2].is_some() && batch[4].is_some());
    }

    #[test]
    fn batch_pivot_tie_breaking_matches_reference() {
        // two rows forcing equal-magnitude pivot candidates: the
        // reference's `max_by` keeps the *last* maximum, and the batch
        // must swap the same row or the elimination order diverges
        let rows = vec![vec![c(1.0, 0.0), c(0.0, 1.0)], vec![c(0.0, 1.0), c(1.0, 0.0)]];
        let b = vec![c(1.0, 1.0), c(2.0, -1.0)];
        let systems = [LstsqSystem { rows: &rows, b: &b, lambda: 0.0 }];
        assert_eq!(lstsq_batch(&systems)[0], lstsq_cond(&rows, &b, 0.0));
    }

    #[test]
    fn batch_zero_unknowns_matches_reference() {
        // rows exist but have zero length: m = 0, the empty solve
        let rows = vec![Vec::new(), Vec::new()];
        let b = vec![c(1.0, 0.0), c(2.0, 0.0)];
        let systems = [LstsqSystem { rows: &rows, b: &b, lambda: 0.5 }];
        assert_eq!(lstsq_batch(&systems)[0], lstsq_cond(&rows, &b, 0.5));
        assert_eq!(lstsq_batch(&systems)[0], Some((Vec::new(), 1.0)));
    }

    #[test]
    fn regularisation_stabilises_singular_normal_eqs() {
        let rows = vec![vec![c(1.0, 0.0), c(1.0, 0.0)]];
        let b = vec![c(2.0, 0.0)];
        // Without λ this is singular; with λ it returns the minimum-norm-ish
        // solution.
        let x = lstsq(&rows, &b, 1e-6).unwrap();
        assert!((x[0] - x[1]).abs() < 1e-6);
        assert!(((x[0] + x[1]) - c(2.0, 0.0)).abs() < 1e-3);
    }
}
