//! Small dense complex linear algebra.
//!
//! The receiver solves two kinds of tiny least-squares problems: channel
//! (ISI tap) estimation from the known preamble, and zero-forcing inverse
//! filter design (§4.2.4d). Systems are at most ~15 unknowns, so plain
//! Gaussian elimination with partial pivoting on the normal equations is
//! both adequate and dependency-free.

use crate::complex::{Complex, ZERO};

/// Solves the dense square system `A·x = b` in place by Gaussian
/// elimination with partial pivoting. Returns `None` for (numerically)
/// singular systems.
pub fn solve_in_place(a: &mut [Vec<Complex>], b: &mut [Complex]) -> Option<Vec<Complex>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    for row in a.iter() {
        assert_eq!(row.len(), n, "matrix must be square");
    }

    for col in 0..n {
        // partial pivot
        let (pivot_row, pivot_mag) =
            (col..n).map(|r| (r, a[r][col].norm_sq())).max_by(|x, y| x.1.total_cmp(&y.1))?;
        if pivot_mag < 1e-24 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let inv_pivot = a[col][col].inv();
        for r in col + 1..n {
            let factor = a[r][col] * inv_pivot;
            if factor == ZERO {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // pivot search indexes rows by position
            for c in col..n {
                let v = a[col][c];
                a[r][c] -= factor * v;
            }
            let bv = b[col];
            b[r] -= factor * bv;
        }
    }

    // back substitution
    let mut x = vec![ZERO; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in row + 1..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc * a[row][row].inv();
    }
    Some(x)
}

/// Solves the least-squares problem `min ‖A·x − b‖²` via the normal
/// equations `AᴴA·x = Aᴴb`, with Tikhonov regularisation `λ` on the
/// diagonal for robustness against ill-conditioned training sequences.
///
/// `rows` holds the rows of `A`; every row must have the same length.
pub fn lstsq(rows: &[Vec<Complex>], b: &[Complex], lambda: f64) -> Option<Vec<Complex>> {
    assert_eq!(rows.len(), b.len(), "row/observation count mismatch");
    let m = rows.first()?.len();
    let mut ata = vec![vec![ZERO; m]; m];
    let mut atb = vec![ZERO; m];
    for (row, &obs) in rows.iter().zip(b.iter()) {
        debug_assert_eq!(row.len(), m);
        for i in 0..m {
            let ci = row[i].conj();
            for j in 0..m {
                ata[i][j] += ci * row[j];
            }
            atb[i] += ci * obs;
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += Complex::real(lambda);
    }
    solve_in_place(&mut ata, &mut atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn solve_identity() {
        let mut a = vec![vec![c(1.0, 0.0), ZERO], vec![ZERO, c(1.0, 0.0)]];
        let mut b = vec![c(3.0, 1.0), c(-2.0, 0.5)];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - c(3.0, 1.0)).abs() < 1e-12);
        assert!((x[1] - c(-2.0, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn solve_known_complex_system() {
        // A = [[1+j, 2], [3, 4-j]], x = [1-j, 2+j]; b = A·x
        let a0 = vec![vec![c(1.0, 1.0), c(2.0, 0.0)], vec![c(3.0, 0.0), c(4.0, -1.0)]];
        let x_true = [c(1.0, -1.0), c(2.0, 1.0)];
        let b0: Vec<Complex> =
            a0.iter().map(|row| row[0] * x_true[0] + row[1] * x_true[1]).collect();
        let mut a = a0.clone();
        let mut b = b0.clone();
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-10);
        assert!((x[1] - x_true[1]).abs() < 1e-10);
    }

    #[test]
    fn singular_returns_none() {
        let mut a = vec![vec![c(1.0, 0.0), c(2.0, 0.0)], vec![c(2.0, 0.0), c(4.0, 0.0)]];
        let mut b = vec![c(1.0, 0.0), c(2.0, 0.0)];
        assert!(solve_in_place(&mut a, &mut b).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = vec![vec![ZERO, c(1.0, 0.0)], vec![c(1.0, 0.0), ZERO]];
        let mut b = vec![c(5.0, 0.0), c(7.0, 0.0)];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - c(7.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(5.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn lstsq_exact_system() {
        // Overdetermined but consistent.
        let rows = vec![
            vec![c(1.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(1.0, 0.0)],
        ];
        let b = vec![c(2.0, 0.0), c(3.0, 0.0), c(5.0, 0.0)];
        let x = lstsq(&rows, &b, 0.0).unwrap();
        assert!((x[0] - c(2.0, 0.0)).abs() < 1e-10);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-10);
    }

    #[test]
    fn lstsq_minimises_residual() {
        // Inconsistent system: solution must beat small perturbations.
        let rows = vec![vec![c(1.0, 0.0)], vec![c(1.0, 0.0)]];
        let b = vec![c(0.0, 0.0), c(2.0, 0.0)];
        let x = lstsq(&rows, &b, 0.0).unwrap();
        assert!((x[0] - c(1.0, 0.0)).abs() < 1e-10); // mean
    }

    #[test]
    fn regularisation_stabilises_singular_normal_eqs() {
        let rows = vec![vec![c(1.0, 0.0), c(1.0, 0.0)]];
        let b = vec![c(2.0, 0.0)];
        // Without λ this is singular; with λ it returns the minimum-norm-ish
        // solution.
        let x = lstsq(&rows, &b, 1e-6).unwrap();
        assert!((x[0] - x[1]).abs() < 1e-6);
        assert!(((x[0] + x[1]) - c(2.0, 0.0)).abs() < 1e-3);
    }
}
