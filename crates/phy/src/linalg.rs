//! Small dense complex linear algebra.
//!
//! The receiver solves two kinds of tiny least-squares problems: channel
//! (ISI tap) estimation from the known preamble, and zero-forcing inverse
//! filter design (§4.2.4d). Systems are at most ~15 unknowns, so plain
//! Gaussian elimination with partial pivoting on the normal equations is
//! both adequate and dependency-free.

use crate::complex::{Complex, ZERO};

/// Solves the dense square system `A·x = b` in place by Gaussian
/// elimination with partial pivoting. Returns `None` for (numerically)
/// singular systems.
pub fn solve_in_place(a: &mut [Vec<Complex>], b: &mut [Complex]) -> Option<Vec<Complex>> {
    solve_tracking(a, b).map(|(x, _)| x)
}

/// [`solve_in_place`] that additionally reports a conditioning
/// diagnostic: the min/max pivot-magnitude ratio observed during
/// elimination (`1.0` = perfectly balanced, `→ 0` = nearly singular).
/// The arithmetic is identical to [`solve_in_place`] — the ratio is a
/// pure observation of the pivots the elimination takes anyway.
pub fn solve_tracking(a: &mut [Vec<Complex>], b: &mut [Complex]) -> Option<(Vec<Complex>, f64)> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix/vector size mismatch");
    for row in a.iter() {
        assert_eq!(row.len(), n, "matrix must be square");
    }

    let mut pivot_min = f64::INFINITY;
    let mut pivot_max = 0.0f64;
    for col in 0..n {
        // partial pivot
        let (pivot_row, pivot_mag) =
            (col..n).map(|r| (r, a[r][col].norm_sq())).max_by(|x, y| x.1.total_cmp(&y.1))?;
        if pivot_mag < 1e-24 {
            return None;
        }
        pivot_min = pivot_min.min(pivot_mag);
        pivot_max = pivot_max.max(pivot_mag);
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let inv_pivot = a[col][col].inv();
        for r in col + 1..n {
            let factor = a[r][col] * inv_pivot;
            if factor == ZERO {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // pivot search indexes rows by position
            for c in col..n {
                let v = a[col][c];
                a[r][c] -= factor * v;
            }
            let bv = b[col];
            b[r] -= factor * bv;
        }
    }

    // back substitution
    let mut x = vec![ZERO; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in row + 1..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc * a[row][row].inv();
    }
    // pivot magnitudes are norm_sq; report the amplitude-domain ratio
    let cond = if n == 0 || pivot_max <= 0.0 { 1.0 } else { (pivot_min / pivot_max).sqrt() };
    Some((x, cond))
}

/// Solves the least-squares problem `min ‖A·x − b‖²` via the normal
/// equations `AᴴA·x = Aᴴb`, with Tikhonov regularisation `λ` on the
/// diagonal for robustness against ill-conditioned training sequences.
///
/// `rows` holds the rows of `A`; every row must have the same length.
pub fn lstsq(rows: &[Vec<Complex>], b: &[Complex], lambda: f64) -> Option<Vec<Complex>> {
    lstsq_cond(rows, b, lambda).map(|(x, _)| x)
}

/// [`lstsq`] that also reports the regularised normal matrix's measured
/// conditioning (the elimination pivot ratio of
/// [`solve_tracking`], `1.0` = balanced, `→ 0` = nearly singular) so
/// callers can log it or adapt their ridge between solves. Identical
/// arithmetic to [`lstsq`].
pub fn lstsq_cond(
    rows: &[Vec<Complex>],
    b: &[Complex],
    lambda: f64,
) -> Option<(Vec<Complex>, f64)> {
    assert_eq!(rows.len(), b.len(), "row/observation count mismatch");
    let m = rows.first()?.len();
    let mut ata = vec![vec![ZERO; m]; m];
    let mut atb = vec![ZERO; m];
    for (row, &obs) in rows.iter().zip(b.iter()) {
        debug_assert_eq!(row.len(), m);
        for i in 0..m {
            let ci = row[i].conj();
            for j in 0..m {
                ata[i][j] += ci * row[j];
            }
            atb[i] += ci * obs;
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += Complex::real(lambda);
    }
    solve_tracking(&mut ata, &mut atb)
}

/// Normalised Gram determinant of a set of equation rows:
/// `|det(G)| / ∏ G[i][i]` where `G[i][j] = ⟨rowᵢ, rowⱼ⟩` — `1.0` for
/// mutually orthogonal rows, `0.0` for a linearly dependent set
/// (Hadamard's inequality bounds it to `[0, 1]` for the Gram matrix of
/// any row set). Recovery's salvage-pool recruitment scores candidate
/// equation sets with this before committing to a solve: a recruit whose
/// channel-proxy row is near-collinear with the rows already admitted
/// contributes no diversity and drags the joint normal matrix toward
/// singularity.
///
/// An empty set and a single row trivially score `1.0` (nothing to be
/// collinear with); an all-zero row among others scores `0.0` (it can
/// never add an equation).
pub fn gram_conditioning(rows: &[Vec<Complex>]) -> f64 {
    let m = rows.len();
    if m <= 1 {
        return 1.0;
    }
    let mut g = vec![vec![ZERO; m]; m];
    for i in 0..m {
        for j in 0..m {
            let mut acc = ZERO;
            for (a, b) in rows[i].iter().zip(rows[j].iter()) {
                acc += a.conj() * *b;
            }
            g[i][j] = acc;
        }
    }
    let mut denom = 1.0f64;
    for (i, row) in g.iter().enumerate() {
        let d = row[i].re;
        if d <= 0.0 {
            return 0.0;
        }
        denom *= d;
    }
    // |det(G)| = ∏ |pivots| under partial pivoting (row swaps only flip
    // the sign)
    let mut det = 1.0f64;
    for col in 0..m {
        let pivot_row = (col..m)
            .max_by(|&x, &y| g[x][col].norm_sq().total_cmp(&g[y][col].norm_sq()))
            .expect("non-empty pivot range");
        if g[pivot_row][col].norm_sq() < 1e-24 * denom.powf(1.0 / m as f64).max(1e-300) {
            return 0.0;
        }
        g.swap(col, pivot_row);
        det *= g[col][col].abs();
        let inv_pivot = g[col][col].inv();
        let (pivot_rows, rest) = g.split_at_mut(col + 1);
        let pivot = &pivot_rows[col];
        for row in rest.iter_mut() {
            let factor = row[col] * inv_pivot;
            if factor == ZERO {
                continue;
            }
            for (dst, &src) in row[col..m].iter_mut().zip(pivot[col..m].iter()) {
                *dst -= factor * src;
            }
        }
    }
    (det / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn solve_identity() {
        let mut a = vec![vec![c(1.0, 0.0), ZERO], vec![ZERO, c(1.0, 0.0)]];
        let mut b = vec![c(3.0, 1.0), c(-2.0, 0.5)];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - c(3.0, 1.0)).abs() < 1e-12);
        assert!((x[1] - c(-2.0, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn solve_known_complex_system() {
        // A = [[1+j, 2], [3, 4-j]], x = [1-j, 2+j]; b = A·x
        let a0 = vec![vec![c(1.0, 1.0), c(2.0, 0.0)], vec![c(3.0, 0.0), c(4.0, -1.0)]];
        let x_true = [c(1.0, -1.0), c(2.0, 1.0)];
        let b0: Vec<Complex> =
            a0.iter().map(|row| row[0] * x_true[0] + row[1] * x_true[1]).collect();
        let mut a = a0.clone();
        let mut b = b0.clone();
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-10);
        assert!((x[1] - x_true[1]).abs() < 1e-10);
    }

    #[test]
    fn singular_returns_none() {
        let mut a = vec![vec![c(1.0, 0.0), c(2.0, 0.0)], vec![c(2.0, 0.0), c(4.0, 0.0)]];
        let mut b = vec![c(1.0, 0.0), c(2.0, 0.0)];
        assert!(solve_in_place(&mut a, &mut b).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = vec![vec![ZERO, c(1.0, 0.0)], vec![c(1.0, 0.0), ZERO]];
        let mut b = vec![c(5.0, 0.0), c(7.0, 0.0)];
        let x = solve_in_place(&mut a, &mut b).unwrap();
        assert!((x[0] - c(7.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(5.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn lstsq_exact_system() {
        // Overdetermined but consistent.
        let rows = vec![
            vec![c(1.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(1.0, 0.0)],
        ];
        let b = vec![c(2.0, 0.0), c(3.0, 0.0), c(5.0, 0.0)];
        let x = lstsq(&rows, &b, 0.0).unwrap();
        assert!((x[0] - c(2.0, 0.0)).abs() < 1e-10);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-10);
    }

    #[test]
    fn lstsq_minimises_residual() {
        // Inconsistent system: solution must beat small perturbations.
        let rows = vec![vec![c(1.0, 0.0)], vec![c(1.0, 0.0)]];
        let b = vec![c(0.0, 0.0), c(2.0, 0.0)];
        let x = lstsq(&rows, &b, 0.0).unwrap();
        assert!((x[0] - c(1.0, 0.0)).abs() < 1e-10); // mean
    }

    #[test]
    fn lstsq_cond_matches_lstsq_and_ranks_conditioning() {
        let rows = vec![
            vec![c(1.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(1.0, 0.0)],
        ];
        let b = vec![c(2.0, 0.0), c(3.0, 0.0), c(5.0, 0.0)];
        let (x, cond) = lstsq_cond(&rows, &b, 0.0).unwrap();
        let x_plain = lstsq(&rows, &b, 0.0).unwrap();
        assert_eq!(x, x_plain, "the diagnostic must not perturb the solve");
        assert!(cond > 0.0 && cond <= 1.0, "cond {cond}");

        // a nearly-collinear system must measure as worse conditioned
        let bad_rows = vec![vec![c(1.0, 0.0), c(1.0, 0.0)], vec![c(1.0, 0.0), c(1.0 + 1e-3, 0.0)]];
        let bad_b = vec![c(1.0, 0.0), c(1.0, 0.0)];
        let (_, bad_cond) = lstsq_cond(&bad_rows, &bad_b, 1e-9).unwrap();
        assert!(bad_cond < cond, "collinear rows: {bad_cond} vs {cond}");
    }

    #[test]
    fn gram_conditioning_spans_orthogonal_to_collinear() {
        // orthogonal rows: perfectly conditioned
        let ortho = vec![vec![c(2.0, 0.0), ZERO], vec![ZERO, c(0.5, 0.0)]];
        assert!((gram_conditioning(&ortho) - 1.0).abs() < 1e-12);
        // scaled duplicates: no diversity at all
        let dup = vec![vec![c(1.0, 0.5), c(2.0, 0.0)], vec![c(2.0, 1.0), c(4.0, 0.0)]];
        assert!(gram_conditioning(&dup) < 1e-9);
        // a global phase rotation is still a duplicate equation
        let rot: Vec<Vec<Complex>> =
            vec![dup[0].clone(), dup[0].iter().map(|&v| v * Complex::cis(1.1)).collect()];
        assert!(gram_conditioning(&rot) < 1e-9);
        // partial overlap lands strictly between
        let mid = vec![vec![c(1.0, 0.0), ZERO], vec![c(1.0, 0.0), c(1.0, 0.0)]];
        let g = gram_conditioning(&mid);
        assert!(g > 0.1 && g < 0.9, "partial overlap: {g}");
        // trivial sets
        assert!((gram_conditioning(&[]) - 1.0).abs() < 1e-12);
        assert!((gram_conditioning(&[vec![c(3.0, 0.0)]]) - 1.0).abs() < 1e-12);
        assert_eq!(gram_conditioning(&[vec![c(1.0, 0.0)], vec![ZERO]]), 0.0);
    }

    #[test]
    fn regularisation_stabilises_singular_normal_eqs() {
        let rows = vec![vec![c(1.0, 0.0), c(1.0, 0.0)]];
        let b = vec![c(2.0, 0.0)];
        // Without λ this is singular; with λ it returns the minimum-norm-ish
        // solution.
        let x = lstsq(&rows, &b, 1e-6).unwrap();
        assert!((x[0] - x[1]).abs() < 1e-6);
        assert!(((x[0] + x[1]) - c(2.0, 0.0)).abs() < 1e-3);
    }
}
