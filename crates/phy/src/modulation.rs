//! Modulation and demodulation.
//!
//! The prototype in the paper runs BPSK ("the modulation scheme that 802.11
//! uses at low rates", §5.1b), but a key claim of the design is that ZigZag
//! "can employ a standard 802.11 decoder as a black-box …, which allows it
//! to work with collisions independent of their underlying modulation
//! scheme" (§1). We therefore implement the whole constellation family used
//! by 802.11 single-carrier rates — BPSK, QPSK (called 4-QAM in §4.3),
//! 16-QAM and 64-QAM — behind one [`Modulation`] type, and the test suite
//! exercises ZigZag over all of them, including collisions whose two packets
//! use *different* modulations.
//!
//! All constellations are normalised to unit average symbol energy so that
//! SNR has the same meaning for every scheme.

use crate::complex::Complex;

/// A linear memoryless modulation scheme (one constellation).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Modulation {
    /// Binary phase-shift keying: bit 0 → −1, bit 1 → +1 (§3).
    Bpsk,
    /// Quadrature PSK / 4-QAM, Gray mapped, 2 bits per symbol.
    Qpsk,
    /// 16-QAM, Gray mapped per axis, 4 bits per symbol.
    Qam16,
    /// 64-QAM, Gray mapped per axis, 6 bits per symbol.
    Qam64,
}

impl Modulation {
    /// All supported schemes, in increasing spectral efficiency.
    pub const ALL: [Modulation; 4] =
        [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64];

    /// Bits carried by one symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Per-axis amplitude normaliser giving unit average symbol energy.
    fn axis_scale(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            // E[|s|^2] for square M-QAM with levels ±1,±3,… is 2(M-1)/3 per
            // complex symbol before scaling; normalise it away.
            Modulation::Qpsk => 1.0 / (2.0f64).sqrt(),
            Modulation::Qam16 => 1.0 / (10.0f64).sqrt(),
            Modulation::Qam64 => 1.0 / (42.0f64).sqrt(),
        }
    }

    /// Number of amplitude levels per axis (1 axis for BPSK).
    fn levels_per_axis(self) -> usize {
        match self {
            Modulation::Bpsk => 2,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 8,
        }
    }

    /// Maps a group of [`Self::bits_per_symbol`] bits to one constellation
    /// point. Missing bits (short final group) are treated as 0.
    pub fn map(self, bits: &[u8]) -> Complex {
        let bit = |i: usize| -> usize { bits.get(i).map_or(0, |&b| (b & 1) as usize) };
        match self {
            Modulation::Bpsk => Complex::real(if bit(0) == 1 { 1.0 } else { -1.0 }),
            Modulation::Qpsk => {
                let s = self.axis_scale();
                Complex::new(axis_level(bit(0), 2) * s, axis_level(bit(1), 2) * s)
            }
            Modulation::Qam16 => {
                let s = self.axis_scale();
                let i = bit(0) | (bit(1) << 1);
                let q = bit(2) | (bit(3) << 1);
                Complex::new(axis_level(i, 4) * s, axis_level(q, 4) * s)
            }
            Modulation::Qam64 => {
                let s = self.axis_scale();
                let i = bit(0) | (bit(1) << 1) | (bit(2) << 2);
                let q = bit(3) | (bit(4) << 1) | (bit(5) << 2);
                Complex::new(axis_level(i, 8) * s, axis_level(q, 8) * s)
            }
        }
    }

    /// Modulates a full bit stream into symbols. The final group is
    /// zero-padded if `bits.len()` is not a multiple of the symbol size.
    pub fn modulate(self, bits: &[u8]) -> Vec<Complex> {
        bits.chunks(self.bits_per_symbol()).map(|g| self.map(g)).collect()
    }

    /// Hard decision: returns the decided bits **and** the corresponding
    /// clean constellation point.
    ///
    /// The clean point feeds two consumers: the decision-directed PLL
    /// (phase error = ∠(y·conj(decision))) and ZigZag's re-encoder, which
    /// re-modulates decided chunks before subtracting them from the other
    /// collision (§4.2.3b).
    pub fn decide(self, y: Complex) -> (Vec<u8>, Complex) {
        match self {
            Modulation::Bpsk => {
                let bit = u8::from(y.re >= 0.0);
                (vec![bit], self.map(&[bit]))
            }
            Modulation::Qpsk | Modulation::Qam16 | Modulation::Qam64 => {
                let n = self.levels_per_axis();
                let s = self.axis_scale();
                let i = nearest_level(y.re / s, n);
                let q = nearest_level(y.im / s, n);
                let half = self.bits_per_symbol() / 2;
                let mut bits = Vec::with_capacity(self.bits_per_symbol());
                for k in 0..half {
                    bits.push(((gray_encode(i) >> k) & 1) as u8);
                }
                for k in 0..half {
                    bits.push(((gray_encode(q) >> k) & 1) as u8);
                }
                let point = self.map(&bits);
                (bits, point)
            }
        }
    }

    /// Demodulates a symbol stream with hard decisions.
    pub fn demodulate(self, symbols: &[Complex]) -> Vec<u8> {
        let mut bits = Vec::with_capacity(symbols.len() * self.bits_per_symbol());
        for &y in symbols {
            bits.extend(self.decide(y).0);
        }
        bits
    }

    /// Number of symbols needed to carry `n_bits`.
    pub fn symbols_for_bits(self, n_bits: usize) -> usize {
        n_bits.div_ceil(self.bits_per_symbol())
    }

    /// Minimum distance between constellation points (unit-energy scale).
    /// Determines the noise margin of a hard decision.
    pub fn min_distance(self) -> f64 {
        match self {
            Modulation::Bpsk => 2.0,
            _ => 2.0 * self.axis_scale(),
        }
    }
}

/// Amplitude of the `idx`-th Gray-coded level out of `n` (odd integers
/// −(n−1)…(n−1)).
fn axis_level(gray_idx: usize, n: usize) -> f64 {
    let ordinal = gray_decode(gray_idx as u32) as usize;
    debug_assert!(ordinal < n);
    (2 * ordinal) as f64 - (n - 1) as f64
}

/// Nearest level ordinal for amplitude `a` among odd integers of an `n`-level
/// axis, clamped to the outermost level.
fn nearest_level(a: f64, n: usize) -> u32 {
    let ordinal = ((a + (n - 1) as f64) / 2.0).round();
    ordinal.clamp(0.0, (n - 1) as f64) as u32
}

fn gray_encode(x: u32) -> u32 {
    x ^ (x >> 1)
}

fn gray_decode(mut g: u32) -> u32 {
    let mut x = g;
    while g > 0 {
        g >>= 1;
        x ^= g;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;
    use rand::prelude::*;

    #[test]
    fn bpsk_mapping_matches_paper() {
        // §3: BPSK maps a "0" bit to −1 and a "1" bit to 1.
        assert_eq!(Modulation::Bpsk.map(&[0]), Complex::real(-1.0));
        assert_eq!(Modulation::Bpsk.map(&[1]), Complex::real(1.0));
    }

    #[test]
    fn all_schemes_unit_energy() {
        let mut rng = StdRng::seed_from_u64(7);
        for m in Modulation::ALL {
            let bits: Vec<u8> = (0..6000).map(|_| rng.gen_range(0..2u8)).collect();
            let syms = m.modulate(&bits);
            let p = mean_power(&syms);
            assert!((p - 1.0).abs() < 0.05, "{m:?} mean power {p}");
        }
    }

    #[test]
    fn roundtrip_noiseless_all_schemes() {
        let mut rng = StdRng::seed_from_u64(42);
        for m in Modulation::ALL {
            let n = 120 * m.bits_per_symbol();
            let bits: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
            let syms = m.modulate(&bits);
            assert_eq!(m.demodulate(&syms), bits, "{m:?} roundtrip failed");
        }
    }

    #[test]
    fn decide_returns_consistent_point() {
        let mut rng = StdRng::seed_from_u64(3);
        for m in Modulation::ALL {
            for _ in 0..200 {
                let y = Complex::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
                let (bits, point) = m.decide(y);
                assert_eq!(m.map(&bits), point, "{m:?} decide/map mismatch");
            }
        }
    }

    #[test]
    fn decide_is_nearest_neighbour() {
        // Exhaustive: the decided point must be at least as close as every
        // other constellation point.
        for m in Modulation::ALL {
            let bps = m.bits_per_symbol();
            let all_points: Vec<Complex> = (0..(1usize << bps))
                .map(|v| {
                    let bits: Vec<u8> = (0..bps).map(|k| ((v >> k) & 1) as u8).collect();
                    m.map(&bits)
                })
                .collect();
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..500 {
                let y = Complex::new(rng.gen_range(-1.5..1.5), rng.gen_range(-1.5..1.5));
                let (_, p) = m.decide(y);
                let d = (y - p).norm_sq();
                for &q in &all_points {
                    assert!(d <= (y - q).norm_sq() + 1e-12, "{m:?}: {y:?} -> {p:?} not nearest");
                }
            }
        }
    }

    #[test]
    fn gray_neighbours_differ_by_one_bit() {
        // Adjacent amplitude levels must differ in exactly one bit — the
        // property that makes small noise cause single-bit errors.
        for n in [2usize, 4, 8] {
            for ord in 0..n - 1 {
                let g1 = gray_encode(ord as u32);
                let g2 = gray_encode(ord as u32 + 1);
                assert_eq!((g1 ^ g2).count_ones(), 1);
            }
        }
    }

    #[test]
    fn gray_encode_decode_roundtrip() {
        for x in 0..64u32 {
            assert_eq!(gray_decode(gray_encode(x)), x);
        }
    }

    #[test]
    fn symbols_for_bits_rounds_up() {
        assert_eq!(Modulation::Qpsk.symbols_for_bits(5), 3);
        assert_eq!(Modulation::Bpsk.symbols_for_bits(8), 8);
        assert_eq!(Modulation::Qam16.symbols_for_bits(0), 0);
    }

    #[test]
    fn min_distance_ordering() {
        // Denser constellations have smaller minimum distance.
        let d: Vec<f64> = Modulation::ALL.iter().map(|m| m.min_distance()).collect();
        for w in d.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn clamping_of_out_of_range_samples() {
        // A wildly out-of-range sample still decides to the outermost point.
        let (bits, _) = Modulation::Qam16.decide(Complex::new(100.0, -100.0));
        let p = Modulation::Qam16.map(&bits);
        let max_axis = 3.0 / (10.0f64).sqrt();
        assert!((p.re - max_axis).abs() < 1e-12);
        assert!((p.im + max_axis).abs() < 1e-12);
    }
}
