//! Channel (ISI) estimation and linear equalization.
//!
//! §3.1.3: "neighbouring symbols affect each other to some extent.
//! Practical receivers apply linear equalizers to mitigate the effect of
//! ISI." §4.2.4(d): when ZigZag reconstructs a chunk image it must re-apply
//! "any distortion that the chunk experienced because of multipath effects,
//! hardware distortion, filters, etc. To do so, we need to invert the
//! linear filter (i.e., the equalizer) that a typical decoder uses."
//!
//! Concretely:
//! * [`estimate_channel_taps`] fits an FIR channel model to the known
//!   preamble by least squares — this is the decoder-side view of the
//!   distortion.
//! * The **equalizer** is the least-squares (zero-forcing) FIR inverse of
//!   those taps ([`design_inverse`]).
//! * The **re-encoder's inverse filter** is the estimated channel FIR
//!   itself, i.e. the inverse of the equalizer, exactly as §4.2.4d
//!   prescribes.

use crate::complex::{Complex, ZERO};
use crate::filter::Fir;
use crate::linalg::lstsq;

/// Default number of channel taps the receiver fits (two precursor, main,
/// two postcursor).
pub const DEFAULT_CHANNEL_TAPS: usize = 5;
/// Default equalizer length.
pub const DEFAULT_EQUALIZER_TAPS: usize = 11;

/// Fits an `n_taps`-tap FIR channel `rx[n] ≈ Σ_l h[l]·known[n+delay−l]` to
/// the observed `rx` over the span of `known`, by regularised least
/// squares. `delay` is the precursor count (index of the main tap).
///
/// Returns `None` when the training span is too short or degenerate.
pub fn estimate_channel_taps(
    rx: &[Complex],
    known: &[Complex],
    n_taps: usize,
    delay: usize,
) -> Option<Fir> {
    assert!(delay < n_taps);
    let n = known.len().min(rx.len());
    if n < n_taps + 4 {
        return None;
    }
    // Use only output positions whose full tap window lies inside `known`,
    // so edge effects don't bias the fit.
    let first = n_taps; // conservative: skip the first n_taps outputs
    let last = n.saturating_sub(n_taps);
    if last <= first + n_taps {
        return None;
    }
    let mut rows = Vec::with_capacity(last - first);
    let mut obs = Vec::with_capacity(last - first);
    #[allow(clippy::needless_range_loop)] // `out` indexes both rx and the tap window
    for out in first..last {
        let mut row = Vec::with_capacity(n_taps);
        for l in 0..n_taps {
            let idx = out as isize + delay as isize - l as isize;
            row.push(if idx >= 0 && (idx as usize) < n { known[idx as usize] } else { ZERO });
        }
        rows.push(row);
        obs.push(rx[out]);
    }
    let taps = lstsq(&rows, &obs, 1e-9)?;
    Some(Fir::new(taps, delay))
}

/// Designs a least-squares FIR inverse `g` of channel `h`, such that
/// `h ∘ g ≈ δ` (a pure delay). The returned filter's `delay` is set so that
/// applying it to `h.apply(x)` re-aligns with `x`.
pub fn design_inverse(channel: &Fir, inv_len: usize) -> Option<Fir> {
    assert!(inv_len >= 1);
    let h = channel.taps();
    let g_delay = inv_len / 2;
    // Target: conv(h, g)[k] = δ[k − (channel.delay + g_delay)] over the full
    // convolution support of length h.len()+inv_len−1.
    let out_len = h.len() + inv_len - 1;
    let target_idx = channel.delay() + g_delay;
    let mut rows = Vec::with_capacity(out_len);
    let mut obs = Vec::with_capacity(out_len);
    for k in 0..out_len {
        let mut row = vec![ZERO; inv_len];
        for (j, cell) in row.iter_mut().enumerate() {
            let i = k as isize - j as isize;
            if i >= 0 && (i as usize) < h.len() {
                *cell = h[i as usize];
            }
        }
        rows.push(row);
        obs.push(if k == target_idx { Complex::real(1.0) } else { ZERO });
    }
    let g = lstsq(&rows, &obs, 1e-9)?;
    Some(Fir::new(g, g_delay))
}

/// A matched channel/equalizer pair as estimated from a training sequence.
#[derive(Clone, Debug)]
pub struct Equalizer {
    /// The estimated channel FIR (the "inverse filter" used by the
    /// re-encoder, §4.2.4d).
    pub channel: Fir,
    /// The zero-forcing equalizer (applied by the standard decoder before
    /// slicing).
    pub inverse: Fir,
}

impl Equalizer {
    /// Pass-through pair (no ISI model).
    pub fn identity() -> Self {
        Self { channel: Fir::identity(), inverse: Fir::identity() }
    }

    /// Estimates the channel from `rx` vs the `known` training sequence and
    /// designs the matching inverse.
    pub fn train(
        rx: &[Complex],
        known: &[Complex],
        n_channel_taps: usize,
        n_inverse_taps: usize,
    ) -> Option<Self> {
        let channel = estimate_channel_taps(rx, known, n_channel_taps, n_channel_taps / 2)?;
        let inverse = design_inverse(&channel, n_inverse_taps)?;
        Some(Self { channel, inverse })
    }

    /// Trains with the default tap counts.
    pub fn train_default(rx: &[Complex], known: &[Complex]) -> Option<Self> {
        Self::train(rx, known, DEFAULT_CHANNEL_TAPS, DEFAULT_EQUALIZER_TAPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preamble::Preamble;
    use rand::prelude::*;

    fn random_symbols(rng: &mut StdRng, n: usize) -> Vec<Complex> {
        (0..n).map(|_| Complex::real(if rng.gen_bool(0.5) { 1.0 } else { -1.0 })).collect()
    }

    #[test]
    fn estimates_known_channel() {
        let true_ch = Fir::new(
            vec![Complex::new(0.08, 0.02), Complex::new(0.95, -0.1), Complex::new(0.15, 0.05)],
            1,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let train = random_symbols(&mut rng, 64);
        let rx = true_ch.apply(&train);
        let est = estimate_channel_taps(&rx, &train, 3, 1).unwrap();
        for (a, b) in est.taps().iter().zip(true_ch.taps()) {
            assert!((*a - *b).abs() < 1e-6, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn estimate_with_more_taps_than_channel() {
        // Extra taps must come out near zero.
        let true_ch = Fir::from_real(&[1.0, 0.3], 0);
        let mut rng = StdRng::seed_from_u64(2);
        let train = random_symbols(&mut rng, 96);
        let rx = true_ch.apply(&train);
        let est = estimate_channel_taps(&rx, &train, 5, 2).unwrap();
        let y_true = true_ch.apply(&train);
        let y_est = est.apply(&train);
        for k in 8..88 {
            assert!((y_true[k] - y_est[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn inverse_cancels_channel() {
        let ch = Fir::new(
            vec![Complex::new(0.1, -0.05), Complex::new(1.0, 0.2), Complex::new(0.2, 0.1)],
            1,
        );
        let inv = design_inverse(&ch, 15).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let x = random_symbols(&mut rng, 128);
        let y = inv.apply(&ch.apply(&x));
        for k in 16..112 {
            assert!((y[k] - x[k]).abs() < 0.02, "k={k} err {}", (y[k] - x[k]).abs());
        }
    }

    #[test]
    fn inverse_of_identity_is_identity_like() {
        let inv = design_inverse(&Fir::identity(), 7).unwrap();
        let x: Vec<Complex> = (0..32).map(|k| Complex::cis(k as f64 * 0.4)).collect();
        let y = inv.apply(&x);
        for k in 4..28 {
            assert!((y[k] - x[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn train_on_preamble_roundtrip() {
        // End-to-end: distort the preamble, train, verify equalized output
        // matches the clean preamble.
        let p = Preamble::standard(64);
        let ch = Fir::new(
            vec![Complex::new(0.12, 0.03), Complex::new(0.9, -0.15), Complex::new(0.18, -0.02)],
            1,
        );
        let rx = ch.apply(p.symbols());
        let eq = Equalizer::train_default(&rx, p.symbols()).unwrap();
        // equalization is `inverse.apply`; the engine's hot path uses the
        // in-place `apply_into`, asserted equal below
        let recovered = eq.inverse.apply(&rx);
        #[allow(clippy::needless_range_loop)]
        for k in 8..56 {
            assert!(
                (recovered[k] - p.symbols()[k]).abs() < 0.05,
                "k={k} err {}",
                (recovered[k] - p.symbols()[k]).abs()
            );
        }
        // the in-place variant must agree exactly
        let mut out = Vec::new();
        eq.inverse.apply_into(&rx, &mut out);
        assert_eq!(out, recovered);
    }

    #[test]
    fn reencode_path_matches_channel_output() {
        // §4.2.4d: the re-encoder applies the *estimated channel* to clean
        // symbols; the result must match what the receiver actually saw.
        let p = Preamble::standard(64);
        let ch = Fir::new(
            vec![Complex::new(0.1, 0.0), Complex::new(1.0, 0.0), Complex::new(0.2, 0.0)],
            1,
        );
        let rx = ch.apply(p.symbols());
        let eq = Equalizer::train_default(&rx, p.symbols()).unwrap();
        let reencoded = eq.channel.apply(p.symbols());
        for k in 4..60 {
            assert!((reencoded[k] - rx[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn too_short_training_returns_none() {
        let p = Preamble::standard(6);
        assert!(estimate_channel_taps(p.symbols(), p.symbols(), 5, 2).is_none());
    }
}
