//! Convolutional channel coding (the §6(a) "Interaction with Coding"
//! extension).
//!
//! The paper's prototype measures *uncoded* BER and notes that "in
//! practice, additional bit-level codes (like Convolutional codes …) are
//! applied to increase the reliability of the packet", proposing an
//! iterative ZigZag⇄decoder loop as future work. We implement the standard
//! 802.11 convolutional code — constraint length K=7, rate 1/2, generators
//! 133/171 (octal) — with a hard- and soft-decision Viterbi decoder, so the
//! workspace can demonstrate that extension (`examples/coded_zigzag.rs`).

/// Constraint length of the 802.11 code.
pub const CONSTRAINT: usize = 7;
/// Generator polynomial g0 = 133 octal.
pub const G0: u32 = 0o133;
/// Generator polynomial g1 = 171 octal.
pub const G1: u32 = 0o171;
/// Number of trellis states (2^(K-1)).
pub const STATES: usize = 1 << (CONSTRAINT - 1);

/// Encodes `bits` with the 802.11 rate-1/2 convolutional code, appending
/// `K−1` zero tail bits so the trellis terminates in state 0. Output length
/// is `2·(bits.len() + 6)`.
pub fn encode(bits: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * (bits.len() + CONSTRAINT - 1));
    let mut shift: u32 = 0; // bit history, most recent in LSB... use standard: shift register of K bits
    for &b in bits.iter().chain(std::iter::repeat_n(&0u8, CONSTRAINT - 1)) {
        shift = ((shift << 1) | (b as u32 & 1)) & ((1 << CONSTRAINT) - 1);
        out.push(parity(shift & G0));
        out.push(parity(shift & G1));
    }
    out
}

#[inline]
fn parity(x: u32) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Branch output bits for (state, input) — `state` is the K−1 previous
/// input bits, newest in the LSB.
fn branch_output(state: usize, input: usize) -> (u8, u8) {
    let shift = ((state << 1) | input) as u32 | ((0u32) << CONSTRAINT);
    // Reconstruct the K-bit window: input is newest (LSB side of our
    // encoder shift), so window = (old state bits << 1) | input.
    let window = shift & ((1 << CONSTRAINT) - 1);
    (parity(window & G0), parity(window & G1))
}

/// Hard-decision Viterbi decode of a rate-1/2 stream produced by
/// [`encode`]. Returns the information bits (tail removed). `coded` must
/// have even length; odd trailing bits are ignored.
pub fn decode_hard(coded: &[u8]) -> Vec<u8> {
    let llr: Vec<f64> = coded.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
    decode_soft(&llr)
}

/// Soft-decision Viterbi decode. `llr[i] > 0` means coded bit `i` is more
/// likely 0; magnitude is confidence. Returns information bits with the
/// tail removed.
pub fn decode_soft(llr: &[f64]) -> Vec<u8> {
    let n_steps = llr.len() / 2;
    if n_steps == 0 {
        return Vec::new();
    }
    const INF: f64 = f64::INFINITY;
    let mut metric = vec![INF; STATES];
    metric[0] = 0.0;
    // survivors[t][state] = (prev_state, input_bit)
    let mut survivors: Vec<Vec<(u16, u8)>> = Vec::with_capacity(n_steps);

    for t in 0..n_steps {
        let (l0, l1) = (llr[2 * t], llr[2 * t + 1]);
        let mut next = vec![INF; STATES];
        let mut surv = vec![(0u16, 0u8); STATES];
        #[allow(clippy::needless_range_loop)] // trellis states index several arrays
        for state in 0..STATES {
            let m = metric[state];
            if m == INF {
                continue;
            }
            for input in 0..2usize {
                let (o0, o1) = branch_output(state, input);
                // cost: agreement of expected bits with LLRs (bit 0 ↔ +llr)
                let cost = bit_cost(o0, l0) + bit_cost(o1, l1);
                let ns = ((state << 1) | input) & (STATES - 1);
                let cand = m + cost;
                if cand < next[ns] {
                    next[ns] = cand;
                    surv[ns] = (state as u16, input as u8);
                }
            }
        }
        metric = next;
        survivors.push(surv);
    }

    // Trellis was tail-terminated at state 0; if the stream is truncated,
    // fall back to the best end state.
    let mut state = if metric[0] < INF && is_min(&metric, 0) {
        0usize
    } else {
        metric.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(s, _)| s).unwrap_or(0)
    };

    let mut bits_rev = Vec::with_capacity(n_steps);
    for t in (0..n_steps).rev() {
        let (prev, input) = survivors[t][state];
        bits_rev.push(input);
        state = prev as usize;
    }
    bits_rev.reverse();
    // strip the K−1 tail bits (if present)
    let info_len = bits_rev.len().saturating_sub(CONSTRAINT - 1);
    bits_rev.truncate(info_len);
    bits_rev
}

#[inline]
fn bit_cost(expected: u8, llr: f64) -> f64 {
    // llr > 0 favours bit 0: cost is how much the observation disagrees.
    if expected == 0 {
        llr.max(0.0) * 0.0 + (-llr).max(0.0)
    } else {
        llr.max(0.0)
    }
}

fn is_min(metric: &[f64], idx: usize) -> bool {
    metric.iter().all(|&m| metric[idx] <= m + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn encode_length() {
        assert_eq!(encode(&[1, 0, 1]).len(), 2 * (3 + 6));
        assert_eq!(encode(&[]).len(), 12);
    }

    #[test]
    fn roundtrip_clean() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [1usize, 7, 64, 500] {
            let bits: Vec<u8> = (0..len).map(|_| rng.gen_range(0..2u8)).collect();
            let coded = encode(&bits);
            assert_eq!(decode_hard(&coded), bits, "len {len}");
        }
    }

    #[test]
    fn corrects_scattered_errors() {
        // Rate-1/2 K=7 has free distance 10: sparse single errors are
        // trivially corrected.
        let mut rng = StdRng::seed_from_u64(2);
        let bits: Vec<u8> = (0..400).map(|_| rng.gen_range(0..2u8)).collect();
        let mut coded = encode(&bits);
        let mut i = 13;
        while i < coded.len() {
            coded[i] ^= 1;
            i += 40; // well-separated errors
        }
        assert_eq!(decode_hard(&coded), bits);
    }

    #[test]
    fn corrects_random_2_percent_ber() {
        let mut rng = StdRng::seed_from_u64(3);
        let bits: Vec<u8> = (0..2000).map(|_| rng.gen_range(0..2u8)).collect();
        let mut coded = encode(&bits);
        for b in coded.iter_mut() {
            if rng.gen_bool(0.02) {
                *b ^= 1;
            }
        }
        let decoded = decode_hard(&coded);
        let errs = crate::bits::hamming_distance(&decoded, &bits);
        assert!(errs == 0, "residual errors: {errs}");
    }

    #[test]
    fn soft_beats_hard_at_moderate_noise() {
        // Soft decisions (BPSK LLRs) must correct cases hard decisions
        // cannot: run both across many noisy blocks and compare totals.
        let mut rng = StdRng::seed_from_u64(4);
        let sigma = 0.65;
        let mut hard_errs = 0usize;
        let mut soft_errs = 0usize;
        for _ in 0..30 {
            let bits: Vec<u8> = (0..300).map(|_| rng.gen_range(0..2u8)).collect();
            let coded = encode(&bits);
            // BPSK: bit 0 → +1
            let rx: Vec<f64> = coded
                .iter()
                .map(|&b| {
                    let s = if b == 0 { 1.0 } else { -1.0 };
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    s + (-2.0 * u1.ln()).sqrt() * sigma * (2.0 * std::f64::consts::PI * u2).cos()
                })
                .collect();
            let hard_bits: Vec<u8> = rx.iter().map(|&v| u8::from(v < 0.0)).collect();
            hard_errs += crate::bits::hamming_distance(&decode_hard(&hard_bits), &bits);
            soft_errs += crate::bits::hamming_distance(&decode_soft(&rx), &bits);
        }
        assert!(soft_errs < hard_errs, "soft {soft_errs} should beat hard {hard_errs}");
    }

    #[test]
    fn burst_beyond_capability_fails_gracefully() {
        // A long burst defeats the code — decode must return *something*
        // of the right length, not panic.
        let bits = vec![1u8; 100];
        let mut coded = encode(&bits);
        for b in coded[40..120].iter_mut() {
            *b ^= 1;
        }
        let out = decode_hard(&coded);
        assert_eq!(out.len(), bits.len());
    }

    #[test]
    fn known_impulse_response() {
        // A single 1 bit: first coded pair must be (g0 parity, g1 parity)
        // of the window 0000001 = both 1.
        let coded = encode(&[1]);
        assert_eq!(&coded[0..2], &[1, 1]);
    }
}
