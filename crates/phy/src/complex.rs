//! Complex-number arithmetic for baseband signal processing.
//!
//! The paper (§3) represents a wireless signal as "a stream of discrete
//! complex numbers". This module provides the [`Complex`] sample type used
//! throughout the workspace. It is a deliberately small, `f64`-backed value
//! type: the decoder's subtraction steps (§4.2.3) accumulate many rounding
//! errors, and `f64` keeps residual-cancellation noise far below the AWGN
//! floor at the SNRs the evaluation sweeps (5–20 dB).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex baseband sample `re + j·im`.
///
/// `repr(C)` pins the layout to two adjacent `f64`s (`re` then `im`), so
/// a `&[Complex]` may be reinterpreted as an interleaved `&[f64]` of
/// twice the length — the flat view the explicit-SIMD kernel backend's
/// deinterleaving loads rely on.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real (in-phase, I) component.
    pub re: f64,
    /// Imaginary (quadrature, Q) component.
    pub im: f64,
}

/// The additive identity, `0 + 0j`.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
/// The multiplicative identity, `1 + 0j`.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

impl Complex {
    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// The unit phasor `e^{jθ}`. This is the workhorse of frequency-offset
    /// application and compensation (`y[n]·e^{-j2πnδfT}`, §4.2.1).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate `re − j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Magnitude `|z| = √(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`, cheaper than [`Complex::abs`] when only the
    /// energy is needed (e.g. the correlation threshold of §4.2.1).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns [`ZERO`]'s inverse as infinity components, mirroring `f64`
    /// division semantics; callers guard against zero channels explicitly.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sq();
        Self { re: self.re / d, im: -self.im / d }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self { re: self.re * k, im: self.im * k }
    }

    /// Rotates by angle `θ` (multiplies by `e^{jθ}`).
    #[inline]
    pub fn rotate(self, theta: f64) -> Self {
        self * Self::cis(theta)
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self { re: self.re + o.re, im: self.im + o.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self { re: self.re - o.re, im: self.im - o.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, k: f64) -> Self {
        self.scale(k)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, z: Complex) -> Complex {
        z.scale(self)
    }
}

impl Div for Complex {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, o: Self) -> Self {
        self * o.inv()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, o: Self) {
        *self = *self / o;
    }
}

impl Div<f64> for Complex {
    type Output = Self;
    #[inline]
    fn div(self, k: f64) -> Self {
        Self { re: self.re / k, im: self.im / k }
    }
}

impl Neg for Complex {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + *b)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Mean power `Σ|z|²/N` of a sample slice; 0 for an empty slice.
pub fn mean_power(samples: &[Complex]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sq()).sum::<f64>() / samples.len() as f64
}

/// Total energy `Σ|z|²` of a sample slice.
pub fn energy(samples: &[Complex]) -> f64 {
    samples.iter().map(|s| s.norm_sq()).sum()
}

/// Inner product `Σ a[k]·conj(b[k])` over the common prefix of two slices.
///
/// This is the primitive behind every correlation in the receiver
/// (§4.2.1, §4.2.2).
pub fn inner(a: &[Complex], b: &[Complex]) -> Complex {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y.conj()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 4.0);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn mul_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, -1.1);
        let p = a * b;
        assert!(close(p.abs(), 6.0));
        assert!(close(p.arg(), 0.3 - 1.1));
    }

    #[test]
    fn conj_negates_phase() {
        let z = Complex::from_polar(1.7, 0.9);
        assert!(close(z.conj().arg(), -0.9));
        assert!(close(z.conj().abs(), 1.7));
    }

    #[test]
    fn inv_is_multiplicative_inverse() {
        let z = Complex::new(3.0, -4.0);
        let w = z * z.inv();
        assert!(close(w.re, 1.0) && close(w.im, 0.0));
    }

    #[test]
    fn div_by_self_is_one() {
        let z = Complex::new(-2.5, 0.1);
        let w = z / z;
        assert!(close(w.re, 1.0) && close(w.im, 0.0));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let th = k as f64 * std::f64::consts::PI / 8.0;
            assert!(close(Complex::cis(th).abs(), 1.0));
        }
    }

    #[test]
    fn rotate_adds_angle() {
        let z = Complex::from_polar(1.0, 0.2);
        let r = z.rotate(0.5);
        assert!(close(r.arg(), 0.7));
    }

    #[test]
    fn norm_sq_is_abs_squared() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z.norm_sq(), 25.0));
        assert!(close(z.abs(), 5.0));
    }

    #[test]
    fn sum_over_iterator() {
        let v = [Complex::new(1.0, 1.0); 10];
        let s: Complex = v.iter().sum();
        assert!(close(s.re, 10.0) && close(s.im, 10.0));
    }

    #[test]
    fn inner_product_of_identical_is_energy() {
        let v: Vec<Complex> = (0..32).map(|k| Complex::cis(k as f64 * 0.37)).collect();
        let ip = inner(&v, &v);
        assert!(close(ip.re, 32.0));
        assert!(ip.im.abs() < 1e-9);
    }

    #[test]
    fn mean_power_of_unit_phasors_is_one() {
        let v: Vec<Complex> = (0..100).map(|k| Complex::cis(k as f64)).collect();
        assert!(close(mean_power(&v), 1.0));
        assert!(close(energy(&v), 100.0));
    }

    #[test]
    fn mean_power_empty_is_zero() {
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn scalar_mul_commutes() {
        let z = Complex::new(1.0, -2.0);
        assert_eq!(z * 3.0, 3.0 * z);
    }

    #[test]
    fn debug_formats_sign() {
        let s = format!("{:?}", Complex::new(1.0, -1.0));
        assert!(s.contains('-'));
    }
}
