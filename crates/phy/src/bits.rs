//! Bit/byte packing utilities.
//!
//! The frame layer works in bytes, the modulator works in bits. All bit
//! streams in this workspace are **LSB-first within each byte**, matching
//! the serialisation order of 802.11's scrambler and convolutional encoder.

/// Expands bytes into bits, LSB first within each byte.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Packs bits (LSB first within each byte) into bytes.
///
/// If `bits.len()` is not a multiple of 8, the final partial byte is
/// zero-padded in its high positions.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(bits.len().div_ceil(8));
    for chunk in bits.chunks(8) {
        let mut b = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            debug_assert!(bit <= 1, "bit streams must contain only 0/1");
            b |= (bit & 1) << i;
        }
        bytes.push(b);
    }
    bytes
}

/// Counts positions where two bit slices differ, over the shorter length.
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
}

/// Bit error rate between a reference and a received bit stream.
///
/// The comparison runs over the shorter of the two; missing bits in the
/// received stream are counted as errors (a truncated packet is a bad
/// packet). Returns 0.0 when the reference is empty.
pub fn bit_error_rate(reference: &[u8], received: &[u8]) -> f64 {
    if reference.is_empty() {
        return 0.0;
    }
    let overlap = reference.len().min(received.len());
    let errs = hamming_distance(&reference[..overlap], &received[..overlap])
        + reference.len().saturating_sub(received.len());
    errs as f64 / reference.len() as f64
}

/// Reads a little-endian `u16` from two bytes.
pub fn read_u16(bytes: &[u8]) -> u16 {
    u16::from_le_bytes([bytes[0], bytes[1]])
}

/// Writes a little-endian `u16` into a buffer.
pub fn write_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` from four bytes.
pub fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// Writes a little-endian `u32` into a buffer.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes_bits() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn lsb_first_order() {
        assert_eq!(bytes_to_bits(&[0b0000_0001]), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(bytes_to_bits(&[0b1000_0000]), vec![0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn partial_byte_zero_padded() {
        assert_eq!(bits_to_bytes(&[1, 1, 1]), vec![0b0000_0111]);
    }

    #[test]
    fn hamming_counts_differences() {
        assert_eq!(hamming_distance(&[0, 1, 0, 1], &[0, 1, 1, 0]), 2);
        assert_eq!(hamming_distance(&[1], &[1, 0, 0]), 0);
    }

    #[test]
    fn ber_counts_truncation_as_errors() {
        let reference = vec![1u8; 10];
        let received = vec![1u8; 5];
        assert!((bit_error_rate(&reference, &received) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ber_zero_for_identical() {
        let v = vec![0u8, 1, 1, 0, 1];
        assert_eq!(bit_error_rate(&v, &v), 0.0);
    }

    #[test]
    fn ber_empty_reference() {
        assert_eq!(bit_error_rate(&[], &[1, 0]), 0.0);
    }

    #[test]
    fn u16_u32_roundtrip() {
        let mut buf = Vec::new();
        write_u16(&mut buf, 0xBEEF);
        write_u32(&mut buf, 0xDEAD_CAFE);
        assert_eq!(read_u16(&buf[0..2]), 0xBEEF);
        assert_eq!(read_u32(&buf[2..6]), 0xDEAD_CAFE);
    }
}
