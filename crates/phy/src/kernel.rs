//! Pluggable compute backends for the phy hot loops.
//!
//! The receiver spends essentially all of its cycles in four primitives
//! (§4.2, §4.6): the sliding preamble **correlation** that detects and
//! aligns collisions, the **FIR** convolution that applies/undoes ISI,
//! the windowed-sinc **resampling** that moves chunks between sampling
//! grids, and the **MRC** combiner of the forward/backward passes. This
//! module puts those four behind a [`Backend`] trait with two
//! implementations:
//!
//! * [`Scalar`] — delegates to the original loops in [`crate::correlate`],
//!   [`crate::filter`], [`crate::interp`] and [`crate::mrc`]. It is the
//!   numerical reference the differential tests compare against.
//! * [`Optimized`] — structure-of-arrays (`re`/`im` split `f64` slices)
//!   loops that the compiler can autovectorize, plus the algorithmic
//!   wins: the correlation pre-derotates the reference once per scan
//!   instead of paying a sin/cos per inner-loop sample, the FIR runs a
//!   bounds-check-free per-tap interior sweep, and the resampler caches
//!   the sinc·hann tap vector per distinct fractional offset.
//!
//! A [`Kernel`] bundles a backend choice with its [`KernelScratch`]
//! temporaries; one lives in every `zigzag-core` scratch arena, so the
//! backend is selected once per engine/work unit and the SoA staging
//! buffers are reused across calls. A future `std::simd` or GPU backend
//! is one more `impl Backend` — the decode logic never changes.

use crate::complex::{Complex, ZERO};
use crate::filter::Fir;
use crate::interp::{hann, sinc, DEFAULT_HALF_WIDTH};
use std::ops::Range;

/// Which backend a [`Kernel`] dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The original scalar loops (numerical reference).
    Scalar,
    /// SoA autovectorization-friendly loops with phasor/tap precomputation.
    Optimized,
}

impl BackendKind {
    /// Backend selected by the `ZIGZAG_BACKEND` environment variable
    /// (`scalar` or `optimized`, case-insensitive); defaults to
    /// [`BackendKind::Optimized`] when unset. The variable is read once
    /// per process.
    ///
    /// An unrecognized value **panics** with the accepted names: the old
    /// behaviour silently fell back to `Optimized`, so a typo (`Scalar`,
    /// `simd`, …) ran the whole differential suite against the backend it
    /// was supposed to cross-check.
    pub fn from_env() -> Self {
        use std::sync::OnceLock;
        static KIND: OnceLock<BackendKind> = OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("ZIGZAG_BACKEND") {
            Err(_) => BackendKind::Optimized,
            Ok(v) => Self::from_name(&v).unwrap_or_else(|| {
                panic!(
                    "unrecognized ZIGZAG_BACKEND value {v:?}: expected \"scalar\" or \"optimized\""
                )
            }),
        })
    }

    /// Parses a backend name, case-insensitively: `"scalar"` /
    /// `"optimized"`. The single parser behind [`Self::from_env`] and
    /// [`Self::from_arg`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "optimized" => Some(BackendKind::Optimized),
            _ => None,
        }
    }

    /// Parses a backend name, as accepted on the command line by the
    /// debug examples.
    pub fn from_arg(arg: &str) -> Option<Self> {
        Self::from_name(arg)
    }

    /// The backend implementation this kind names.
    pub fn backend(self) -> &'static dyn Backend {
        match self {
            BackendKind::Scalar => &Scalar,
            BackendKind::Optimized => &Optimized,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        self.backend().name()
    }
}

impl Default for BackendKind {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Reusable staging buffers for a backend (SoA copies of the operands,
/// accumulators, the cached resampling tap vector). Contents between
/// calls are unspecified; only capacity is retained.
#[derive(Debug, Default)]
pub struct KernelScratch {
    // SoA image of the long operand (receive buffer / input signal).
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    // SoA image of the short operand (derotated reference, FIR taps).
    b_re: Vec<f64>,
    b_im: Vec<f64>,
    // SoA output accumulators.
    c_re: Vec<f64>,
    c_im: Vec<f64>,
    // Per-position MRC weight sums.
    den: Vec<f64>,
    // Cached windowed-sinc taps for the fractional offset `taps_frac`.
    taps: Vec<f64>,
    taps_frac: f64,
    taps_j_lo: isize,
    taps_valid: bool,
}

fn split_soa(x: &[Complex], re: &mut Vec<f64>, im: &mut Vec<f64>) {
    re.clear();
    im.clear();
    re.extend(x.iter().map(|c| c.re));
    im.extend(x.iter().map(|c| c.im));
}

/// One implementation of the four phy hot-loop primitives.
///
/// All methods are semantically identical across backends: the
/// differential property tests (`crates/phy/tests/backend_diff.rs`) pin
/// every implementation to [`Scalar`] within 1e-9 over random inputs, and
/// the FIR/resample/MRC kernels are bit-identical by construction (same
/// operations in the same order, only the memory layout differs).
pub trait Backend: std::fmt::Debug + Send + Sync {
    /// Stable display name (`"scalar"`, `"optimized"`).
    fn name(&self) -> &'static str;

    /// Frequency-compensated sliding correlation, as
    /// [`crate::correlate::scan_into`]: fills `out` (cleared first) with
    /// `Γ'(Δ) = Σ_k s*[k]·y[Δ+k]·e^{−jωk}` for each `Δ` in `positions`.
    fn scan_into(
        &self,
        ws: &mut KernelScratch,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    );

    /// FIR filtering, as [`Fir::apply_into`]: fills `y` (cleared first)
    /// with the filtered signal, same length as `x`, zero-padded edges.
    fn fir_apply_into(
        &self,
        ws: &mut KernelScratch,
        fir: &Fir,
        x: &[Complex],
        y: &mut Vec<Complex>,
    );

    /// Windowed-sinc resampling, as [`crate::interp::resample_into`]:
    /// fills `out` (cleared first) with interpolations at
    /// `start + k·step` for `k = 0..n`.
    fn resample_into(
        &self,
        ws: &mut KernelScratch,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    );

    /// Weighted MRC, as [`crate::mrc::combine_weighted_into`]: fills
    /// `out` (cleared first) with `Σ wᵢ·sᵢ / Σ wᵢ` per symbol position.
    fn combine_weighted_into(
        &self,
        ws: &mut KernelScratch,
        streams: &[(&[Complex], f64)],
        out: &mut Vec<Complex>,
    );
}

/// The original scalar loops — the numerical reference backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scalar;

impl Backend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn scan_into(
        &self,
        _ws: &mut KernelScratch,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    ) {
        crate::correlate::scan_into(y, s, omega, positions, out);
    }

    fn fir_apply_into(
        &self,
        _ws: &mut KernelScratch,
        fir: &Fir,
        x: &[Complex],
        y: &mut Vec<Complex>,
    ) {
        fir.apply_into(x, y);
    }

    fn resample_into(
        &self,
        _ws: &mut KernelScratch,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    ) {
        crate::interp::resample_into(samples, start, step, n, out);
    }

    fn combine_weighted_into(
        &self,
        _ws: &mut KernelScratch,
        streams: &[(&[Complex], f64)],
        out: &mut Vec<Complex>,
    ) {
        crate::mrc::combine_weighted_into(streams, out);
    }
}

/// SoA loops with phasor/tap precomputation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Optimized;

impl Backend for Optimized {
    fn name(&self) -> &'static str {
        "optimized"
    }

    fn scan_into(
        &self,
        ws: &mut KernelScratch,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    ) {
        out.clear();
        // Hoist the frequency-offset rotation out of the O(N·L) loop:
        // s*[k]·e^{−jωk} does not depend on Δ, so the sin/cos pair is paid
        // L times per scan instead of N·L times.
        let l = s.len();
        ws.b_re.clear();
        ws.b_im.clear();
        for (k, &sk) in s.iter().enumerate() {
            let r = sk.conj() * Complex::cis(-omega * k as f64);
            ws.b_re.push(r.re);
            ws.b_im.push(r.im);
        }
        split_soa(y, &mut ws.a_re, &mut ws.a_im);
        out.reserve(positions.len());
        for d in positions {
            let end = l.min(y.len().saturating_sub(d));
            if end == 0 {
                out.push(ZERO);
                continue;
            }
            let (sr, si) = (&ws.b_re[..end], &ws.b_im[..end]);
            let (yr, yi) = (&ws.a_re[d..d + end], &ws.a_im[d..d + end]);
            // Four independent accumulator pairs: the serial FP-add chain,
            // not the multiplies, bounds the scalar throughput here.
            let mut acc = [0.0f64; 8];
            let mut k = 0;
            while k + 4 <= end {
                for u in 0..4 {
                    acc[2 * u] += sr[k + u] * yr[k + u] - si[k + u] * yi[k + u];
                    acc[2 * u + 1] += sr[k + u] * yi[k + u] + si[k + u] * yr[k + u];
                }
                k += 4;
            }
            while k < end {
                acc[0] += sr[k] * yr[k] - si[k] * yi[k];
                acc[1] += sr[k] * yi[k] + si[k] * yr[k];
                k += 1;
            }
            out.push(Complex::new(
                (acc[0] + acc[2]) + (acc[4] + acc[6]),
                (acc[1] + acc[3]) + (acc[5] + acc[7]),
            ));
        }
    }

    fn fir_apply_into(
        &self,
        ws: &mut KernelScratch,
        fir: &Fir,
        x: &[Complex],
        y: &mut Vec<Complex>,
    ) {
        y.clear();
        if fir.is_identity() {
            y.extend_from_slice(x);
            return;
        }
        let n = x.len();
        split_soa(x, &mut ws.a_re, &mut ws.a_im);
        ws.c_re.clear();
        ws.c_re.resize(n, 0.0);
        ws.c_im.clear();
        ws.c_im.resize(n, 0.0);
        // Per-tap interior sweep: tap l reads x[n − shift] with
        // shift = l − delay, valid exactly for n ∈ [max(0, shift),
        // min(n, n + shift)) — clamping the range once replaces the
        // per-sample isize-cast bounds tests of the scalar loop, and the
        // resulting element-wise saxpy has no reduction to block
        // vectorization. Taps are visited in ascending l, so every output
        // accumulates its contributions in the scalar loop's order and
        // the result is bit-identical.
        let delay = fir.delay() as isize;
        for (l, &tap) in fir.taps().iter().enumerate() {
            let shift = l as isize - delay;
            let n_lo = shift.max(0) as usize;
            let n_hi = (n as isize + shift).clamp(0, n as isize) as usize;
            if n_lo >= n_hi {
                continue;
            }
            let (tr, ti) = (tap.re, tap.im);
            let x_lo = (n_lo as isize - shift) as usize;
            let len = n_hi - n_lo;
            let xr = &ws.a_re[x_lo..x_lo + len];
            let xi = &ws.a_im[x_lo..x_lo + len];
            let cr = &mut ws.c_re[n_lo..n_hi];
            let ci = &mut ws.c_im[n_lo..n_hi];
            for k in 0..len {
                cr[k] += tr * xr[k] - ti * xi[k];
                ci[k] += tr * xi[k] + ti * xr[k];
            }
        }
        y.extend(ws.c_re.iter().zip(ws.c_im.iter()).map(|(&re, &im)| Complex::new(re, im)));
    }

    fn resample_into(
        &self,
        ws: &mut KernelScratch,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    ) {
        out.clear();
        // No SoA staging here: a chunk decoder calls this once per small
        // block with the *full* residual buffer as `samples`, so an
        // up-front whole-buffer copy would cost more than the 17-tap
        // window reads it feeds. The win is the cached tap vector; the
        // AoS reads below are just as sequential.
        let w = DEFAULT_HALF_WIDTH as f64;
        ws.taps_valid = false;
        out.reserve(n);
        for k in 0..n {
            let t = start + k as f64 * step;
            let f = t.floor();
            if !f.is_finite() {
                out.push(ZERO);
                continue;
            }
            let frac = t - f;
            // The sinc·hann tap vector depends only on the fractional
            // part of t. On the receiver's step = 1 grids the fraction is
            // constant over the whole call, so the 17 sin/cos evaluations
            // per output collapse to one cache fill per scan.
            if !ws.taps_valid || ws.taps_frac != frac {
                ws.taps.clear();
                let j_lo = (frac - w).ceil() as isize;
                let j_hi = (frac + w).floor() as isize;
                for j in j_lo..=j_hi {
                    let d = frac - j as f64;
                    ws.taps.push(sinc(d) * hann(d, w + 1.0));
                }
                ws.taps_frac = frac;
                ws.taps_j_lo = j_lo;
                ws.taps_valid = true;
            }
            let base = f as isize + ws.taps_j_lo;
            let i_lo = base.clamp(0, samples.len() as isize) as usize;
            let i_hi = (base + ws.taps.len() as isize).clamp(0, samples.len() as isize) as usize;
            if i_lo >= i_hi {
                out.push(ZERO);
                continue;
            }
            let mut acc_re = 0.0;
            let mut acc_im = 0.0;
            let j0 = (i_lo as isize - base) as usize;
            for (v, &tap) in samples[i_lo..i_hi].iter().zip(&ws.taps[j0..]) {
                acc_re += v.re * tap;
                acc_im += v.im * tap;
            }
            out.push(Complex::new(acc_re, acc_im));
        }
    }

    fn combine_weighted_into(
        &self,
        ws: &mut KernelScratch,
        streams: &[(&[Complex], f64)],
        out: &mut Vec<Complex>,
    ) {
        assert!(!streams.is_empty(), "MRC needs at least one stream");
        out.clear();
        // Every accumulation below mirrors the scalar loop's order and
        // operations exactly (weighted terms in stream order added to a
        // zero accumulator, then one real division), so the result is
        // bit-identical to the reference.
        match *streams {
            // The receiver only ever combines one stream (forward-only
            // decode) or two (forward + backward, the two faulty capture
            // versions); these run single-pass with no staging arrays.
            [(s, w)] => {
                out.extend(s.iter().map(|&v| if w > 0.0 { v.scale(w) / w } else { ZERO }));
            }
            [(s1, w1), (s2, w2)] => {
                let both = s1.len().min(s2.len());
                let dw = w1 + w2;
                out.reserve(s1.len().max(s2.len()));
                for k in 0..both {
                    let re = s1[k].re * w1 + s2[k].re * w2;
                    let im = s1[k].im * w1 + s2[k].im * w2;
                    out.push(if dw > 0.0 { Complex::new(re / dw, im / dw) } else { ZERO });
                }
                let (tail, w) = if s1.len() > both { (&s1[both..], w1) } else { (&s2[both..], w2) };
                out.extend(tail.iter().map(|&v| if w > 0.0 { v.scale(w) / w } else { ZERO }));
            }
            _ => {
                let n = streams.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
                ws.c_re.clear();
                ws.c_re.resize(n, 0.0);
                ws.c_im.clear();
                ws.c_im.resize(n, 0.0);
                ws.den.clear();
                ws.den.resize(n, 0.0);
                for &(s, weight) in streams {
                    for (k, &v) in s.iter().enumerate() {
                        ws.c_re[k] += v.re * weight;
                        ws.c_im[k] += v.im * weight;
                        ws.den[k] += weight;
                    }
                }
                out.extend((0..n).map(|k| {
                    if ws.den[k] > 0.0 {
                        Complex::new(ws.c_re[k], ws.c_im[k]) / ws.den[k]
                    } else {
                        ZERO
                    }
                }));
            }
        }
    }
}

/// A backend choice bundled with its reusable scratch buffers — the
/// object the decode engine threads through its hot loops.
#[derive(Debug, Default)]
pub struct Kernel {
    kind: BackendKind,
    ws: KernelScratch,
}

impl Kernel {
    /// A kernel dispatching to the given backend.
    pub fn new(kind: BackendKind) -> Self {
        Self { kind, ws: KernelScratch::default() }
    }

    /// The backend this kernel dispatches to.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// See [`Backend::scan_into`].
    pub fn scan_into(
        &mut self,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    ) {
        self.kind.backend().scan_into(&mut self.ws, y, s, omega, positions, out);
    }

    /// See [`Backend::fir_apply_into`].
    pub fn fir_apply_into(&mut self, fir: &Fir, x: &[Complex], y: &mut Vec<Complex>) {
        self.kind.backend().fir_apply_into(&mut self.ws, fir, x, y);
    }

    /// See [`Backend::resample_into`].
    pub fn resample_into(
        &mut self,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    ) {
        self.kind.backend().resample_into(&mut self.ws, samples, start, step, n, out);
    }

    /// See [`Backend::combine_weighted_into`].
    pub fn combine_weighted_into(&mut self, streams: &[(&[Complex], f64)], out: &mut Vec<Complex>) {
        self.kind.backend().combine_weighted_into(&mut self.ws, streams, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: usize, seed: u64) -> Vec<Complex> {
        (0..n)
            .map(|k| {
                let t = (k as u64).wrapping_mul(seed.wrapping_add(1)) as f64;
                Complex::cis(0.13 * t).scale(1.0 + 0.2 * ((k % 7) as f64))
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((*x - *y).abs() < tol, "{what}[{k}]: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn backend_names_parse_case_insensitively() {
        for s in ["scalar", "Scalar", "SCALAR"] {
            assert_eq!(BackendKind::from_name(s), Some(BackendKind::Scalar), "{s}");
            assert_eq!(BackendKind::from_arg(s), Some(BackendKind::Scalar), "{s}");
        }
        for s in ["optimized", "Optimized", "OPTIMIZED"] {
            assert_eq!(BackendKind::from_name(s), Some(BackendKind::Optimized), "{s}");
        }
    }

    #[test]
    fn unknown_backend_names_are_rejected() {
        // Regression: `from_env` used to treat every unrecognized value
        // (`simd`, typos, wrong case) as `Optimized`, silently running
        // differential jobs on the wrong backend. The shared parser must
        // reject them so `from_env` can fail loudly.
        for s in ["simd", "gpu", "scalarr", "optimised", "", " scalar"] {
            assert_eq!(BackendKind::from_name(s), None, "{s:?} must not parse");
            assert_eq!(BackendKind::from_arg(s), None, "{s:?} must not parse");
        }
    }

    #[test]
    fn backends_agree_on_scan() {
        let y = sig(300, 3);
        let s = sig(32, 7);
        for omega in [0.0, 0.043, -0.12] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            Kernel::new(BackendKind::Scalar).scan_into(&y, &s, omega, 0..y.len(), &mut a);
            Kernel::new(BackendKind::Optimized).scan_into(&y, &s, omega, 0..y.len(), &mut b);
            assert_close(&a, &b, 1e-9, "scan");
        }
    }

    #[test]
    fn backends_agree_on_fir_bit_exact() {
        let x = sig(128, 5);
        let fir = Fir::new(
            vec![Complex::new(0.1, 0.02), Complex::real(1.0), Complex::new(0.2, -0.06)],
            1,
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        Kernel::new(BackendKind::Scalar).fir_apply_into(&fir, &x, &mut a);
        Kernel::new(BackendKind::Optimized).fir_apply_into(&fir, &x, &mut b);
        assert_eq!(a, b, "FIR backends must be bit-identical");
    }

    #[test]
    fn backends_agree_on_resample_bit_exact() {
        let x = sig(256, 11);
        for (start, step) in [(0.37, 1.0), (-3.2, 1.0), (5.0, 1.0005), (250.9, 1.0)] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            Kernel::new(BackendKind::Scalar).resample_into(&x, start, step, 300, &mut a);
            Kernel::new(BackendKind::Optimized).resample_into(&x, start, step, 300, &mut b);
            assert_eq!(a, b, "resample backends must be bit-identical at {start}+k*{step}");
        }
    }

    #[test]
    fn backends_agree_on_mrc_bit_exact() {
        let s1 = sig(40, 1);
        let s2 = sig(25, 2);
        let s3 = sig(33, 3);
        let streams: Vec<(&[Complex], f64)> = vec![(&s1, 2.0), (&s2, 0.5), (&s3, 0.0)];
        let mut a = Vec::new();
        let mut b = Vec::new();
        Kernel::new(BackendKind::Scalar).combine_weighted_into(&streams, &mut a);
        Kernel::new(BackendKind::Optimized).combine_weighted_into(&streams, &mut b);
        assert_eq!(a, b, "MRC backends must be bit-identical");
    }

    #[test]
    fn kind_names_and_dispatch() {
        assert_eq!(BackendKind::Scalar.name(), "scalar");
        assert_eq!(BackendKind::Optimized.name(), "optimized");
        assert_eq!(Kernel::new(BackendKind::Optimized).kind(), BackendKind::Optimized);
    }
}
