//! Pluggable compute backends for the phy hot loops.
//!
//! The receiver spends essentially all of its cycles in four primitives
//! (§4.2, §4.6): the sliding preamble **correlation** that detects and
//! aligns collisions, the **FIR** convolution that applies/undoes ISI,
//! the windowed-sinc **resampling** that moves chunks between sampling
//! grids, and the **MRC** combiner of the forward/backward passes. This
//! module puts those four behind a [`Backend`] trait with three
//! implementations:
//!
//! * [`Scalar`] — delegates to the original loops in [`crate::correlate`],
//!   [`crate::filter`], [`crate::interp`] and [`crate::mrc`]. It is the
//!   numerical reference the differential tests compare against.
//! * [`Optimized`] — structure-of-arrays (`re`/`im` split `f64` slices)
//!   loops that the compiler can autovectorize, plus the algorithmic
//!   wins: the correlation pre-derotates the reference once per scan
//!   instead of paying a sin/cos per inner-loop sample, the FIR runs a
//!   single-pass bounds-check-free interior sweep, and the resampler
//!   caches the sinc·hann tap vector per distinct fractional offset.
//! * [`Simd`] — the `Optimized` staging with the inner loops written as
//!   explicit four-lane kernels (the private `lanes` module): stable
//!   `std::arch` AVX2 intrinsics behind a once-cached runtime
//!   [`is_x86_feature_detected!`] check, and a portable `[f64; 4]`
//!   fallback with identical per-lane arithmetic everywhere else.
//!   Bit-identical to `Optimized` (and hence to the whole determinism
//!   contract) by construction.
//!
//! A fifth primitive joined in the k-way matching PR: the normalized
//! **match metric** of §4.2.2 (`match_score`), the correlation of a span
//! of one collision buffer against a sub-sample-interpolated span of
//! another, maximized over a τ sweep. It is the inner product the k-way
//! alignment path evaluates thousands of times per buffer, so it gets
//! the same treatment as the scan: the `Optimized` backend hoists the
//! interpolation out of the τ loop onto pre-built sub-sample *lattices*
//! ([`SubLattice`]), reuses window energies via prefix sums, and can
//! abandon a candidate mid-accumulation once a Cauchy–Schwarz bound
//! proves it cannot reach the caller's decision threshold. A
//! [`CorrFootprint`] caches those lattices per stored collision so a
//! buffer is characterized once, not re-interpolated per arrival.
//!
//! A [`Kernel`] bundles a backend choice with its [`KernelScratch`]
//! temporaries; one lives in every `zigzag-core` scratch arena, so the
//! backend is selected once per engine/work unit and the SoA staging
//! buffers are reused across calls. A future `std::simd` or GPU backend
//! is one more `impl Backend` — the decode logic never changes.

use crate::complex::{Complex, ZERO};
use crate::filter::Fir;
use crate::interp::{hann, sinc, DEFAULT_HALF_WIDTH};
use std::ops::Range;

/// Which backend a [`Kernel`] dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The original scalar loops (numerical reference).
    Scalar,
    /// SoA autovectorization-friendly loops with phasor/tap precomputation.
    Optimized,
    /// Explicit fixed-lane-width kernels: runtime-detected `std::arch`
    /// AVX2 paths on x86_64, a portable 4-lane array fallback elsewhere.
    /// Bit-identical to [`BackendKind::Optimized`] by construction (same
    /// per-lane arithmetic, no FMA contraction).
    Simd,
}

impl BackendKind {
    /// Backend selected by the `ZIGZAG_BACKEND` environment variable
    /// (`scalar`, `optimized` or `simd`, case-insensitive); defaults to
    /// [`BackendKind::Optimized`] when unset. The variable is read once
    /// per process.
    ///
    /// An unrecognized value **panics** with the accepted names: the old
    /// behaviour silently fell back to `Optimized`, so a typo (`Scalar`,
    /// `avx`, …) ran the whole differential suite against the backend it
    /// was supposed to cross-check.
    pub fn from_env() -> Self {
        use std::sync::OnceLock;
        static KIND: OnceLock<BackendKind> = OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("ZIGZAG_BACKEND") {
            Err(_) => BackendKind::Optimized,
            Ok(v) => Self::from_name(&v).unwrap_or_else(|| {
                panic!(
                    "unrecognized ZIGZAG_BACKEND value {v:?}: expected \"scalar\", \"optimized\" or \"simd\""
                )
            }),
        })
    }

    /// Parses a backend name, case-insensitively: `"scalar"` /
    /// `"optimized"` / `"simd"`. The single parser behind
    /// [`Self::from_env`] and [`Self::from_arg`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "optimized" => Some(BackendKind::Optimized),
            "simd" => Some(BackendKind::Simd),
            _ => None,
        }
    }

    /// Parses a backend name, as accepted on the command line by the
    /// debug examples.
    pub fn from_arg(arg: &str) -> Option<Self> {
        Self::from_name(arg)
    }

    /// The backend implementation this kind names.
    pub fn backend(self) -> &'static dyn Backend {
        match self {
            BackendKind::Scalar => &Scalar,
            BackendKind::Optimized => &Optimized,
            BackendKind::Simd => &Simd,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        self.backend().name()
    }
}

impl Default for BackendKind {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The τ grid of [`Backend::match_score`]: `-1 + i·tau_step` for
/// `i = 0..=⌊2/tau_step⌋`, covering `[-1, +1]` inclusive.
///
/// The iteration count is derived once from the step (with an epsilon
/// guard for non-dyadic steps whose quotient rounds to just under an
/// integer), so the sweep always reaches the `+1.0` endpoint. The
/// historical `tau += tau_step` accumulation only terminated correctly
/// for dyadic steps: at step 0.2 the accumulated τ drifted past the
/// `tau <= 1.0` bound one iteration early and the final alignment was
/// silently never evaluated. For dyadic steps (1.0, 0.5, 0.25 — all the
/// decode path uses) the values here are bit-identical to the old
/// accumulation; non-dyadic steps may carry 1-ulp rounding in the last
/// values.
pub fn tau_sweep(tau_step: f64) -> impl Iterator<Item = f64> + Clone {
    assert!(tau_step > 0.0, "tau_step must be positive, got {tau_step}");
    let steps = (2.0 / tau_step + 1e-9).floor() as usize;
    (0..=steps).map(move |i| -1.0 + i as f64 * tau_step)
}

/// Result of a [`Backend::match_score`] τ sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MatchScore {
    /// The best normalized correlation over the sweep:
    /// `max_τ |Σ_k a[sa+k]·conj(b(sb+k+τ))| / √(Σ|a|²·Σ|b(τ)|²)`,
    /// in `[0, 1]` (0 when the overlap is empty or either side has no
    /// energy).
    pub metric: f64,
    /// The τ achieving the best metric (the earliest such τ on exact
    /// ties — both backends sweep in ascending τ order).
    pub tau: f64,
}

/// One pre-interpolated sub-sample lane of a [`CorrFootprint`]: the
/// source buffer evaluated at fractional position `m − 1 + frac` for
/// every integer `m` in `0..len + 2` (one sample of margin each side),
/// plus energy prefix sums.
///
/// Every τ of a sweep decomposes as `n + frac` with `n ∈ {−1, 0, +1}`,
/// so against a lane the sub-sample interpolation of the match metric
/// collapses to an integer-shifted dot product, and any window's energy
/// `Σ|b(τ)|²` is two prefix-sum reads instead of a re-accumulation.
/// Lanes are built with [`Backend::resample_into`], which is
/// bit-identical across backends — so a footprint's contents never
/// depend on which backend built it.
#[derive(Clone, Debug, Default)]
pub struct SubLattice {
    frac: f64,
    samples: Vec<Complex>,
    energy: Vec<f64>,
}

impl SubLattice {
    /// The fractional offset this lane was interpolated at.
    pub fn frac(&self) -> f64 {
        self.frac
    }

    /// The interpolated samples: `samples[m] = b(m − 1 + frac)`.
    pub fn samples(&self) -> &[Complex] {
        &self.samples
    }

    /// `Σ |samples[m]|²` over `lo..hi` — two prefix-sum reads.
    pub fn window_energy(&self, lo: usize, hi: usize) -> f64 {
        self.energy[hi] - self.energy[lo]
    }

    /// Recomputes the energy prefix sums from `samples`.
    fn refresh_energy(&mut self) {
        self.energy.clear();
        self.energy.reserve(self.samples.len() + 1);
        let mut acc = 0.0;
        self.energy.push(acc);
        for v in &self.samples {
            acc += v.norm_sq();
            self.energy.push(acc);
        }
    }
}

/// The cached correlation footprint of a stored collision buffer:
/// sub-sample interpolation lanes (plus their energy prefix sums) over
/// the whole buffer, built lazily by [`Kernel::ensure_footprint`] the
/// first time the buffer is scored and reused for every later arrival.
///
/// The k-way matcher re-correlates each stored collision against every
/// new same-key buffer; without the footprint each of those evaluations
/// re-ran the 17-tap windowed-sinc interpolation per sample per τ. With
/// it, a stored collision is characterized **once** and each evaluation
/// is a handful of dot products.
#[derive(Clone, Debug, Default)]
pub struct CorrFootprint {
    len: usize,
    lanes: Vec<SubLattice>,
}

impl CorrFootprint {
    /// Length of the source buffer the lanes were interpolated from
    /// (0 until the first [`Kernel::ensure_footprint`]).
    pub fn source_len(&self) -> usize {
        self.len
    }

    /// The lane at exactly this fractional offset, if built.
    pub fn lane(&self, frac: f64) -> Option<&SubLattice> {
        self.lanes.iter().find(|l| l.frac == frac)
    }

    /// All built lanes.
    pub fn lanes(&self) -> &[SubLattice] {
        &self.lanes
    }

    /// `true` once every lane of the τ sweep at `tau_step` is built for
    /// a buffer of `len` samples.
    pub fn covers(&self, len: usize, tau_step: f64) -> bool {
        self.len == len && tau_sweep(tau_step).all(|tau| self.lane(tau - tau.floor()).is_some())
    }

    /// Drops every lane (e.g. when the source buffer changed).
    pub fn clear(&mut self) {
        self.len = 0;
        self.lanes.clear();
    }
}

/// Reusable staging buffers for a backend (SoA copies of the operands,
/// accumulators, the cached resampling tap vector). Contents between
/// calls are unspecified; only capacity is retained.
#[derive(Debug, Default)]
pub struct KernelScratch {
    // SoA image of the long operand (receive buffer / input signal).
    a_re: Vec<f64>,
    a_im: Vec<f64>,
    // SoA image of the short operand (derotated reference, FIR taps).
    b_re: Vec<f64>,
    b_im: Vec<f64>,
    // SoA output accumulators.
    c_re: Vec<f64>,
    c_im: Vec<f64>,
    // Per-position MRC weight sums.
    den: Vec<f64>,
    // Cached windowed-sinc taps for the fractional offset `taps_frac`.
    taps: Vec<f64>,
    taps_frac: f64,
    taps_j_lo: isize,
    taps_valid: bool,
    // a-side energy prefix sums for `match_score` normalization and
    // early abandonment.
    ea_prefix: Vec<f64>,
    // Per-call lattice spans staged by raw-buffer `match_score` calls
    // (footprint-backed calls use the caller's lanes instead).
    lanes: Vec<SubLattice>,
}

fn split_soa(x: &[Complex], re: &mut Vec<f64>, im: &mut Vec<f64>) {
    re.clear();
    im.clear();
    re.extend(x.iter().map(|c| c.re));
    im.extend(x.iter().map(|c| c.im));
}

/// Stages the a-side span of a `match_score` call: SoA copies plus the
/// energy prefix sums the sweep needs for normalization and for the
/// early-abandonment tail bound.
fn stage_a_span(ws: &mut KernelScratch, buf_a: &[Complex], start_a: usize, n: usize) {
    ws.a_re.clear();
    ws.a_im.clear();
    ws.ea_prefix.clear();
    ws.ea_prefix.reserve(n + 1);
    let mut acc = 0.0;
    ws.ea_prefix.push(acc);
    for &v in &buf_a[start_a..start_a + n] {
        ws.a_re.push(v.re);
        ws.a_im.push(v.im);
        acc += v.norm_sq();
        ws.ea_prefix.push(acc);
    }
}

/// Partial correlations are checked against the abandonment bound once
/// per this many accumulated samples — rarely enough that the check is
/// noise, often enough that a hopeless candidate dies early.
const ABANDON_BLOCK: usize = 64;

/// The `Optimized` τ sweep over pre-built lattice lanes, shared by the
/// raw and footprint-backed `match_score` paths. `ar`/`ai`/`ea_prefix`
/// are the staged a-span (`n` samples, `n + 1` prefix entries); lane
/// sample index for alignment `τ = n_int + frac` at span offset `k` is
/// `base0 + n_int + 1 + k` (`base0 = start_b` for whole-buffer
/// footprints, 0 for per-call spans).
///
/// τ candidates are visited in ascending order with a strict-greater
/// best update — the same tie-breaking as the `Scalar` reference — and
/// with `bail` set, a candidate is dropped mid-accumulation when the
/// Cauchy–Schwarz tail bound `(|acc| + √(ea_rem·eb_rem))/√(ea·eb)`
/// cannot reach `max(bail, best-so-far)`.
fn optimized_sweep(
    ar: &[f64],
    ai: &[f64],
    ea_prefix: &[f64],
    lanes: &[SubLattice],
    base0: usize,
    tau_step: f64,
    bail: Option<f64>,
) -> MatchScore {
    let n = ar.len();
    let ea_tot = ea_prefix[n];
    let mut best = MatchScore::default();
    if ea_tot <= 0.0 {
        return best;
    }
    for tau in tau_sweep(tau_step) {
        let f = tau.floor();
        let frac = tau - f;
        let lane = lanes
            .iter()
            .find(|l| l.frac == frac)
            .unwrap_or_else(|| panic!("no lattice lane for τ = {tau} (frac {frac})"));
        let base = (base0 as isize + f as isize + 1) as usize;
        let eb_tot = lane.window_energy(base, base + n);
        if eb_tot <= 0.0 {
            continue;
        }
        let denom = (ea_tot * eb_tot).sqrt();
        let cutoff = bail.map(|t| t.max(best.metric));
        let lat = &lane.samples[base..base + n];
        // Four independent accumulator pairs, as in the scan: the serial
        // FP-add chain bounds throughput, not the multiplies.
        let mut acc = [0.0f64; 8];
        let mut k = 0;
        let mut abandoned = false;
        while k < n {
            let stop = (k + ABANDON_BLOCK).min(n);
            while k + 4 <= stop {
                for u in 0..4 {
                    let (xr, xi) = (ar[k + u], ai[k + u]);
                    let y = lat[k + u];
                    // x·conj(y)
                    acc[2 * u] += xr * y.re + xi * y.im;
                    acc[2 * u + 1] += xi * y.re - xr * y.im;
                }
                k += 4;
            }
            while k < stop {
                let (xr, xi) = (ar[k], ai[k]);
                let y = lat[k];
                acc[0] += xr * y.re + xi * y.im;
                acc[1] += xi * y.re - xr * y.im;
                k += 1;
            }
            if k >= n {
                break;
            }
            if let Some(cut) = cutoff {
                let re = (acc[0] + acc[2]) + (acc[4] + acc[6]);
                let im = (acc[1] + acc[3]) + (acc[5] + acc[7]);
                let part = (re * re + im * im).sqrt();
                let ea_rem = ea_tot - ea_prefix[k];
                let eb_rem = lane.window_energy(base + k, base + n);
                // |Σ_total| ≤ |Σ_partial| + √(Σ_rem|a|²·Σ_rem|b|²); the
                // 1e-12 slack keeps float rounding in the bound itself
                // from abandoning a candidate that lands *exactly* on the
                // cutoff.
                let ub = (part + (ea_rem * eb_rem).sqrt()) / denom;
                if ub * (1.0 + 1e-12) < cut {
                    abandoned = true;
                    break;
                }
            }
        }
        if abandoned {
            continue;
        }
        let re = (acc[0] + acc[2]) + (acc[4] + acc[6]);
        let im = (acc[1] + acc[3]) + (acc[5] + acc[7]);
        let metric = (re * re + im * im).sqrt() / denom;
        if metric > best.metric {
            best = MatchScore { metric, tau };
        }
    }
    best
}

/// The interior output range of a FIR application over `n` input
/// samples — outputs whose every tap index `k + delay − l` is in range —
/// plus the per-output clamped edge accumulator, shared by the
/// `Optimized` and `Simd` backends. The edge closure accumulates only
/// the in-range taps, in ascending `l` order: exactly the terms and
/// order of the scalar reference's `tap_sum`, so edge outputs are
/// bit-identical too.
fn fir_interior(fir: &Fir, n: usize) -> (usize, usize, impl Fn(&[Complex], usize) -> Complex + '_) {
    let l_count = fir.taps().len();
    let delay = fir.delay();
    // in-range for all l ∈ 0..L ⟺ k + delay − (L−1) ≥ 0 and k + delay < n
    let lo = (l_count - 1).saturating_sub(delay).min(n);
    let hi = n.saturating_sub(delay).max(lo);
    let edge = move |x: &[Complex], k: usize| -> Complex {
        let taps = fir.taps();
        let l_lo = (k + delay + 1).saturating_sub(n).min(l_count);
        let l_hi = (k + delay + 1).min(l_count);
        let mut acc_re = 0.0;
        let mut acc_im = 0.0;
        for l in l_lo..l_hi {
            let t = taps[l];
            let v = x[k + delay - l];
            acc_re += t.re * v.re - t.im * v.im;
            acc_im += t.re * v.im + t.im * v.re;
        }
        Complex::new(acc_re, acc_im)
    };
    (lo, hi, edge)
}

/// Builds the per-call lattice lanes of a raw-buffer `match_score` span:
/// one lane per *distinct fractional offset* of the sweep (a 0.25-step
/// sweep has 9 τ candidates but only 4 fracs), each built with the
/// backend's cached-tap resampler — ~17 sin/cos pairs per lane instead
/// of 17 per sample per τ. The spans are taken out of the scratch while
/// `resample_into` borrows it; the caller puts the returned vector back
/// so the allocations persist across calls. Lanes are written into the
/// vector's prefix, so a stale same-frac lane from an earlier, longer
/// sweep can never shadow a fresh one in the sweep's `find`.
///
/// Span lattice geometry: `lane.samples[m] = b(start_b − 1 + frac + m)`
/// — the footprint geometry with `base0 = 0`. `resample_into` is
/// bit-identical across backends, so so are the lanes.
fn build_span_lanes(
    be: &dyn Backend,
    ws: &mut KernelScratch,
    buf_b: &[Complex],
    start_b: usize,
    n: usize,
    tau_step: f64,
) -> (Vec<SubLattice>, usize) {
    let mut lanes = std::mem::take(&mut ws.lanes);
    let mut built = 0usize;
    for tau in tau_sweep(tau_step) {
        let frac = tau - tau.floor();
        if lanes[..built].iter().any(|l| l.frac == frac) {
            continue;
        }
        if built == lanes.len() {
            lanes.push(SubLattice::default());
        }
        let lane = &mut lanes[built];
        lane.frac = frac;
        be.resample_into(ws, buf_b, start_b as f64 - 1.0 + frac, 1.0, n + 2, &mut lane.samples);
        lane.refresh_energy();
        built += 1;
    }
    (lanes, built)
}

/// The `Simd` τ sweep: [`optimized_sweep`] with the inner accumulation
/// dispatched to the lane kernels (`lanes::match_candidate`). The
/// candidate visit order, abandonment bound, block cadence and
/// tie-breaking are identical, and the lane kernels accumulate with the
/// same per-lane arithmetic and `(l0+l1)+(l2+l3)` reduction — so its
/// results are bit-identical to `optimized_sweep`'s.
fn simd_sweep(
    ar: &[f64],
    ai: &[f64],
    ea_prefix: &[f64],
    lane_set: &[SubLattice],
    base0: usize,
    tau_step: f64,
    bail: Option<f64>,
) -> MatchScore {
    let n = ar.len();
    let ea_tot = ea_prefix[n];
    let mut best = MatchScore::default();
    if ea_tot <= 0.0 {
        return best;
    }
    for tau in tau_sweep(tau_step) {
        let f = tau.floor();
        let frac = tau - f;
        let lane = lane_set
            .iter()
            .find(|l| l.frac == frac)
            .unwrap_or_else(|| panic!("no lattice lane for τ = {tau} (frac {frac})"));
        let base = (base0 as isize + f as isize + 1) as usize;
        let eb_tot = lane.window_energy(base, base + n);
        if eb_tot <= 0.0 {
            continue;
        }
        let denom = (ea_tot * eb_tot).sqrt();
        let cutoff = bail.map(|t| t.max(best.metric));
        let lat = &lane.samples[base..base + n];
        let Some((re, im)) =
            lanes::match_candidate(ar, ai, lat, ea_prefix, lane, base, denom, ea_tot, cutoff)
        else {
            continue;
        };
        let metric = (re * re + im * im).sqrt() / denom;
        if metric > best.metric {
            best = MatchScore { metric, tau };
        }
    }
    best
}

/// One implementation of the four phy hot-loop primitives.
///
/// All methods are semantically identical across backends: the
/// differential property tests (`crates/phy/tests/backend_diff.rs`) pin
/// every implementation to [`Scalar`] within 1e-9 over random inputs, and
/// the FIR/resample/MRC kernels are bit-identical by construction (same
/// operations in the same order, only the memory layout differs).
pub trait Backend: std::fmt::Debug + Send + Sync {
    /// Stable display name (`"scalar"`, `"optimized"`).
    fn name(&self) -> &'static str;

    /// Frequency-compensated sliding correlation, as
    /// [`crate::correlate::scan_into`]: fills `out` (cleared first) with
    /// `Γ'(Δ) = Σ_k s*[k]·y[Δ+k]·e^{−jωk}` for each `Δ` in `positions`.
    fn scan_into(
        &self,
        ws: &mut KernelScratch,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    );

    /// FIR filtering, as [`Fir::apply_into`]: fills `y` (cleared first)
    /// with the filtered signal, same length as `x`, zero-padded edges.
    fn fir_apply_into(
        &self,
        ws: &mut KernelScratch,
        fir: &Fir,
        x: &[Complex],
        y: &mut Vec<Complex>,
    );

    /// Windowed-sinc resampling, as [`crate::interp::resample_into`]:
    /// fills `out` (cleared first) with interpolations at
    /// `start + k·step` for `k = 0..n`.
    fn resample_into(
        &self,
        ws: &mut KernelScratch,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    );

    /// Weighted MRC, as [`crate::mrc::combine_weighted_into`]: fills
    /// `out` (cleared first) with `Σ wᵢ·sᵢ / Σ wᵢ` per symbol position.
    fn combine_weighted_into(
        &self,
        ws: &mut KernelScratch,
        streams: &[(&[Complex], f64)],
        out: &mut Vec<Complex>,
    );

    /// §4.2.2's normalized match metric between packet-aligned spans of
    /// two collision buffers, maximized over the [`tau_sweep`] of
    /// sub-sample alignments of the second buffer:
    ///
    /// `max_τ |Σ_k a[sa+k]·conj(b(sb+k+τ))| / √(Σ_k|a[sa+k]|²·Σ_k|b(sb+k+τ)|²)`
    ///
    /// over `k < n` with `n = window` clamped to both buffer tails
    /// (`b(t)` is the windowed-sinc interpolation of
    /// [`crate::interp::interp_at`]). Returns the zero score when the
    /// clamped overlap is empty.
    ///
    /// `bail`, when `Some(t)`: the implementation may abandon a τ
    /// candidate mid-accumulation once a Cauchy–Schwarz bound proves its
    /// metric cannot reach `max(t, best-so-far)`. The returned metric is
    /// **exact whenever it is ≥ t**; below `t` it is only guaranteed to
    /// genuinely be `< t` — callers must treat sub-`t` values as a
    /// rejection, not as a measurement. `Scalar` ignores `bail` and is
    /// always exact (it is the reference the differential tests pin the
    /// `bail: None` behaviour to).
    #[allow(clippy::too_many_arguments)]
    fn match_score(
        &self,
        ws: &mut KernelScratch,
        buf_a: &[Complex],
        start_a: usize,
        buf_b: &[Complex],
        start_b: usize,
        window: usize,
        tau_step: f64,
        bail: Option<f64>,
    ) -> MatchScore;

    /// [`Backend::match_score`] against a pre-built [`CorrFootprint`] of
    /// the second buffer instead of the raw samples: the τ sweep reads
    /// the footprint's lanes (integer-shifted dot products, prefix-sum
    /// energies) and never re-interpolates. The footprint must cover the
    /// sweep ([`CorrFootprint::covers`] for this `tau_step`) — see
    /// [`Kernel::ensure_footprint`].
    #[allow(clippy::too_many_arguments)]
    fn match_score_fp(
        &self,
        ws: &mut KernelScratch,
        buf_a: &[Complex],
        start_a: usize,
        fp: &CorrFootprint,
        start_b: usize,
        window: usize,
        tau_step: f64,
        bail: Option<f64>,
    ) -> MatchScore;
}

/// The original scalar loops — the numerical reference backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scalar;

impl Backend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn scan_into(
        &self,
        _ws: &mut KernelScratch,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    ) {
        crate::correlate::scan_into(y, s, omega, positions, out);
    }

    fn fir_apply_into(
        &self,
        _ws: &mut KernelScratch,
        fir: &Fir,
        x: &[Complex],
        y: &mut Vec<Complex>,
    ) {
        fir.apply_into(x, y);
    }

    fn resample_into(
        &self,
        _ws: &mut KernelScratch,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    ) {
        crate::interp::resample_into(samples, start, step, n, out);
    }

    fn combine_weighted_into(
        &self,
        _ws: &mut KernelScratch,
        streams: &[(&[Complex], f64)],
        out: &mut Vec<Complex>,
    ) {
        crate::mrc::combine_weighted_into(streams, out);
    }

    // The historical `matcher::match_metric_with_step` loop: one 17-tap
    // interpolation per sample per τ, energies re-accumulated per τ.
    // `bail` is deliberately ignored — Scalar is the always-exact
    // reference the differential tests (and the staged-vs-exhaustive
    // matchset proptest) pin the optimized path against.
    fn match_score(
        &self,
        _ws: &mut KernelScratch,
        buf_a: &[Complex],
        start_a: usize,
        buf_b: &[Complex],
        start_b: usize,
        window: usize,
        tau_step: f64,
        _bail: Option<f64>,
    ) -> MatchScore {
        let n = window
            .min(buf_a.len().saturating_sub(start_a))
            .min(buf_b.len().saturating_sub(start_b));
        let mut best = MatchScore::default();
        if n == 0 {
            return best;
        }
        for tau in tau_sweep(tau_step) {
            let mut acc = Complex::default();
            let mut ea = 0.0;
            let mut eb = 0.0;
            for k in 0..n {
                let x = buf_a[start_a + k];
                let y = crate::interp::interp_at(buf_b, start_b as f64 + k as f64 + tau);
                acc += x * y.conj();
                ea += x.norm_sq();
                eb += y.norm_sq();
            }
            if ea > 0.0 && eb > 0.0 {
                let metric = acc.abs() / (ea * eb).sqrt();
                if metric > best.metric {
                    best = MatchScore { metric, tau };
                }
            }
        }
        best
    }

    fn match_score_fp(
        &self,
        _ws: &mut KernelScratch,
        buf_a: &[Complex],
        start_a: usize,
        fp: &CorrFootprint,
        start_b: usize,
        window: usize,
        tau_step: f64,
        _bail: Option<f64>,
    ) -> MatchScore {
        let n = window
            .min(buf_a.len().saturating_sub(start_a))
            .min(fp.source_len().saturating_sub(start_b));
        let mut best = MatchScore::default();
        if n == 0 {
            return best;
        }
        for tau in tau_sweep(tau_step) {
            let f = tau.floor();
            let frac = tau - f;
            let lane = fp
                .lane(frac)
                .unwrap_or_else(|| panic!("footprint missing lane for τ = {tau} (frac {frac})"));
            let base = (start_b as isize + f as isize + 1) as usize;
            let mut acc = Complex::default();
            let mut ea = 0.0;
            let mut eb = 0.0;
            for k in 0..n {
                let x = buf_a[start_a + k];
                let y = lane.samples[base + k];
                acc += x * y.conj();
                ea += x.norm_sq();
                eb += y.norm_sq();
            }
            if ea > 0.0 && eb > 0.0 {
                let metric = acc.abs() / (ea * eb).sqrt();
                if metric > best.metric {
                    best = MatchScore { metric, tau };
                }
            }
        }
        best
    }
}

/// SoA loops with phasor/tap precomputation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Optimized;

impl Backend for Optimized {
    fn name(&self) -> &'static str {
        "optimized"
    }

    fn scan_into(
        &self,
        ws: &mut KernelScratch,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    ) {
        out.clear();
        // Hoist the frequency-offset rotation out of the O(N·L) loop:
        // s*[k]·e^{−jωk} does not depend on Δ, so the sin/cos pair is paid
        // L times per scan instead of N·L times.
        let l = s.len();
        ws.b_re.clear();
        ws.b_im.clear();
        for (k, &sk) in s.iter().enumerate() {
            let r = sk.conj() * Complex::cis(-omega * k as f64);
            ws.b_re.push(r.re);
            ws.b_im.push(r.im);
        }
        split_soa(y, &mut ws.a_re, &mut ws.a_im);
        out.reserve(positions.len());
        for d in positions {
            let end = l.min(y.len().saturating_sub(d));
            if end == 0 {
                out.push(ZERO);
                continue;
            }
            let (sr, si) = (&ws.b_re[..end], &ws.b_im[..end]);
            let (yr, yi) = (&ws.a_re[d..d + end], &ws.a_im[d..d + end]);
            // Four independent accumulator pairs: the serial FP-add chain,
            // not the multiplies, bounds the scalar throughput here.
            let mut acc = [0.0f64; 8];
            let mut k = 0;
            while k + 4 <= end {
                for u in 0..4 {
                    acc[2 * u] += sr[k + u] * yr[k + u] - si[k + u] * yi[k + u];
                    acc[2 * u + 1] += sr[k + u] * yi[k + u] + si[k + u] * yr[k + u];
                }
                k += 4;
            }
            while k < end {
                acc[0] += sr[k] * yr[k] - si[k] * yi[k];
                acc[1] += sr[k] * yi[k] + si[k] * yr[k];
                k += 1;
            }
            out.push(Complex::new(
                (acc[0] + acc[2]) + (acc[4] + acc[6]),
                (acc[1] + acc[3]) + (acc[5] + acc[7]),
            ));
        }
    }

    fn fir_apply_into(
        &self,
        _ws: &mut KernelScratch,
        fir: &Fir,
        x: &[Complex],
        y: &mut Vec<Complex>,
    ) {
        y.clear();
        if fir.is_identity() {
            y.extend_from_slice(x);
            return;
        }
        // Single-pass register accumulation: output k reads
        // x[k + delay − l] for taps l in ascending order, held in two
        // accumulator registers. The historical per-tap saxpy swept the
        // whole c_re/c_im arrays once per tap (plus an up-front SoA copy
        // of x and a final interleave), so its memory traffic grew with
        // the tap count — the 1.2× fir_apply gap in BENCH_phy.json. Here
        // x is read once and y written once, tap count only changes
        // register work. Ascending-l accumulation per output is the
        // scalar reference's order, so the result stays bit-identical.
        let (lo, hi, edge) = fir_interior(fir, x.len());
        y.reserve(x.len());
        for k in 0..lo {
            y.push(edge(x, k));
        }
        let taps = fir.taps();
        let delay = fir.delay();
        for k in lo..hi {
            let base = k + delay;
            let mut acc_re = 0.0;
            let mut acc_im = 0.0;
            for (l, &t) in taps.iter().enumerate() {
                let v = x[base - l];
                acc_re += t.re * v.re - t.im * v.im;
                acc_im += t.re * v.im + t.im * v.re;
            }
            y.push(Complex::new(acc_re, acc_im));
        }
        for k in hi..x.len() {
            y.push(edge(x, k));
        }
    }

    fn resample_into(
        &self,
        ws: &mut KernelScratch,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    ) {
        out.clear();
        // No SoA staging here: a chunk decoder calls this once per small
        // block with the *full* residual buffer as `samples`, so an
        // up-front whole-buffer copy would cost more than the 17-tap
        // window reads it feeds. The win is the cached tap vector; the
        // AoS reads below are just as sequential.
        let w = DEFAULT_HALF_WIDTH as f64;
        ws.taps_valid = false;
        out.reserve(n);
        for k in 0..n {
            let t = start + k as f64 * step;
            let f = t.floor();
            if !f.is_finite() {
                out.push(ZERO);
                continue;
            }
            let frac = t - f;
            // The sinc·hann tap vector depends only on the fractional
            // part of t. On the receiver's step = 1 grids the fraction is
            // constant over the whole call, so the 17 sin/cos evaluations
            // per output collapse to one cache fill per scan.
            if !ws.taps_valid || ws.taps_frac != frac {
                ws.taps.clear();
                let j_lo = (frac - w).ceil() as isize;
                let j_hi = (frac + w).floor() as isize;
                for j in j_lo..=j_hi {
                    let d = frac - j as f64;
                    ws.taps.push(sinc(d) * hann(d, w + 1.0));
                }
                ws.taps_frac = frac;
                ws.taps_j_lo = j_lo;
                ws.taps_valid = true;
            }
            let base = f as isize + ws.taps_j_lo;
            let i_lo = base.clamp(0, samples.len() as isize) as usize;
            let i_hi = (base + ws.taps.len() as isize).clamp(0, samples.len() as isize) as usize;
            if i_lo >= i_hi {
                out.push(ZERO);
                continue;
            }
            let mut acc_re = 0.0;
            let mut acc_im = 0.0;
            let j0 = (i_lo as isize - base) as usize;
            for (v, &tap) in samples[i_lo..i_hi].iter().zip(&ws.taps[j0..]) {
                acc_re += v.re * tap;
                acc_im += v.im * tap;
            }
            out.push(Complex::new(acc_re, acc_im));
        }
    }

    fn combine_weighted_into(
        &self,
        ws: &mut KernelScratch,
        streams: &[(&[Complex], f64)],
        out: &mut Vec<Complex>,
    ) {
        assert!(!streams.is_empty(), "MRC needs at least one stream");
        out.clear();
        // Every accumulation below mirrors the scalar loop's order and
        // operations exactly (weighted terms in stream order added to a
        // zero accumulator, then one real division), so the result is
        // bit-identical to the reference.
        match *streams {
            // The receiver only ever combines one stream (forward-only
            // decode) or two (forward + backward, the two faulty capture
            // versions); these run single-pass with no staging arrays.
            [(s, w)] => {
                out.extend(s.iter().map(|&v| if w > 0.0 { v.scale(w) / w } else { ZERO }));
            }
            [(s1, w1), (s2, w2)] => {
                let both = s1.len().min(s2.len());
                let dw = w1 + w2;
                out.reserve(s1.len().max(s2.len()));
                for k in 0..both {
                    let re = s1[k].re * w1 + s2[k].re * w2;
                    let im = s1[k].im * w1 + s2[k].im * w2;
                    out.push(if dw > 0.0 { Complex::new(re / dw, im / dw) } else { ZERO });
                }
                let (tail, w) = if s1.len() > both { (&s1[both..], w1) } else { (&s2[both..], w2) };
                out.extend(tail.iter().map(|&v| if w > 0.0 { v.scale(w) / w } else { ZERO }));
            }
            _ => {
                let n = streams.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
                ws.c_re.clear();
                ws.c_re.resize(n, 0.0);
                ws.c_im.clear();
                ws.c_im.resize(n, 0.0);
                ws.den.clear();
                ws.den.resize(n, 0.0);
                for &(s, weight) in streams {
                    for (k, &v) in s.iter().enumerate() {
                        ws.c_re[k] += v.re * weight;
                        ws.c_im[k] += v.im * weight;
                        ws.den[k] += weight;
                    }
                }
                out.extend((0..n).map(|k| {
                    if ws.den[k] > 0.0 {
                        Complex::new(ws.c_re[k], ws.c_im[k]) / ws.den[k]
                    } else {
                        ZERO
                    }
                }));
            }
        }
    }

    fn match_score(
        &self,
        ws: &mut KernelScratch,
        buf_a: &[Complex],
        start_a: usize,
        buf_b: &[Complex],
        start_b: usize,
        window: usize,
        tau_step: f64,
        bail: Option<f64>,
    ) -> MatchScore {
        let n = window
            .min(buf_a.len().saturating_sub(start_a))
            .min(buf_b.len().saturating_sub(start_b));
        if n == 0 {
            return MatchScore::default();
        }
        stage_a_span(ws, buf_a, start_a, n);
        let (lanes, built) = build_span_lanes(self, ws, buf_b, start_b, n, tau_step);
        let score =
            optimized_sweep(&ws.a_re, &ws.a_im, &ws.ea_prefix, &lanes[..built], 0, tau_step, bail);
        ws.lanes = lanes;
        score
    }

    fn match_score_fp(
        &self,
        ws: &mut KernelScratch,
        buf_a: &[Complex],
        start_a: usize,
        fp: &CorrFootprint,
        start_b: usize,
        window: usize,
        tau_step: f64,
        bail: Option<f64>,
    ) -> MatchScore {
        let n = window
            .min(buf_a.len().saturating_sub(start_a))
            .min(fp.source_len().saturating_sub(start_b));
        if n == 0 {
            return MatchScore::default();
        }
        stage_a_span(ws, buf_a, start_a, n);
        optimized_sweep(&ws.a_re, &ws.a_im, &ws.ea_prefix, fp.lanes(), start_b, tau_step, bail)
    }
}

/// Explicit fixed-lane-width kernels on the same staging as
/// [`Optimized`]: the inner loops run four `f64` lanes wide through
/// stable `std::arch` AVX2 intrinsics when the host CPU has them
/// (runtime [`is_x86_feature_detected!`] dispatch, cached once per
/// process) and through a portable `[f64; 4]` array path otherwise —
/// including on every non-x86_64 target, so the backend builds and
/// agrees everywhere.
///
/// Every lane evaluates **exactly** the arithmetic of the corresponding
/// [`Optimized`] loop — the same multiply/add/sub ordering and no FMA
/// contraction (a fused multiply-add rounds once where `a·b + c` rounds
/// twice, which would break bit-identity) — and cross-lane reductions
/// pair lanes in the same `(l0+l1)+(l2+l3)` order as `Optimized`'s
/// four-accumulator loops. `Simd` is therefore bit-identical to
/// `Optimized` on all five primitives by construction, and the repo's
/// determinism contract (decode events bit-identical across backends,
/// thread counts and shard counts) extends to it with no new tolerance
/// carve-outs.
#[derive(Clone, Copy, Debug, Default)]
pub struct Simd;

impl Backend for Simd {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn scan_into(
        &self,
        ws: &mut KernelScratch,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    ) {
        out.clear();
        // Same staging as Optimized: pre-derotated reference, SoA copy of
        // the receive buffer; the per-Δ inner product runs on the lane
        // kernels.
        let l = s.len();
        ws.b_re.clear();
        ws.b_im.clear();
        for (k, &sk) in s.iter().enumerate() {
            let r = sk.conj() * Complex::cis(-omega * k as f64);
            ws.b_re.push(r.re);
            ws.b_im.push(r.im);
        }
        split_soa(y, &mut ws.a_re, &mut ws.a_im);
        out.reserve(positions.len());
        for d in positions {
            let end = l.min(y.len().saturating_sub(d));
            if end == 0 {
                out.push(ZERO);
                continue;
            }
            let (re, im) = lanes::corr_dot(
                &ws.b_re[..end],
                &ws.b_im[..end],
                &ws.a_re[d..d + end],
                &ws.a_im[d..d + end],
            );
            out.push(Complex::new(re, im));
        }
    }

    fn fir_apply_into(
        &self,
        _ws: &mut KernelScratch,
        fir: &Fir,
        x: &[Complex],
        y: &mut Vec<Complex>,
    ) {
        y.clear();
        if fir.is_identity() {
            y.extend_from_slice(x);
            return;
        }
        // Optimized's single-pass sweep with the interior run four
        // outputs wide: per tap, a broadcast coefficient against four
        // deinterleaved input samples. Lanes are outputs, so no cross-
        // lane reduction; per output the taps accumulate in ascending
        // order exactly like the scalar reference.
        let (lo, hi, edge) = fir_interior(fir, x.len());
        y.resize(x.len(), ZERO);
        for (k, yk) in y.iter_mut().enumerate().take(lo) {
            *yk = edge(x, k);
        }
        lanes::fir_interior_fill(fir.taps(), fir.delay(), x, lo, hi, y);
        for (k, yk) in y.iter_mut().enumerate().skip(hi) {
            *yk = edge(x, k);
        }
    }

    fn resample_into(
        &self,
        ws: &mut KernelScratch,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    ) {
        out.clear();
        let w = DEFAULT_HALF_WIDTH as f64;
        ws.taps_valid = false;
        out.reserve(n);
        let mut k = 0;
        while k < n {
            // Four-outputs-at-a-time fast path: on the receiver's
            // step = 1 grids, four consecutive outputs share the exact
            // fractional offset and read four consecutive full windows —
            // one broadcast tap against four deinterleaved samples per
            // tap index, with per-output accumulation in tap order (the
            // reference's). Any output that breaks the pattern (edge
            // clamp, fractional drift, non-finite position) falls back to
            // the Optimized per-output body, which is bit-identical.
            if k + 4 <= n {
                let t0 = start + k as f64 * step;
                let f0 = t0.floor();
                if f0.is_finite() {
                    let frac = t0 - f0;
                    let aligned = (1..4).all(|u| {
                        let t = start + (k + u) as f64 * step;
                        let f = t.floor();
                        f == f0 + u as f64 && t - f == frac
                    });
                    if aligned {
                        if !ws.taps_valid || ws.taps_frac != frac {
                            ws.taps.clear();
                            let j_lo = (frac - w).ceil() as isize;
                            let j_hi = (frac + w).floor() as isize;
                            for j in j_lo..=j_hi {
                                let d = frac - j as f64;
                                ws.taps.push(sinc(d) * hann(d, w + 1.0));
                            }
                            ws.taps_frac = frac;
                            ws.taps_j_lo = j_lo;
                            ws.taps_valid = true;
                        }
                        let base = f0 as isize + ws.taps_j_lo;
                        let span = ws.taps.len() as isize;
                        if base >= 0 && base + 3 + span <= samples.len() as isize {
                            let block = lanes::resample_block(samples, base as usize, &ws.taps);
                            out.extend_from_slice(&block);
                            k += 4;
                            continue;
                        }
                    }
                }
            }
            // scalar fallback: one output, Optimized's body verbatim
            let t = start + k as f64 * step;
            let f = t.floor();
            if !f.is_finite() {
                out.push(ZERO);
                k += 1;
                continue;
            }
            let frac = t - f;
            if !ws.taps_valid || ws.taps_frac != frac {
                ws.taps.clear();
                let j_lo = (frac - w).ceil() as isize;
                let j_hi = (frac + w).floor() as isize;
                for j in j_lo..=j_hi {
                    let d = frac - j as f64;
                    ws.taps.push(sinc(d) * hann(d, w + 1.0));
                }
                ws.taps_frac = frac;
                ws.taps_j_lo = j_lo;
                ws.taps_valid = true;
            }
            let base = f as isize + ws.taps_j_lo;
            let i_lo = base.clamp(0, samples.len() as isize) as usize;
            let i_hi = (base + ws.taps.len() as isize).clamp(0, samples.len() as isize) as usize;
            if i_lo >= i_hi {
                out.push(ZERO);
                k += 1;
                continue;
            }
            let mut acc_re = 0.0;
            let mut acc_im = 0.0;
            let j0 = (i_lo as isize - base) as usize;
            for (v, &tap) in samples[i_lo..i_hi].iter().zip(&ws.taps[j0..]) {
                acc_re += v.re * tap;
                acc_im += v.im * tap;
            }
            out.push(Complex::new(acc_re, acc_im));
            k += 1;
        }
    }

    fn combine_weighted_into(
        &self,
        ws: &mut KernelScratch,
        streams: &[(&[Complex], f64)],
        out: &mut Vec<Complex>,
    ) {
        assert!(!streams.is_empty(), "MRC needs at least one stream");
        out.clear();
        // The weighted-sum-then-normalize arithmetic applies the same
        // real formula to the re and im components independently, so the
        // one- and two-stream paths run on the interleaved flat f64 view
        // — trivially lane-parallel with per-element operations identical
        // to the scalar loop's.
        match *streams {
            [(s, w)] => {
                out.resize(s.len(), ZERO);
                if w > 0.0 {
                    lanes::scale_unscale(lanes::flat(s), w, lanes::flat_mut(out));
                }
            }
            [(s1, w1), (s2, w2)] => {
                let both = s1.len().min(s2.len());
                let dw = w1 + w2;
                out.resize(both, ZERO);
                if dw > 0.0 {
                    lanes::weighted_sum2(
                        lanes::flat(&s1[..both]),
                        lanes::flat(&s2[..both]),
                        w1,
                        w2,
                        dw,
                        lanes::flat_mut(out),
                    );
                }
                let (tail, tw) =
                    if s1.len() > both { (&s1[both..], w1) } else { (&s2[both..], w2) };
                let filled = out.len();
                out.resize(filled + tail.len(), ZERO);
                if tw > 0.0 {
                    lanes::scale_unscale(
                        lanes::flat(tail),
                        tw,
                        lanes::flat_mut(&mut out[filled..]),
                    );
                }
            }
            _ => {
                // ≥3 streams never occur on the decode path (forward +
                // backward passes at most); accumulate on the flat view
                // with the lane saxpy, normalize per symbol position.
                let n = streams.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
                ws.c_re.clear();
                ws.c_re.resize(2 * n, 0.0);
                ws.den.clear();
                ws.den.resize(n, 0.0);
                for &(s, weight) in streams {
                    lanes::saxpy(lanes::flat(s), weight, &mut ws.c_re[..2 * s.len()]);
                    for d in ws.den[..s.len()].iter_mut() {
                        *d += weight;
                    }
                }
                out.extend((0..n).map(|k| {
                    if ws.den[k] > 0.0 {
                        Complex::new(ws.c_re[2 * k], ws.c_re[2 * k + 1]) / ws.den[k]
                    } else {
                        ZERO
                    }
                }));
            }
        }
    }

    fn match_score(
        &self,
        ws: &mut KernelScratch,
        buf_a: &[Complex],
        start_a: usize,
        buf_b: &[Complex],
        start_b: usize,
        window: usize,
        tau_step: f64,
        bail: Option<f64>,
    ) -> MatchScore {
        let n = window
            .min(buf_a.len().saturating_sub(start_a))
            .min(buf_b.len().saturating_sub(start_b));
        if n == 0 {
            return MatchScore::default();
        }
        stage_a_span(ws, buf_a, start_a, n);
        let (lanes_v, built) = build_span_lanes(self, ws, buf_b, start_b, n, tau_step);
        let score =
            simd_sweep(&ws.a_re, &ws.a_im, &ws.ea_prefix, &lanes_v[..built], 0, tau_step, bail);
        ws.lanes = lanes_v;
        score
    }

    fn match_score_fp(
        &self,
        ws: &mut KernelScratch,
        buf_a: &[Complex],
        start_a: usize,
        fp: &CorrFootprint,
        start_b: usize,
        window: usize,
        tau_step: f64,
        bail: Option<f64>,
    ) -> MatchScore {
        let n = window
            .min(buf_a.len().saturating_sub(start_a))
            .min(fp.source_len().saturating_sub(start_b));
        if n == 0 {
            return MatchScore::default();
        }
        stage_a_span(ws, buf_a, start_a, n);
        simd_sweep(&ws.a_re, &ws.a_im, &ws.ea_prefix, fp.lanes(), start_b, tau_step, bail)
    }
}

/// The fixed-width lane kernels behind [`Simd`]: every routine has an
/// AVX2 implementation (x86_64 only, guarded by a once-cached runtime
/// [`is_x86_feature_detected!`]) and a portable `[f64; 4]` implementation
/// with identical per-lane arithmetic, so results never depend on which
/// path ran.
///
/// Complex operands arrive either as SoA `f64` slices (already split by
/// the kernel staging) or as `&[Complex]`, which `flat`/`flat_mut`
/// reinterpret as the interleaved `re, im, …` f64 view (`Complex` is
/// `repr(C)`). AVX2 paths deinterleave AoS loads with
/// `unpacklo/unpackhi`, which yields the lane permutation `[0, 2, 1, 3]`
/// — harmless for element-wise kernels (the inverse permutation is
/// applied by the matching interleaved store) and compensated explicitly
/// in reductions so the reduction tree matches `Optimized`'s
/// `(l0+l1)+(l2+l3)` exactly.
mod lanes {
    use super::{Complex, SubLattice, ABANDON_BLOCK, ZERO};

    /// `true` when the AVX2 paths may run; detected once per process.
    #[inline]
    pub fn avx2() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static HAS: OnceLock<bool> = OnceLock::new();
            *HAS.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Reinterprets complex samples as the interleaved `re, im, re, im…`
    /// flat f64 view.
    #[inline]
    pub fn flat(x: &[Complex]) -> &[f64] {
        // SAFETY: `Complex` is `#[repr(C)] { re: f64, im: f64 }`, so a
        // slice of n `Complex` is layout-identical to 2n contiguous f64s.
        unsafe { std::slice::from_raw_parts(x.as_ptr().cast::<f64>(), x.len() * 2) }
    }

    /// Mutable [`flat`].
    #[inline]
    pub fn flat_mut(x: &mut [Complex]) -> &mut [f64] {
        // SAFETY: as in `flat`.
        unsafe { std::slice::from_raw_parts_mut(x.as_mut_ptr().cast::<f64>(), x.len() * 2) }
    }

    /// The scan inner product `Σ s′[k]·y[d+k]` over SoA operands, with
    /// `Optimized::scan_into`'s four-accumulator pairing: lane `u` holds
    /// sample offsets `≡ u (mod 4)`, the scalar remainder accumulates
    /// onto lane 0, and the reduction is `(l0+l1)+(l2+l3)`.
    pub fn corr_dot(sr: &[f64], si: &[f64], yr: &[f64], yi: &[f64]) -> (f64, f64) {
        #[cfg(target_arch = "x86_64")]
        if avx2() {
            // SAFETY: `avx2()` verified the CPU feature.
            return unsafe { corr_dot_avx2(sr, si, yr, yi) };
        }
        corr_dot_portable(sr, si, yr, yi)
    }

    fn corr_dot_portable(sr: &[f64], si: &[f64], yr: &[f64], yi: &[f64]) -> (f64, f64) {
        let n = sr.len();
        let mut ar = [0.0f64; 4];
        let mut ai = [0.0f64; 4];
        let mut k = 0;
        while k + 4 <= n {
            for u in 0..4 {
                ar[u] += sr[k + u] * yr[k + u] - si[k + u] * yi[k + u];
                ai[u] += sr[k + u] * yi[k + u] + si[k + u] * yr[k + u];
            }
            k += 4;
        }
        while k < n {
            ar[0] += sr[k] * yr[k] - si[k] * yi[k];
            ai[0] += sr[k] * yi[k] + si[k] * yr[k];
            k += 1;
        }
        ((ar[0] + ar[1]) + (ar[2] + ar[3]), (ai[0] + ai[1]) + (ai[2] + ai[3]))
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn corr_dot_avx2(sr: &[f64], si: &[f64], yr: &[f64], yi: &[f64]) -> (f64, f64) {
        use std::arch::x86_64::*;
        let n = sr.len();
        let mut vre = _mm256_setzero_pd();
        let mut vim = _mm256_setzero_pd();
        let mut k = 0;
        while k + 4 <= n {
            let a = _mm256_loadu_pd(sr.as_ptr().add(k));
            let b = _mm256_loadu_pd(si.as_ptr().add(k));
            let c = _mm256_loadu_pd(yr.as_ptr().add(k));
            let d = _mm256_loadu_pd(yi.as_ptr().add(k));
            vre = _mm256_add_pd(vre, _mm256_sub_pd(_mm256_mul_pd(a, c), _mm256_mul_pd(b, d)));
            vim = _mm256_add_pd(vim, _mm256_add_pd(_mm256_mul_pd(a, d), _mm256_mul_pd(b, c)));
            k += 4;
        }
        let mut ar = [0.0f64; 4];
        let mut ai = [0.0f64; 4];
        _mm256_storeu_pd(ar.as_mut_ptr(), vre);
        _mm256_storeu_pd(ai.as_mut_ptr(), vim);
        while k < n {
            ar[0] += sr[k] * yr[k] - si[k] * yi[k];
            ai[0] += sr[k] * yi[k] + si[k] * yr[k];
            k += 1;
        }
        ((ar[0] + ar[1]) + (ar[2] + ar[3]), (ai[0] + ai[1]) + (ai[2] + ai[3]))
    }

    /// The FIR interior sweep `y[k] = Σ_l taps[l]·x[k+delay−l]` for
    /// `k ∈ lo..hi`, written in place. Lanes are outputs (no cross-lane
    /// reduction); per output the taps accumulate in ascending order.
    pub fn fir_interior_fill(
        taps: &[Complex],
        delay: usize,
        x: &[Complex],
        lo: usize,
        hi: usize,
        y: &mut [Complex],
    ) {
        #[cfg(target_arch = "x86_64")]
        if avx2() {
            // SAFETY: `avx2()` verified the CPU feature.
            unsafe { fir_interior_avx2(taps, delay, x, lo, hi, y) };
            return;
        }
        fir_interior_portable(taps, delay, x, lo, hi, y);
    }

    fn fir_interior_portable(
        taps: &[Complex],
        delay: usize,
        x: &[Complex],
        lo: usize,
        hi: usize,
        y: &mut [Complex],
    ) {
        let mut k = lo;
        while k + 4 <= hi {
            let base = k + delay;
            let mut ar = [0.0f64; 4];
            let mut ai = [0.0f64; 4];
            for (l, &t) in taps.iter().enumerate() {
                let first = base - l;
                for u in 0..4 {
                    let v = x[first + u];
                    ar[u] += t.re * v.re - t.im * v.im;
                    ai[u] += t.re * v.im + t.im * v.re;
                }
            }
            for u in 0..4 {
                y[k + u] = Complex::new(ar[u], ai[u]);
            }
            k += 4;
        }
        while k < hi {
            let base = k + delay;
            let mut acc_re = 0.0;
            let mut acc_im = 0.0;
            for (l, &t) in taps.iter().enumerate() {
                let v = x[base - l];
                acc_re += t.re * v.re - t.im * v.im;
                acc_im += t.re * v.im + t.im * v.re;
            }
            y[k] = Complex::new(acc_re, acc_im);
            k += 1;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn fir_interior_avx2(
        taps: &[Complex],
        delay: usize,
        x: &[Complex],
        lo: usize,
        hi: usize,
        y: &mut [Complex],
    ) {
        use std::arch::x86_64::*;
        let xf = flat(x);
        let mut k = lo;
        while k + 4 <= hi {
            let base = k + delay;
            let mut accr = _mm256_setzero_pd();
            let mut acci = _mm256_setzero_pd();
            for (l, &t) in taps.iter().enumerate() {
                let first = base - l;
                let v0 = _mm256_loadu_pd(xf.as_ptr().add(2 * first));
                let v1 = _mm256_loadu_pd(xf.as_ptr().add(2 * first + 4));
                // deinterleave: re/im lanes in permuted output order
                // [k, k+2, k+1, k+3] — consistent across taps, restored
                // by the interleaving store below
                let vr = _mm256_unpacklo_pd(v0, v1);
                let vi = _mm256_unpackhi_pd(v0, v1);
                let tr = _mm256_set1_pd(t.re);
                let ti = _mm256_set1_pd(t.im);
                accr = _mm256_add_pd(
                    accr,
                    _mm256_sub_pd(_mm256_mul_pd(tr, vr), _mm256_mul_pd(ti, vi)),
                );
                acci = _mm256_add_pd(
                    acci,
                    _mm256_add_pd(_mm256_mul_pd(tr, vi), _mm256_mul_pd(ti, vr)),
                );
            }
            let yf = flat_mut(&mut y[k..k + 4]);
            _mm256_storeu_pd(yf.as_mut_ptr(), _mm256_unpacklo_pd(accr, acci));
            _mm256_storeu_pd(yf.as_mut_ptr().add(4), _mm256_unpackhi_pd(accr, acci));
            k += 4;
        }
        while k < hi {
            let base = k + delay;
            let mut acc_re = 0.0;
            let mut acc_im = 0.0;
            for (l, &t) in taps.iter().enumerate() {
                let v = x[base - l];
                acc_re += t.re * v.re - t.im * v.im;
                acc_im += t.re * v.im + t.im * v.re;
            }
            y[k] = Complex::new(acc_re, acc_im);
            k += 1;
        }
    }

    /// Four consecutive resampler outputs sharing one tap vector:
    /// `out[u] = Σ_j samples[base0+j+u]·taps[j]` with per-output
    /// accumulation in ascending tap order. The caller guarantees all
    /// four windows are fully in range.
    pub fn resample_block(samples: &[Complex], base0: usize, taps: &[f64]) -> [Complex; 4] {
        #[cfg(target_arch = "x86_64")]
        if avx2() {
            // SAFETY: `avx2()` verified the CPU feature.
            return unsafe { resample_block_avx2(samples, base0, taps) };
        }
        resample_block_portable(samples, base0, taps)
    }

    fn resample_block_portable(samples: &[Complex], base0: usize, taps: &[f64]) -> [Complex; 4] {
        let mut ar = [0.0f64; 4];
        let mut ai = [0.0f64; 4];
        for (j, &tap) in taps.iter().enumerate() {
            let first = base0 + j;
            for u in 0..4 {
                let v = samples[first + u];
                ar[u] += v.re * tap;
                ai[u] += v.im * tap;
            }
        }
        [
            Complex::new(ar[0], ai[0]),
            Complex::new(ar[1], ai[1]),
            Complex::new(ar[2], ai[2]),
            Complex::new(ar[3], ai[3]),
        ]
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn resample_block_avx2(samples: &[Complex], base0: usize, taps: &[f64]) -> [Complex; 4] {
        use std::arch::x86_64::*;
        let sf = flat(samples);
        let mut accr = _mm256_setzero_pd();
        let mut acci = _mm256_setzero_pd();
        for (j, &tap) in taps.iter().enumerate() {
            let p = base0 + j;
            let v0 = _mm256_loadu_pd(sf.as_ptr().add(2 * p));
            let v1 = _mm256_loadu_pd(sf.as_ptr().add(2 * p + 4));
            let vr = _mm256_unpacklo_pd(v0, v1);
            let vi = _mm256_unpackhi_pd(v0, v1);
            let tv = _mm256_set1_pd(tap);
            accr = _mm256_add_pd(accr, _mm256_mul_pd(vr, tv));
            acci = _mm256_add_pd(acci, _mm256_mul_pd(vi, tv));
        }
        let mut out = [ZERO; 4];
        let of = flat_mut(&mut out);
        _mm256_storeu_pd(of.as_mut_ptr(), _mm256_unpacklo_pd(accr, acci));
        _mm256_storeu_pd(of.as_mut_ptr().add(4), _mm256_unpackhi_pd(accr, acci));
        out
    }

    /// `o[i] = (x[i]·w)/w` over flat views — the single-stream MRC path
    /// (numerically *not* `x[i]`: the scalar loop scales then divides, so
    /// this does too).
    pub fn scale_unscale(x: &[f64], w: f64, o: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if avx2() {
            // SAFETY: `avx2()` verified the CPU feature.
            unsafe { scale_unscale_avx2(x, w, o) };
            return;
        }
        for (d, &v) in o.iter_mut().zip(x.iter()) {
            *d = (v * w) / w;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scale_unscale_avx2(x: &[f64], w: f64, o: &mut [f64]) {
        use std::arch::x86_64::*;
        let n = x.len();
        let wv = _mm256_set1_pd(w);
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(x.as_ptr().add(i));
            let r = _mm256_div_pd(_mm256_mul_pd(v, wv), wv);
            _mm256_storeu_pd(o.as_mut_ptr().add(i), r);
            i += 4;
        }
        while i < n {
            o[i] = (x[i] * w) / w;
            i += 1;
        }
    }

    /// `o[i] = (a[i]·w1 + b[i]·w2)/dw` over flat views — the two-stream
    /// MRC path.
    pub fn weighted_sum2(a: &[f64], b: &[f64], w1: f64, w2: f64, dw: f64, o: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if avx2() {
            // SAFETY: `avx2()` verified the CPU feature.
            unsafe { weighted_sum2_avx2(a, b, w1, w2, dw, o) };
            return;
        }
        for i in 0..o.len() {
            o[i] = (a[i] * w1 + b[i] * w2) / dw;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn weighted_sum2_avx2(a: &[f64], b: &[f64], w1: f64, w2: f64, dw: f64, o: &mut [f64]) {
        use std::arch::x86_64::*;
        let n = o.len();
        let w1v = _mm256_set1_pd(w1);
        let w2v = _mm256_set1_pd(w2);
        let dwv = _mm256_set1_pd(dw);
        let mut i = 0;
        while i + 4 <= n {
            let av = _mm256_loadu_pd(a.as_ptr().add(i));
            let bv = _mm256_loadu_pd(b.as_ptr().add(i));
            let s = _mm256_add_pd(_mm256_mul_pd(av, w1v), _mm256_mul_pd(bv, w2v));
            _mm256_storeu_pd(o.as_mut_ptr().add(i), _mm256_div_pd(s, dwv));
            i += 4;
        }
        while i < n {
            o[i] = (a[i] * w1 + b[i] * w2) / dw;
            i += 1;
        }
    }

    /// `acc[i] += x[i]·w` over flat views — the ≥3-stream MRC
    /// accumulation.
    pub fn saxpy(x: &[f64], w: f64, acc: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if avx2() {
            // SAFETY: `avx2()` verified the CPU feature.
            unsafe { saxpy_avx2(x, w, acc) };
            return;
        }
        for (d, &v) in acc.iter_mut().zip(x.iter()) {
            *d += v * w;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn saxpy_avx2(x: &[f64], w: f64, acc: &mut [f64]) {
        use std::arch::x86_64::*;
        let n = x.len();
        let wv = _mm256_set1_pd(w);
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(x.as_ptr().add(i));
            let d = _mm256_loadu_pd(acc.as_ptr().add(i));
            _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(d, _mm256_mul_pd(v, wv)));
            i += 4;
        }
        while i < n {
            acc[i] += x[i] * w;
            i += 1;
        }
    }

    /// One τ candidate of the match sweep: accumulates
    /// `Σ_k a[k]·conj(lat[k])` in [`ABANDON_BLOCK`] chunks, testing the
    /// Cauchy–Schwarz tail bound between chunks exactly like
    /// `optimized_sweep`. Returns `None` when the candidate is abandoned,
    /// otherwise the `(l0+l1)+(l2+l3)`-reduced correlation.
    #[allow(clippy::too_many_arguments)]
    pub fn match_candidate(
        ar: &[f64],
        ai: &[f64],
        lat: &[Complex],
        ea_prefix: &[f64],
        lane: &SubLattice,
        base: usize,
        denom: f64,
        ea_tot: f64,
        cutoff: Option<f64>,
    ) -> Option<(f64, f64)> {
        #[cfg(target_arch = "x86_64")]
        if avx2() {
            // SAFETY: `avx2()` verified the CPU feature.
            return unsafe {
                match_candidate_avx2(ar, ai, lat, ea_prefix, lane, base, denom, ea_tot, cutoff)
            };
        }
        match_candidate_portable(ar, ai, lat, ea_prefix, lane, base, denom, ea_tot, cutoff)
    }

    #[allow(clippy::too_many_arguments)]
    fn match_candidate_portable(
        ar: &[f64],
        ai: &[f64],
        lat: &[Complex],
        ea_prefix: &[f64],
        lane: &SubLattice,
        base: usize,
        denom: f64,
        ea_tot: f64,
        cutoff: Option<f64>,
    ) -> Option<(f64, f64)> {
        let n = ar.len();
        let mut vr = [0.0f64; 4];
        let mut vi = [0.0f64; 4];
        let mut k = 0;
        while k < n {
            let stop = (k + ABANDON_BLOCK).min(n);
            while k + 4 <= stop {
                for u in 0..4 {
                    let (xr, xi) = (ar[k + u], ai[k + u]);
                    let y = lat[k + u];
                    vr[u] += xr * y.re + xi * y.im;
                    vi[u] += xi * y.re - xr * y.im;
                }
                k += 4;
            }
            while k < stop {
                let (xr, xi) = (ar[k], ai[k]);
                let y = lat[k];
                vr[0] += xr * y.re + xi * y.im;
                vi[0] += xi * y.re - xr * y.im;
                k += 1;
            }
            if k >= n {
                break;
            }
            if let Some(cut) = cutoff {
                let re = (vr[0] + vr[1]) + (vr[2] + vr[3]);
                let im = (vi[0] + vi[1]) + (vi[2] + vi[3]);
                let part = (re * re + im * im).sqrt();
                let ea_rem = ea_tot - ea_prefix[k];
                let eb_rem = lane.window_energy(base + k, base + n);
                let ub = (part + (ea_rem * eb_rem).sqrt()) / denom;
                if ub * (1.0 + 1e-12) < cut {
                    return None;
                }
            }
        }
        Some(((vr[0] + vr[1]) + (vr[2] + vr[3]), (vi[0] + vi[1]) + (vi[2] + vi[3])))
    }

    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn match_candidate_avx2(
        ar: &[f64],
        ai: &[f64],
        lat: &[Complex],
        ea_prefix: &[f64],
        lane: &SubLattice,
        base: usize,
        denom: f64,
        ea_tot: f64,
        cutoff: Option<f64>,
    ) -> Option<(f64, f64)> {
        use std::arch::x86_64::*;
        let n = ar.len();
        let lf = flat(lat);
        // Vector lanes hold sample offsets in the unpack permutation
        // [0, 2, 1, 3]; `reduce` compensates so the reduction tree is
        // (l0+l1)+(l2+l3) in *sample* order, matching `Optimized`'s
        // `(acc[0]+acc[2])+(acc[4]+acc[6])`. The scalar remainder —
        // which only ever occurs in the final block, since ABANDON_BLOCK
        // is a multiple of 4 — spills the vectors to arrays first and
        // appends onto element 0, continuing the sample-lane-0 chain
        // exactly as `Optimized` appends onto `acc[0]`.
        let spill = |acc: __m256d| -> [f64; 4] {
            let mut l = [0.0f64; 4];
            _mm256_storeu_pd(l.as_mut_ptr(), acc);
            l
        };
        let reduce = |l: [f64; 4]| -> f64 { (l[0] + l[2]) + (l[1] + l[3]) };
        let mut accr = _mm256_setzero_pd();
        let mut acci = _mm256_setzero_pd();
        let mut k = 0;
        while k < n {
            let stop = (k + ABANDON_BLOCK).min(n);
            while k + 4 <= stop {
                let xr = _mm256_loadu_pd(ar.as_ptr().add(k));
                let xi = _mm256_loadu_pd(ai.as_ptr().add(k));
                let v0 = _mm256_loadu_pd(lf.as_ptr().add(2 * k));
                let v1 = _mm256_loadu_pd(lf.as_ptr().add(2 * k + 4));
                let yr0 = _mm256_unpacklo_pd(v0, v1);
                let yi0 = _mm256_unpackhi_pd(v0, v1);
                // x lanes must match the permuted y lanes: permute x by
                // [0, 2, 1, 3] (a self-inverse permutation)
                let xr = _mm256_permute4x64_pd::<0b11_01_10_00>(xr);
                let xi = _mm256_permute4x64_pd::<0b11_01_10_00>(xi);
                accr = _mm256_add_pd(
                    accr,
                    _mm256_add_pd(_mm256_mul_pd(xr, yr0), _mm256_mul_pd(xi, yi0)),
                );
                acci = _mm256_add_pd(
                    acci,
                    _mm256_sub_pd(_mm256_mul_pd(xi, yr0), _mm256_mul_pd(xr, yi0)),
                );
                k += 4;
            }
            if k < stop {
                // final partial block: finish scalar and return
                let mut lr = spill(accr);
                let mut li = spill(acci);
                while k < stop {
                    let (xr, xi) = (ar[k], ai[k]);
                    let y = lat[k];
                    lr[0] += xr * y.re + xi * y.im;
                    li[0] += xi * y.re - xr * y.im;
                    k += 1;
                }
                return Some((reduce(lr), reduce(li)));
            }
            if k >= n {
                break;
            }
            if let Some(cut) = cutoff {
                let re = reduce(spill(accr));
                let im = reduce(spill(acci));
                let part = (re * re + im * im).sqrt();
                let ea_rem = ea_tot - ea_prefix[k];
                let eb_rem = lane.window_energy(base + k, base + n);
                let ub = (part + (ea_rem * eb_rem).sqrt()) / denom;
                if ub * (1.0 + 1e-12) < cut {
                    return None;
                }
            }
        }
        Some((reduce(spill(accr)), reduce(spill(acci))))
    }
}

/// A backend choice bundled with its reusable scratch buffers — the
/// object the decode engine threads through its hot loops.
#[derive(Debug, Default)]
pub struct Kernel {
    kind: BackendKind,
    ws: KernelScratch,
}

impl Kernel {
    /// A kernel dispatching to the given backend.
    pub fn new(kind: BackendKind) -> Self {
        Self { kind, ws: KernelScratch::default() }
    }

    /// The backend this kernel dispatches to.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// See [`Backend::scan_into`].
    pub fn scan_into(
        &mut self,
        y: &[Complex],
        s: &[Complex],
        omega: f64,
        positions: Range<usize>,
        out: &mut Vec<Complex>,
    ) {
        self.kind.backend().scan_into(&mut self.ws, y, s, omega, positions, out);
    }

    /// See [`Backend::fir_apply_into`].
    pub fn fir_apply_into(&mut self, fir: &Fir, x: &[Complex], y: &mut Vec<Complex>) {
        self.kind.backend().fir_apply_into(&mut self.ws, fir, x, y);
    }

    /// See [`Backend::resample_into`].
    pub fn resample_into(
        &mut self,
        samples: &[Complex],
        start: f64,
        step: f64,
        n: usize,
        out: &mut Vec<Complex>,
    ) {
        self.kind.backend().resample_into(&mut self.ws, samples, start, step, n, out);
    }

    /// See [`Backend::combine_weighted_into`].
    pub fn combine_weighted_into(&mut self, streams: &[(&[Complex], f64)], out: &mut Vec<Complex>) {
        self.kind.backend().combine_weighted_into(&mut self.ws, streams, out);
    }

    /// See [`Backend::match_score`].
    #[allow(clippy::too_many_arguments)]
    pub fn match_score(
        &mut self,
        buf_a: &[Complex],
        start_a: usize,
        buf_b: &[Complex],
        start_b: usize,
        window: usize,
        tau_step: f64,
        bail: Option<f64>,
    ) -> MatchScore {
        self.kind.backend().match_score(
            &mut self.ws,
            buf_a,
            start_a,
            buf_b,
            start_b,
            window,
            tau_step,
            bail,
        )
    }

    /// See [`Backend::match_score_fp`].
    #[allow(clippy::too_many_arguments)]
    pub fn match_score_fp(
        &mut self,
        buf_a: &[Complex],
        start_a: usize,
        fp: &CorrFootprint,
        start_b: usize,
        window: usize,
        tau_step: f64,
        bail: Option<f64>,
    ) -> MatchScore {
        self.kind.backend().match_score_fp(
            &mut self.ws,
            buf_a,
            start_a,
            fp,
            start_b,
            window,
            tau_step,
            bail,
        )
    }

    /// Builds (or completes) `fp` so it covers every lane of the τ sweep
    /// at `tau_step` for `buf` — after this, [`Kernel::match_score_fp`]
    /// can score any span of `buf` at that step (or any coarser step
    /// whose fracs are a subset, e.g. 0.5 after 0.25) without touching
    /// the raw samples. Already-built lanes are kept; a length change in
    /// the source buffer drops them all first.
    ///
    /// Lanes are interpolated with [`Backend::resample_into`], which is
    /// bit-identical across backends, so footprint contents never depend
    /// on which backend built them. `alloc` supplies the sample vectors
    /// (the caller's buffer pool — this crate has no allocator seam of
    /// its own).
    pub fn ensure_footprint(
        &mut self,
        fp: &mut CorrFootprint,
        buf: &[Complex],
        tau_step: f64,
        alloc: &mut dyn FnMut() -> Vec<Complex>,
    ) {
        if fp.len != buf.len() {
            fp.clear();
            fp.len = buf.len();
        }
        for tau in tau_sweep(tau_step) {
            let frac = tau - tau.floor();
            if fp.lane(frac).is_some() {
                continue;
            }
            let mut lane = SubLattice { frac, samples: alloc(), energy: Vec::new() };
            self.resample_into(buf, -1.0 + frac, 1.0, buf.len() + 2, &mut lane.samples);
            lane.refresh_energy();
            fp.lanes.push(lane);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: usize, seed: u64) -> Vec<Complex> {
        (0..n)
            .map(|k| {
                let t = (k as u64).wrapping_mul(seed.wrapping_add(1)) as f64;
                Complex::cis(0.13 * t).scale(1.0 + 0.2 * ((k % 7) as f64))
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((*x - *y).abs() < tol, "{what}[{k}]: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn backend_names_parse_case_insensitively() {
        for s in ["scalar", "Scalar", "SCALAR"] {
            assert_eq!(BackendKind::from_name(s), Some(BackendKind::Scalar), "{s}");
            assert_eq!(BackendKind::from_arg(s), Some(BackendKind::Scalar), "{s}");
        }
        for s in ["optimized", "Optimized", "OPTIMIZED"] {
            assert_eq!(BackendKind::from_name(s), Some(BackendKind::Optimized), "{s}");
        }
        for s in ["simd", "Simd", "SIMD"] {
            assert_eq!(BackendKind::from_name(s), Some(BackendKind::Simd), "{s}");
            assert_eq!(BackendKind::from_arg(s), Some(BackendKind::Simd), "{s}");
        }
    }

    #[test]
    fn unknown_backend_names_are_rejected() {
        // Regression: `from_env` used to treat every unrecognized value
        // (typos, wrong case, not-yet-implemented backends) as
        // `Optimized`, silently running differential jobs on the wrong
        // backend. The shared parser must reject them so `from_env` can
        // fail loudly — and its panic message must list all three
        // accepted names.
        for s in ["gpu", "avx2", "scalarr", "optimised", "", " scalar", "simd "] {
            assert_eq!(BackendKind::from_name(s), None, "{s:?} must not parse");
            assert_eq!(BackendKind::from_arg(s), None, "{s:?} must not parse");
        }
    }

    /// The non-reference backends, each checked against `Scalar` (and,
    /// where the contract is bit-identity, against each other).
    const FAST: [BackendKind; 2] = [BackendKind::Optimized, BackendKind::Simd];

    #[test]
    fn backends_agree_on_scan() {
        let y = sig(300, 3);
        let s = sig(32, 7);
        for kind in FAST {
            for omega in [0.0, 0.043, -0.12] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                Kernel::new(BackendKind::Scalar).scan_into(&y, &s, omega, 0..y.len(), &mut a);
                Kernel::new(kind).scan_into(&y, &s, omega, 0..y.len(), &mut b);
                assert_close(&a, &b, 1e-9, kind.name());
            }
        }
    }

    #[test]
    fn simd_scan_is_bit_identical_to_optimized() {
        let y = sig(301, 13);
        let s = sig(37, 17);
        for omega in [0.0, 0.043, -0.12] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            Kernel::new(BackendKind::Optimized).scan_into(&y, &s, omega, 0..y.len(), &mut a);
            Kernel::new(BackendKind::Simd).scan_into(&y, &s, omega, 0..y.len(), &mut b);
            assert_eq!(a, b, "simd scan must be bit-identical to optimized (ω = {omega})");
        }
    }

    #[test]
    fn backends_agree_on_fir_bit_exact() {
        // 131 inputs: the Simd interior (odd length) ends in a scalar
        // remainder, exercising both the 4-wide and tail paths.
        let x = sig(131, 5);
        let fir = Fir::new(
            vec![Complex::new(0.1, 0.02), Complex::real(1.0), Complex::new(0.2, -0.06)],
            1,
        );
        let mut a = Vec::new();
        Kernel::new(BackendKind::Scalar).fir_apply_into(&fir, &x, &mut a);
        for kind in FAST {
            let mut b = Vec::new();
            Kernel::new(kind).fir_apply_into(&fir, &x, &mut b);
            assert_eq!(a, b, "{} FIR must be bit-identical", kind.name());
        }
    }

    #[test]
    fn backends_agree_on_resample_bit_exact() {
        let x = sig(256, 11);
        for (start, step) in [(0.37, 1.0), (-3.2, 1.0), (5.0, 1.0005), (250.9, 1.0), (0.0, 0.33)] {
            let mut a = Vec::new();
            Kernel::new(BackendKind::Scalar).resample_into(&x, start, step, 301, &mut a);
            for kind in FAST {
                let mut b = Vec::new();
                Kernel::new(kind).resample_into(&x, start, step, 301, &mut b);
                assert_eq!(
                    a,
                    b,
                    "{} resample must be bit-identical at {start}+k*{step}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn backends_agree_on_mrc_bit_exact() {
        let s1 = sig(41, 1);
        let s2 = sig(25, 2);
        let s3 = sig(33, 3);
        // one stream, two streams (+tail), three streams, zero weights
        let cases: Vec<Vec<(&[Complex], f64)>> = vec![
            vec![(&s1, 2.0)],
            vec![(&s1, 0.0)],
            vec![(&s1, 2.0), (&s2, 0.5)],
            vec![(&s2, 0.5), (&s1, 2.0)],
            vec![(&s1, 2.0), (&s2, 0.5), (&s3, 0.0)],
        ];
        for streams in &cases {
            let mut a = Vec::new();
            Kernel::new(BackendKind::Scalar).combine_weighted_into(streams, &mut a);
            for kind in FAST {
                let mut b = Vec::new();
                Kernel::new(kind).combine_weighted_into(streams, &mut b);
                assert_eq!(a, b, "{} MRC must be bit-identical", kind.name());
            }
        }
    }

    #[test]
    fn kind_names_and_dispatch() {
        assert_eq!(BackendKind::Scalar.name(), "scalar");
        assert_eq!(BackendKind::Optimized.name(), "optimized");
        assert_eq!(BackendKind::Simd.name(), "simd");
        assert_eq!(Kernel::new(BackendKind::Optimized).kind(), BackendKind::Optimized);
        assert_eq!(Kernel::new(BackendKind::Simd).kind(), BackendKind::Simd);
    }

    #[test]
    fn tau_sweep_reaches_both_endpoints() {
        for (step, count) in [(1.0, 3), (0.5, 5), (0.25, 9)] {
            let taus: Vec<f64> = tau_sweep(step).collect();
            assert_eq!(taus.len(), count, "step {step}");
            assert_eq!(taus[0], -1.0);
            assert_eq!(*taus.last().unwrap(), 1.0, "dyadic steps hit +1 exactly");
        }
        // Regression for the float-drift bug: the accumulated `tau +=
        // 0.2` sweep drifted past the `tau <= 1.0` bound one iteration
        // early and never evaluated the +1.0 alignment.
        let taus: Vec<f64> = tau_sweep(0.2).collect();
        assert_eq!(taus.len(), 11, "0.2 sweep covers all 11 grid points");
        assert!((taus.last().unwrap() - 1.0).abs() < 1e-9, "last τ ≈ +1.0");
    }

    /// Two buffers carrying the same band-limited signal, the second one
    /// delayed by `shift` samples — the matched-collision shape of
    /// §4.2.2, where the metric should spike near 1 at τ ≈ 0.
    fn matched_pair(n: usize, shift: f64) -> (Vec<Complex>, Vec<Complex>) {
        let wave = |t: f64| {
            Complex::cis(0.05 * t)
                + Complex::cis(-0.11 * t).scale(0.5)
                + Complex::cis(0.23 * t).scale(0.25)
        };
        let a: Vec<Complex> = (0..n).map(|k| wave(k as f64)).collect();
        let b: Vec<Complex> = (0..n).map(|k| wave(k as f64 - shift)).collect();
        (a, b)
    }

    #[test]
    fn backends_agree_on_match_score() {
        let (a, b) = matched_pair(400, 0.3);
        let mut s = Kernel::new(BackendKind::Scalar);
        for kind in FAST {
            let mut o = Kernel::new(kind);
            for step in [0.25, 0.5, 1.0] {
                let ms = s.match_score(&a, 64, &b, 64, 256, step, None);
                let mo = o.match_score(&a, 64, &b, 64, 256, step, None);
                assert!(
                    (ms.metric - mo.metric).abs() < 1e-9,
                    "{} step {step}: {ms:?} vs {mo:?}",
                    kind.name()
                );
                assert!((ms.tau - mo.tau).abs() < step + 1e-12, "step {step}: {ms:?} vs {mo:?}");
            }
        }
        // the strong contract: simd ≡ optimized, bit for bit
        let (mut o, mut v) = (Kernel::new(BackendKind::Optimized), Kernel::new(BackendKind::Simd));
        for step in [0.25, 0.5, 1.0] {
            for bail in [None, Some(0.15), Some(0.9)] {
                let mo = o.match_score(&a, 64, &b, 64, 257, step, bail);
                let mv = v.match_score(&a, 64, &b, 64, 257, step, bail);
                assert_eq!(mo, mv, "simd match_score must be bit-identical (step {step})");
            }
        }
        // the matched pair actually spikes, and the argmax τ cancels the
        // applied fractional delay (b delayed by 0.3 → reading b at k + τ
        // with τ ≈ +0.3 re-aligns it; nearest 0.25-grid point is +0.25)
        let ms = s.match_score(&a, 64, &b, 64, 256, 0.25, None);
        assert!(ms.metric > 0.9, "matched metric {ms:?}");
        assert_eq!(ms.tau, 0.25, "argmax τ snaps to the applied delay");
    }

    #[test]
    fn footprint_matches_raw_on_all_backends() {
        let (a, b) = matched_pair(300, 0.4);
        for kind in [BackendKind::Scalar, BackendKind::Optimized, BackendKind::Simd] {
            let mut k = Kernel::new(kind);
            let mut fp = CorrFootprint::default();
            k.ensure_footprint(&mut fp, &b, 0.25, &mut Vec::new);
            assert!(fp.covers(b.len(), 0.25));
            assert!(fp.covers(b.len(), 0.5), "0.5 fracs are a subset of 0.25's");
            assert!(!fp.covers(b.len() + 1, 0.25));
            for (sa, sb, window) in [(32, 32, 200), (0, 0, 64), (250, 10, 512)] {
                let raw = k.match_score(&a, sa, &b, sb, window, 0.25, None);
                let viafp = k.match_score_fp(&a, sa, &fp, sb, window, 0.25, None);
                assert!(
                    (raw.metric - viafp.metric).abs() < 1e-9,
                    "{} ({sa},{sb},{window}): {raw:?} vs {viafp:?}",
                    kind.name()
                );
                assert!((raw.tau - viafp.tau).abs() < 0.25 + 1e-12);
            }
        }
    }

    #[test]
    fn bail_returns_exact_metric_at_or_above_threshold() {
        let (a, b) = matched_pair(400, 0.2);
        for kind in FAST {
            let mut o = Kernel::new(kind);
            let exact = o.match_score(&a, 50, &b, 50, 300, 0.25, None);
            assert!(exact.metric > 0.5, "sanity: {exact:?}");
            // bail below the true metric: the result must be bit-identical
            let bailed = o.match_score(&a, 50, &b, 50, 300, 0.25, Some(0.15));
            assert_eq!(exact, bailed, "{}: metric ≥ bail must be exact", kind.name());
            // bail above the true metric: only the rejection is guaranteed
            let over = o.match_score(&a, 50, &b, 50, 300, 0.25, Some(exact.metric + 0.01));
            assert!(over.metric < exact.metric + 0.01, "sub-bail values mean rejection");
            // same contract through the footprint path
            let mut fp = CorrFootprint::default();
            o.ensure_footprint(&mut fp, &b, 0.25, &mut Vec::new);
            let fp_exact = o.match_score_fp(&a, 50, &fp, 50, 300, 0.25, None);
            let fp_bailed = o.match_score_fp(&a, 50, &fp, 50, 300, 0.25, Some(0.15));
            assert_eq!(fp_exact, fp_bailed);
        }
    }

    #[test]
    fn match_score_empty_overlaps_are_zero() {
        let (a, b) = matched_pair(64, 0.0);
        let mut fp = CorrFootprint::default();
        for kind in [BackendKind::Scalar, BackendKind::Optimized, BackendKind::Simd] {
            let mut k = Kernel::new(kind);
            k.ensure_footprint(&mut fp, &b, 0.25, &mut Vec::new);
            // start past either buffer's end, empty buffers, zero window
            for (ba, sa, bb, sb, w) in [
                (&a[..], 64usize, &b[..], 0usize, 128usize),
                (&a[..], 0, &b[..], 64, 128),
                (&[][..], 0, &b[..], 0, 128),
                (&a[..], 0, &[][..], 0, 128),
                (&a[..], 0, &b[..], 0, 0),
            ] {
                assert_eq!(k.match_score(ba, sa, bb, sb, w, 0.25, None), MatchScore::default());
            }
            assert_eq!(k.match_score_fp(&a, 64, &fp, 0, 128, 0.25, None), MatchScore::default());
            assert_eq!(k.match_score_fp(&a, 0, &fp, 64, 128, 0.25, None), MatchScore::default());
        }
    }
}
