//! Known preamble sequence.
//!
//! "Every 802.11 packet starts with a known preamble … The preamble is a
//! pseudo-random sequence that is independent of shifted versions of
//! itself, as well as Alice's and Bob's data" (§4.2.1). That independence
//! is exactly the autocorrelation property of a maximal-length LFSR
//! sequence, so the preamble here is a BPSK-mapped m-sequence
//! (x⁷ + x⁴ + 1, period 127), truncated to the configured length.
//!
//! The paper's prototype uses a 32-symbol preamble (§5.1c); that is the
//! default.

use crate::complex::Complex;
use crate::scramble::Scrambler;

/// Default preamble length in symbols, matching §5.1c ("32-bit preamble").
pub const DEFAULT_PREAMBLE_LEN: usize = 32;

/// The known preamble: a fixed pseudo-random BPSK symbol sequence shared by
/// every transmitter and receiver in the network.
#[derive(Clone, Debug, PartialEq)]
pub struct Preamble {
    symbols: Vec<Complex>,
    bits: Vec<u8>,
}

impl Preamble {
    /// The standard network-wide preamble of the given length.
    pub fn standard(len: usize) -> Self {
        assert!(len > 0, "preamble cannot be empty");
        // m-sequence from the 802.11 scrambler LFSR, fixed seed.
        let mut lfsr = Scrambler::new(0b111_1111);
        let bits: Vec<u8> = (0..len).map(|_| lfsr.next_bit()).collect();
        let symbols =
            bits.iter().map(|&b| Complex::real(if b == 1 { 1.0 } else { -1.0 })).collect();
        Self { symbols, bits }
    }

    /// The default 32-symbol preamble.
    pub fn default_len() -> Self {
        Self::standard(DEFAULT_PREAMBLE_LEN)
    }

    /// The preamble's BPSK symbols (±1).
    pub fn symbols(&self) -> &[Complex] {
        &self.symbols
    }

    /// The preamble's underlying bits.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// Length in symbols.
    #[allow(clippy::len_without_is_empty)] // a preamble is never empty
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Total energy `Σ|s[k]|²`. Because the symbols are ±1 this equals the
    /// length; the channel estimator divides the correlation peak by this
    /// (§4.2.4a: `H = Γ'/Σ|s[k]|²`).
    pub fn energy(&self) -> f64 {
        self.symbols.len() as f64
    }
}

impl Default for Preamble {
    fn default() -> Self {
        Self::default_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::inner;

    #[test]
    fn default_length_is_32() {
        assert_eq!(Preamble::default_len().len(), 32);
    }

    #[test]
    fn symbols_are_bpsk() {
        let p = Preamble::standard(64);
        for s in p.symbols() {
            assert!(s.im == 0.0 && (s.re == 1.0 || s.re == -1.0));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(Preamble::standard(32), Preamble::standard(32));
    }

    #[test]
    fn energy_equals_length() {
        let p = Preamble::standard(48);
        assert_eq!(p.energy(), 48.0);
    }

    #[test]
    fn shifted_autocorrelation_is_low() {
        // §4.2.1 requires the preamble to be nearly independent of shifted
        // versions of itself: correlation at non-zero lag must be far below
        // the zero-lag peak.
        let p = Preamble::standard(32);
        let peak = inner(p.symbols(), p.symbols()).abs();
        for lag in 1..p.len() {
            let c = inner(&p.symbols()[lag..], &p.symbols()[..p.len() - lag]).abs();
            assert!(c < 0.55 * peak, "lag {lag}: sidelobe {c:.1} vs peak {peak:.1}");
        }
    }

    #[test]
    fn roughly_balanced() {
        let p = Preamble::standard(127);
        let ones = p.bits().iter().filter(|&&b| b == 1).count();
        // A full-period m-sequence has 64 ones / 63 zeros.
        assert_eq!(ones, 64);
    }
}
