//! CRC-32 frame check sequence.
//!
//! 802.11 frames end in the IEEE 802.3 CRC-32 (polynomial `0x04C11DB6`
//! reflected to `0xEDB88320`). The receiver's whole control flow hinges on
//! this check: "if decoding fails (… the decoded packet does not satisfy
//! the checksum), the ZigZag receiver will check whether the packet has
//! suffered a collision" (§4.2). Implemented as the standard reflected
//! table-driven algorithm.

/// Reflected CRC-32 polynomial (IEEE 802.3).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data` (init `0xFFFF_FFFF`, final XOR
/// `0xFFFF_FFFF` — the 802.3/802.11 convention).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Appends the 4-byte little-endian CRC of everything currently in `buf`.
pub fn append_crc(buf: &mut Vec<u8>) {
    let c = crc32(buf);
    buf.extend_from_slice(&c.to_le_bytes());
}

/// Verifies a buffer whose last four bytes are the little-endian CRC of the
/// preceding bytes. Returns `false` for buffers shorter than the CRC.
pub fn verify_crc(buf: &[u8]) -> bool {
    if buf.len() < 4 {
        return false;
    }
    let (body, tail) = buf.split_at(buf.len() - 4);
    crc32(body).to_le_bytes() == *tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_check() {
        // The canonical CRC-32 check value: CRC of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_verify() {
        let mut buf = b"hello hidden terminals".to_vec();
        append_crc(&mut buf);
        assert!(verify_crc(&buf));
    }

    #[test]
    fn single_bit_flip_detected() {
        let mut buf = vec![0xA5; 64];
        append_crc(&mut buf);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupted = buf.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(!verify_crc(&corrupted), "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn short_buffer_fails() {
        assert!(!verify_crc(&[1, 2, 3]));
        assert!(!verify_crc(&[]));
    }

    #[test]
    fn crc_of_crc_trick() {
        // Appending the CRC and recomputing over the whole buffer yields the
        // fixed "magic" residue for this convention.
        let mut buf = b"zigzag".to_vec();
        append_crc(&mut buf);
        assert_eq!(crc32(&buf), 0x2144_DF1C);
    }
}
