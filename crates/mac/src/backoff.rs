//! Random backoff and collision offset patterns.
//!
//! ZigZag's bootstrap exists because "802.11 senders jitter every
//! transmission by a short random interval … hence collisions start with
//! a random stretch of interference-free bits" (§1). This module draws
//! those jitters and assembles the offset patterns that the Fig 4-7
//! Monte Carlo and the signal-level experiments feed to the chunk
//! scheduler.

use crate::params::MacParams;
use rand::Rng;

/// Backoff policy for the Fig 4-7 simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backoff {
    /// Every node picks uniformly from a fixed window (Fig 4-7a:
    /// cw ∈ {8, 16, 32}).
    Fixed(u32),
    /// 802.11 exponential backoff: window doubles per retransmission from
    /// CWmin, capped at CWmax (Fig 4-7b).
    Exponential,
}

impl Backoff {
    /// Window size (slots) for the `round`-th (re)transmission.
    pub fn window(&self, params: &MacParams, round: u32) -> u32 {
        match *self {
            Backoff::Fixed(cw) => cw,
            Backoff::Exponential => params.cw_after(round),
        }
    }

    /// Draws one backoff, in slots.
    pub fn draw<R: Rng + ?Sized>(&self, params: &MacParams, round: u32, rng: &mut R) -> u32 {
        let w = self.window(params, round).max(1);
        rng.gen_range(0..=w)
    }
}

/// Per-frame 802.11 DCF backoff stage machine.
///
/// The standard's rules (§9.3.3 of 802.11-2007, mirrored by the paper's
/// §4.5 footnote) distinguish three outcomes and only one of them moves
/// the contention window:
///
/// * **collision / missing ACK** — the stage increments, doubling the
///   window up to CWmax ([`BackoffState::on_collision`]);
/// * **successful delivery** — the stage resets to CWmin
///   ([`BackoffState::on_success`]);
/// * **deferral** (carrier sensed busy) — the station waits out the
///   medium and redraws, but the stage is *unchanged*
///   ([`BackoffState::on_defer`]). Deferring is the protocol working,
///   not evidence of congestion.
///
/// The seed-era `pair_episode` conflated the round index with the stage;
/// this type makes the distinction explicit and is what both the episode
/// generator and the [`crate::cell`] simulator consume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackoffState {
    stage: u32,
}

impl BackoffState {
    /// Fresh frame: stage 0 (CWmin window).
    pub fn new() -> Self {
        Self { stage: 0 }
    }

    /// Current backoff stage (number of collisions this frame has
    /// suffered, saturating).
    pub fn stage(&self) -> u32 {
        self.stage
    }

    /// Window (slots) the next draw uses under `policy`.
    pub fn window(&self, policy: Backoff, params: &MacParams) -> u32 {
        policy.window(params, self.stage)
    }

    /// Draws one backoff (slots) at the current stage.
    pub fn draw<R: Rng + ?Sized>(&self, policy: Backoff, params: &MacParams, rng: &mut R) -> u32 {
        policy.draw(params, self.stage, rng)
    }

    /// Collision (no ACK): the window doubles.
    pub fn on_collision(&mut self) {
        self.stage = self.stage.saturating_add(1);
    }

    /// Delivered: contention window resets to CWmin.
    pub fn on_success(&mut self) {
        self.stage = 0;
    }

    /// Frame abandoned at the retry limit: the next frame starts at
    /// CWmin.
    pub fn on_drop(&mut self) {
        self.stage = 0;
    }

    /// Medium sensed busy: the station defers, the stage stays put.
    pub fn on_defer(&mut self) {
        // Intentionally a no-op — kept as a method so call sites document
        // the DCF rule ("reset on success, not on deferral").
    }
}

/// Draws the start offsets (slots) of `n` hidden senders in one collision
/// round: every node picks a slot in its window and transmits (none can
/// sense the others).
pub fn collision_offsets<R: Rng + ?Sized>(
    n: usize,
    policy: Backoff,
    params: &MacParams,
    round: u32,
    rng: &mut R,
) -> Vec<u32> {
    let mut offs: Vec<u32> = (0..n).map(|_| policy.draw(params, round, rng)).collect();
    // re-reference to the earliest transmission
    if let Some(&min) = offs.iter().min() {
        for o in &mut offs {
            *o -= min;
        }
    }
    offs
}

/// Generates the full offset pattern of a hidden-terminal episode: `n`
/// senders, `rounds` successive collisions (each retransmission draws a
/// fresh jitter). Returns `rounds` vectors of per-sender offsets in
/// slots.
pub fn episode_offsets<R: Rng + ?Sized>(
    n: usize,
    rounds: usize,
    policy: Backoff,
    params: &MacParams,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    (0..rounds).map(|r| collision_offsets(n, policy, params, r as u32, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn fixed_window_bounds() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = Backoff::Fixed(16).draw(&p, 0, &mut rng);
            assert!(d <= 16);
        }
    }

    #[test]
    fn exponential_window_grows() {
        let p = MacParams::default();
        assert_eq!(Backoff::Exponential.window(&p, 0), 31);
        assert_eq!(Backoff::Exponential.window(&p, 1), 63);
        assert_eq!(Backoff::Exponential.window(&p, 2), 127);
        assert_eq!(Backoff::Exponential.window(&p, 10), 1023);
    }

    #[test]
    fn offsets_rereferenced_to_zero() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let offs = collision_offsets(4, Backoff::Fixed(32), &p, 0, &mut rng);
            assert_eq!(offs.len(), 4);
            assert_eq!(*offs.iter().min().unwrap(), 0);
        }
    }

    #[test]
    fn episode_has_requested_shape() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let ep = episode_offsets(3, 3, Backoff::Exponential, &p, &mut rng);
        assert_eq!(ep.len(), 3);
        assert!(ep.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn state_resets_on_success_not_on_deferral() {
        let p = MacParams::default();
        let mut st = BackoffState::new();
        assert_eq!(st.window(Backoff::Exponential, &p), 31);

        // two collisions double the window twice
        st.on_collision();
        st.on_collision();
        assert_eq!(st.stage(), 2);
        assert_eq!(st.window(Backoff::Exponential, &p), 127);

        // deferral leaves the stage untouched — the DCF distinction the
        // seed code got wrong
        st.on_defer();
        assert_eq!(st.stage(), 2);
        assert_eq!(st.window(Backoff::Exponential, &p), 127);

        // success resets to CWmin
        st.on_success();
        assert_eq!(st.stage(), 0);
        assert_eq!(st.window(Backoff::Exponential, &p), 31);
    }

    #[test]
    fn state_drop_resets_and_stage_saturates() {
        let p = MacParams::default();
        let mut st = BackoffState::new();
        for _ in 0..100 {
            st.on_collision();
        }
        assert_eq!(st.stage(), 100);
        assert_eq!(st.window(Backoff::Exponential, &p), p.cw_max);
        st.on_drop();
        assert_eq!(st.stage(), 0);
    }

    #[test]
    fn state_draw_respects_stage_window() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut st = BackoffState::new();
        st.on_collision(); // stage 1 ⇒ window 63
        let mut seen_past_cwmin = false;
        for _ in 0..2000 {
            let d = st.draw(Backoff::Exponential, &p, &mut rng);
            assert!(d <= 63);
            seen_past_cwmin |= d > 31;
        }
        assert!(seen_past_cwmin, "stage-1 draws should exceed CWmin");
    }

    #[test]
    fn jitter_produces_distinct_offsets_usually() {
        // The §1 premise: two successive collisions rarely share the same
        // offset. With cw=31 ties happen ~3% of the time.
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mut ties = 0;
        let trials = 2000;
        for _ in 0..trials {
            let ep = episode_offsets(2, 2, Backoff::Exponential, &p, &mut rng);
            // undecodable ⇔ the *signed* relative offset repeats (same
            // magnitude with flipped order is the decodable Fig 4-1b case)
            let d1 = ep[0][1] as i64 - ep[0][0] as i64;
            let d2 = ep[1][1] as i64 - ep[1][0] as i64;
            if d1 == d2 {
                ties += 1;
            }
        }
        let rate = ties as f64 / trials as f64;
        assert!(rate < 0.08, "tie rate {rate}");
        assert!(rate > 0.0, "ties should occur occasionally");
    }
}
