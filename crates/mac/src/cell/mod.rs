//! Cell-scale MAC co-simulation.
//!
//! The paper's gain is network-level: hidden-terminal collisions that
//! carrier sense cannot prevent become deliverable throughput. This
//! module scales the MAC substrate from the seed's single contending
//! pair to a whole cell — thousands to millions of stations — by
//! splitting the work the way the physics splits it:
//!
//! * **Symbolic fast path.** Arrivals, carrier sensing, backoff and
//!   clean (single-transmitter) receptions are pure discrete events on a
//!   slotted [`wheel::EventWheel`]. A million stations are a million
//!   small state machines, nothing more.
//! * **Signal-level slow path.** Only *genuine* collisions — two or more
//!   transmissions overlapping at one AP — are worth IQ samples. They
//!   are packaged as [`resolver::CollisionRound`]s and handed to a
//!   pluggable [`resolver::CollisionResolver`]: the real ZigZag receiver
//!   (synthesised air → decode, see `zigzag_testbed::cell`), the
//!   symbolic [`model::DecodeModel`], or a deterministic sampled split
//!   of the two ([`resolver::SplitResolver`]) that keeps million-station
//!   runs tractable while cross-validating the model against real
//!   decodes. A **solo retransmission** by a station whose earlier
//!   attempts sit in stored collisions also routes through the resolver
//!   (as a `k = 1` round carrying [`resolver::CollisionRound::peers`]):
//!   §4.1's reap — decode the clean packet, subtract it from the stored
//!   collisions, recover the buried partners without them ever
//!   retransmitting.
//!
//! Decode verdicts flow back into the stations' [`crate::BackoffState`]
//! and retry counters, closing the loop from MAC contention down to IQ
//! samples and back.
//!
//! **Determinism contract.** Every station owns an RNG stream seeded
//! from `(seed, station id)`; per-round resolver draws are keyed by
//! `(seed, episode, round)`. No behaviour depends on hash-map iteration
//! order or thread count — the event trace (and its FNV-1a
//! [`sim::CellOutcome::trace_hash`]) is bit-identical across 1/2/4
//! decode threads and across symbolic-vs-lowered runs at 100% sampling.
//!
//! Literature scenarios ship as [`preset::CellPreset`]s: DCF over a
//! hidden-terminal sensing graph, ZigZag-enhanced slotted ALOHA
//! (arXiv:1501.00976), plain slotted ALOHA, and the game-theoretic
//! non-cooperative persistence equilibrium (arXiv:1501.00881).

pub mod discipline;
pub mod model;
pub mod preset;
pub mod resolver;
pub mod sensing;
pub mod sim;
pub mod wheel;

pub use discipline::{nash_persistence, AlohaBackoff, Discipline};
pub use model::DecodeModel;
pub use preset::{symbolic_curve, CellPreset, LoadPoint};
pub use resolver::{
    CollisionResolver, CollisionRound, FrameRef, RoundResolution, SplitResolver, Tally, TxAttempt,
    Verdict,
};
pub use sensing::{SenseRule, SensingGraph};
pub use sim::{
    run_cell, ArrivalModel, CellConfig, CellOutcome, CellStats, StationCounters, TraceEvent,
};
pub use wheel::{EventWheel, Wake};

/// SplitMix64 finaliser — the same mix the engine's `unit_seed` uses, so
/// every derived stream is decorrelated from its neighbours.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a child seed from a base seed and one key.
pub fn mix2(seed: u64, key: u64) -> u64 {
    mix64(seed ^ mix64(key))
}

/// Derives a child seed from a base seed and two keys (e.g. episode and
/// round).
pub fn mix3(seed: u64, key1: u64, key2: u64) -> u64 {
    mix64(mix2(seed, key1) ^ mix64(key2.wrapping_mul(0xa076_1d64_78bd_642f)))
}

/// Maps a 64-bit hash to a uniform fraction in `[0, 1)`.
pub(crate) fn hash_fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_stable_and_distinct() {
        assert_eq!(mix2(1, 2), mix2(1, 2));
        assert_ne!(mix2(1, 2), mix2(2, 1));
        assert_ne!(mix3(1, 2, 3), mix3(1, 3, 2));
        let f = hash_fraction(mix2(99, 7));
        assert!((0.0..1.0).contains(&f));
    }
}
