//! The cell-scale discrete-event simulator.
//!
//! One tick per 802.11 slot. Stations are lazy: of a million configured
//! ids, only those whose first arrival falls inside the run are ever
//! materialised, so memory tracks *active* stations. Each station owns
//! an RNG stream seeded from `(seed, id)` — every decision a station
//! makes consumes only its own stream, so behaviour is independent of
//! event interleaving, map iteration order and decode thread count.
//!
//! Per slot, the loop does two things in a fixed order:
//!
//! 1. **Close receptions.** Every cell whose in-flight component
//!    (maximal run of overlapping transmissions at one AP) ends this
//!    slot resolves: a single transmission delivers symbolically; `k ≥ 2`
//!    becomes a [`CollisionRound`], and all rounds closing this slot go
//!    to the [`CollisionResolver`] as one batch (which the signal-level
//!    resolver fans over `BatchEngine`). Verdicts feed straight back
//!    into [`BackoffState`] and retry counters.
//! 2. **Wake stations.** Arrivals queue a frame and schedule the first
//!    attempt; attempts carrier-sense (DCF) or fire frame-aligned
//!    (slotted ALOHA) and join their cell's component.
//!
//! Every externally visible event is folded into an FNV-1a trace hash —
//! the determinism contract is `trace_hash` equality, bit-for-bit.

use super::{
    mix2, CollisionResolver, CollisionRound, Discipline, FrameRef, SensingGraph, TxAttempt, Verdict,
};
use crate::backoff::BackoffState;
use crate::cell::wheel::{EventWheel, Wake};
use crate::params::MacParams;
use rand::prelude::*;
use std::collections::HashMap;

const STATION_TAG: u64 = 0x5a5a_5354_4154_494f; // "ZZSTATIO"

/// How stations source traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalModel {
    /// Aggregate Poisson offered load of `per_slot` frames per slot,
    /// spread over the station population (per-station geometric
    /// inter-arrival gaps; arrivals are suppressed while a station's
    /// previous frame is still in service).
    Poisson {
        /// Offered frames per slot across the whole population.
        per_slot: f64,
    },
    /// Every station always has a frame queued (saturation analysis).
    Saturated,
}

/// Full configuration of one cell-simulation run.
#[derive(Clone, Debug)]
pub struct CellConfig {
    /// Station population (ids `0..stations`).
    pub stations: u32,
    /// Slots of traffic generation. Components still in flight at the
    /// end are drained (no new transmissions start after this).
    pub slots: u64,
    /// The MAC discipline every station runs.
    pub discipline: Discipline,
    /// Who senses whom, and the cell/AP layout.
    pub sensing: SensingGraph,
    /// Traffic model.
    pub arrivals: ArrivalModel,
    /// Transmission duration in slots.
    pub packet_slots: u32,
    /// SIFS + ACK turnaround in slots (feedback reaches the sender this
    /// many slots after the reception closes).
    pub ack_slots: u32,
    /// 802.11 timing/contention parameters.
    pub mac: MacParams,
    /// Master seed; all station and resolver streams derive from it.
    pub seed: u64,
    /// Keep the full event list in [`CellOutcome::trace`] (the hash is
    /// always computed).
    pub record_trace: bool,
}

/// Per-station outcome counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StationCounters {
    /// Frames that arrived at this station.
    pub offered: u32,
    /// Frames delivered (acked).
    pub delivered: u32,
    /// Frames dropped at the retry limit.
    pub dropped: u32,
    /// Collision verdicts received (retries caused).
    pub collisions: u32,
    /// Carrier-sense deferrals.
    pub defers: u32,
}

/// One simulator event, as folded into the trace hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame arrived at a station.
    Arrival {
        /// Slot of the arrival.
        slot: u64,
        /// Station id.
        station: u32,
    },
    /// A station started transmitting.
    TxStart {
        /// Slot the transmission starts.
        slot: u64,
        /// Station id.
        station: u32,
        /// Backoff stage in effect (collisions so far for this frame).
        stage: u32,
    },
    /// A DCF station sensed the medium busy and deferred.
    Defer {
        /// Slot of the deferral.
        slot: u64,
        /// Station id.
        station: u32,
        /// Backoff stage — unchanged by the deferral.
        stage: u32,
    },
    /// A resolver round closed at an AP: a `k ≥ 2` collision, or a
    /// `k = 1` solo retransmission routed through the resolver because
    /// its peers may still be reaped from stored collisions (§4.1).
    Collision {
        /// Slot the reception closed.
        slot: u64,
        /// Cell (AP) index.
        cell: u32,
        /// Number of overlapping transmissions (1 for a reap round).
        k: u32,
        /// Episode key.
        episode: u64,
        /// 1-based collision count of the episode.
        round: u32,
        /// Whether the round was lowered to the signal level.
        lowered: bool,
    },
    /// A frame was delivered.
    Deliver {
        /// Slot the verdict was applied.
        slot: u64,
        /// Station id.
        station: u32,
        /// `true` if the delivering decode ran at the signal level.
        lowered: bool,
    },
    /// A frame was dropped at the retry limit.
    Drop {
        /// Slot of the drop.
        slot: u64,
        /// Station id.
        station: u32,
    },
}

/// Aggregate run statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Stations that ever became active.
    pub stations_active: u64,
    /// Frames offered.
    pub offered_frames: u64,
    /// Frames delivered.
    pub delivered_frames: u64,
    /// Frames dropped at the retry limit.
    pub dropped_frames: u64,
    /// Clean single-transmission receptions (resolved symbolically).
    pub singles: u64,
    /// Collision rounds (`k ≥ 2`) handed to the resolver.
    pub collision_rounds: u64,
    /// Solo-retransmission rounds handed to the resolver because the
    /// transmitter had live collision episodes (§4.1 reap opportunities).
    pub recovery_rounds: u64,
    /// Frames delivered by §4.1 reaping — the peer never retransmitted.
    pub recovered_frames: u64,
    /// Rounds actually lowered to the signal level.
    pub lowered_rounds: u64,
    /// Deliveries whose verdict came from a signal-level decode.
    pub lowered_deliveries: u64,
    /// Retries caused by a signal-level verdict.
    pub lowered_retries: u64,
    /// Carrier-sense deferrals.
    pub defers: u64,
    /// Transmissions started.
    pub tx_starts: u64,
    /// Widest collision seen (k).
    pub max_k: u32,
    /// Frames still unresolved when the run ended.
    pub in_flight_at_end: u64,
}

impl CellStats {
    /// Delivered frames per traffic slot.
    pub fn throughput(&self, slots: u64) -> f64 {
        self.delivered_frames as f64 / slots.max(1) as f64
    }
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Aggregate statistics.
    pub stats: CellStats,
    /// FNV-1a hash over every [`TraceEvent`] — the determinism witness.
    pub trace_hash: u64,
    /// The full event list, if [`CellConfig::record_trace`] was set.
    pub trace: Vec<TraceEvent>,
    /// Counters of every station that became active, sorted by id.
    pub counters: Vec<(u32, StationCounters)>,
}

/// Geometric inter-arrival gap: number of Bernoulli(`p`) slots until the
/// first success, `≥ 1`. `p ≤ 0` returns effectively-never.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p >= 1.0 {
        return 1;
    }
    if p <= 0.0 {
        return u64::MAX / 4;
    }
    let u = rng.next_f64();
    let gap = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    (gap as u64).saturating_add(1).min(u64::MAX / 4)
}

struct Station {
    rng: StdRng,
    backoff: BackoffState,
    retries: u32,
    seq: u32,
    has_frame: bool,
    /// The slot of this station's one outstanding attempt wake, if any.
    /// A wake only fires when it matches — a §4.1 peer recovery delivers
    /// the frame while its retransmission wake is still queued, and the
    /// stale wake must fall through.
    pending_attempt: Option<u64>,
    episodes: Vec<u64>,
    counters: StationCounters,
}

impl Station {
    fn new(rng: StdRng) -> Self {
        Self {
            rng,
            backoff: BackoffState::new(),
            retries: 0,
            seq: 0,
            has_frame: false,
            pending_attempt: None,
            episodes: Vec::new(),
            counters: StationCounters::default(),
        }
    }
}

#[derive(Clone, Copy)]
struct Tx {
    station: u32,
    seq: u32,
    attempt: u32,
    start: u64,
}

#[derive(Default)]
struct Component {
    txs: Vec<Tx>,
    close_at: u64,
}

/// Book-keeping for one collision episode (a set of frames that collided
/// together at least once).
struct EpisodeState {
    /// The `(station, seq)` members, sorted.
    members: Vec<(u32, u32)>,
    /// Collisions accumulated so far.
    rounds: u32,
    /// Members whose frames are still in service; the episode retires
    /// (and the resolver may release its stored air) only when this
    /// reaches zero — a §4.1 reap can still need the store after *one*
    /// member finished.
    live: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_word(h: u64, v: u64) -> u64 {
    let mut h = h;
    for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
        h ^= (v >> shift) & 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn episode_key(txs: &[Tx]) -> u64 {
    let mut keys: Vec<u64> =
        txs.iter().map(|t| (u64::from(t.station) << 32) | u64::from(t.seq)).collect();
    keys.sort_unstable();
    let mut h = FNV_OFFSET;
    for k in keys {
        h = fnv_word(h, k);
    }
    h
}

fn align_up(x: u64, m: u64) -> u64 {
    let m = m.max(1);
    x.div_ceil(m) * m
}

struct Sim<'a> {
    cfg: &'a CellConfig,
    arrival_p: f64,
    horizon: u64,
    stations: HashMap<u32, Station>,
    wheel: EventWheel,
    media: Vec<Component>,
    busy_until: Vec<u64>,
    closes: Vec<Vec<u32>>,
    episodes: HashMap<u64, EpisodeState>,
    retired: Vec<u64>,
    stats: CellStats,
    hash: u64,
    trace: Vec<TraceEvent>,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a CellConfig) -> Self {
        let horizon = cfg.slots + u64::from(cfg.packet_slots) + u64::from(cfg.ack_slots) + 2;
        let arrival_p = match cfg.arrivals {
            ArrivalModel::Poisson { per_slot } => {
                (per_slot / cfg.stations.max(1) as f64).clamp(0.0, 1.0)
            }
            ArrivalModel::Saturated => 1.0,
        };
        Sim {
            cfg,
            arrival_p,
            horizon,
            stations: HashMap::new(),
            wheel: EventWheel::new(horizon),
            media: (0..cfg.sensing.cells()).map(|_| Component::default()).collect(),
            busy_until: vec![0; cfg.sensing.group_count()],
            closes: vec![Vec::new(); horizon as usize],
            episodes: HashMap::new(),
            retired: Vec::new(),
            stats: CellStats::default(),
            hash: FNV_OFFSET,
            trace: Vec::new(),
        }
    }

    fn emit(&mut self, ev: TraceEvent) {
        let h = self.hash;
        self.hash = match ev {
            TraceEvent::Arrival { slot, station } => {
                fnv_word(fnv_word(fnv_word(h, 1), slot), u64::from(station))
            }
            TraceEvent::TxStart { slot, station, stage } => fnv_word(
                fnv_word(fnv_word(fnv_word(h, 2), slot), u64::from(station)),
                u64::from(stage),
            ),
            TraceEvent::Defer { slot, station, stage } => fnv_word(
                fnv_word(fnv_word(fnv_word(h, 3), slot), u64::from(station)),
                u64::from(stage),
            ),
            TraceEvent::Collision { slot, cell, k, episode, round, lowered } => {
                let mut x = fnv_word(fnv_word(fnv_word(h, 4), slot), u64::from(cell));
                x = fnv_word(fnv_word(fnv_word(x, u64::from(k)), episode), u64::from(round));
                fnv_word(x, u64::from(lowered))
            }
            TraceEvent::Deliver { slot, station, lowered } => fnv_word(
                fnv_word(fnv_word(fnv_word(h, 5), slot), u64::from(station)),
                u64::from(lowered),
            ),
            TraceEvent::Drop { slot, station } => {
                fnv_word(fnv_word(fnv_word(h, 6), slot), u64::from(station))
            }
        };
        if self.cfg.record_trace {
            self.trace.push(ev);
        }
    }

    fn init_arrivals(&mut self) {
        let seed = self.cfg.seed ^ STATION_TAG;
        for id in 0..self.cfg.stations {
            let mut rng = StdRng::seed_from_u64(mix2(seed, u64::from(id)));
            let first = match self.cfg.arrivals {
                ArrivalModel::Saturated => 0,
                ArrivalModel::Poisson { .. } => geometric(&mut rng, self.arrival_p) - 1,
            };
            if first < self.cfg.slots {
                self.stations.insert(id, Station::new(rng));
                self.wheel.schedule(first, Wake::Arrival(id));
            }
        }
        self.stats.stations_active = self.stations.len() as u64;
    }

    fn schedule_attempt(&mut self, st: &mut Station, id: u32, slot: u64) {
        // beyond the horizon the run is over; the frame counts as
        // in-flight at the end
        st.pending_attempt = Some(slot);
        let _ = self.wheel.schedule(slot, Wake::Attempt(id));
    }

    fn schedule_next_arrival(&mut self, st: &mut Station, id: u32, now: u64) {
        let next = match self.cfg.arrivals {
            ArrivalModel::Saturated => now + 1,
            ArrivalModel::Poisson { .. } => now + geometric(&mut st.rng, self.arrival_p),
        };
        if next < self.cfg.slots {
            self.wheel.schedule(next, Wake::Arrival(id));
        }
    }

    fn on_arrival(&mut self, id: u32, t: u64) {
        let mut st = self.stations.remove(&id).expect("arrival for unknown station");
        debug_assert!(!st.has_frame, "arrival while a frame is in service");
        st.has_frame = true;
        st.retries = 0;
        st.seq = st.counters.offered;
        st.counters.offered += 1;
        self.stats.offered_frames += 1;
        self.emit(TraceEvent::Arrival { slot: t, station: id });
        let at = match self.cfg.discipline {
            Discipline::Dcf { policy } => {
                t + 1 + u64::from(st.backoff.draw(policy, &self.cfg.mac, &mut st.rng))
            }
            Discipline::SlottedAloha { .. } => align_up(t + 1, u64::from(self.cfg.packet_slots)),
        };
        self.schedule_attempt(&mut st, id, at);
        self.stations.insert(id, st);
    }

    fn on_attempt(&mut self, id: u32, t: u64) {
        if t >= self.cfg.slots {
            // generation window over: the frame stays queued and is
            // counted as in-flight at the end
            return;
        }
        let mut st = self.stations.remove(&id).expect("attempt for unknown station");
        if !st.has_frame || st.pending_attempt != Some(t) {
            // stale wake: the frame was delivered by a §4.1 reap (or
            // rescheduled) while this wake sat in the wheel
            self.stations.insert(id, st);
            return;
        }
        st.pending_attempt = None;
        if let Discipline::Dcf { policy } = self.cfg.discipline {
            let sensing = &self.cfg.sensing;
            let cell = sensing.cell_of(id);
            let base = (cell * sensing.groups_per_cell()) as usize;
            let mut release = 0u64;
            let mut sensed = false;
            for g in 0..sensing.groups_per_cell() {
                let busy = self.busy_until[base + g as usize];
                if busy > t {
                    let p = sensing.sense_prob(id, g);
                    let hit = p >= 1.0 || (p > 0.0 && st.rng.gen_bool(p));
                    if hit {
                        sensed = true;
                        release = release.max(busy);
                    }
                }
            }
            if sensed {
                st.counters.defers += 1;
                st.backoff.on_defer();
                self.stats.defers += 1;
                self.emit(TraceEvent::Defer { slot: t, station: id, stage: st.backoff.stage() });
                let d = u64::from(st.backoff.draw(policy, &self.cfg.mac, &mut st.rng));
                self.schedule_attempt(&mut st, id, release + 1 + d);
                self.stations.insert(id, st);
                return;
            }
        }
        self.start_tx(&mut st, id, t);
        self.stations.insert(id, st);
    }

    fn start_tx(&mut self, st: &mut Station, id: u32, t: u64) {
        self.emit(TraceEvent::TxStart { slot: t, station: id, stage: st.backoff.stage() });
        self.stats.tx_starts += 1;
        let cell = self.cfg.sensing.cell_of(id) as usize;
        let end = t + u64::from(self.cfg.packet_slots);
        let comp = &mut self.media[cell];
        if comp.txs.is_empty() {
            comp.close_at = end;
        } else {
            debug_assert!(comp.close_at > t, "joining a closed component");
            comp.close_at = comp.close_at.max(end);
        }
        comp.txs.push(Tx { station: id, seq: st.seq, attempt: st.retries, start: t });
        let close_at = comp.close_at;
        if let Some(bucket) = self.closes.get_mut(close_at as usize) {
            bucket.push(cell as u32);
        }
        let g = self.cfg.sensing.global_group(id);
        let busy_through = end + u64::from(self.cfg.ack_slots);
        self.busy_until[g] = self.busy_until[g].max(busy_through);
    }

    /// Releases a finished frame's episodes: each loses one live member,
    /// and an episode with none left is queued for retirement.
    fn finish_episodes(&mut self, st: &mut Station) {
        for ep in st.episodes.drain(..) {
            if let Some(state) = self.episodes.get_mut(&ep) {
                state.live = state.live.saturating_sub(1);
                if state.live == 0 {
                    self.retired.push(ep);
                }
            }
        }
    }

    fn feedback(&mut self, station: u32, seq: u32, verdict: Verdict, t: u64, lowered: bool) {
        let mut st = self.stations.remove(&station).expect("verdict for unknown station");
        debug_assert!(st.has_frame && st.seq == seq, "verdict for a stale frame");
        match verdict {
            Verdict::Delivered => {
                st.counters.delivered += 1;
                st.backoff.on_success();
                st.retries = 0;
                st.has_frame = false;
                st.pending_attempt = None;
                self.finish_episodes(&mut st);
                self.stats.delivered_frames += 1;
                if lowered {
                    self.stats.lowered_deliveries += 1;
                }
                self.emit(TraceEvent::Deliver { slot: t, station, lowered });
                self.schedule_next_arrival(&mut st, station, t);
            }
            Verdict::Pending | Verdict::Lost => {
                st.counters.collisions += 1;
                st.retries += 1;
                st.backoff.on_collision();
                if lowered {
                    self.stats.lowered_retries += 1;
                }
                if st.retries > self.cfg.mac.retry_limit {
                    st.counters.dropped += 1;
                    st.backoff.on_drop();
                    st.retries = 0;
                    st.has_frame = false;
                    st.pending_attempt = None;
                    self.finish_episodes(&mut st);
                    self.stats.dropped_frames += 1;
                    self.emit(TraceEvent::Drop { slot: t, station });
                    self.schedule_next_arrival(&mut st, station, t);
                } else {
                    let earliest = t + u64::from(self.cfg.ack_slots) + 1;
                    let at = match self.cfg.discipline {
                        Discipline::Dcf { policy } => {
                            earliest
                                + u64::from(st.backoff.draw(policy, &self.cfg.mac, &mut st.rng))
                        }
                        Discipline::SlottedAloha { backoff } => {
                            let frame = u64::from(self.cfg.packet_slots);
                            let delay = backoff.delay_frames(st.backoff.stage(), &mut st.rng);
                            align_up(earliest, frame) + (delay - 1) * frame
                        }
                    };
                    self.schedule_attempt(&mut st, station, at);
                }
            }
        }
        self.stations.insert(station, st);
    }

    fn close_components(&mut self, t: u64, resolver: &mut dyn CollisionResolver) {
        let mut due = std::mem::take(&mut self.closes[t as usize]);
        if due.is_empty() {
            return;
        }
        due.sort_unstable();
        due.dedup();
        let mut batch: Vec<CollisionRound> = Vec::new();
        for cell in due {
            let comp = &mut self.media[cell as usize];
            if comp.close_at != t || comp.txs.is_empty() {
                continue; // superseded by a later extension of the component
            }
            let mut txs = std::mem::take(&mut comp.txs);
            txs.sort_by_key(|tx| (tx.start, tx.station));
            if txs.len() == 1 {
                let tx = txs[0];
                // §4.1 reap opportunity: a solo retransmission of a frame
                // whose earlier attempts sit in stored collisions routes
                // through the resolver as a k = 1 round so the buried
                // peers can be recovered. A solo with no live episodes
                // stays on the symbolic fast path.
                let (episode, round_no, peers) = self.solo_reap_target(tx.station);
                if peers.is_empty() {
                    self.stats.singles += 1;
                    self.feedback(tx.station, tx.seq, Verdict::Delivered, t, false);
                    continue;
                }
                self.stats.recovery_rounds += 1;
                batch.push(CollisionRound {
                    episode,
                    round: round_no,
                    slot: t,
                    cell,
                    txs: vec![TxAttempt {
                        station: tx.station,
                        seq: tx.seq,
                        attempt: tx.attempt,
                        offset_slots: 0,
                    }],
                    peers,
                });
                continue;
            }
            self.stats.max_k = self.stats.max_k.max(txs.len() as u32);
            self.stats.collision_rounds += 1;
            let episode = episode_key(&txs);
            let state = self.episodes.entry(episode).or_insert_with(|| {
                let mut members: Vec<(u32, u32)> =
                    txs.iter().map(|tx| (tx.station, tx.seq)).collect();
                members.sort_unstable();
                EpisodeState { members, rounds: 0, live: txs.len() as u32 }
            });
            state.rounds += 1;
            let round_no = state.rounds;
            let base = txs.iter().map(|tx| tx.start).min().unwrap_or(t);
            for tx in &txs {
                let st = self.stations.get_mut(&tx.station).expect("collider exists");
                if !st.episodes.contains(&episode) {
                    st.episodes.push(episode);
                }
            }
            batch.push(CollisionRound {
                episode,
                round: round_no,
                slot: t,
                cell,
                txs: txs
                    .iter()
                    .map(|tx| TxAttempt {
                        station: tx.station,
                        seq: tx.seq,
                        attempt: tx.attempt,
                        offset_slots: (tx.start - base) as u32,
                    })
                    .collect(),
                peers: Vec::new(),
            });
        }
        if !batch.is_empty() {
            let resolutions = resolver.resolve(&batch);
            assert_eq!(resolutions.len(), batch.len(), "resolver returned a full batch");
            for (round, res) in batch.iter().zip(&resolutions) {
                assert_eq!(res.verdicts.len(), round.txs.len(), "one verdict per transmission");
                if res.lowered {
                    self.stats.lowered_rounds += 1;
                }
                self.emit(TraceEvent::Collision {
                    slot: t,
                    cell: round.cell,
                    k: round.txs.len() as u32,
                    episode: round.episode,
                    round: round.round,
                    lowered: res.lowered,
                });
                for (tx, v) in round.txs.iter().zip(&res.verdicts) {
                    self.feedback(tx.station, tx.seq, *v, t, res.lowered);
                }
                // §4.1 reap deliveries: guarded, because an earlier round
                // of this same batch may already have finished the peer
                for fr in &res.recovered {
                    let alive = self
                        .stations
                        .get(&fr.station)
                        .is_some_and(|p| p.has_frame && p.seq == fr.seq);
                    if alive {
                        self.stats.recovered_frames += 1;
                        self.feedback(fr.station, fr.seq, Verdict::Delivered, t, res.lowered);
                    }
                }
            }
        }
        if !self.retired.is_empty() {
            let mut retired = std::mem::take(&mut self.retired);
            retired.sort_unstable();
            retired.dedup();
            for ep in retired {
                self.episodes.remove(&ep);
                resolver.retire(ep);
            }
        }
    }

    /// For a solo transmission by `station`: the most recent live episode
    /// (its key and accumulated round count) and every still-pending peer
    /// frame across *all* of the station's live episodes — the §4.1 reap
    /// set. Empty peers ⇒ no reap opportunity.
    fn solo_reap_target(&self, station: u32) -> (u64, u32, Vec<FrameRef>) {
        let st = self.stations.get(&station).expect("transmitter exists");
        let Some(&episode) = st.episodes.last() else {
            return (0, 0, Vec::new());
        };
        let mut peers: Vec<FrameRef> = Vec::new();
        for ep in &st.episodes {
            if let Some(state) = self.episodes.get(ep) {
                for &(s, q) in &state.members {
                    if s == station {
                        continue;
                    }
                    let alive = self.stations.get(&s).is_some_and(|p| p.has_frame && p.seq == q);
                    if alive && !peers.contains(&FrameRef { station: s, seq: q }) {
                        peers.push(FrameRef { station: s, seq: q });
                    }
                }
            }
        }
        peers.sort_unstable();
        let rounds = self.episodes.get(&episode).map_or(0, |s| s.rounds);
        (episode, rounds, peers)
    }

    fn finish(mut self) -> CellOutcome {
        let mut counters: Vec<(u32, StationCounters)> = Vec::with_capacity(self.stations.len());
        for (&id, st) in &self.stations {
            if st.has_frame {
                self.stats.in_flight_at_end += 1;
            }
            counters.push((id, st.counters));
        }
        counters.sort_unstable_by_key(|&(id, _)| id);
        CellOutcome { stats: self.stats, trace_hash: self.hash, trace: self.trace, counters }
    }
}

/// Runs one cell simulation against `resolver`.
pub fn run_cell(cfg: &CellConfig, resolver: &mut dyn CollisionResolver) -> CellOutcome {
    assert!(cfg.packet_slots >= 1, "packets must occupy at least one slot");
    assert!(cfg.slots >= 1, "need at least one slot");
    let mut sim = Sim::new(cfg);
    sim.init_arrivals();
    for t in 0..sim.horizon {
        sim.close_components(t, resolver);
        for wake in sim.wheel.drain(t) {
            match wake {
                Wake::Arrival(id) => sim.on_arrival(id, t),
                Wake::Attempt(id) => sim.on_attempt(id, t),
            }
        }
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::Backoff;
    use crate::cell::DecodeModel;

    fn dcf_cfg(stations: u32, slots: u64, seed: u64) -> CellConfig {
        CellConfig {
            stations,
            slots,
            discipline: Discipline::Dcf { policy: Backoff::Exponential },
            sensing: SensingGraph::hidden_groups(2, 2),
            arrivals: ArrivalModel::Poisson { per_slot: 0.05 },
            packet_slots: 12,
            ack_slots: 2,
            mac: MacParams::default(),
            seed,
            record_trace: true,
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let cfg = dcf_cfg(200, 2_000, 42);
        let mut m1 = DecodeModel::zigzag_ap(42);
        let mut m2 = DecodeModel::zigzag_ap(42);
        let a = run_cell(&cfg, &mut m1);
        let b = run_cell(&cfg, &mut m2);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.counters, b.counters);
        assert!(a.stats.offered_frames > 0, "traffic flowed");
    }

    #[test]
    fn different_seed_different_trace() {
        let mut m1 = DecodeModel::zigzag_ap(1);
        let mut m2 = DecodeModel::zigzag_ap(1);
        let a = run_cell(&dcf_cfg(200, 2_000, 1), &mut m1);
        let b = run_cell(&dcf_cfg(200, 2_000, 2), &mut m2);
        assert_ne!(a.trace_hash, b.trace_hash);
    }

    #[test]
    fn frames_are_conserved() {
        let cfg = dcf_cfg(300, 3_000, 7);
        let mut model = DecodeModel::zigzag_ap(7);
        let out = run_cell(&cfg, &mut model);
        let s = out.stats;
        assert_eq!(
            s.offered_frames,
            s.delivered_frames + s.dropped_frames + s.in_flight_at_end,
            "every offered frame is delivered, dropped, or in flight"
        );
        let per_station: u64 = out.counters.iter().map(|(_, c)| u64::from(c.delivered)).sum();
        assert_eq!(per_station, s.delivered_frames);
    }

    #[test]
    fn hidden_groups_collide_cliques_do_not() {
        let mut hidden_cfg = dcf_cfg(64, 4_000, 9);
        hidden_cfg.sensing = SensingGraph::hidden_groups(1, 2);
        hidden_cfg.arrivals = ArrivalModel::Poisson { per_slot: 0.2 };
        let mut model = DecodeModel::zigzag_ap(9);
        let hidden = run_cell(&hidden_cfg, &mut model);
        assert!(hidden.stats.collision_rounds > 0, "hidden groups must collide");

        let mut clique_cfg = hidden_cfg.clone();
        clique_cfg.sensing = SensingGraph::clique(1);
        let mut model = DecodeModel::zigzag_ap(9);
        let clique = run_cell(&clique_cfg, &mut model);
        assert!(clique.stats.defers > 0, "a clique defers instead");
        assert!(
            clique.stats.collision_rounds < hidden.stats.collision_rounds / 2,
            "perfect sensing prevents most collisions ({} vs {})",
            clique.stats.collision_rounds,
            hidden.stats.collision_rounds
        );
    }

    #[test]
    fn deferral_keeps_stage_collision_bumps_it() {
        let mut cfg = dcf_cfg(64, 4_000, 11);
        cfg.sensing = SensingGraph::hidden_groups(1, 2);
        cfg.arrivals = ArrivalModel::Poisson { per_slot: 0.25 };
        let mut model = DecodeModel::zigzag_ap(11);
        let out = run_cell(&cfg, &mut model);

        // For every station: walk its Defer/TxStart events; the TxStart
        // following a Defer must carry the *same* stage (802.11: deferral
        // does not consume a backoff stage).
        use std::collections::HashMap;
        let mut last_defer: HashMap<u32, u32> = HashMap::new();
        let mut checked = 0;
        for ev in &out.trace {
            match *ev {
                TraceEvent::Defer { station, stage, .. } => {
                    last_defer.insert(station, stage);
                }
                TraceEvent::TxStart { station, stage, .. } => {
                    if let Some(ds) = last_defer.remove(&station) {
                        assert_eq!(stage, ds, "deferral must not advance the backoff stage");
                        checked += 1;
                    }
                }
                // The deferred frame can finish out-of-band — e.g. a §4.1
                // reap delivers it while it waits — so the next TxStart is
                // a fresh frame at stage 0. Stop tracking it.
                TraceEvent::Deliver { station, .. } | TraceEvent::Drop { station, .. } => {
                    last_defer.remove(&station);
                }
                _ => {}
            }
        }
        assert!(checked > 0, "need deferral-then-transmit pairs to check");

        // And stages do advance on collisions: some retransmission starts
        // at stage >= 1.
        assert!(
            out.trace
                .iter()
                .any(|ev| matches!(ev, TraceEvent::TxStart { stage, .. } if *stage >= 1)),
            "collisions must advance stages"
        );
    }

    #[test]
    fn retry_limit_drops_frames() {
        // two hidden stations, saturated, and a resolver that never
        // delivers: every frame must exhaust its retries and drop
        use crate::cell::RoundResolution;
        struct NeverDeliver;
        impl CollisionResolver for NeverDeliver {
            fn resolve(&mut self, rounds: &[CollisionRound]) -> Vec<RoundResolution> {
                rounds
                    .iter()
                    .map(|r| RoundResolution {
                        verdicts: vec![Verdict::Lost; r.txs.len()],
                        recovered: Vec::new(),
                        lowered: false,
                    })
                    .collect()
            }
        }
        let cfg = CellConfig {
            stations: 2,
            slots: 60_000,
            discipline: Discipline::Dcf { policy: Backoff::Exponential },
            sensing: SensingGraph::hidden_groups(1, 2),
            arrivals: ArrivalModel::Saturated,
            packet_slots: 12,
            ack_slots: 2,
            mac: MacParams::default(),
            seed: 13,
            record_trace: false,
        };
        let out = run_cell(&cfg, &mut NeverDeliver);
        assert!(out.stats.dropped_frames > 0, "lost verdicts must eventually drop frames");
        // singles still deliver (when backoff happens to separate them)
        for (_, c) in &out.counters {
            assert!(c.collisions > 0);
        }
    }

    #[test]
    fn solo_reaps_recover_buried_peers() {
        // slotted ALOHA at moderate load: pairs collide, one member's
        // eventual solo retransmission must route through the resolver as
        // a k = 1 recovery round and reap the buried peer (§4.1)
        let cfg = CellConfig {
            stations: 400,
            slots: 4_000,
            discipline: Discipline::SlottedAloha {
                backoff: crate::cell::AlohaBackoff::BinaryExponential { base: 2, cap: 64 },
            },
            sensing: SensingGraph::clique(1),
            arrivals: ArrivalModel::Poisson { per_slot: 0.5 },
            packet_slots: 1,
            ack_slots: 1,
            mac: MacParams::default(),
            seed: 21,
            record_trace: false,
        };
        let mut model = DecodeModel::zigzag_ap(21);
        let zz = run_cell(&cfg, &mut model);
        assert!(zz.stats.recovery_rounds > 0, "solos of collided frames route via the resolver");
        assert!(zz.stats.recovered_frames > 0, "a ZigZag AP reaps buried peers");
        assert_eq!(
            zz.stats.offered_frames,
            zz.stats.delivered_frames + zz.stats.dropped_frames + zz.stats.in_flight_at_end,
            "conservation holds with reap deliveries"
        );

        // a conventional AP offers the same recovery rounds but never
        // recovers anything from them
        let mut model = DecodeModel::plain_ap(21);
        let plain = run_cell(&cfg, &mut model);
        assert!(plain.stats.recovery_rounds > 0);
        assert_eq!(plain.stats.recovered_frames, 0, "a conventional AP never reaps");
    }

    #[test]
    fn aloha_attempts_are_frame_aligned() {
        let cfg = CellConfig {
            stations: 500,
            slots: 2_000,
            discipline: Discipline::SlottedAloha {
                backoff: crate::cell::AlohaBackoff::FixedWindow(4),
            },
            sensing: SensingGraph::clique(1),
            arrivals: ArrivalModel::Poisson { per_slot: 0.4 },
            packet_slots: 4,
            ack_slots: 1,
            mac: MacParams::default(),
            seed: 17,
            record_trace: true,
        };
        let mut model = DecodeModel::zigzag_ap(17);
        let out = run_cell(&cfg, &mut model);
        assert!(out.stats.tx_starts > 0);
        for ev in &out.trace {
            if let TraceEvent::TxStart { slot, .. } = ev {
                assert_eq!(slot % 4, 0, "slotted ALOHA transmits on frame boundaries");
            }
        }
        // frame-aligned overlap means full overlap: offsets are all zero,
        // so the same pair colliding twice gives the zigzag-favourable
        // Δ1 ≠ Δ2 only at the signal level (jitter) — symbolically we
        // just check collisions happen and deliver eventually
        assert!(out.stats.collision_rounds > 0);
        assert!(out.stats.delivered_frames > 0);
    }

    #[test]
    fn lazy_materialisation_keeps_population_sparse() {
        let cfg = CellConfig {
            stations: 1_000_000,
            slots: 200,
            discipline: Discipline::Dcf { policy: Backoff::Exponential },
            sensing: SensingGraph::hidden_groups(8, 2),
            arrivals: ArrivalModel::Poisson { per_slot: 1.0 },
            packet_slots: 12,
            ack_slots: 2,
            mac: MacParams::default(),
            seed: 23,
            record_trace: false,
        };
        let mut model = DecodeModel::zigzag_ap(23);
        let out = run_cell(&cfg, &mut model);
        // ~200 expected arrivals over a million stations: the active set
        // must stay within the same order of magnitude
        assert!(out.stats.stations_active < 1_000, "{} active", out.stats.stations_active);
        assert!(out.stats.offered_frames > 50);
    }

    #[test]
    fn geometric_is_positive_and_mean_matches() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = 0.2;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| geometric(&mut rng, p)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
        assert_eq!(geometric(&mut rng, 1.0), 1);
        assert!(geometric(&mut rng, 0.0) > 1 << 40);
    }
}
