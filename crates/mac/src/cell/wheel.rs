//! Slotted event wheel.
//!
//! The simulator is slot-synchronous (one 802.11 slot per tick), so the
//! natural priority queue is a wheel: one bucket per slot, drained in
//! slot order. Within a slot, wakes are sorted by a packed key —
//! arrivals before transmission attempts, then by station id — so the
//! drain order is a pure function of the schedule, never of insertion
//! order.

/// A scheduled wake-up for one station.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wake {
    /// A new frame arrives at the station's queue head.
    Arrival(u32),
    /// The station's backoff expired; it attempts a transmission.
    Attempt(u32),
}

const ATTEMPT_BIT: u64 = 1 << 40;

impl Wake {
    fn pack(self) -> u64 {
        match self {
            Wake::Arrival(s) => u64::from(s),
            Wake::Attempt(s) => u64::from(s) | ATTEMPT_BIT,
        }
    }

    fn unpack(key: u64) -> Self {
        let station = (key & 0xffff_ffff) as u32;
        if key & ATTEMPT_BIT != 0 {
            Wake::Attempt(station)
        } else {
            Wake::Arrival(station)
        }
    }
}

/// One bucket of scheduled wakes per slot, up to a fixed horizon.
#[derive(Debug)]
pub struct EventWheel {
    slots: Vec<Vec<u64>>,
}

impl EventWheel {
    /// A wheel covering slots `0..horizon`.
    pub fn new(horizon: u64) -> Self {
        Self { slots: vec![Vec::new(); horizon as usize] }
    }

    /// Number of slots the wheel covers.
    pub fn horizon(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Schedules `wake` at `slot`. Returns `false` (dropping the wake)
    /// if the slot lies beyond the horizon — the simulation is ending
    /// and the station simply never fires again.
    pub fn schedule(&mut self, slot: u64, wake: Wake) -> bool {
        match self.slots.get_mut(slot as usize) {
            Some(bucket) => {
                bucket.push(wake.pack());
                true
            }
            None => false,
        }
    }

    /// Removes and returns the wakes of `slot`, in canonical order
    /// (arrivals first, then attempts, each by station id).
    pub fn drain(&mut self, slot: u64) -> Vec<Wake> {
        let bucket = match self.slots.get_mut(slot as usize) {
            Some(b) if !b.is_empty() => std::mem::take(b),
            _ => return Vec::new(),
        };
        let mut keys = bucket;
        keys.sort_unstable();
        keys.into_iter().map(Wake::unpack).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_is_sorted_regardless_of_insertion_order() {
        let mut w = EventWheel::new(4);
        assert!(w.schedule(2, Wake::Attempt(7)));
        assert!(w.schedule(2, Wake::Arrival(9)));
        assert!(w.schedule(2, Wake::Attempt(3)));
        assert!(w.schedule(2, Wake::Arrival(1)));
        assert_eq!(
            w.drain(2),
            vec![Wake::Arrival(1), Wake::Arrival(9), Wake::Attempt(3), Wake::Attempt(7)]
        );
        assert!(w.drain(2).is_empty(), "drain empties the bucket");
    }

    #[test]
    fn beyond_horizon_is_dropped() {
        let mut w = EventWheel::new(2);
        assert!(!w.schedule(2, Wake::Arrival(0)));
        assert!(w.drain(1).is_empty());
        assert_eq!(w.horizon(), 2);
    }

    #[test]
    fn pack_roundtrips() {
        for wake in [Wake::Arrival(0), Wake::Attempt(0), Wake::Arrival(u32::MAX), Wake::Attempt(5)]
        {
            assert_eq!(Wake::unpack(wake.pack()), wake);
        }
    }
}
