//! Pluggable MAC disciplines.
//!
//! Two families: 802.11 DCF (carrier sense + exponential backoff over a
//! [`crate::cell::SensingGraph`]) and slotted ALOHA (frame-aligned
//! attempts, no sensing) in the variants the ZigZag follow-on literature
//! studies — binary-exponential, fixed-window "ZigZag-aware" rescheduling
//! (arXiv:1501.00976), and the game-theoretic persistence equilibrium
//! (arXiv:1501.00881).

use crate::backoff::Backoff;
use rand::Rng;

/// The MAC protocol every station of a cell runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Discipline {
    /// 802.11 DCF: sense before transmitting (per the sensing graph),
    /// defer while busy, back off by `policy` on collisions.
    Dcf {
        /// The backoff window policy (fixed or exponential).
        policy: Backoff,
    },
    /// Slotted ALOHA: transmit on frame boundaries without sensing;
    /// reschedule collisions by `backoff`.
    SlottedAloha {
        /// The retransmission-delay policy, in frame slots.
        backoff: AlohaBackoff,
    },
}

/// Retransmission scheduling for slotted ALOHA, in *frames* (one frame =
/// `packet_slots` wheel slots).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlohaBackoff {
    /// Delay uniform in `1..=min(base << stage, cap)` frames.
    BinaryExponential {
        /// Window (frames) at stage 0.
        base: u32,
        /// Window cap (frames).
        cap: u32,
    },
    /// Delay uniform in `1..=window` frames regardless of stage. A small
    /// window is the ZigZag-aware choice (arXiv:1501.00976): colliding
    /// pairs *deliberately* meet again quickly, because the second
    /// collision is what makes both packets decodable.
    FixedWindow(u32),
    /// Retransmit in each following frame with probability `p`
    /// (geometric delay) — the non-cooperative game strategy space of
    /// arXiv:1501.00881; see [`nash_persistence`] for the symmetric
    /// equilibrium value.
    Persist(f64),
}

impl AlohaBackoff {
    /// Draws the retransmission delay in frames (≥ 1).
    pub fn delay_frames<R: Rng + ?Sized>(&self, stage: u32, rng: &mut R) -> u64 {
        match *self {
            AlohaBackoff::BinaryExponential { base, cap } => {
                let w = (u64::from(base.max(1)) << stage.min(16)).min(u64::from(cap.max(1)));
                1 + rng.gen_range(0..w as u32) as u64
            }
            AlohaBackoff::FixedWindow(w) => 1 + rng.gen_range(0..w.max(1)) as u64,
            AlohaBackoff::Persist(p) => {
                let p = p.clamp(1.0e-6, 1.0);
                crate::cell::sim::geometric(rng, p)
            }
        }
    }
}

/// The symmetric Nash-equilibrium persistence probability of the
/// one-shot slotted-ALOHA transmission game (arXiv:1501.00881, the
/// standard result): `n` contenders, each valuing a delivered slot at
/// `v` and paying transmission cost `c`, randomise with
///
/// `p* = 1 − (c/v)^(1/(n−1))`.
///
/// As the cost ratio `c/v → 0` the equilibrium turns aggressive
/// (`p* → 1`, throughput collapses); as `c/v → 1` everyone stays quiet.
pub fn nash_persistence(contenders: f64, cost_ratio: f64) -> f64 {
    let n = contenders.max(2.0);
    let r = cost_ratio.clamp(1.0e-9, 1.0);
    (1.0 - r.powf(1.0 / (n - 1.0))).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn delays_are_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let d = AlohaBackoff::FixedWindow(4).delay_frames(3, &mut rng);
            assert!((1..=4).contains(&d));
            let d = AlohaBackoff::BinaryExponential { base: 2, cap: 8 }.delay_frames(0, &mut rng);
            assert!((1..=2).contains(&d));
            let d = AlohaBackoff::BinaryExponential { base: 2, cap: 8 }.delay_frames(9, &mut rng);
            assert!((1..=8).contains(&d), "cap binds at high stage");
            let d = AlohaBackoff::Persist(0.5).delay_frames(0, &mut rng);
            assert!(d >= 1);
        }
    }

    #[test]
    fn persist_mean_matches_geometric() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = 0.25;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| AlohaBackoff::Persist(p).delay_frames(0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.0 / p).abs() < 0.15, "mean {mean} vs {}", 1.0 / p);
    }

    #[test]
    fn nash_persistence_properties() {
        // interior equilibrium
        let p = nash_persistence(10.0, 0.3);
        assert!(p > 0.0 && p < 1.0);
        // more contenders ⇒ less aggressive
        assert!(nash_persistence(50.0, 0.3) < nash_persistence(5.0, 0.3));
        // cheaper transmissions ⇒ more aggressive
        assert!(nash_persistence(10.0, 0.05) > nash_persistence(10.0, 0.5));
        // cost = value ⇒ nobody transmits
        assert!(nash_persistence(10.0, 1.0) < 1.0e-9);
    }
}
