//! Symbolic decode model.
//!
//! A per-round success model of the AP's receiver, parameterised on the
//! two axes that matter to ZigZag: how many transmissions overlap (`k`)
//! and how many collisions the episode has accumulated (`round`). The
//! shipped defaults are paper-shaped priors; [`DecodeModel::fit`]
//! replaces them with rates measured from real signal-level decodes on
//! the same run (the [`crate::cell::SplitResolver`] cross-validation
//! loop).
//!
//! Every draw comes from a fresh RNG keyed by `(seed, episode, round)`,
//! so verdicts are independent of batch composition, resolution order
//! and thread count.

use super::mix3;
use crate::cell::resolver::{CollisionResolver, CollisionRound, RoundResolution, Tally, Verdict};
use rand::prelude::*;

const MODEL_TAG: u64 = 0x5a5a_4d4f_4445_4c21; // "ZZMODEL!"
const CANCEL_TAG: u64 = 0x5a5a_4341_4e43_454c; // "ZZCANCEL"

/// Symbolic per-round decode-success model.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodeModel {
    /// `true` for a ZigZag AP (stores collisions, peels across rounds);
    /// `false` for a plain receiver (collisions deliver only by capture).
    pub zigzag: bool,
    /// Probability a fresh collision resolves by capture (the strongest
    /// transmission decodes despite the overlap; the rest are lost or
    /// stored).
    pub p_capture: f64,
    /// ZigZag: probability a `k = 2` episode at round ≥ 2 jointly
    /// delivers both frames (two stored collisions with distinct Δ).
    pub p_pair: f64,
    /// ZigZag: probability a `k = 3` episode at round ≥ 3 jointly
    /// delivers all three.
    pub p_triple: f64,
    /// ZigZag §4.1: probability a solo retransmission reaps one stored
    /// peer — the clean decode is subtracted from the stored collision
    /// and the buried partner decodes from the residual. Applied
    /// per peer of a `k = 1` round. Plain receivers keep no store, so
    /// their `p_cancel` is 0.
    pub p_cancel: f64,
    /// Seed for the per-(episode, round) verdict draws.
    pub seed: u64,
}

impl DecodeModel {
    /// Paper-shaped priors for a ZigZag AP. `p_pair` reflects §5's
    /// finding that two collisions with distinct offsets almost always
    /// peel; the exact values are meant to be re-fit from lowered rounds
    /// via [`DecodeModel::fit`].
    pub fn zigzag_ap(seed: u64) -> Self {
        Self { zigzag: true, p_capture: 0.15, p_pair: 0.85, p_triple: 0.55, p_cancel: 0.9, seed }
    }

    /// A conventional 802.11 receiver: no collision store, capture is
    /// the only way a collided frame survives.
    pub fn plain_ap(seed: u64) -> Self {
        Self { zigzag: false, p_capture: 0.15, p_pair: 0.0, p_triple: 0.0, p_cancel: 0.0, seed }
    }

    /// The model's joint-delivery probability for a `(k, round)` bucket
    /// — what the cross-validation test compares against measured rates.
    pub fn predicted_all(&self, k: usize, round: u32) -> f64 {
        match (self.zigzag, k) {
            (_, 0 | 1) => 1.0,
            (true, 2) if round >= 2 => self.p_pair,
            (true, 3) if round >= 3 => self.p_triple,
            _ => 0.0,
        }
    }

    /// Refits the joint-success parameters from signal-level outcome
    /// tallies (buckets with fewer than `min_samples` rounds keep their
    /// prior).
    pub fn fit(&self, tally: &Tally, min_samples: u64) -> Self {
        let mut fitted = self.clone();
        if let Some((rate, n)) = tally.rate_all_from(2, 2) {
            if n >= min_samples {
                fitted.p_pair = rate;
            }
        }
        if let Some((rate, n)) = tally.rate_all_from(3, 3) {
            if n >= min_samples {
                fitted.p_triple = rate;
            }
        }
        if let Some((rate, n)) = tally.recovery_rate() {
            if n >= min_samples {
                fitted.p_cancel = rate;
            }
        }
        fitted
    }

    fn rng_for(&self, episode: u64, round: u32) -> StdRng {
        StdRng::seed_from_u64(mix3(self.seed ^ MODEL_TAG, episode, u64::from(round)))
    }

    fn verdicts_one(&self, round: &CollisionRound) -> Vec<Verdict> {
        let k = round.txs.len();
        let mut rng = self.rng_for(round.episode, round.round);
        if k <= 1 {
            return vec![Verdict::Delivered; k];
        }
        if !self.zigzag {
            // plain receiver: capture or nothing, no second chances
            return if rng.gen_bool(self.p_capture) {
                let winner = rng.gen_range(0..k as u32) as usize;
                (0..k)
                    .map(|i| if i == winner { Verdict::Delivered } else { Verdict::Lost })
                    .collect()
            } else {
                vec![Verdict::Lost; k]
            };
        }
        // ZigZag AP: joint peeling once the episode has enough stored
        // collisions (k rounds for k senders), capture before that;
        // everything undecoded stays Pending because the store keeps it.
        let joint = match k {
            2 if round.round >= 2 => Some(self.p_pair),
            3 if round.round >= 3 => Some(self.p_triple),
            _ => None,
        };
        if let Some(p) = joint {
            if rng.gen_bool(p) {
                return vec![Verdict::Delivered; k];
            }
            return vec![Verdict::Pending; k];
        }
        if k <= 3 {
            if rng.gen_bool(self.p_capture) {
                let winner = rng.gen_range(0..k as u32) as usize;
                return (0..k)
                    .map(|i| if i == winner { Verdict::Delivered } else { Verdict::Pending })
                    .collect();
            }
            return vec![Verdict::Pending; k];
        }
        // k ≥ 4: beyond the store's peeling depth — capture or loss
        if rng.gen_bool(self.p_capture) {
            let winner = rng.gen_range(0..k as u32) as usize;
            (0..k).map(|i| if i == winner { Verdict::Delivered } else { Verdict::Lost }).collect()
        } else {
            vec![Verdict::Lost; k]
        }
    }

    /// Solo-reap draws (§4.1): each peer recovers independently with
    /// probability `p_cancel`. Keyed by `(episode, slot)` rather than
    /// `(episode, round)` — an episode can see several solo
    /// retransmissions at the *same* accumulated round count, and each
    /// must get a fresh draw.
    fn recovered_one(&self, round: &CollisionRound) -> Vec<super::FrameRef> {
        if round.txs.len() != 1 || round.peers.is_empty() || self.p_cancel <= 0.0 {
            return Vec::new();
        }
        let mut rng =
            StdRng::seed_from_u64(mix3(self.seed ^ CANCEL_TAG, round.episode, round.slot));
        round.peers.iter().copied().filter(|_| rng.gen_bool(self.p_cancel)).collect()
    }
}

impl CollisionResolver for DecodeModel {
    fn resolve(&mut self, rounds: &[CollisionRound]) -> Vec<RoundResolution> {
        rounds
            .iter()
            .map(|r| RoundResolution {
                verdicts: self.verdicts_one(r),
                recovered: self.recovered_one(r),
                lowered: false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::resolver::TxAttempt;

    fn round(episode: u64, round_no: u32, k: usize) -> CollisionRound {
        CollisionRound {
            episode,
            round: round_no,
            slot: 0,
            cell: 0,
            txs: (0..k)
                .map(|i| TxAttempt {
                    station: i as u32,
                    seq: 1,
                    attempt: 0,
                    offset_slots: i as u32,
                })
                .collect(),
            peers: Vec::new(),
        }
    }

    #[test]
    fn verdicts_are_order_and_batch_independent() {
        let mut m = DecodeModel::zigzag_ap(3);
        let a = m.resolve(&[round(1, 1, 2), round(2, 2, 2)]);
        let b = m.resolve(&[round(2, 2, 2)]);
        let c = m.resolve(&[round(1, 1, 2)]);
        assert_eq!(a[1], b[0]);
        assert_eq!(a[0], c[0]);
    }

    #[test]
    fn pair_round_two_delivers_at_model_rate() {
        let mut m = DecodeModel::zigzag_ap(11);
        let n = 4000;
        let mut joint = 0;
        for e in 0..n {
            let res = m.resolve(&[round(e, 2, 2)]);
            let delivered = res[0].verdicts.iter().filter(|v| **v == Verdict::Delivered).count();
            assert!(delivered == 0 || delivered == 2, "round-2 pairs deliver jointly");
            if delivered == 2 {
                joint += 1;
            }
        }
        let rate = joint as f64 / n as f64;
        assert!((rate - m.p_pair).abs() < 0.03, "rate {rate} vs p_pair {}", m.p_pair);
    }

    #[test]
    fn first_round_never_jointly_delivers_and_plain_never_stores() {
        let mut zz = DecodeModel::zigzag_ap(5);
        for e in 0..500 {
            let res = zz.resolve(&[round(e, 1, 2)]);
            let d = res[0].verdicts.iter().filter(|v| **v == Verdict::Delivered).count();
            assert!(d <= 1, "fresh pair collision can at best capture one");
            assert!(
                !res[0].verdicts.contains(&Verdict::Lost),
                "zigzag AP stores what it can't decode"
            );
        }
        let mut plain = DecodeModel::plain_ap(5);
        for e in 0..500 {
            let res = plain.resolve(&[round(e, 3, 2)]);
            assert!(!res[0].verdicts.contains(&Verdict::Pending), "plain AP has no store");
        }
    }

    #[test]
    fn solo_reap_recovers_peers_at_p_cancel() {
        use crate::cell::FrameRef;
        let mut zz = DecodeModel::zigzag_ap(21);
        let mut plain = DecodeModel::plain_ap(21);
        let n = 4000;
        let mut hits = 0u64;
        for e in 0..n {
            let mut r = round(e, 1, 1);
            r.slot = 100 + e;
            r.peers = vec![FrameRef { station: 50, seq: 3 }];
            let res = zz.resolve(&[r.clone()]);
            assert_eq!(res[0].verdicts, vec![Verdict::Delivered], "the solo itself decodes");
            hits += res[0].recovered.len() as u64;
            // a plain AP stored nothing: never recovers
            assert!(plain.resolve(&[r])[0].recovered.is_empty());
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - zz.p_cancel).abs() < 0.03, "rate {rate} vs p_cancel {}", zz.p_cancel);
    }

    #[test]
    fn repeated_solos_of_one_episode_draw_independently() {
        use crate::cell::FrameRef;
        let mut m = DecodeModel::zigzag_ap(3);
        m.p_cancel = 0.5;
        let mut outcomes = std::collections::HashSet::new();
        for slot in 0..64 {
            let mut r = round(7, 1, 1);
            r.slot = slot;
            r.peers = vec![FrameRef { station: 1, seq: 0 }];
            outcomes.insert(m.resolve(&[r])[0].recovered.len());
        }
        assert_eq!(outcomes.len(), 2, "same (episode, round) at different slots must vary");
    }

    #[test]
    fn fit_overrides_priors_with_measured_rates() {
        let mut t = Tally::new();
        for _ in 0..40 {
            t.record(2, 2, &[Verdict::Delivered, Verdict::Delivered]);
        }
        for _ in 0..10 {
            t.record(2, 2, &[Verdict::Pending, Verdict::Pending]);
        }
        t.record_recovery(30, 18);
        let m = DecodeModel::zigzag_ap(1).fit(&t, 20);
        assert!((m.p_pair - 0.8).abs() < 1e-12);
        assert!((m.p_cancel - 0.6).abs() < 1e-12, "p_cancel refit from recovery tally");
        // k=3 bucket unobserved ⇒ prior kept
        assert_eq!(m.p_triple, DecodeModel::zigzag_ap(1).p_triple);
        // too few samples ⇒ prior kept
        let m2 = DecodeModel::zigzag_ap(1).fit(&t, 1000);
        assert_eq!(m2.p_pair, DecodeModel::zigzag_ap(1).p_pair);
    }

    #[test]
    fn predicted_all_matches_structure() {
        let m = DecodeModel::zigzag_ap(1);
        assert_eq!(m.predicted_all(2, 1), 0.0);
        assert_eq!(m.predicted_all(2, 2), m.p_pair);
        assert_eq!(m.predicted_all(3, 3), m.p_triple);
        assert_eq!(m.predicted_all(1, 1), 1.0);
        assert_eq!(DecodeModel::plain_ap(1).predicted_all(2, 5), 0.0);
    }
}
