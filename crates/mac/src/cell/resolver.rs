//! The collision-resolution seam between symbolic MAC simulation and the
//! signal-level pipeline.
//!
//! The simulator lowers a collision to a [`CollisionRound`] — which
//! stations, which frames, which retransmission attempt, what slot
//! offsets — and a [`CollisionResolver`] turns it into per-transmission
//! [`Verdict`]s. Implementations:
//!
//! * [`crate::cell::DecodeModel`] — symbolic, per-round probability
//!   draws (fast path for million-station runs);
//! * `zigzag_testbed::cell::SignalResolver` — synthesises the collided
//!   air and decodes it through the real receiver pipeline;
//! * [`SplitResolver`] — deterministically samples a fraction of
//!   episodes down to the signal level and models the rest, tallying
//!   the lowered outcomes so the model can be cross-validated (and
//!   re-fit) against real decodes on the same run.

use super::{hash_fraction, mix2};
use crate::cell::model::DecodeModel;
use std::collections::BTreeMap;

/// A frame reference: one station's in-flight frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FrameRef {
    /// Station id.
    pub station: u32,
    /// Per-station frame sequence number.
    pub seq: u32,
}

/// One transmission inside a collision round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxAttempt {
    /// Transmitting station id.
    pub station: u32,
    /// Per-station frame sequence number.
    pub seq: u32,
    /// Retransmission attempt index of this frame (0 = first try).
    pub attempt: u32,
    /// Start offset in slots, re-referenced so the round's earliest
    /// transmission is 0 — the ZigZag Δ in MAC units.
    pub offset_slots: u32,
}

/// One resolution round at one AP: either a genuine `k ≥ 2` collision,
/// or (`k = 1` with non-empty `peers`) a **solo retransmission** by a
/// station whose earlier attempts sit in stored collisions — the §4.1
/// reap opportunity: decode the solo cleanly, subtract it from the
/// stored collisions, recover the `peers`.
///
/// `episode` identifies the *set of frames* involved (stable across
/// retransmissions of the same frames), and `round` counts how many
/// times this episode has collided — round 2 of a pair is the second
/// collision ZigZag needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollisionRound {
    /// Stable episode key (hash of the sorted `(station, seq)` set).
    pub episode: u64,
    /// 1-based collision count of this episode (for a solo round: the
    /// collisions the episode had accumulated when the solo arrived).
    pub round: u32,
    /// Slot at which the collision resolved (component close).
    pub slot: u64,
    /// Cell (AP) the collision happened at.
    pub cell: u32,
    /// The overlapping transmissions, ordered by (start slot, station).
    pub txs: Vec<TxAttempt>,
    /// Solo rounds only (`txs.len() == 1`): the other still-pending
    /// frames of the transmitter's live episodes — the frames a §4.1
    /// reap of the stored collisions could recover. Empty for `k ≥ 2`
    /// rounds (there the episode *is* the transmission set). Sorted by
    /// `(station, seq)`.
    pub peers: Vec<FrameRef>,
}

/// The fate of one transmission in a resolved round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The frame was decoded (directly, by capture, or by ZigZag across
    /// stored collisions) — the station receives its ACK.
    Delivered,
    /// Not decodable yet, but the AP stored the collision; a
    /// retransmission may resolve it. The station retries.
    Pending,
    /// Unrecoverable at the receiver; the station retries (and
    /// eventually drops the frame at the retry limit).
    Lost,
}

/// A resolved round: one verdict per transmission (same order as
/// [`CollisionRound::txs`]), plus whether the round was actually lowered
/// to the signal level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundResolution {
    /// Per-transmission verdicts, parallel to the round's `txs`.
    pub verdicts: Vec<Verdict>,
    /// Frames from the round's `peers` recovered by reaping stored
    /// collisions with the solo decode (§4.1). The simulator delivers
    /// these *without* the peer ever retransmitting.
    pub recovered: Vec<FrameRef>,
    /// `true` if IQ samples were synthesised and decoded for this round.
    pub lowered: bool,
}

/// Anything that can adjudicate collision rounds.
///
/// `resolve` receives *all* rounds that closed in one slot as a batch —
/// implementations are free to fan the batch out (the signal resolver
/// runs it over `BatchEngine`) but must return verdicts in batch order,
/// independent of thread count.
pub trait CollisionResolver {
    /// Adjudicates a batch of rounds, one [`RoundResolution`] per round,
    /// in order.
    fn resolve(&mut self, rounds: &[CollisionRound]) -> Vec<RoundResolution>;

    /// The episode completed (every frame delivered or dropped): any
    /// per-episode state — stored collisions, channel draws — can be
    /// released.
    fn retire(&mut self, episode: u64) {
        let _ = episode;
    }
}

/// Outcome statistics bucketed by `(k, round)` — the axes the symbolic
/// model is parameterised on.
#[derive(Clone, Debug, Default)]
pub struct Tally {
    buckets: BTreeMap<(usize, u32), BucketStat>,
    recovery_offers: u64,
    recovery_hits: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct BucketStat {
    rounds: u64,
    all_delivered: u64,
    any_delivered: u64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one resolved round.
    pub fn record(&mut self, k: usize, round: u32, verdicts: &[Verdict]) {
        let stat = self.buckets.entry((k, round)).or_default();
        stat.rounds += 1;
        let delivered = verdicts.iter().filter(|v| matches!(v, Verdict::Delivered)).count();
        if delivered == k {
            stat.all_delivered += 1;
        }
        if delivered > 0 {
            stat.any_delivered += 1;
        }
    }

    /// Number of rounds recorded in bucket `(k, round)`.
    pub fn rounds(&self, k: usize, round: u32) -> u64 {
        self.buckets.get(&(k, round)).map_or(0, |s| s.rounds)
    }

    /// Fraction of `(k, round)` rounds where *every* transmission was
    /// delivered (the joint ZigZag success), or `None` if unobserved.
    pub fn rate_all(&self, k: usize, round: u32) -> Option<f64> {
        self.buckets
            .get(&(k, round))
            .filter(|s| s.rounds > 0)
            .map(|s| s.all_delivered as f64 / s.rounds as f64)
    }

    /// Aggregated joint-success rate over all rounds `>= min_round` of
    /// width `k`, with the sample count: the statistic
    /// [`DecodeModel::fit`] consumes.
    pub fn rate_all_from(&self, k: usize, min_round: u32) -> Option<(f64, u64)> {
        let (mut rounds, mut all) = (0u64, 0u64);
        for (&(bk, br), s) in &self.buckets {
            if bk == k && br >= min_round {
                rounds += s.rounds;
                all += s.all_delivered;
            }
        }
        (rounds > 0).then(|| (all as f64 / rounds as f64, rounds))
    }

    /// Observed `(k, round)` buckets with their round counts, sorted.
    pub fn observed(&self) -> Vec<(usize, u32, u64)> {
        self.buckets.iter().map(|(&(k, r), s)| (k, r, s.rounds)).collect()
    }

    /// Records one solo-reap round: `offers` peers were reachable from
    /// stored collisions, `hits` of them were recovered.
    pub fn record_recovery(&mut self, offers: u64, hits: u64) {
        self.recovery_offers += offers;
        self.recovery_hits += hits;
    }

    /// Fraction of offered peers recovered by solo reaping, with the
    /// offer count — what [`DecodeModel::fit`] uses for `p_cancel`.
    pub fn recovery_rate(&self) -> Option<(f64, u64)> {
        (self.recovery_offers > 0).then(|| {
            (self.recovery_hits as f64 / self.recovery_offers as f64, self.recovery_offers)
        })
    }
}

const SAMPLE_TAG: u64 = 0x5a5a_4c4f_5745_5244; // "ZZLOWERD"

/// Routes a deterministic sample of episodes to a signal-level resolver
/// and models the rest symbolically.
///
/// The lowering decision is per *episode* (not per round): every round
/// of a sampled episode goes to the signal level, so the receiver sees
/// complete collision histories and ZigZag has its pairs. Episodes wider
/// than `max_k` stay symbolic regardless (the synthesised-air path
/// supports them, but the model is only fit up to `max_k`).
pub struct SplitResolver<'a> {
    model: DecodeModel,
    signal: &'a mut dyn CollisionResolver,
    rate: f64,
    max_k: usize,
    seed: u64,
    tally: Tally,
    /// Episodes whose `k ≥ 2` rounds actually reached the signal level —
    /// only their solo (`k = 1`) reap rounds go to the signal resolver,
    /// because only for them does it hold stored collisions to reap.
    live_lowered: std::collections::HashSet<u64>,
}

impl<'a> SplitResolver<'a> {
    /// Samples `rate` of episodes (by `(seed, episode)` hash) down to
    /// `signal`; the rest resolve through `model`.
    pub fn new(
        model: DecodeModel,
        signal: &'a mut dyn CollisionResolver,
        rate: f64,
        max_k: usize,
        seed: u64,
    ) -> Self {
        Self {
            model,
            signal,
            rate: rate.clamp(0.0, 1.0),
            max_k: max_k.max(2),
            seed,
            tally: Tally::new(),
            live_lowered: std::collections::HashSet::new(),
        }
    }

    /// Whether `episode` is lowered to the signal level.
    pub fn lowers(&self, episode: u64) -> bool {
        self.rate > 0.0 && hash_fraction(mix2(self.seed ^ SAMPLE_TAG, episode)) < self.rate
    }

    /// Outcome tally of the rounds that were actually lowered — the
    /// cross-validation data for [`DecodeModel::fit`].
    pub fn signal_tally(&self) -> &Tally {
        &self.tally
    }
}

impl CollisionResolver for SplitResolver<'_> {
    fn resolve(&mut self, rounds: &[CollisionRound]) -> Vec<RoundResolution> {
        let mut lowered_idx = Vec::new();
        let mut lowered_rounds = Vec::new();
        let mut symbolic_idx = Vec::new();
        let mut symbolic_rounds = Vec::new();
        for (i, round) in rounds.iter().enumerate() {
            let k = round.txs.len();
            // A solo reap round is only meaningful at the signal level if
            // this episode's collisions actually went there (the per-
            // episode receiver holds their stored air); a k ≥ 2 round
            // lowers whenever the episode is sampled and narrow enough.
            let lower = if k <= 1 {
                self.live_lowered.contains(&round.episode)
            } else {
                k <= self.max_k && self.lowers(round.episode)
            };
            if lower {
                if k >= 2 {
                    self.live_lowered.insert(round.episode);
                }
                lowered_idx.push(i);
                lowered_rounds.push(round.clone());
            } else {
                symbolic_idx.push(i);
                symbolic_rounds.push(round.clone());
            }
        }
        let signal_res = if lowered_rounds.is_empty() {
            Vec::new()
        } else {
            self.signal.resolve(&lowered_rounds)
        };
        let model_res = if symbolic_rounds.is_empty() {
            Vec::new()
        } else {
            self.model.resolve(&symbolic_rounds)
        };
        let mut out: Vec<Option<RoundResolution>> = vec![None; rounds.len()];
        for ((&i, round), res) in lowered_idx.iter().zip(&lowered_rounds).zip(signal_res) {
            if round.txs.len() >= 2 {
                self.tally.record(round.txs.len(), round.round, &res.verdicts);
            } else if !round.peers.is_empty() {
                self.tally.record_recovery(round.peers.len() as u64, res.recovered.len() as u64);
            }
            out[i] = Some(res);
        }
        for (&i, res) in symbolic_idx.iter().zip(model_res) {
            out[i] = Some(res);
        }
        out.into_iter().map(|r| r.expect("every round resolved")).collect()
    }

    fn retire(&mut self, episode: u64) {
        self.live_lowered.remove(&episode);
        self.signal.retire(episode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AllLost;
    impl CollisionResolver for AllLost {
        fn resolve(&mut self, rounds: &[CollisionRound]) -> Vec<RoundResolution> {
            rounds
                .iter()
                .map(|r| RoundResolution {
                    verdicts: vec![Verdict::Lost; r.txs.len()],
                    recovered: Vec::new(),
                    lowered: true,
                })
                .collect()
        }
    }

    fn round(episode: u64, k: usize) -> CollisionRound {
        CollisionRound {
            episode,
            round: 1,
            slot: 10,
            cell: 0,
            txs: (0..k)
                .map(|i| TxAttempt {
                    station: i as u32,
                    seq: 0,
                    attempt: 0,
                    offset_slots: i as u32,
                })
                .collect(),
            peers: Vec::new(),
        }
    }

    #[test]
    fn split_rate_extremes_route_everything() {
        let mut signal = AllLost;
        let model = DecodeModel::zigzag_ap(9);
        let mut all = SplitResolver::new(model.clone(), &mut signal, 1.0, 3, 1);
        for e in 0..64 {
            assert!(all.lowers(e), "rate 1.0 lowers every episode");
        }
        let res = all.resolve(&[round(5, 2), round(6, 3)]);
        assert!(res.iter().all(|r| r.lowered && r.verdicts.iter().all(|v| *v == Verdict::Lost)));
        assert_eq!(all.signal_tally().rounds(2, 1), 1);

        let mut signal = AllLost;
        let mut none = SplitResolver::new(model, &mut signal, 0.0, 3, 1);
        for e in 0..64 {
            assert!(!none.lowers(e));
        }
        let res = none.resolve(&[round(5, 2)]);
        assert!(!res[0].lowered);
        assert_eq!(none.signal_tally().rounds(2, 1), 0);
    }

    #[test]
    fn split_sampling_is_per_episode_and_deterministic() {
        let mut s1 = AllLost;
        let mut s2 = AllLost;
        let model = DecodeModel::zigzag_ap(9);
        let a = SplitResolver::new(model.clone(), &mut s1, 0.3, 2, 42);
        let b = SplitResolver::new(model, &mut s2, 0.3, 2, 42);
        let lowered: Vec<bool> = (0..1000).map(|e| a.lowers(e)).collect();
        assert_eq!(lowered, (0..1000).map(|e| b.lowers(e)).collect::<Vec<_>>());
        let frac = lowered.iter().filter(|&&l| l).count() as f64 / 1000.0;
        assert!((frac - 0.3).abs() < 0.06, "sampled fraction {frac}");
    }

    #[test]
    fn split_respects_max_k() {
        let mut signal = AllLost;
        let model = DecodeModel::zigzag_ap(9);
        let mut split = SplitResolver::new(model, &mut signal, 1.0, 2, 1);
        let res = split.resolve(&[round(7, 4)]);
        assert!(!res[0].lowered, "k=4 stays symbolic at max_k=2");
    }

    #[test]
    fn solo_rounds_follow_their_episode_to_the_signal_level() {
        // A signal resolver that recovers every offered peer.
        struct ReapAll;
        impl CollisionResolver for ReapAll {
            fn resolve(&mut self, rounds: &[CollisionRound]) -> Vec<RoundResolution> {
                rounds
                    .iter()
                    .map(|r| RoundResolution {
                        verdicts: vec![Verdict::Pending; r.txs.len()],
                        recovered: r.peers.clone(),
                        lowered: true,
                    })
                    .collect()
            }
        }
        let mut signal = ReapAll;
        let model = DecodeModel::zigzag_ap(9);
        let mut split = SplitResolver::new(model, &mut signal, 1.0, 3, 1);
        let mut solo = round(5, 1);
        solo.peers = vec![FrameRef { station: 9, seq: 0 }];

        // before any lowered collision of episode 5, the solo stays
        // symbolic (the signal resolver holds nothing to reap)
        let res = split.resolve(&[solo.clone()]);
        assert!(!res[0].lowered, "solo of an un-lowered episode stays symbolic");

        // after a lowered k=2 round, the episode's solo follows it down
        let _ = split.resolve(&[round(5, 2)]);
        let res = split.resolve(&[solo.clone()]);
        assert!(res[0].lowered);
        assert_eq!(res[0].recovered, solo.peers);
        let (rate, offers) = split.signal_tally().recovery_rate().unwrap();
        assert_eq!((rate, offers), (1.0, 1));

        // retiring the episode forgets it
        split.retire(5);
        let res = split.resolve(&[solo]);
        assert!(!res[0].lowered, "retired episodes no longer route solos");
    }

    #[test]
    fn tally_rates() {
        let mut t = Tally::new();
        t.record(2, 2, &[Verdict::Delivered, Verdict::Delivered]);
        t.record(2, 2, &[Verdict::Delivered, Verdict::Lost]);
        t.record(2, 3, &[Verdict::Delivered, Verdict::Delivered]);
        assert_eq!(t.rounds(2, 2), 2);
        assert_eq!(t.rate_all(2, 2), Some(0.5));
        let (rate, n) = t.rate_all_from(2, 2).unwrap();
        assert_eq!(n, 3);
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.observed(), vec![(2, 2, 2), (2, 3, 1)]);
    }
}
