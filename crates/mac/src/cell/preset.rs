//! Literature scenarios as ready-made configurations.
//!
//! * [`CellPreset::DcfHidden`] — 802.11 DCF over a tiled hidden-terminal
//!   topology: the paper's own setting (§5) at cell scale.
//! * [`CellPreset::ZigzagAloha`] — ZigZag-enhanced slotted ALOHA
//!   (arXiv:1501.00976): the same MAC as the plain baseline, but the AP
//!   peels colliding pairs across re-collisions and reaps buried peers
//!   from stored collisions when one member finally gets a clean solo
//!   through (§4.1).
//! * [`CellPreset::PlainAloha`] — classic slotted ALOHA with
//!   binary-exponential backoff and a conventional receiver: the
//!   baseline the ZigZag variant must dominate beyond the saturation
//!   knee.
//! * [`CellPreset::GameAloha`] — every station plays the symmetric Nash
//!   persistence equilibrium of the one-shot transmission game
//!   (arXiv:1501.00881) instead of a cooperative backoff.

use crate::backoff::Backoff;
use crate::cell::discipline::{nash_persistence, AlohaBackoff, Discipline};
use crate::cell::model::DecodeModel;
use crate::cell::sensing::SensingGraph;
use crate::cell::sim::{run_cell, ArrivalModel, CellConfig, CellStats};
use crate::params::MacParams;

/// A named scenario from the paper or its follow-on literature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellPreset {
    /// DCF with `groups_per_cell` mutually-hidden sensing groups tiled
    /// over `cells` APs (12-slot packets, exponential backoff).
    DcfHidden {
        /// Number of independent cells (APs).
        cells: u32,
        /// Hidden sensing groups per cell.
        groups_per_cell: u32,
    },
    /// ZigZag-enhanced slotted ALOHA (arXiv:1501.00976): 1-slot frames,
    /// binary-exponential rescheduling, ZigZag AP.
    ZigzagAloha {
        /// Number of independent cells (APs).
        cells: u32,
    },
    /// Plain slotted ALOHA: 1-slot frames, binary-exponential
    /// rescheduling, conventional AP (capture only).
    PlainAloha {
        /// Number of independent cells (APs).
        cells: u32,
    },
    /// Slotted ALOHA where stations retransmit with the Nash persistence
    /// probability `p* = 1 − (c/v)^(1/(n−1))` (arXiv:1501.00881).
    GameAloha {
        /// Number of independent cells (APs).
        cells: u32,
        /// Effective contender count `n` the players best-respond to.
        contenders: f64,
        /// Transmission-cost to delivery-value ratio `c/v` in `(0, 1]`.
        cost_ratio: f64,
    },
}

impl CellPreset {
    /// `true` if the preset's AP runs ZigZag (stores collisions and
    /// peels across rounds).
    pub fn is_zigzag(&self) -> bool {
        match self {
            CellPreset::DcfHidden { .. } | CellPreset::ZigzagAloha { .. } => true,
            CellPreset::PlainAloha { .. } | CellPreset::GameAloha { .. } => false,
        }
    }

    /// Builds the simulator configuration for this scenario.
    pub fn config(
        &self,
        stations: u32,
        slots: u64,
        offered_per_slot: f64,
        seed: u64,
    ) -> CellConfig {
        let (discipline, sensing, packet_slots) = match *self {
            CellPreset::DcfHidden { cells, groups_per_cell } => (
                Discipline::Dcf { policy: Backoff::Exponential },
                SensingGraph::hidden_groups(cells, groups_per_cell),
                12,
            ),
            CellPreset::ZigzagAloha { cells } => (
                // Deliberately the *same* MAC as the plain baseline: the
                // entire throughput gap is then attributable to the AP —
                // pair peeling across re-collisions (arXiv:1501.00976)
                // plus the §4.1 reap, where one member's eventual solo
                // retransmission recovers its buried peers from the
                // stored collisions without them retransmitting at all.
                Discipline::SlottedAloha {
                    backoff: AlohaBackoff::BinaryExponential { base: 2, cap: 64 },
                },
                SensingGraph::clique(cells),
                1,
            ),
            CellPreset::PlainAloha { cells } => (
                Discipline::SlottedAloha {
                    backoff: AlohaBackoff::BinaryExponential { base: 2, cap: 64 },
                },
                SensingGraph::clique(cells),
                1,
            ),
            CellPreset::GameAloha { cells, contenders, cost_ratio } => (
                Discipline::SlottedAloha {
                    backoff: AlohaBackoff::Persist(nash_persistence(contenders, cost_ratio)),
                },
                SensingGraph::clique(cells),
                1,
            ),
        };
        CellConfig {
            stations,
            slots,
            discipline,
            sensing,
            arrivals: ArrivalModel::Poisson { per_slot: offered_per_slot },
            packet_slots,
            ack_slots: 1,
            mac: MacParams::default(),
            seed,
            record_trace: false,
        }
    }

    /// The symbolic decode model matching this scenario's AP.
    pub fn model(&self, seed: u64) -> DecodeModel {
        if self.is_zigzag() {
            DecodeModel::zigzag_ap(seed)
        } else {
            DecodeModel::plain_ap(seed)
        }
    }
}

/// One point of a throughput-vs-offered-load curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadPoint {
    /// Offered load, frames per slot (aggregate).
    pub offered: f64,
    /// Delivered frames per slot.
    pub throughput: f64,
    /// The run's aggregate statistics.
    pub stats: CellStats,
}

/// Sweeps offered load for `preset`, fully symbolically (the model
/// resolver — no signal lowering), and returns one [`LoadPoint`] per
/// entry of `loads`.
pub fn symbolic_curve(
    preset: CellPreset,
    stations: u32,
    slots: u64,
    loads: &[f64],
    seed: u64,
) -> Vec<LoadPoint> {
    loads
        .iter()
        .map(|&offered| {
            let cfg = preset.config(stations, slots, offered, seed);
            let mut model = preset.model(seed);
            let out = run_cell(&cfg, &mut model);
            LoadPoint { offered, throughput: out.stats.throughput(slots), stats: out.stats }
        })
        .collect()
}

/// Index of the saturation knee of a throughput curve: the load point
/// with maximum throughput (ties resolve to the lowest load).
pub fn saturation_knee(curve: &[LoadPoint]) -> usize {
    let mut best = 0;
    for (i, p) in curve.iter().enumerate() {
        if p.throughput > curve[best].throughput {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_consistent_configs() {
        let zz = CellPreset::ZigzagAloha { cells: 2 };
        let cfg = zz.config(1_000, 500, 0.5, 3);
        assert_eq!(cfg.packet_slots, 1);
        assert!(zz.is_zigzag());
        assert!(zz.model(3).zigzag);

        let plain = CellPreset::PlainAloha { cells: 2 };
        assert!(!plain.is_zigzag());
        assert!(!plain.model(3).zigzag);

        let dcf = CellPreset::DcfHidden { cells: 4, groups_per_cell: 2 };
        let cfg = dcf.config(1_000, 500, 0.5, 3);
        assert_eq!(cfg.sensing.cells(), 4);
        assert_eq!(cfg.packet_slots, 12);
    }

    #[test]
    fn game_preset_uses_equilibrium_persistence() {
        let game = CellPreset::GameAloha { cells: 1, contenders: 10.0, cost_ratio: 0.3 };
        let cfg = game.config(100, 100, 0.5, 1);
        match cfg.discipline {
            Discipline::SlottedAloha { backoff: AlohaBackoff::Persist(p) } => {
                assert!((p - nash_persistence(10.0, 0.3)).abs() < 1e-12);
            }
            other => panic!("unexpected discipline {other:?}"),
        }
    }

    #[test]
    fn zigzag_aloha_beats_plain_at_saturation() {
        // compact version of the bench gate: beyond the knee, the
        // ZigZag-enhanced variant strictly dominates
        let loads = [0.2, 0.5, 0.9, 1.4];
        let zz = symbolic_curve(CellPreset::ZigzagAloha { cells: 1 }, 3_000, 3_000, &loads, 77);
        let plain = symbolic_curve(CellPreset::PlainAloha { cells: 1 }, 3_000, 3_000, &loads, 77);
        let knee = saturation_knee(&plain);
        for i in knee.max(1)..loads.len() {
            assert!(
                zz[i].throughput > plain[i].throughput,
                "zigzag {} <= plain {} at load {}",
                zz[i].throughput,
                plain[i].throughput,
                loads[i]
            );
        }
    }

    #[test]
    fn knee_finds_the_peak() {
        let mk = |offered: f64, thr: f64| LoadPoint {
            offered,
            throughput: thr,
            stats: CellStats::default(),
        };
        let curve = [mk(0.1, 0.1), mk(0.5, 0.35), mk(1.0, 0.3), mk(2.0, 0.2)];
        assert_eq!(saturation_knee(&curve), 1);
    }
}
