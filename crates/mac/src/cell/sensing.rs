//! Configurable sensing graphs.
//!
//! Who can hear whom is the whole hidden-terminal story (§2): the paper's
//! testbed is 10% hidden pairs, 10% partial. At cell scale the graph is
//! expressed over *sensing groups* — stations in the same group share a
//! carrier-sense domain — laid out across independent cells (one AP
//! each). Within a cell, a station senses another group's transmission
//! with a configurable probability: 1 (perfect CSMA), 0 (hidden), or a
//! partial-sensing value in between, matching
//! `zigzag_testbed::topology::Sensing`.

/// How sensing probabilities between groups of one cell are derived.
#[derive(Clone, Debug, PartialEq)]
pub enum SenseRule {
    /// Same group ⇒ perfect sensing; different groups ⇒ hidden. The
    /// classic hidden-terminal layout (paper Fig 1: Alice and Bob both
    /// reach the AP, not each other).
    Within,
    /// Every station senses every other (no hidden terminals at all) —
    /// the CSMA baseline.
    Clique,
    /// Row-major `groups × groups` matrix: `probs[listener * g + tx]` is
    /// the probability that a `listener`-group station senses a
    /// `tx`-group transmission.
    Matrix(Vec<f64>),
    /// Station-level `n × n` matrix (single cell, one group per
    /// station): `probs[listener * n + tx]` — the shape
    /// `zigzag_testbed::topology::Testbed` pairwise sensing lowers to.
    Pairwise(Vec<f64>),
}

/// The sensing topology of a whole deployment: `cells` independent APs,
/// each serving `groups_per_cell` sensing groups.
///
/// Station `i` lives in cell `i % cells`, group `(i / cells) %
/// groups_per_cell` — consecutive station ids stripe across cells so any
/// contiguous id range loads all cells evenly.
#[derive(Clone, Debug, PartialEq)]
pub struct SensingGraph {
    cells: u32,
    groups_per_cell: u32,
    rule: SenseRule,
}

impl SensingGraph {
    /// Perfect carrier sensing everywhere: `cells` APs, one clique each.
    pub fn clique(cells: u32) -> Self {
        Self { cells: cells.max(1), groups_per_cell: 1, rule: SenseRule::Clique }
    }

    /// `groups` mutually-hidden groups per cell (perfect sensing within a
    /// group): the Fig 1 topology tiled across `cells` APs.
    pub fn hidden_groups(cells: u32, groups: u32) -> Self {
        Self { cells: cells.max(1), groups_per_cell: groups.max(1), rule: SenseRule::Within }
    }

    /// Explicit group-level sensing probabilities (row-major
    /// `groups × groups`), replicated in every cell.
    ///
    /// # Panics
    /// If `probs.len() != groups * groups`.
    pub fn matrix(cells: u32, groups: u32, probs: Vec<f64>) -> Self {
        let groups = groups.max(1);
        assert_eq!(probs.len(), (groups * groups) as usize, "matrix must be groups^2");
        Self { cells: cells.max(1), groups_per_cell: groups, rule: SenseRule::Matrix(probs) }
    }

    /// Station-level sensing probabilities for a small single-cell
    /// deployment: `probs[listener][tx]`. This is the adapter target for
    /// `zigzag_testbed::topology` pairwise `Sensing` values.
    ///
    /// # Panics
    /// If `probs` is not square.
    pub fn pairwise(probs: Vec<Vec<f64>>) -> Self {
        let n = probs.len().max(1) as u32;
        let mut flat = Vec::with_capacity((n * n) as usize);
        for row in &probs {
            assert_eq!(row.len(), probs.len(), "pairwise matrix must be square");
            flat.extend_from_slice(row);
        }
        Self { cells: 1, groups_per_cell: n, rule: SenseRule::Pairwise(flat) }
    }

    /// Number of cells (independent APs / media).
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// Sensing groups per cell.
    pub fn groups_per_cell(&self) -> u32 {
        self.groups_per_cell
    }

    /// Total sensing groups across all cells.
    pub fn group_count(&self) -> usize {
        (self.cells * self.groups_per_cell) as usize
    }

    /// The cell (AP) a station transmits to.
    pub fn cell_of(&self, station: u32) -> u32 {
        match self.rule {
            SenseRule::Pairwise(_) => 0,
            _ => station % self.cells,
        }
    }

    /// The station's sensing group *within its cell*.
    pub fn group_of(&self, station: u32) -> u32 {
        match self.rule {
            SenseRule::Pairwise(_) => station.min(self.groups_per_cell - 1),
            _ => (station / self.cells) % self.groups_per_cell,
        }
    }

    /// Global index of the station's sensing group (cell-major), used to
    /// key the busy-until table.
    pub fn global_group(&self, station: u32) -> usize {
        (self.cell_of(station) * self.groups_per_cell + self.group_of(station)) as usize
    }

    /// Probability that `listener` senses a transmission by a station of
    /// local group `tx_group` in the *same* cell.
    pub fn sense_prob(&self, listener: u32, tx_group: u32) -> f64 {
        let lg = self.group_of(listener);
        match &self.rule {
            SenseRule::Clique => 1.0,
            SenseRule::Within => {
                if lg == tx_group {
                    1.0
                } else {
                    0.0
                }
            }
            SenseRule::Matrix(p) | SenseRule::Pairwise(p) => {
                p[(lg * self.groups_per_cell + tx_group) as usize].clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_balances_cells() {
        let g = SensingGraph::hidden_groups(4, 2);
        let mut per_cell = [0u32; 4];
        for s in 0..80 {
            per_cell[g.cell_of(s) as usize] += 1;
        }
        assert_eq!(per_cell, [20; 4]);
        assert_eq!(g.group_count(), 8);
    }

    #[test]
    fn within_rule_hides_cross_group() {
        let g = SensingGraph::hidden_groups(2, 2);
        // stations 0 and 2 share cell 0; 0 is group 0, 2 is group 1
        assert_eq!(g.cell_of(0), g.cell_of(2));
        assert_ne!(g.group_of(0), g.group_of(2));
        assert_eq!(g.sense_prob(0, g.group_of(2)), 0.0);
        assert_eq!(g.sense_prob(0, g.group_of(0)), 1.0);
    }

    #[test]
    fn clique_always_senses() {
        let g = SensingGraph::clique(3);
        assert_eq!(g.groups_per_cell(), 1);
        assert_eq!(g.sense_prob(5, 0), 1.0);
    }

    #[test]
    fn pairwise_indexes_by_station() {
        let g = SensingGraph::pairwise(vec![
            vec![1.0, 0.0, 0.5],
            vec![0.0, 1.0, 1.0],
            vec![0.5, 1.0, 1.0],
        ]);
        assert_eq!(g.cells(), 1);
        assert_eq!(g.global_group(2), 2);
        assert_eq!(g.sense_prob(0, 2), 0.5);
        assert_eq!(g.sense_prob(1, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "groups^2")]
    fn matrix_shape_checked() {
        let _ = SensingGraph::matrix(1, 2, vec![1.0; 3]);
    }
}
