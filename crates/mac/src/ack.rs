//! Synchronous-ACK feasibility (Lemma 4.4.1, Fig 4-5).
//!
//! A ZigZag AP that decoded both colliding packets must ack them without
//! MAC changes: it acks Alice in the SIFS window after her packet ends
//! (the tail of Bob's packet doesn't disturb this — Alice can't hear Bob,
//! and Bob is still transmitting), pads the medium, then acks Bob. This
//! works iff the offset between the colliding packets exceeds
//! SIFS + ACK. Lemma 4.4.1 lower-bounds that probability at
//! `1 − (SIFS+ACK)/(S·CW)` = 93.75% for 802.11g.

use crate::backoff::Backoff;
use crate::params::MacParams;
use rand::Rng;

/// The analytic lower bound of Lemma 4.4.1:
/// `P(offset sufficient) ≥ 1 − (SIFS + ACK)/(S·CW)` where CW is the
/// (doubled) second-collision window.
pub fn sync_ack_probability_bound(params: &MacParams) -> f64 {
    // second-collision window is 2·CW = 64 slots; the Appendix's union
    // bound is (SIFS+ACK)/(S·CW) with CW = half the window
    let window = params.cw_after(1) as f64 + 1.0;
    1.0 - 2.0 * params.sync_ack_window_us() / (params.slot_us * window)
}

/// Monte-Carlo estimate of the same probability: both senders draw slots
/// from the second-collision window; the ack fits iff their offset
/// exceeds SIFS + ACK.
pub fn sync_ack_probability_mc<R: Rng + ?Sized>(
    params: &MacParams,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let policy = Backoff::Exponential;
    let need_us = params.sync_ack_window_us();
    let mut ok = 0usize;
    for _ in 0..trials {
        let a = policy.draw(params, 1, rng);
        let b = policy.draw(params, 1, rng);
        let offset_us = (a.abs_diff(b)) as f64 * params.slot_us;
        if offset_us > need_us {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

/// Outcome of the Fig 4-5 ACK schedule for one decoded collision pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AckSchedule {
    /// Both acks fit synchronously (no sender modification needed).
    pub synchronous: bool,
    /// Time (µs, from the first packet's end) at which Alice's ack is
    /// sent.
    pub ack1_at_us: f64,
    /// Time at which Bob's ack is sent.
    pub ack2_at_us: f64,
}

/// Computes the Fig 4-5 ack schedule given the second packet's offset and
/// both packet durations (all in µs, measured from the first packet's
/// start).
pub fn schedule_acks(
    offset_us: f64,
    len1_us: f64,
    len2_us: f64,
    params: &MacParams,
) -> AckSchedule {
    let end1 = len1_us;
    let end2 = offset_us + len2_us;
    let synchronous = (end2 - end1) > params.sync_ack_window_us();
    // ack1 after SIFS from packet 1's end; AP pads until packet 2 ends,
    // then acks packet 2 after SIFS.
    let ack1_at_us = end1 + params.sifs_us;
    let ack2_at_us = end2.max(ack1_at_us + params.ack_us) + params.sifs_us;
    AckSchedule { synchronous, ack1_at_us, ack2_at_us }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn lemma_bound_is_93_75_percent() {
        // Appendix A: S=20, ACK=30, SIFS=10, second window 2·CW = 64
        // slots ⇒ 1 − 40/(20·32) = 0.9375.
        let b = sync_ack_probability_bound(&MacParams::default());
        assert!((b - 0.9375).abs() < 1e-9, "bound {b}");
    }

    #[test]
    fn monte_carlo_close_to_the_bound() {
        // Exact: P(|a−b| ≤ 2 slots) over U{0..63}² = 314/4096 ⇒ success
        // ≈ 0.9233. The Appendix's 0.9375 comes from the looser estimate
        // (SIFS+ACK)/(S·CW); both are reported by the lemma4_4_1 bench.
        let mut rng = StdRng::seed_from_u64(1);
        let p = MacParams::default();
        let mc = sync_ack_probability_mc(&p, 200_000, &mut rng);
        let exact = 1.0 - 314.0 / 4096.0;
        assert!((mc - exact).abs() < 0.005, "mc {mc} vs exact {exact}");
        let bound = sync_ack_probability_bound(&p);
        assert!((bound - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn ack_schedule_ordering() {
        let p = MacParams::default();
        // same-length packets offset by 3 slots (60 µs > 40 µs window)
        let s = schedule_acks(60.0, 1000.0, 1000.0, &p);
        assert!(s.synchronous);
        assert!(s.ack1_at_us < s.ack2_at_us);
        // ack1 lands while packet 2 is still on the air (Fig 4-5)
        assert!(s.ack1_at_us < 60.0 + 1000.0);
    }

    #[test]
    fn too_small_offset_is_asynchronous() {
        let p = MacParams::default();
        let s = schedule_acks(20.0, 1000.0, 1000.0, &p);
        assert!(!s.synchronous);
    }

    #[test]
    fn acks_never_overlap() {
        let p = MacParams::default();
        for off in [0.0, 20.0, 40.0, 100.0, 400.0] {
            let s = schedule_acks(off, 800.0, 600.0, &p);
            assert!(s.ack2_at_us >= s.ack1_at_us + p.ack_us, "offset {off}");
        }
    }
}
