//! 802.11 MAC timing parameters.
//!
//! The evaluation uses the backward-compatible 802.11g numbers from
//! Appendix A: slot S = 20 µs, SIFS = 10 µs, ACK = 30 µs, CWmin = 31,
//! CWmax = 1023, and the §4.5 footnote's exponential backoff ("doubling
//! the congestion window every time there is a collision").

/// MAC timing and contention parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MacParams {
    /// Slot time, µs.
    pub slot_us: f64,
    /// Short inter-frame space, µs.
    pub sifs_us: f64,
    /// DCF inter-frame space, µs.
    pub difs_us: f64,
    /// ACK transmission duration, µs.
    pub ack_us: f64,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Retry limit before a frame is dropped.
    pub retry_limit: u32,
    /// PHY symbol duration, µs (500 kb/s BPSK ⇒ 2 µs, §5.1c).
    pub symbol_us: f64,
}

impl Default for MacParams {
    /// Backward-compatible 802.11g (Appendix A).
    fn default() -> Self {
        Self {
            slot_us: 20.0,
            sifs_us: 10.0,
            difs_us: 50.0,
            ack_us: 30.0,
            cw_min: 31,
            cw_max: 1023,
            retry_limit: 7,
            symbol_us: 2.0,
        }
    }
}

impl MacParams {
    /// Contention window for the transmission after `retries` collisions
    /// (exponential backoff, §4.5 footnote): CWmin for the initial
    /// transmission, doubling per collision, capped at CWmax.
    pub fn cw_after(&self, retries: u32) -> u32 {
        let cw = (u64::from(self.cw_min) + 1) << retries.min(16);
        (cw - 1).min(u64::from(self.cw_max)) as u32
    }

    /// Converts a slot count to PHY symbols.
    pub fn slots_to_symbols(&self, slots: u32) -> usize {
        ((slots as f64 * self.slot_us) / self.symbol_us).round() as usize
    }

    /// Time needed after a packet to send a synchronous ACK (Appendix A:
    /// SIFS + ACK).
    pub fn sync_ack_window_us(&self) -> f64 {
        self.sifs_us + self.ack_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_appendix_a() {
        let p = MacParams::default();
        assert_eq!(p.slot_us, 20.0);
        assert_eq!(p.sifs_us, 10.0);
        assert_eq!(p.ack_us, 30.0);
        assert_eq!(p.cw_min, 31);
        assert_eq!(p.cw_max, 1023);
    }

    #[test]
    fn exponential_backoff_doubles_and_caps() {
        let p = MacParams::default();
        assert_eq!(p.cw_after(0), 31); // initial window
        assert_eq!(p.cw_after(1), 63); // second collision: 2·CW (Appendix A)
        assert_eq!(p.cw_after(5), 1023);
        assert_eq!(p.cw_after(10), 1023);
    }

    #[test]
    fn slot_symbol_conversion() {
        let p = MacParams::default();
        // 20 µs slot at 2 µs/symbol = 10 symbols
        assert_eq!(p.slots_to_symbols(1), 10);
        assert_eq!(p.slots_to_symbols(31), 310);
    }

    #[test]
    fn ack_window() {
        assert_eq!(MacParams::default().sync_ack_window_us(), 40.0);
    }
}
