//! Behavioural CSMA episode simulation.
//!
//! The paper's testbed methodology (§5.2) replays card-level CSMA traces:
//! what matters downstream is *which transmissions collided and with what
//! offsets*. This module generates those episode traces from a sensing
//! probability — `p = 1` for pairs that sense each other perfectly,
//! `p = 0` for hidden terminals, intermediate for partial sensing — and
//! the 802.11 retransmission rules (fresh jitter per round, exponential
//! backoff, retry limit).

use crate::backoff::Backoff;
use crate::params::MacParams;
use rand::Rng;

/// One retransmission round of a contending pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Round {
    /// Carrier sense worked: the senders serialised; both packets go
    /// through cleanly this round.
    Deferred,
    /// Both transmitted; the packets collided with these start offsets
    /// (slots, re-referenced so the earlier sender is 0).
    Collided {
        /// First sender's offset (slots).
        a: u32,
        /// Second sender's offset (slots).
        b: u32,
    },
}

/// The retransmission history of one packet pair.
#[derive(Clone, Debug)]
pub struct PairEpisode {
    /// Rounds until resolution (a deferral) or the retry limit.
    pub rounds: Vec<Round>,
}

impl PairEpisode {
    /// Slot offsets of every collision round, `(a, b)` per round.
    pub fn collision_offsets(&self) -> Vec<(u32, u32)> {
        self.rounds
            .iter()
            .filter_map(|r| match r {
                Round::Collided { a, b } => Some((*a, *b)),
                Round::Deferred => None,
            })
            .collect()
    }

    /// `true` if the episode ended with carrier sense resolving the
    /// contention.
    pub fn resolved_by_csma(&self) -> bool {
        matches!(self.rounds.last(), Some(Round::Deferred))
    }
}

/// Simulates one contention episode between two senders that sense each
/// other with probability `p_sense` per round.
pub fn pair_episode<R: Rng + ?Sized>(p_sense: f64, params: &MacParams, rng: &mut R) -> PairEpisode {
    let mut rounds = Vec::new();
    for round in 0..=params.retry_limit {
        if rng.gen_bool(p_sense.clamp(0.0, 1.0)) {
            rounds.push(Round::Deferred);
            break;
        }
        let policy = Backoff::Exponential;
        let a = policy.draw(params, round, rng);
        let b = policy.draw(params, round, rng);
        let min = a.min(b);
        rounds.push(Round::Collided { a: a - min, b: b - min });
    }
    PairEpisode { rounds }
}

/// Simulates a hidden-terminal episode of `n` senders: each round, every
/// sender redraws its jitter; all transmissions collide (none can sense
/// the others). Returns per-round per-sender slot offsets — the input to
/// the Fig 4-7 decodability test and the §5.7 three-sender experiments.
pub fn multi_episode<R: Rng + ?Sized>(
    n: usize,
    rounds: usize,
    policy: Backoff,
    params: &MacParams,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    crate::backoff::episode_offsets(n, rounds, policy, params, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn perfect_sensing_never_collides() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let ep = pair_episode(1.0, &p, &mut rng);
            assert_eq!(ep.rounds, vec![Round::Deferred]);
            assert!(ep.resolved_by_csma());
        }
    }

    #[test]
    fn hidden_terminals_always_collide() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let ep = pair_episode(0.0, &p, &mut rng);
            assert!(!ep.resolved_by_csma());
            assert_eq!(ep.rounds.len() as u32, p.retry_limit + 1);
            assert_eq!(ep.collision_offsets().len() as u32, p.retry_limit + 1);
        }
    }

    #[test]
    fn partial_sensing_mixes() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut any_deferred = false;
        let mut any_collided = false;
        for _ in 0..300 {
            let ep = pair_episode(0.5, &p, &mut rng);
            any_deferred |= ep.resolved_by_csma();
            any_collided |= !ep.collision_offsets().is_empty();
        }
        assert!(any_deferred && any_collided);
    }

    #[test]
    fn collision_offsets_rereferenced() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(4);
        let ep = pair_episode(0.0, &p, &mut rng);
        for (a, b) in ep.collision_offsets() {
            assert!(a == 0 || b == 0);
        }
    }

    #[test]
    fn retry_limit_bounds_rounds() {
        let p = MacParams { retry_limit: 3, ..MacParams::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let ep = pair_episode(0.0, &p, &mut rng);
        assert_eq!(ep.rounds.len(), 4);
    }

    #[test]
    fn multi_episode_shape() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(6);
        let ep = multi_episode(5, 5, Backoff::Fixed(16), &p, &mut rng);
        assert_eq!(ep.len(), 5);
        assert!(ep.iter().all(|r| r.len() == 5));
    }
}
