//! Behavioural CSMA episode simulation.
//!
//! The paper's testbed methodology (§5.2) replays card-level CSMA traces:
//! what matters downstream is *which transmissions collided and with what
//! offsets*. This module generates those episode traces from a sensing
//! probability — `p = 1` for pairs that sense each other perfectly,
//! `p = 0` for hidden terminals, intermediate for partial sensing — and
//! the 802.11 retransmission rules (fresh jitter per round, exponential
//! backoff, retry limit).

use crate::backoff::{Backoff, BackoffState};
use crate::params::MacParams;
use rand::Rng;

/// One retransmission round of a contending pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Round {
    /// Carrier sense worked: the senders serialised; both packets go
    /// through cleanly this round.
    Deferred,
    /// Both transmitted; the packets collided with these start offsets
    /// (slots, re-referenced so the earlier sender is 0).
    Collided {
        /// First sender's offset (slots).
        a: u32,
        /// Second sender's offset (slots).
        b: u32,
    },
}

/// The retransmission history of one packet pair.
#[derive(Clone, Debug)]
pub struct PairEpisode {
    /// Rounds until resolution (a deferral) or the retry limit.
    pub rounds: Vec<Round>,
    /// Backoff stage in effect at each round (same length as `rounds`).
    ///
    /// Stages advance only on collisions — a `Deferred` round carries the
    /// stage accumulated by the collisions before it, *not* one more
    /// (802.11 DCF: deferral neither doubles nor resets the window).
    pub stages: Vec<u32>,
}

impl PairEpisode {
    /// Slot offsets of every collision round, `(a, b)` per round.
    pub fn collision_offsets(&self) -> Vec<(u32, u32)> {
        self.rounds
            .iter()
            .filter_map(|r| match r {
                Round::Collided { a, b } => Some((*a, *b)),
                Round::Deferred => None,
            })
            .collect()
    }

    /// `true` if the episode ended with carrier sense resolving the
    /// contention.
    pub fn resolved_by_csma(&self) -> bool {
        matches!(self.rounds.last(), Some(Round::Deferred))
    }
}

/// Simulates one contention episode between two senders that sense each
/// other with probability `p_sense` per round.
///
/// The backoff window is driven by an explicit [`BackoffState`] rather
/// than the round index: only collisions advance the stage, so a
/// `Deferred` round uses (and records) the window earned by the
/// collisions before it instead of silently consuming a stage.
pub fn pair_episode<R: Rng + ?Sized>(p_sense: f64, params: &MacParams, rng: &mut R) -> PairEpisode {
    let policy = Backoff::Exponential;
    let mut rounds = Vec::new();
    let mut stages = Vec::new();
    let mut backoff = BackoffState::new();
    loop {
        stages.push(backoff.stage());
        if rng.gen_bool(p_sense.clamp(0.0, 1.0)) {
            rounds.push(Round::Deferred);
            // carrier sense resolved the contention: both frames are
            // delivered serially, so the window resets
            backoff.on_success();
            break;
        }
        let a = backoff.draw(policy, params, rng);
        let b = backoff.draw(policy, params, rng);
        let min = a.min(b);
        rounds.push(Round::Collided { a: a - min, b: b - min });
        backoff.on_collision();
        if backoff.stage() > params.retry_limit {
            break;
        }
    }
    PairEpisode { rounds, stages }
}

/// Simulates a hidden-terminal episode of `n` senders: each round, every
/// sender redraws its jitter; all transmissions collide (none can sense
/// the others). Returns per-round per-sender slot offsets — the input to
/// the Fig 4-7 decodability test and the §5.7 three-sender experiments.
pub fn multi_episode<R: Rng + ?Sized>(
    n: usize,
    rounds: usize,
    policy: Backoff,
    params: &MacParams,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    crate::backoff::episode_offsets(n, rounds, policy, params, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn perfect_sensing_never_collides() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let ep = pair_episode(1.0, &p, &mut rng);
            assert_eq!(ep.rounds, vec![Round::Deferred]);
            assert!(ep.resolved_by_csma());
        }
    }

    #[test]
    fn hidden_terminals_always_collide() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let ep = pair_episode(0.0, &p, &mut rng);
            assert!(!ep.resolved_by_csma());
            assert_eq!(ep.rounds.len() as u32, p.retry_limit + 1);
            assert_eq!(ep.collision_offsets().len() as u32, p.retry_limit + 1);
        }
    }

    #[test]
    fn partial_sensing_mixes() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mut any_deferred = false;
        let mut any_collided = false;
        for _ in 0..300 {
            let ep = pair_episode(0.5, &p, &mut rng);
            any_deferred |= ep.resolved_by_csma();
            any_collided |= !ep.collision_offsets().is_empty();
        }
        assert!(any_deferred && any_collided);
    }

    #[test]
    fn collision_offsets_rereferenced() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(4);
        let ep = pair_episode(0.0, &p, &mut rng);
        for (a, b) in ep.collision_offsets() {
            assert!(a == 0 || b == 0);
        }
    }

    #[test]
    fn retry_limit_bounds_rounds() {
        let p = MacParams { retry_limit: 3, ..MacParams::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let ep = pair_episode(0.0, &p, &mut rng);
        assert_eq!(ep.rounds.len(), 4);
    }

    #[test]
    fn stages_advance_only_on_collisions() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let ep = pair_episode(0.4, &p, &mut rng);
            assert_eq!(ep.stages.len(), ep.rounds.len());
            // the stage at round i equals the number of collisions in
            // rounds 0..i — deferrals never consume a stage
            let mut collisions = 0u32;
            for (round, &stage) in ep.rounds.iter().zip(&ep.stages) {
                assert_eq!(stage, collisions);
                if matches!(round, Round::Collided { .. }) {
                    collisions += 1;
                }
            }
            // a terminal deferral is drawn at the *uncollided* window
            if ep.resolved_by_csma() {
                let priors = ep.rounds.len() as u32 - 1;
                assert_eq!(*ep.stages.last().unwrap(), priors);
            }
        }
    }

    #[test]
    fn multi_episode_shape() {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(6);
        let ep = multi_episode(5, 5, Backoff::Fixed(16), &p, &mut rng);
        assert_eq!(ep.len(), 5);
        assert!(ep.iter().all(|r| r.len() == 5));
    }
}
