//! # zigzag-mac — 802.11 MAC behaviour simulator
//!
//! The MAC-layer substrate of the reproduction: the 802.11 rules whose
//! interaction with hidden terminals *creates* ZigZag's opportunity —
//! "an 802.11 sender retransmits a packet until it is acked or timed out
//! … and jitters every transmission by a short random interval" (§1).
//!
//! * [`params`] — 802.11g timing (slot/SIFS/DIFS/ACK, CWmin/max,
//!   Appendix A's numbers).
//! * [`backoff`] — random jitter draws, fixed and exponential windows,
//!   and collision offset patterns (the Fig 4-7 workload).
//! * [`sim`] — behavioural CSMA episodes: which transmissions collide,
//!   with what offsets, under perfect/partial/no sensing (the §5.2
//!   trace-replay methodology).
//! * [`ack`] — Lemma 4.4.1 (synchronous-ACK feasibility ≥ 93.75%) and the
//!   Fig 4-5 ack schedule.
//! * [`cell`] — the cell-scale discrete-event co-simulator: millions of
//!   symbolic stations under DCF or slotted-ALOHA disciplines, with
//!   genuine collisions handed to a pluggable [`cell::CollisionResolver`]
//!   (the signal-level pipeline, a fitted [`cell::DecodeModel`], or a
//!   sampled split of the two).

#![warn(missing_docs)]

pub mod ack;
pub mod backoff;
pub mod cell;
pub mod params;
pub mod sim;

pub use ack::{schedule_acks, sync_ack_probability_bound, sync_ack_probability_mc, AckSchedule};
pub use backoff::{Backoff, BackoffState};
pub use params::MacParams;
pub use sim::{multi_episode, pair_episode, PairEpisode, Round};
