//! Integration tests for the cell-scale co-simulator's symbolic layer:
//! determinism of the event trace, MAC/receiver semantics, and the
//! conservation invariant under random seeds and loads.

use proptest::proptest;
use zigzag_mac::cell::{
    run_cell, symbolic_curve, ArrivalModel, CellConfig, CellPreset, DecodeModel, Discipline,
    SensingGraph,
};
use zigzag_mac::{Backoff, MacParams};

fn dcf_cfg(stations: u32, slots: u64, seed: u64) -> CellConfig {
    CellConfig {
        stations,
        slots,
        discipline: Discipline::Dcf { policy: Backoff::Exponential },
        sensing: SensingGraph::hidden_groups(2, 2),
        arrivals: ArrivalModel::Poisson { per_slot: 0.08 },
        packet_slots: 12,
        ack_slots: 2,
        mac: MacParams::default(),
        seed,
        record_trace: false,
    }
}

#[test]
fn same_seed_is_bit_identical() {
    let cfg = dcf_cfg(600, 4_000, 42);
    let a = run_cell(&cfg, &mut DecodeModel::zigzag_ap(42));
    let b = run_cell(&cfg, &mut DecodeModel::zigzag_ap(42));
    assert_eq!(a.trace_hash, b.trace_hash, "same seed must replay bit-identically");
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.counters, b.counters);

    let c = run_cell(&dcf_cfg(600, 4_000, 43), &mut DecodeModel::zigzag_ap(43));
    assert_ne!(a.trace_hash, c.trace_hash, "a different seed must diverge");
}

#[test]
fn hidden_terminals_collide_and_zigzag_outdelivers_plain() {
    let cfg = dcf_cfg(600, 6_000, 9);
    let zz = run_cell(&cfg, &mut DecodeModel::zigzag_ap(9));
    assert!(zz.stats.collision_rounds > 0, "hidden groups must collide");

    let plain = run_cell(&cfg, &mut DecodeModel::plain_ap(9));
    assert_eq!(plain.stats.recovered_frames, 0, "a conventional AP never reaps");
    assert!(
        zz.stats.delivered_frames > plain.stats.delivered_frames,
        "a ZigZag AP must out-deliver a conventional one under hidden terminals ({} vs {})",
        zz.stats.delivered_frames,
        plain.stats.delivered_frames
    );
}

#[test]
fn aloha_presets_trace_the_literature_ordering() {
    // single load point past the knee — the full-curve gate lives in the
    // preset tests and the bench; this pins the preset plumbing
    let loads = [0.8];
    let zz = symbolic_curve(CellPreset::ZigzagAloha { cells: 1 }, 1_500, 2_000, &loads, 5);
    let plain = symbolic_curve(CellPreset::PlainAloha { cells: 1 }, 1_500, 2_000, &loads, 5);
    assert!(
        zz[0].throughput > plain[0].throughput,
        "ZigZag ALOHA must beat plain past the knee ({} vs {})",
        zz[0].throughput,
        plain[0].throughput
    );
    assert!(zz[0].stats.recovered_frames > 0, "the gap comes from pair peeling and §4.1 reaps");
}

proptest! {
    /// Conservation: every offered frame is delivered, dropped, or still
    /// in flight — under random seeds, loads and populations, with the
    /// reap path active.
    #[test]
    fn frames_are_conserved_under_random_loads(
        seed in 0u64..10_000,
        load_pct in 1u32..40,
        stations in 50u32..800,
    ) {
        let mut cfg = dcf_cfg(stations, 2_000, seed);
        cfg.arrivals = ArrivalModel::Poisson { per_slot: f64::from(load_pct) / 100.0 };
        let out = run_cell(&cfg, &mut DecodeModel::zigzag_ap(seed));
        let s = out.stats;
        assert_eq!(
            s.offered_frames,
            s.delivered_frames + s.dropped_frames + s.in_flight_at_end,
            "conservation violated at seed {seed}"
        );
        let per_station: u64 = out.counters.iter().map(|(_, c)| u64::from(c.delivered)).sum();
        assert_eq!(per_station, s.delivered_frames);
    }

    /// The determinism witness is reproducible for arbitrary seeds.
    #[test]
    fn trace_hash_is_reproducible(seed in 0u64..10_000) {
        let cfg = dcf_cfg(200, 1_000, seed);
        let a = run_cell(&cfg, &mut DecodeModel::zigzag_ap(seed));
        let b = run_cell(&cfg, &mut DecodeModel::zigzag_ap(seed));
        assert_eq!(a.trace_hash, b.trace_hash);
    }
}
