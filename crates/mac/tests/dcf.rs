//! Integration tests for the 802.11 DCF building blocks: backoff stage
//! arithmetic, the Lemma 4.4.1 ACK schedule, slot/symbol conversions,
//! and property tests over the episode generator.

use proptest::proptest;
use rand::prelude::*;
use zigzag_mac::backoff::collision_offsets;
use zigzag_mac::sim::Round;
use zigzag_mac::{
    pair_episode, schedule_acks, sync_ack_probability_bound, sync_ack_probability_mc, Backoff,
    BackoffState, MacParams,
};

#[test]
fn exponential_backoff_doubles_caps_and_resets() {
    let p = MacParams::default();
    let policy = Backoff::Exponential;
    let mut st = BackoffState::new();
    assert_eq!(st.window(policy, &p), 31, "initial window is CWmin");

    let mut prev = st.window(policy, &p);
    for _ in 0..20 {
        st.on_collision();
        let w = st.window(policy, &p);
        assert!(w >= prev, "window never shrinks on collision");
        assert!(w <= p.cw_max, "window never exceeds CWmax");
        prev = w;
    }
    assert_eq!(st.window(policy, &p), p.cw_max, "deep stages cap at CWmax");

    // deferral leaves the stage alone; success resets it
    let stage = st.stage();
    st.on_defer();
    assert_eq!(st.stage(), stage, "deferral must not move the stage");
    st.on_success();
    assert_eq!(st.stage(), 0, "success resets to CWmin");
    assert_eq!(st.window(policy, &p), 31);
}

#[test]
fn fixed_backoff_ignores_the_stage() {
    let p = MacParams::default();
    let mut st = BackoffState::new();
    st.on_collision();
    st.on_collision();
    assert_eq!(st.window(Backoff::Fixed(16), &p), 16);
}

#[test]
fn lemma_4_4_1_bound_holds_for_80211g() {
    let p = MacParams::default();
    let bound = sync_ack_probability_bound(&p);
    assert!((bound - 0.9375).abs() < 1e-9, "Appendix A: 1 - 40/(20*32) = 93.75%, got {bound}");

    // the exact discrete probability is P(|a−b| > 2 slots) over U{0..63}²
    // = 1 − 314/4096 ≈ 0.9233; the Appendix's 0.9375 uses the looser
    // continuous estimate — MC must land on the exact value
    let mut rng = StdRng::seed_from_u64(7);
    let mc = sync_ack_probability_mc(&p, 40_000, &mut rng);
    let exact = 1.0 - 314.0 / 4096.0;
    assert!((mc - exact).abs() < 0.01, "Monte-Carlo estimate {mc} vs exact {exact}");
}

#[test]
fn ack_schedule_orders_and_classifies() {
    let p = MacParams::default();
    // offset comfortably larger than SIFS + ACK = 40 µs: synchronous
    let s = schedule_acks(120.0, 1000.0, 1000.0, &p);
    assert!(s.synchronous);
    assert!(s.ack1_at_us > 1000.0, "ack 1 follows packet 1 after SIFS");
    assert!(s.ack2_at_us >= s.ack1_at_us + p.ack_us, "acks must not overlap");

    // tiny offset: the AP cannot fit Alice's ack before Bob ends
    let s = schedule_acks(10.0, 1000.0, 1000.0, &p);
    assert!(!s.synchronous);
}

#[test]
fn slot_symbol_conversion_matches_phy_rates() {
    let p = MacParams::default();
    // 20 µs slot / 2 µs symbol = 10 symbols per slot (§5.1c)
    assert_eq!(p.slots_to_symbols(1), 10);
    assert_eq!(p.slots_to_symbols(12), 120);
    assert_eq!(p.slots_to_symbols(0), 0);
}

proptest! {
    /// Offsets of one collision round are always re-referenced so the
    /// earliest sender starts at slot 0.
    #[test]
    fn collision_offsets_are_zero_referenced(
        n in 2usize..6,
        round in 0u32..8,
        seed in 0u64..1_000,
    ) {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let offs = collision_offsets(n, Backoff::Exponential, &p, round, &mut rng);
        assert_eq!(offs.len(), n);
        assert_eq!(offs.iter().copied().min(), Some(0), "earliest sender is the time origin");
        let w = p.cw_after(round);
        assert!(offs.iter().all(|&o| o <= w), "offsets stay inside the window");
    }

    /// Perfect carrier sense resolves every episode by deferral — no
    /// collision ever happens; absent sensing never defers.
    #[test]
    fn sensing_extremes_bound_the_episode(seed in 0u64..1_000) {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ep = pair_episode(1.0, &p, &mut rng);
        assert!(ep.resolved_by_csma(), "p_sense = 1 must resolve via CSMA");
        assert!(ep.collision_offsets().is_empty(), "p_sense = 1 never collides");

        let ep = pair_episode(0.0, &p, &mut rng);
        assert!(
            ep.rounds.iter().all(|r| matches!(r, Round::Collided { .. })),
            "p_sense = 0 never defers"
        );
        assert!(!ep.resolved_by_csma());
    }

    /// The recorded stage of each round equals the number of collisions
    /// before it: deferrals neither advance nor reset the window.
    #[test]
    fn stages_count_collisions_not_rounds(
        p_sense in 0.05f64..0.95,
        seed in 0u64..1_000,
    ) {
        let p = MacParams::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ep = pair_episode(p_sense, &p, &mut rng);
        assert_eq!(ep.stages.len(), ep.rounds.len());
        let mut collisions = 0u32;
        for (round, &stage) in ep.rounds.iter().zip(&ep.stages) {
            assert_eq!(
                stage, collisions,
                "stage must equal the collisions suffered so far"
            );
            if matches!(round, Round::Collided { .. }) {
                collisions += 1;
            }
        }
    }
}
