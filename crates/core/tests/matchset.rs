//! Property tests for the k-way collision match layer: permutation
//! invariance of detection order, rejection of mismatched client sets,
//! k=2 equivalence with the historical `pair_collisions`, and the
//! degenerate-offset regression.

use proptest::prelude::*;
use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{synth_collision, PlacedTx};
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig, MatchSearch};
use zigzag_core::detect::{detect_packets, Detection};
use zigzag_core::engine::scratch::Scratch;
use zigzag_core::matchset::{
    client_key, find_match_set, find_match_set_with, pair_collisions, CollisionStore,
};
use zigzag_phy::complex::Complex;
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn det(client: u16, pos: usize) -> Detection {
    Detection { pos, client, corr: Complex::real(1.0), score: 1.2 }
}

fn dets_from(raw: &[(u16, usize)]) -> Vec<Detection> {
    raw.iter().map(|&(c, p)| det(c, p)).collect()
}

/// The historical `pair_collisions` semantics (pre-refactor), with the
/// two sanctioned fixes applied: reject equal-shift alignments instead
/// of only the fully-overlapped special case, and take the earliest
/// *distinct-client* current detection as the second packet (a
/// same-client data-sidelobe detection between the true starts used to
/// degenerate the pairing).
fn reference_pair(
    current: &[Detection],
    stored: &[Detection],
) -> Option<[(Detection, Detection); 2]> {
    if current.len() < 2 || stored.len() < 2 {
        return None;
    }
    let c1 = current[0];
    let c2 = *current.iter().find(|d| d.client != c1.client)?;
    let s1 = stored.iter().find(|d| d.client == c1.client)?;
    let s2 = stored.iter().find(|d| d.client == c2.client)?;
    if c1.pos as i64 - s1.pos as i64 == c2.pos as i64 - s2.pos as i64 {
        return None;
    }
    Some([(c1, *s1), (c2, *s2)])
}

proptest! {
    /// k=2 equivalence on random detection lists: the refactored
    /// `pair_collisions` is the old alignment, element for element.
    #[test]
    fn pair_matches_reference_on_random_lists(
        raw_cur in collection::vec((1u16..5, 0usize..2000), 0..6),
        raw_old in collection::vec((1u16..5, 0usize..2000), 0..6),
    ) {
        let current = dets_from(&raw_cur);
        let stored = dets_from(&raw_old);
        prop_assert_eq!(pair_collisions(&current, &stored), reference_pair(&current, &stored));
    }

    /// Stored-side detection order is irrelevant when clients are
    /// distinct (the alignment is by client id, not list position).
    #[test]
    fn pair_invariant_under_stored_permutation(
        c1 in 0usize..2000, c2 in 0usize..2000,
        s1 in 0usize..2000, s2 in 0usize..2000, s3 in 0usize..2000,
        swap_seed: u64,
    ) {
        let current = dets_from(&[(1, c1), (2, c2)]);
        let mut stored = dets_from(&[(1, s1), (2, s2), (3, s3)]);
        let baseline = pair_collisions(&current, &stored);
        let mut rng = StdRng::seed_from_u64(swap_seed);
        for _ in 0..4 {
            let (i, j) = (rng.gen_range(0..stored.len()), rng.gen_range(0..stored.len()));
            stored.swap(i, j);
            prop_assert_eq!(pair_collisions(&current, &stored), baseline.clone());
        }
    }

    /// A stored collision missing one of the current clients never pairs.
    #[test]
    fn pair_rejects_mismatched_client_sets(
        c1 in 0usize..2000, c2 in 0usize..2000,
        s1 in 0usize..2000, s2 in 0usize..2000,
    ) {
        let current = dets_from(&[(1, c1), (2, c2)]);
        let stored = dets_from(&[(1, s1), (3, s2)]); // client 2 absent
        prop_assert!(pair_collisions(&current, &stored).is_none());
    }

    /// Degenerate-offset regression: any pure time shift is rejected,
    /// not just the historical fully-overlapped special case.
    #[test]
    fn pair_rejects_every_equal_shift_alignment(
        base1 in 0usize..1000, delta in 0usize..500, shift in 0usize..500,
    ) {
        let current = dets_from(&[(1, base1 + shift), (2, base1 + delta + shift)]);
        let stored = dets_from(&[(1, base1), (2, base1 + delta)]);
        prop_assert!(pair_collisions(&current, &stored).is_none(), "shift {shift} must be degenerate");
        // breaking the shift on one packet restores the pairing
        let skewed = dets_from(&[(1, base1), (2, base1 + delta + 7)]);
        prop_assert!(pair_collisions(&current, &skewed).is_some());
    }

    /// `client_key` is order-insensitive, sorted, and duplicate-free.
    #[test]
    fn client_key_is_canonical(
        raw in collection::vec((1u16..6, 0usize..2000), 0..8),
        swap_seed: u64,
    ) {
        let mut dets = dets_from(&raw);
        let baseline = client_key(&dets);
        prop_assert!(baseline.windows(2).all(|w| w[0] < w[1]));
        let mut rng = StdRng::seed_from_u64(swap_seed);
        for _ in 0..4 {
            if dets.len() >= 2 {
                let (i, j) = (rng.gen_range(0..dets.len()), rng.gen_range(0..dets.len()));
                dets.swap(i, j);
            }
            prop_assert_eq!(client_key(&dets), baseline.clone());
        }
    }

    /// The store's keyed candidate lookup matches exactly the entries
    /// whose distinct-client set equals the key, oldest first.
    #[test]
    fn store_candidates_respect_key(
        entries in collection::vec(collection::vec((1u16..4, 0usize..500), 1..4), 1..6),
        probe in collection::vec((1u16..4, 0usize..500), 1..4),
    ) {
        let mut store = CollisionStore::new(16);
        let mut expected = Vec::new();
        let key = client_key(&dets_from(&probe));
        for raw in &entries {
            let dets = dets_from(raw);
            let id = store.insert(Vec::new(), dets.clone());
            if client_key(&dets) == key {
                expected.push(id);
            }
        }
        let got: Vec<u64> = store.candidates(&key).map(|e| e.id).collect();
        prop_assert_eq!(got, expected);
    }
}

/// Builds a k-sender collision workload (k buffers, each containing all
/// k transmissions at the given per-buffer offsets) plus the registry
/// and per-buffer detection lists, mirroring what the receiver front end
/// hands the match layer.
#[allow(clippy::type_complexity)]
fn synth_workload(
    k: usize,
    offs: &[Vec<usize>],
    seed: u64,
) -> (Vec<Vec<Complex>>, Vec<Vec<Detection>>, ClientRegistry) {
    let mut rng = StdRng::seed_from_u64(seed);
    let omegas = [-0.08, 0.02, 0.09];
    let links: Vec<LinkProfile> =
        (0..k).map(|i| LinkProfile::clean_with_omega(17.5, omegas[i])).collect();
    let airs: Vec<_> = (0..k)
        .map(|i| {
            let f = Frame::with_random_payload(
                0,
                i as u16 + 1,
                i as u16,
                80,
                seed.wrapping_mul(131).wrapping_add(i as u64),
            );
            encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
        })
        .collect();
    let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();
    let buffers: Vec<Vec<Complex>> = offs
        .iter()
        .map(|o| {
            let placed: Vec<PlacedTx<'_>> =
                (0..k).map(|i| PlacedTx { air: &airs[i], base: &chans[i], start: o[i] }).collect();
            synth_collision(&placed, 1.0, &mut rng).buffer
        })
        .collect();
    let mut reg = ClientRegistry::new();
    for (i, l) in links.iter().enumerate() {
        reg.associate(
            i as u16 + 1,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }
    let cfg = DecoderConfig::default();
    let pre = Preamble::default_len();
    let dets: Vec<Vec<Detection>> =
        buffers.iter().map(|b| detect_packets(b, &pre, &reg, &cfg)).collect();
    (buffers, dets, reg)
}

proptest! {
    /// The staged coarse-to-fine funnel is a pure speedup: on random
    /// clean k = 2 and k = 3 workloads it selects exactly the match set
    /// the exhaustive sweep selects — same members, same alignment, and
    /// the same no-match outcomes (degenerate or undetectable layouts
    /// must be rejected identically by both paths).
    #[test]
    fn staged_search_selects_the_exhaustive_match_set(
        seed: u64,
        k_pick in 0u8..2,
    ) {
        let k = 2 + k_pick as usize;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        // k buffers (k − 1 stored + 1 current), each with all k packets
        // at independent offsets — occasionally degenerate by design
        let offs: Vec<Vec<usize>> =
            (0..k).map(|_| (0..k).map(|_| rng.gen_range(0..500)).collect()).collect();
        let (buffers, dets, reg) = synth_workload(k, &offs, seed);
        let pre = Preamble::default_len();
        let mut store = CollisionStore::new(8);
        for (b, d) in buffers[..k - 1].iter().zip(&dets) {
            store.insert(b.clone(), d.clone());
        }
        let cur = &buffers[k - 1];
        let cur_dets = &dets[k - 1];
        let mut ws = Scratch::default();
        let staged =
            find_match_set_with(MatchSearch::Staged, &mut ws, cur, cur_dets, &store, &reg, &pre);
        let exhaustive =
            find_match_set_with(MatchSearch::Exhaustive, &mut ws, cur, cur_dets, &store, &reg, &pre);
        prop_assert_eq!(staged, exhaustive);
    }
}

/// Signal-level permutation invariance of the k-way matcher: shuffling
/// the order of a stored entry's detection list (what a different merge
/// order would produce) must not change the match-set alignment.
#[test]
fn kway_match_invariant_under_detection_permutation() {
    let mut rng = StdRng::seed_from_u64(3);
    let omegas = [-0.08, 0.02, 0.09];
    let links: Vec<LinkProfile> =
        (0..3).map(|i| LinkProfile::clean_with_omega(18.0, omegas[i])).collect();
    let airs: Vec<_> = (0..3)
        .map(|i| {
            let f = Frame::with_random_payload(
                0,
                i as u16 + 1,
                i as u16,
                150,
                40_000 + (i as u64 + 1) * 131 + i as u64,
            );
            encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
        })
        .collect();
    let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();
    let offs = [[0usize, 310, 620], [0, 620, 310], [100, 0, 450]];
    let buffers: Vec<Vec<Complex>> = offs
        .iter()
        .map(|o| {
            let placed: Vec<PlacedTx<'_>> =
                (0..3).map(|i| PlacedTx { air: &airs[i], base: &chans[i], start: o[i] }).collect();
            synth_collision(&placed, 1.0, &mut rng).buffer
        })
        .collect();
    let mut reg = ClientRegistry::new();
    for (i, l) in links.iter().enumerate() {
        reg.associate(
            i as u16 + 1,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }
    let cfg = DecoderConfig::default();
    let pre = Preamble::default_len();
    let stored_dets: Vec<Vec<Detection>> =
        buffers[..2].iter().map(|b| detect_packets(b, &pre, &reg, &cfg)).collect();
    let cur_dets = detect_packets(&buffers[2], &pre, &reg, &cfg);

    let run = |perm_seed: Option<u64>| {
        let mut store = CollisionStore::new(4);
        for (b, dets) in buffers[..2].iter().zip(stored_dets.iter()) {
            let mut dets = dets.clone();
            if let Some(s) = perm_seed {
                let mut prng = StdRng::seed_from_u64(s);
                for i in (1..dets.len()).rev() {
                    dets.swap(i, prng.gen_range(0..=i));
                }
            }
            store.insert(b.clone(), dets);
        }
        let mut ws = Scratch::default();
        find_match_set(&mut ws, &buffers[2], &cur_dets, &store, &reg, &pre)
            .expect("3-way set must match")
            .alignment
            .iter()
            .map(|row| row.iter().map(|d| (d.client, d.pos)).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };
    let baseline = run(None);
    for s in 0..4 {
        assert_eq!(run(Some(s)), baseline, "permutation seed {s} changed the alignment");
    }
}
