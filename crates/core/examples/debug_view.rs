//! Scratch diagnostic for the ChannelView decode path (not part of the
//! public examples; see /examples at the workspace root for those).
//!
//! Doubles as minimal kernel-backend usage at the lowest level: the
//! backend is constructed explicitly (`scalar`/`optimized` as first
//! argument) and passed to `decode_chunk_into` alongside the buffer pool.
use rand::prelude::*;
use zigzag_channel::fading::ChannelParams;
use zigzag_channel::noise::{add_awgn, amplitude_for_snr_db};
use zigzag_core::config::DecoderConfig;
use zigzag_core::engine::BufPool;
use zigzag_core::view::{ChannelView, ChunkDecode, Direction, PacketLayout};
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::complex::{Complex, ZERO};
use zigzag_phy::filter::Fir;
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::kernel::{BackendKind, Kernel};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn backend() -> BackendKind {
    std::env::args().nth(1).and_then(|a| BackendKind::from_arg(&a)).unwrap_or_default()
}

fn run(name: &str, ch: ChannelParams, snr_db: f64, omega_hint: f64, payload: usize) {
    let mut rng = StdRng::seed_from_u64(7);
    let f = Frame::with_random_payload(0, 1, 7, payload, 99);
    let a = encode_frame(&f, Modulation::Bpsk, &Preamble::default_len());
    let ch = ChannelParams {
        gain: Complex::from_polar(amplitude_for_snr_db(snr_db), ch.gain.arg()),
        ..ch
    };
    let mut buf = ch.apply(&a.symbols, &mut rng);
    buf.extend(std::iter::repeat_n(ZERO, 32));
    add_awgn(&mut rng, &mut buf, 1.0);

    let cfg = DecoderConfig::with_backend(backend());
    let p = Preamble::default_len();
    let v = ChannelView::estimate(&buf, 0, p.symbols(), Some(omega_hint), None, true, &cfg);
    let Some(mut v) = v else {
        println!("{name}: ESTIMATE FAILED");
        return;
    };
    println!(
        "{name}: est gain={:.3} (true {:.3}) mu={:.3} omega={:.5} (true {:.5}) taps={:?}",
        v.gain,
        ch.gain.abs(),
        v.mu,
        v.phase.omega(),
        ch.omega,
        v.taps.taps().iter().map(|t| (t.abs() * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    let layout = PacketLayout {
        preamble: p.symbols().to_vec(),
        plcp_syms: zigzag_phy::frame::PLCP_SYMBOLS,
        payload_mod: a.modulation,
        total_syms: a.len(),
    };
    let mut pool = BufPool::new();
    let mut kernel = Kernel::new(backend());
    let mut out = ChunkDecode::default();
    v.decode_chunk_into(
        &buf,
        0..a.len(),
        &layout,
        Direction::Forward,
        &mut pool,
        &mut kernel,
        &mut out,
    );
    let bits: Vec<u8> =
        out.decided[a.mpdu_start()..].iter().flat_map(|&d| Modulation::Bpsk.decide(d).0).collect();
    let ber = bit_error_rate(&a.mpdu_bits, &bits[..a.mpdu_bits.len()]);
    // where do errors start?
    let first_err = a.mpdu_bits.iter().zip(bits.iter()).position(|(x, y)| x != y);
    println!("    BER {ber:.5} first_err {first_err:?} of {}", a.mpdu_bits.len());
}

fn main() {
    run("clean           ", ChannelParams::ideal(), 14.0, 0.0, 300);
    run(
        "phase only      ",
        ChannelParams { gain: Complex::from_polar(1.0, 0.3), ..ChannelParams::ideal() },
        14.0,
        0.0,
        300,
    );
    run(
        "omega           ",
        ChannelParams { omega: 0.02, ..ChannelParams::ideal() },
        14.0,
        0.02,
        300,
    );
    run(
        "mu              ",
        ChannelParams { sampling_offset: -0.2, ..ChannelParams::ideal() },
        14.0,
        0.0,
        300,
    );
    run(
        "omega+mu+phase  ",
        ChannelParams {
            gain: Complex::from_polar(1.0, 0.3),
            omega: 0.02,
            sampling_offset: -0.2,
            ..ChannelParams::ideal()
        },
        14.0,
        0.02,
        300,
    );
    run(
        "isi             ",
        ChannelParams {
            isi: Fir::new(
                vec![Complex::new(0.08, 0.02), Complex::real(1.0), Complex::new(0.18, -0.06)],
                1,
            ),
            ..ChannelParams::ideal()
        },
        14.0,
        0.0,
        300,
    );
    run(
        "phase noise     ",
        ChannelParams { phase_noise: 0.01, ..ChannelParams::ideal() },
        14.0,
        0.0,
        300,
    );
    run(
        "drift           ",
        ChannelParams { sampling_drift: 1.5e-5, ..ChannelParams::ideal() },
        14.0,
        0.0,
        1500,
    );
    run(
        "all 12dB        ",
        ChannelParams {
            gain: Complex::from_polar(1.0, -0.7),
            omega: 0.05,
            sampling_offset: 0.25,
            sampling_drift: 1.5e-5,
            isi: Fir::new(
                vec![Complex::new(0.08, 0.02), Complex::real(1.0), Complex::new(0.18, -0.06)],
                1,
            ),
            phase_noise: 0.01,
        },
        12.0,
        0.05 + 2e-4,
        400,
    );
}
