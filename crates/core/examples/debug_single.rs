//! Scratch diagnostic for decode_single paths.
//!
//! Doubles as minimal kernel-backend usage: the phy backend is
//! constructed explicitly (`DecoderConfig::with_backend` +
//! `Scratch::with_backend`) and threaded through `decode_single_with`.
//! Pass `scalar` or `optimized` as the first argument to pick one.
use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::clean_reception;
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_core::engine::Scratch;
use zigzag_core::standard::decode_single_with;
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::kernel::BackendKind;
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn main() {
    // backend from argv (`scalar`/`optimized`), else the process default
    let backend =
        std::env::args().nth(1).and_then(|a| BackendKind::from_arg(&a)).unwrap_or_default();
    let cfg = DecoderConfig::with_backend(backend);
    let mut ws = Scratch::with_backend(backend);
    println!("kernel backend: {}", backend.name());
    for (m, snr) in [
        (Modulation::Bpsk, 12.0),
        (Modulation::Qpsk, 22.0),
        (Modulation::Qam16, 22.0),
        (Modulation::Qam16, 28.0),
        (Modulation::Qam64, 30.0),
    ] {
        let mut rng = StdRng::seed_from_u64(3);
        let l = LinkProfile::clean(snr);
        let f = Frame::with_random_payload(0, 1, 3, 300, 56);
        let a = encode_frame(&f, m, &Preamble::default_len());
        let rx = clean_reception(&a, &l, &mut rng);
        let mut reg = ClientRegistry::new();
        reg.associate(
            1,
            ClientInfo { omega: l.association_omega(), snr_db: snr, taps: l.isi.clone() },
        );
        let out = decode_single_with(
            &rx.buffer,
            0,
            Some(1),
            &reg,
            &Preamble::default_len(),
            true,
            &cfg,
            &mut ws,
        )
        .unwrap();
        let ber = bit_error_rate(&a.mpdu_bits, &out.scrambled_bits);
        let first = a.mpdu_bits.iter().zip(out.scrambled_bits.iter()).position(|(x, y)| x != y);
        println!(
            "{m:?} @{snr}dB: plcp={:?} frame_ok={} BER={ber:.4} first_err={first:?} len_bits={} got={}",
            out.plcp.map(|p| p.modulation),
            out.frame.is_some(),
            a.mpdu_bits.len(),
            out.scrambled_bits.len(),
        );
    }
}
