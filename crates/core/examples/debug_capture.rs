//! Scratch diagnostic for the capture/IC path.
//!
//! Doubles as minimal kernel-backend usage for the capture flow: the
//! backend is picked explicitly (`scalar`/`optimized` as first argument)
//! and one `Scratch` is threaded through the `_with` entry points.
use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{synth_collision, PlacedTx};
use zigzag_core::capture::{capture_decode_with, subtract_decoded_with};
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_core::engine::Scratch;
use zigzag_core::standard::decode_single_with;
use zigzag_phy::bits::bit_error_rate;
use zigzag_phy::complex::mean_power;
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::kernel::BackendKind;
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn main() {
    let backend =
        std::env::args().nth(1).and_then(|a| BackendKind::from_arg(&a)).unwrap_or_default();
    println!("kernel backend: {}", backend.name());
    let mut ws = Scratch::with_backend(backend);
    let mut rng = StdRng::seed_from_u64(3);
    let la = LinkProfile::typical(22.0, &mut rng);
    let lb = LinkProfile::typical(13.0, &mut rng);
    let fa = Frame::with_random_payload(0, 1, 1, 250, 901);
    let fb = Frame::with_random_payload(0, 2, 1, 250, 902);
    let a = encode_frame(&fa, Modulation::Bpsk, &Preamble::default_len());
    let b = encode_frame(&fb, Modulation::Bpsk, &Preamble::default_len());
    let ca = la.draw(&mut rng);
    let cb = lb.draw(&mut rng);
    let delta = 300;
    let sc = synth_collision(
        &[PlacedTx { air: &a, base: &ca, start: 0 }, PlacedTx { air: &b, base: &cb, start: delta }],
        1.0,
        &mut rng,
    );
    let mut reg = ClientRegistry::new();
    reg.associate(
        1,
        ClientInfo { omega: la.association_omega(), snr_db: 22.0, taps: la.isi.clone() },
    );
    reg.associate(
        2,
        ClientInfo { omega: lb.association_omega(), snr_db: 13.0, taps: lb.isi.clone() },
    );
    let cfg = DecoderConfig::with_backend(backend);
    let p = Preamble::default_len();

    let strong =
        decode_single_with(&sc.buffer, 0, Some(1), &reg, &p, false, &cfg, &mut ws).unwrap();
    println!("strong frame ok: {}", strong.frame.is_some());
    println!(
        "strong view: gain={:.2} (true {:.2}) omega={:.5} (true {:.5}) mu={:.3} (true {:.3})",
        strong.view.gain,
        ca.gain.abs(),
        strong.view.phase.omega(),
        ca.omega,
        strong.view.mu,
        -ca.sampling_offset
    );
    let residual = subtract_decoded_with(&sc.buffer, &strong, &p, &mut ws);
    // power profile: before vs after over A-only region [0,200) and overlap
    println!(
        "pwr A-only [50,200): {:.1} -> {:.2}",
        mean_power(&sc.buffer[50..200]),
        mean_power(&residual[50..200])
    );
    println!(
        "pwr overlap [300,2000): {:.1} -> {:.2}",
        mean_power(&sc.buffer[300..2000]),
        mean_power(&residual[300..2000])
    );
    let weak =
        decode_single_with(&residual, delta, Some(2), &reg, &p, true, &cfg, &mut ws).unwrap();
    println!(
        "weak view: gain={:.2} (true {:.2}) mu={:.3} omega={:.5} (true {:.5})",
        weak.view.gain,
        cb.gain.abs(),
        weak.view.mu,
        weak.view.phase.omega(),
        cb.omega
    );
    let ber = bit_error_rate(&b.mpdu_bits, &weak.scrambled_bits);
    println!("weak BER {ber:.4} plcp {:?}", weak.plcp.is_some());

    // cancellation depth with ORACLE view (true params)
    {
        use zigzag_core::view::ChannelView;
        let tp = &sc.truth[0].params;
        let v = ChannelView::from_params(
            0,
            -tp.sampling_offset,
            tp.gain.abs(),
            tp.gain.arg(),
            tp.omega,
            tp.isi.clone(),
            &cfg,
        );
        let resid2 = zigzag_core::capture::subtract_known(&sc.buffer, &a.symbols, &v);
        println!(
            "oracle-view cancellation [50,200): {:.1} -> {:.2}, overlap: {:.2}",
            mean_power(&sc.buffer[50..200]),
            mean_power(&resid2[50..200]),
            mean_power(&resid2[300..2000])
        );
    }

    // also through capture_decode
    let r = capture_decode_with(&sc.buffer, 0, Some(1), delta, Some(2), &reg, &p, &cfg, &mut ws)
        .unwrap();
    let w = r.weak.unwrap();
    println!("via capture_decode: weak BER {:.4}", bit_error_rate(&b.mpdu_bits, &w.scrambled_bits));
}

// ---- appended experiment: cancellation depth vs mu accuracy ----
#[allow(dead_code)]
fn extra() {}
