//! Empirical sweep behind the staged-matching `PRE_T` prefilter margin
//! (`matchset.rs`): regenerates the staged-vs-exhaustive proptest corpus
//! (clean k = 2 / k = 3 workloads, random offsets in 0..500) and
//! measures, for every same-client candidate pair the funnel evaluates,
//! the integer-τ half-window prefilter metric alongside the exact
//! full-window (τ = 0.25) and coarse bucket (τ = 0.5) metrics.
//!
//! The prefilter may cut a pair without breaking staged ≡ exhaustive
//! identity only if neither exact metric clears `MATCH_THRESHOLD`, so
//! the tightest safe bar is the minimum prefilter metric over all
//! threshold-clearing pairs. The sweep prints that floor (as a fraction
//! of the threshold), the sub-threshold noise ceiling, and a cut-rate
//! table over candidate factors — the numbers quoted in `PRE_T`'s
//! documentation.
//!
//!     cargo run --release -p zigzag-core --example pre_t_sweep [seeds]

use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::{synth_collision, PlacedTx};
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig, MatchSearch};
use zigzag_core::detect::{detect_packets, Detection};
use zigzag_core::engine::scratch::Scratch;
use zigzag_core::matcher::{MATCH_THRESHOLD, MATCH_WINDOW};
use zigzag_core::matchset::{find_match_set_with, CollisionStore};
use zigzag_phy::complex::Complex;
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::kernel::Kernel;
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

/// One candidate pair's three metrics: the integer-τ half-window
/// prefilter, and the two exact stages it gates.
struct Probe {
    pre: f64,
    full: f64,
    coarse: f64,
}

fn workload(k: usize, seed: u64) -> (Vec<Vec<Complex>>, Vec<Vec<Detection>>, ClientRegistry) {
    let mut rng = StdRng::seed_from_u64(seed);
    let omegas = [-0.08, 0.02, 0.09];
    let links: Vec<LinkProfile> =
        (0..k).map(|i| LinkProfile::clean_with_omega(17.5, omegas[i])).collect();
    let airs: Vec<_> = (0..k)
        .map(|i| {
            let f = Frame::with_random_payload(
                0,
                i as u16 + 1,
                i as u16,
                80,
                seed.wrapping_mul(131).wrapping_add(i as u64),
            );
            encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
        })
        .collect();
    let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();
    let mut off_rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    let buffers: Vec<Vec<Complex>> = (0..k)
        .map(|_| {
            let placed: Vec<PlacedTx<'_>> = (0..k)
                .map(|i| PlacedTx {
                    air: &airs[i],
                    base: &chans[i],
                    start: off_rng.gen_range(0..500),
                })
                .collect();
            synth_collision(&placed, 1.0, &mut rng).buffer
        })
        .collect();
    let mut reg = ClientRegistry::new();
    for (i, l) in links.iter().enumerate() {
        reg.associate(
            i as u16 + 1,
            ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
        );
    }
    let cfg = DecoderConfig::default();
    let pre = Preamble::default_len();
    let dets: Vec<Vec<Detection>> =
        buffers.iter().map(|b| detect_packets(b, &pre, &reg, &cfg)).collect();
    (buffers, dets, reg)
}

/// Outcome-level identity check: staged-vs-exhaustive `find_match_set`
/// divergence count over the corpus, at whatever prefilter bar the
/// `ZIGZAG_PRE_T` override set for this process.
fn identity_divergences(seeds: u64) -> usize {
    let pre = Preamble::default_len();
    let mut divergences = 0;
    for seed in 0..seeds {
        for k in [2usize, 3] {
            let (buffers, dets, reg) = workload(k, seed);
            let mut store = CollisionStore::new(8);
            for (b, d) in buffers[..k - 1].iter().zip(&dets) {
                store.insert(b.clone(), d.clone());
            }
            let mut ws = Scratch::default();
            let cur = &buffers[k - 1];
            let cur_dets = &dets[k - 1];
            let staged = find_match_set_with(
                MatchSearch::Staged,
                &mut ws,
                cur,
                cur_dets,
                &store,
                &reg,
                &pre,
            );
            let exhaustive = find_match_set_with(
                MatchSearch::Exhaustive,
                &mut ws,
                cur,
                cur_dets,
                &store,
                &reg,
                &pre,
            );
            if staged != exhaustive {
                divergences += 1;
            }
        }
    }
    divergences
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // child mode of the outcome-identity leg: the prefilter bar is fixed
    // per process (OnceLock), so the parent re-execs once per factor
    if args.get(1).map(String::as_str) == Some("--identity") {
        let seeds: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(400);
        println!("{}", identity_divergences(seeds));
        return;
    }
    let seeds: u64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(400);
    let mut kernel = Kernel::default();
    let mut probes: Vec<Probe> = Vec::new();
    for seed in 0..seeds {
        for k in [2usize, 3] {
            let (buffers, dets, _) = workload(k, seed);
            // every stored/current buffer ordering the funnel can see
            let cur = k - 1;
            for stored in 0..k - 1 {
                for dc in &dets[cur] {
                    for ds in &dets[stored] {
                        if dc.client != ds.client {
                            continue;
                        }
                        let (a, p) = (&buffers[cur], dc.pos);
                        let (b, q) = (&buffers[stored], ds.pos);
                        probes.push(Probe {
                            pre: kernel.match_score(a, p, b, q, MATCH_WINDOW / 2, 1.0, None).metric,
                            full: kernel.match_score(a, p, b, q, MATCH_WINDOW, 0.25, None).metric,
                            coarse: kernel
                                .match_score(a, p, b, q, MATCH_WINDOW / 2, 0.5, None)
                                .metric,
                        });
                    }
                }
            }
        }
    }

    // identity constraint: a pair either exact stage would accept must
    // survive the prefilter
    let survivors: Vec<&Probe> =
        probes.iter().filter(|p| p.full > MATCH_THRESHOLD || p.coarse > MATCH_THRESHOLD).collect();
    let cuttable: Vec<&Probe> = probes
        .iter()
        .filter(|p| p.full <= MATCH_THRESHOLD && p.coarse <= MATCH_THRESHOLD)
        .collect();
    let floor = survivors.iter().map(|p| p.pre).fold(f64::INFINITY, f64::min);
    let noise_ceiling = cuttable.iter().map(|p| p.pre).fold(0.0f64, f64::max);
    println!(
        "corpus: {} pairs ({} must survive, {} cuttable) over {seeds} seeds × k ∈ {{2,3}}",
        probes.len(),
        survivors.len(),
        cuttable.len()
    );
    println!(
        "survivor prefilter floor: {floor:.4} = {:.3}·MATCH_THRESHOLD",
        floor / MATCH_THRESHOLD
    );
    println!("sub-threshold noise ceiling: {noise_ceiling:.4}");
    println!();
    println!("factor   bar      cut-rate  pairs-lost  outcome-divergences");
    let exe = std::env::current_exe().expect("current_exe");
    for f in [0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90] {
        let bar = f * MATCH_THRESHOLD;
        let cut = cuttable.iter().filter(|p| p.pre <= bar).count();
        let lost = survivors.iter().filter(|p| p.pre <= bar).count();
        // outcome identity needs the bar live inside the funnel; it is
        // process-wide, so run each factor in a child process
        let out = std::process::Command::new(&exe)
            .args(["--identity", &seeds.to_string()])
            .env("ZIGZAG_PRE_T", f.to_string())
            .output()
            .expect("identity child");
        let diverged = String::from_utf8_lossy(&out.stdout).trim().to_string();
        println!(
            "{f:.2}     {bar:.4}   {:5.1}%    {lost:4}        {diverged}",
            100.0 * cut as f64 / cuttable.len().max(1) as f64
        );
    }
}
