//! Scratch diagnostic: full pair decode with error-position mapping.
//!
//! Doubles as minimal kernel-backend usage for the ZigZag executor: the
//! backend is picked explicitly (`scalar`/`optimized` as first argument)
//! and threaded via `decode_with` and an explicit `Scratch`.
use rand::prelude::*;
use zigzag_channel::fading::LinkProfile;
use zigzag_channel::scenario::hidden_pair;
use zigzag_core::config::{ClientInfo, ClientRegistry, DecoderConfig};
use zigzag_core::engine::Scratch;
use zigzag_core::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use zigzag_phy::frame::{encode_frame, Frame};
use zigzag_phy::kernel::BackendKind;
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

fn main() {
    let backend =
        std::env::args().nth(1).and_then(|a| BackendKind::from_arg(&a)).unwrap_or_default();
    println!("kernel backend: {}", backend.name());
    let seed = 21;
    let mut rng = StdRng::seed_from_u64(seed);
    let snr = 12.0;
    let payload = 1500;
    let (d1, d2) = (400usize, 120usize);
    let la = LinkProfile::typical(snr, &mut rng);
    let lb = LinkProfile::typical(snr, &mut rng);
    let fa = Frame::with_random_payload(0, 1, 10, payload, 1001);
    let fb = Frame::with_random_payload(0, 2, 20, payload, 1002);
    let a = encode_frame(&fa, Modulation::Bpsk, &Preamble::default_len());
    let b = encode_frame(&fb, Modulation::Bpsk, &Preamble::default_len());
    let hp = hidden_pair(&a, &b, &la, &lb, d1, d2, &mut rng);
    let mut reg = ClientRegistry::new();
    reg.associate(
        1,
        ClientInfo { omega: la.association_omega(), snr_db: snr, taps: la.isi.clone() },
    );
    reg.associate(
        2,
        ClientInfo { omega: lb.association_omega(), snr_db: snr, taps: lb.isi.clone() },
    );
    let dec = ZigzagDecoder::new(DecoderConfig::with_backend(backend), &reg);
    let mut ws = Scratch::with_backend(backend);
    let out = dec.decode_with(
        &[
            CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, d1)] },
            CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, d2)] },
        ],
        &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
        &mut ws,
    );
    for (name, air, res) in [("A", &a, &out.packets[0]), ("B", &b, &out.packets[1])] {
        let errs: Vec<usize> = air
            .mpdu_bits
            .iter()
            .zip(res.scrambled_bits.iter())
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, _)| i)
            .collect();
        println!(
            "{name}: {} errors of {} (frame ok: {})",
            errs.len(),
            air.mpdu_bits.len(),
            res.frame.is_some()
        );
        println!("  positions: {:?}", &errs[..errs.len().min(40)]);
    }
}
