//! The ZigZag access-point receiver front end.
//!
//! Implements the §5.1(d) flow: "First, the packet is detected … Second,
//! we try to decode the packet using the standard approach. If standard
//! decoding fails, we use the algorithm in §4.2.1 to detect whether the
//! packet has experienced a collision, and where exactly the colliding
//! packet starts. If a collision is detected, the receiver matches the
//! packet against any recent reception (§4.2.2). If no match is found,
//! the packet is stored in case it helps decoding a future collision. If
//! a match is found, the receiver performs chunk-by-chunk decoding on the
//! two collisions (§4.2.3). Note that even when the standard decoding
//! succeeds we still check whether we can decode a second packet with
//! lower power (i.e., a capture scenario)."
//!
//! The flow itself lives in [`crate::engine::stage`] as a reorderable
//! stage pipeline; this module is the stateful front end tying the
//! pipeline to the association registry and the collision store. The
//! pre-pipeline monolithic control flow is retained as
//! [`ZigzagReceiver::process_legacy`] so the equivalence can be tested
//! differentially.

use crate::capture::mrc_combine_retry;
use crate::config::{ClientInfo, ClientRegistry, DecoderConfig};
use crate::detect::detect_packets;
use crate::engine::stage::{zigzag_decode_match, DecodePlan, Pipeline, ReceiverCore};
use crate::matchset::find_match_set;
use crate::standard::decode_single;
use zigzag_phy::complex::Complex;
use zigzag_phy::frame::Frame;

/// How a delivered frame was recovered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodePath {
    /// Plain single-packet decode (no collision).
    Standard,
    /// Strong packet decoded through interference (capture effect).
    Capture,
    /// Weak packet recovered by subtracting the strong one from a single
    /// collision (Fig 4-1e).
    InterferenceCancellation,
    /// Recovered by chunk-by-chunk ZigZag over matched collisions.
    Zigzag,
    /// Two faulty capture residues MRC-combined across collisions
    /// (Fig 4-1d).
    MrcRetry,
    /// Recovered by the algebraic batch solver ([`crate::recovery`]):
    /// joint Gaussian elimination over a collision group the chunk
    /// scheduler could not peel.
    Recovered,
}

/// Events emitted while processing a receive buffer.
#[derive(Clone, Debug, PartialEq)]
pub enum ReceiverEvent {
    /// A frame was recovered (CRC-32 passed).
    Delivered {
        /// The frame.
        frame: Frame,
        /// Recovery path (for the evaluation's accounting).
        path: DecodePath,
    },
    /// A collision was detected but could not be resolved yet; its
    /// samples were stored awaiting a matching retransmission.
    CollisionStored,
    /// Nothing recoverable in this buffer.
    DecodeFailed,
}

/// The ZigZag AP receiver: pipeline + long-lived state.
pub struct ZigzagReceiver {
    core: ReceiverCore,
    pipeline: Pipeline,
}

impl ZigzagReceiver {
    /// Creates a receiver with the given configuration and association
    /// registry, running the standard §5.1d pipeline.
    pub fn new(cfg: DecoderConfig, registry: ClientRegistry) -> Self {
        Self::with_pipeline(cfg, registry, Pipeline::standard())
    }

    /// Creates a receiver over a custom stage pipeline.
    pub fn with_pipeline(cfg: DecoderConfig, registry: ClientRegistry, pipeline: Pipeline) -> Self {
        Self { core: ReceiverCore::new(cfg, registry), pipeline }
    }

    /// Associates a client (what the 802.11 association handshake would
    /// establish, §4.2.1).
    pub fn associate(&mut self, id: u16, info: ClientInfo) {
        self.core.registry.associate(id, info);
    }

    /// Read access to the association registry.
    pub fn registry(&self) -> &ClientRegistry {
        &self.core.registry
    }

    /// Read access to the decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.core.cfg
    }

    /// The stage pipeline this receiver runs.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Number of unmatched collisions currently stored (§4.2.2).
    pub fn stored_collisions(&self) -> usize {
        self.core.store.len()
    }

    /// Forgets delivery history (between experiment runs).
    pub fn reset_history(&mut self) {
        self.core.reset_history();
    }

    /// Processes one receive buffer through the stage pipeline and
    /// returns what happened.
    pub fn process(&mut self, buffer: &[Complex]) -> Vec<ReceiverEvent> {
        self.core.receive(&self.pipeline, buffer)
    }

    /// Decodes one continuous stretch of air through the streaming front
    /// end ([`crate::stream`]): carves collision regions out of `air`
    /// with the windowed scanner and decodes each region on this
    /// receiver, returning per-region outcomes in stream order. The
    /// single-core, no-threads counterpart of
    /// [`ShardedReceiver::process_stream`](crate::engine::ShardedReceiver::process_stream)
    /// — identical regions, identical events.
    pub fn process_air(
        &mut self,
        air: &[Complex],
        scfg: &crate::config::StreamConfig,
    ) -> Vec<crate::stream::RegionOutcome> {
        crate::stream::carve_buffer(air, &self.core.cfg, &self.core.registry, scfg)
            .into_iter()
            .map(|r| {
                let events = self.core.receive_detected(&self.pipeline, &r.samples, r.detections);
                crate::stream::RegionOutcome {
                    seq: r.seq,
                    start: r.start,
                    len: r.samples.len(),
                    queue_wait_ns: 0,
                    events,
                }
            })
            .collect()
    }

    /// The pre-engine monolithic control flow, kept verbatim as a
    /// reference implementation. The pipeline-vs-legacy equivalence test
    /// in `tests/engine.rs` checks `process` against this on identical
    /// buffer sequences. (Algebraic recovery is pipeline-only: the
    /// legacy flow predates it, and the equivalence holds for the
    /// default configuration, where the `RecoverStage` is a no-op.)
    #[doc(hidden)]
    pub fn process_legacy(&mut self, buffer: &[Complex]) -> Vec<ReceiverEvent> {
        let detections =
            detect_packets(buffer, &self.core.preamble, &self.core.registry, &self.core.cfg);
        match detections.len() {
            0 => vec![ReceiverEvent::DecodeFailed],
            1 => self.legacy_single(buffer, detections[0]),
            _ => self.legacy_collision(buffer, detections),
        }
    }

    fn legacy_single(
        &mut self,
        buffer: &[Complex],
        det: crate::detect::Detection,
    ) -> Vec<ReceiverEvent> {
        let mut out = Vec::new();
        let decode = decode_single(
            buffer,
            det.pos,
            Some(det.client),
            &self.core.registry,
            &self.core.preamble,
            true,
            &self.core.cfg,
        );
        match decode {
            Some(d) if d.frame.is_some() => {
                let frame = d.frame.clone().unwrap();
                self.core.deliver(frame, DecodePath::Standard, &mut out);
            }
            _ => out.push(ReceiverEvent::DecodeFailed),
        }
        out
    }

    fn legacy_collision(
        &mut self,
        buffer: &[Complex],
        detections: Vec<crate::detect::Detection>,
    ) -> Vec<ReceiverEvent> {
        let mut out = Vec::new();

        // --- capture / single-collision interference cancellation ---
        let mut by_power = detections.clone();
        by_power.sort_by(|a, b| b.corr.abs().total_cmp(&a.corr.abs()));
        let mut anchor: Option<(crate::detect::Detection, crate::standard::SingleDecode)> = None;
        for cand in by_power.iter().take(4) {
            if let Some(d) = decode_single(
                buffer,
                cand.pos,
                Some(cand.client),
                &self.core.registry,
                &self.core.preamble,
                false,
                &self.core.cfg,
            ) {
                if d.frame.is_some() {
                    anchor = Some((*cand, d));
                    break;
                }
            }
        }
        if let Some((strong, strong_decode)) = anchor {
            let f = strong_decode.frame.clone().unwrap();
            self.core.deliver(f, DecodePath::Capture, &mut out);
            let weak_det = by_power
                .iter()
                .find(|d| d.pos.abs_diff(strong.pos) >= self.core.preamble.len())
                .copied();
            if let Some(weak) = weak_det {
                let residual =
                    crate::capture::subtract_decoded(buffer, &strong_decode, &self.core.preamble);
                let weak_decode = decode_single(
                    &residual,
                    weak.pos,
                    Some(weak.client),
                    &self.core.registry,
                    &self.core.preamble,
                    true,
                    &self.core.cfg,
                );
                match weak_decode {
                    Some(w) if w.frame.is_some() => {
                        let f = w.frame.clone().unwrap();
                        self.core.deliver(f, DecodePath::InterferenceCancellation, &mut out);
                    }
                    Some(w) => {
                        let mut matched = None;
                        for (i, (client, prev)) in self.core.weak_versions.iter().enumerate() {
                            if *client != weak.client {
                                continue;
                            }
                            if let Some(f) = mrc_combine_retry(prev, &w) {
                                matched = Some((i, f));
                                break;
                            }
                        }
                        if let Some((i, f)) = matched {
                            self.core.weak_versions.remove(i);
                            self.core.deliver(f, DecodePath::MrcRetry, &mut out);
                        } else {
                            self.core.weak_versions.push((weak.client, w));
                            if self.core.weak_versions.len() > self.core.cfg.collision_store {
                                self.core.weak_versions.remove(0);
                            }
                        }
                    }
                    None => {}
                }
            }
            if !out.is_empty() {
                return out;
            }
        }

        // --- match against the stored-collision index & ZigZag ---
        // One call site with the pipeline: the same find_match_set /
        // zigzag_decode_match pair MatchStage and ZigzagStage run.
        let core = &mut self.core;
        if let Some(set) = find_match_set(
            &mut core.scratch,
            buffer,
            &detections,
            &core.store,
            &core.registry,
            &core.preamble,
        ) {
            let plan = DecodePlan::from_set(&set);
            zigzag_decode_match(&mut self.core, buffer, &plan, &set.members, &mut out);
            return out;
        }

        // --- store for a future match ---
        self.core.store_unmatched(buffer, &detections, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use zigzag_channel::fading::LinkProfile;
    use zigzag_channel::scenario::{clean_reception, hidden_pair};
    use zigzag_phy::frame::encode_frame;
    use zigzag_phy::modulation::Modulation;
    use zigzag_phy::preamble::Preamble;

    fn air(src: u16, seq: u16, len: usize) -> zigzag_phy::frame::AirFrame {
        let f = Frame::with_random_payload(0, src, seq, len, 3000 + src as u64 * 13 + seq as u64);
        encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
    }

    fn receiver_with(links: &[(u16, &LinkProfile)]) -> ZigzagReceiver {
        let mut rx = ZigzagReceiver::new(DecoderConfig::default(), ClientRegistry::new());
        for (id, l) in links {
            rx.associate(
                *id,
                ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
            );
        }
        rx
    }

    #[test]
    fn clean_packet_via_standard_path() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = LinkProfile::typical(16.0, &mut rng);
        let a = air(1, 1, 300);
        let rx_sig = clean_reception(&a, &l, &mut rng);
        let mut rx = receiver_with(&[(1, &l)]);
        let ev = rx.process(&rx_sig.buffer);
        assert!(matches!(
            &ev[..],
            [ReceiverEvent::Delivered { path: DecodePath::Standard, frame }] if frame == &a.frame
        ));
    }

    #[test]
    fn hidden_terminal_pair_via_zigzag_path() {
        // The headline scenario: first collision stored, second matched
        // and both packets delivered.
        let mut rng = StdRng::seed_from_u64(5);
        let la = LinkProfile::typical(16.0, &mut rng);
        let lb = LinkProfile::typical(16.0, &mut rng);
        let a = air(1, 7, 300);
        let b = air(2, 9, 300);
        let hp = hidden_pair(&a, &b, &la, &lb, 420, 140, &mut rng);
        let mut rx = receiver_with(&[(1, &la), (2, &lb)]);

        let ev1 = rx.process(&hp.collision1.buffer);
        assert!(
            matches!(&ev1[..], [ReceiverEvent::CollisionStored]),
            "first collision should be stored, got {ev1:?}"
        );
        let ev2 = rx.process(&hp.collision2.buffer);
        let delivered: Vec<&Frame> = ev2
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Delivered { frame, path: DecodePath::Zigzag } => Some(frame),
                _ => None,
            })
            .collect();
        assert_eq!(delivered.len(), 2, "events: {ev2:?}");
        assert!(delivered.contains(&&a.frame));
        assert!(delivered.contains(&&b.frame));
    }

    #[test]
    fn solo_retransmission_reaps_stored_collision() {
        // §4.1's other half: a collision is followed by a *clean*
        // retransmission of one sender. The AP decodes the solo packet
        // normally, subtracts it from the stored collision, and recovers
        // the partner — one collision plus one solo, no second collision.
        let mut rng = StdRng::seed_from_u64(5);
        let la = LinkProfile::typical(16.0, &mut rng);
        let lb = LinkProfile::typical(16.0, &mut rng);
        let a = air(1, 7, 300);
        let b = air(2, 9, 300);
        let hp = hidden_pair(&a, &b, &la, &lb, 420, 140, &mut rng);
        let mut rx = ZigzagReceiver::new(DecoderConfig::with_solo_reap(), ClientRegistry::new());
        for (id, l) in [(1, &la), (2, &lb)] {
            rx.associate(
                id,
                ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
            );
        }

        let ev1 = rx.process(&hp.collision1.buffer);
        assert!(
            matches!(&ev1[..], [ReceiverEvent::CollisionStored]),
            "first collision should be stored, got {ev1:?}"
        );
        // Alice's frame arrives alone (Bob backed off further)
        let solo = clean_reception(&a, &la, &mut rng);
        let ev2 = rx.process(&solo.buffer);
        assert!(
            ev2.iter().any(|e| matches!(
                e,
                ReceiverEvent::Delivered { frame, path: DecodePath::Standard } if frame == &a.frame
            )),
            "the solo retransmission decodes standardly: {ev2:?}"
        );
        assert!(
            ev2.iter().any(|e| matches!(
                e,
                ReceiverEvent::Delivered { frame, path: DecodePath::InterferenceCancellation }
                    if frame == &b.frame
            )),
            "the partner must be reaped from the stored collision: {ev2:?}"
        );
        assert_eq!(rx.stored_collisions(), 0, "the reaped entry is consumed");
    }

    #[test]
    fn capture_scenario_via_capture_paths() {
        let mut rng = StdRng::seed_from_u64(15);
        let la = LinkProfile::typical(22.0, &mut rng);
        let lb = LinkProfile::typical(13.0, &mut rng);
        let a = air(1, 1, 250);
        let b = air(2, 1, 250);
        let hp = hidden_pair(&a, &b, &la, &lb, 300, 120, &mut rng);
        let mut rx = receiver_with(&[(1, &la), (2, &lb)]);
        let ev = rx.process(&hp.collision1.buffer);
        let paths: Vec<DecodePath> = ev
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Delivered { path, .. } => Some(*path),
                _ => None,
            })
            .collect();
        assert!(paths.contains(&DecodePath::Capture), "events: {ev:?}");
        let delivered: Vec<&Frame> = ev
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Delivered { frame, .. } => Some(frame),
                _ => None,
            })
            .collect();
        assert!(delivered.contains(&&a.frame), "strong frame must capture");
        // Frame-level (CRC) IC delivery of the weak packet is best-effort
        // at our substrate's −20 dB cancellation floor (DESIGN.md §2); the
        // IC mechanism itself is verified in capture::tests and swept in
        // the fig5_4 reproduction. Here `b` only documents the scenario.
        let _ = &b;
    }

    #[test]
    fn duplicate_deliveries_suppressed() {
        let mut rng = StdRng::seed_from_u64(7);
        let l = LinkProfile::typical(19.0, &mut rng);
        let a = air(1, 1, 200);
        let rx1 = clean_reception(&a, &l, &mut rng);
        let rx2 = clean_reception(&a, &l, &mut rng);
        let mut rx = receiver_with(&[(1, &l)]);
        let e1 = rx.process(&rx1.buffer);
        let e2 = rx.process(&rx2.buffer);
        // a data-sidelobe false detection may add harmless extra events
        // (§5.3a); the frame must still be delivered exactly once
        assert!(
            e1.iter()
                .any(|e| matches!(e, ReceiverEvent::Delivered { frame, .. } if frame == &a.frame)),
            "{e1:?}"
        );
        assert!(
            !e2.iter().any(|e| matches!(e, ReceiverEvent::Delivered { .. })),
            "retransmission of a delivered frame must not re-deliver: {e2:?}"
        );
    }

    #[test]
    fn store_is_bounded_per_client_set() {
        let mut rng = StdRng::seed_from_u64(5);
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let mut rx = receiver_with(&[(1, &la), (2, &lb)]);
        for seq in 0..10u16 {
            let a = air(1, 100 + seq, 150);
            let b = air(2, 200 + seq, 150);
            let hp = hidden_pair(&a, &b, &la, &lb, 300, 100, &mut rng);
            let _ = rx.process(&hp.collision1.buffer);
        }
        assert!(rx.stored_collisions() > 0, "workload must store collisions");
        for entry in rx.core.store().iter() {
            assert!(
                rx.core.store().key_len(&entry.key) <= rx.config().collision_store,
                "key {:?} exceeds the per-key bound",
                entry.key
            );
        }
    }

    #[test]
    fn burst_from_one_client_set_never_starves_another() {
        // Regression for the eviction-starvation bug: under the old
        // global-FIFO store bound, a burst of unmatched collisions from
        // set {1,2} flushed set {3,4}'s stored member, so {3,4}'s
        // retransmission found nothing to match — forever, as long as
        // the chatty set kept colliding. With keyed eviction the burst
        // only recycles {1,2}'s own entries.
        use zigzag_channel::scenario::{synth_collision, PlacedTx};
        // starved set {1,2}: the known-good hidden-pair scenario
        let mut rng = StdRng::seed_from_u64(5);
        let la = LinkProfile::typical(16.0, &mut rng);
        let lb = LinkProfile::typical(16.0, &mut rng);
        let a = air(1, 7, 300);
        let b = air(2, 9, 300);
        let hp = hidden_pair(&a, &b, &la, &lb, 420, 140, &mut rng);
        // bursting set {3,4}, at oscillator offsets far from {1,2}'s
        let lc = LinkProfile::clean_with_omega(16.0, -0.11);
        let ld = LinkProfile::clean_with_omega(16.0, 0.12);
        // two client sets on one AP: the shared-AP config windows the
        // client-set keys so one set's data sidelobes (§5.3a false
        // positives) can't pollute the other's store index
        let mut rx = ZigzagReceiver::new(DecoderConfig::shared_ap(), ClientRegistry::new());
        for (id, l) in [(1u16, &la), (2, &lb), (3, &lc), (4, &ld)] {
            rx.associate(
                id,
                ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
            );
        }

        let ev = rx.process(&hp.collision1.buffer);
        assert!(ev.contains(&ReceiverEvent::CollisionStored), "{ev:?}");

        // {3,4} bursts with *identical* offsets every round (pure time
        // shifts never match each other — §4.5's Δ₁ = Δ₂ failure
        // condition — so every collision lands in the store)
        let mut rng2 = StdRng::seed_from_u64(77);
        for i in 0..(2 * rx.config().collision_store) as u16 {
            let c = air(3, 100 + i, 200);
            let d = air(4, 140 + i, 200);
            let chans = [lc.draw(&mut rng2), ld.draw(&mut rng2)];
            let sc = synth_collision(
                &[
                    PlacedTx { air: &c, base: &chans[0], start: 0 },
                    PlacedTx { air: &d, base: &chans[1], start: 260 },
                ],
                1.0,
                &mut rng2,
            );
            let _ = rx.process(&sc.buffer);
        }
        // With the old global-FIFO bound the store could never exceed
        // `collision_store` in total, so the burst had flushed {1,2}'s
        // member by now; the keyed store holds the burst *and* it.
        assert!(
            rx.stored_collisions() > rx.config().collision_store,
            "burst must overflow the old global bound (stored {})",
            rx.stored_collisions()
        );

        // set {1,2}'s matching retransmission arrives: with FIFO
        // eviction its stored member is long gone; with keyed eviction
        // the 2×2 system completes and both frames deliver via ZigZag.
        let ev = rx.process(&hp.collision2.buffer);
        let delivered: Vec<&Frame> = ev
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Delivered { frame, path: DecodePath::Zigzag } => Some(frame),
                _ => None,
            })
            .collect();
        assert_eq!(delivered.len(), 2, "starved set must still decode, got {ev:?}");
        assert!(delivered.contains(&&a.frame) && delivered.contains(&&b.frame));
    }

    #[test]
    fn pure_noise_fails_cleanly() {
        let mut rng = StdRng::seed_from_u64(6);
        let l = LinkProfile::clean(12.0);
        let mut rx = receiver_with(&[(1, &l)]);
        let noise = zigzag_channel::noise::awgn_vec(&mut rng, 3000, 1.0);
        let ev = rx.process(&noise);
        assert!(matches!(&ev[..], [ReceiverEvent::DecodeFailed]));
    }

    #[test]
    fn standard_pipeline_reports_expected_stages() {
        let rx = receiver_with(&[]);
        assert_eq!(
            rx.pipeline().stage_names(),
            ["detect", "standard-decode", "capture", "match", "plan", "zigzag", "recover", "store"]
        );
    }
}
