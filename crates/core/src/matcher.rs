//! Collision matching (§4.2.2) — "Did the AP receive two matching
//! collisions?"
//!
//! "The AP stores recent unmatched collisions … We use the same
//! correlation trick to match the current collision against prior
//! collisions. … The AP aligns the two collisions at the positions where
//! P₂ and P₂′ start. If the two packets are the same, the samples aligned
//! in such a way are highly dependent … and thus the correlation spikes.
//! If P₂ and P₂′ are different, their data is not correlated."
//!
//! The correlation is between *raw collision buffers*: the shared packet's
//! samples are coherent across the two receptions (same symbols, same ω,
//! quasi-static |H|; only carrier phase and µ differ, which leave the
//! magnitude of the coherent sum intact), while the other packet's data
//! and the noise average out.

use zigzag_phy::complex::Complex;
use zigzag_phy::kernel::Kernel;

/// How many aligned samples to correlate when matching (enough that an
/// uncorrelated pairing stays far under the matched level).
pub const MATCH_WINDOW: usize = 512;

/// Normalised match metric between packet-aligned spans of two collision
/// buffers: `|Σ x·conj(y)| / √(Σ|x|²·Σ|y|²)` over the overlap, in [0, 1].
///
/// `start_a`/`start_b` are the aligned packet's start positions in the
/// respective buffers.
/// The two receptions carry independent fractional sampling offsets
/// (§3.1.2), which at one sample per symbol can decorrelate a raw
/// integer-aligned product (sinc(Δµ) → 0 as Δµ → 1). The metric therefore
/// maximises over sub-sample alignments of the second buffer.
///
/// The evaluation itself lives behind the kernel [`Backend`] — see
/// [`zigzag_phy::kernel::Backend::match_score`] — so the matcher honors
/// `DecoderConfig::backend` / `ZIGZAG_BACKEND` like every other hot
/// loop. These wrappers keep the §4.2.2 decision layer (window size,
/// threshold) in one place.
///
/// [`Backend`]: zigzag_phy::kernel::Backend
pub fn match_metric(
    kernel: &mut Kernel,
    buf_a: &[Complex],
    start_a: usize,
    buf_b: &[Complex],
    start_b: usize,
    window: usize,
) -> f64 {
    match_metric_with_step(kernel, buf_a, start_a, buf_b, start_b, window, 0.25)
}

/// Coarser sub-sample search for high-volume alignment scoring (the
/// k-way matcher evaluates thousands of candidate alignments per
/// buffer): same normalized metric, τ stepped at `tau_step` instead of
/// the full metric's 0.25. At step 0.5 the worst-case residual
/// misalignment is 0.25 samples — a ≲10% sinc attenuation that
/// alignment prefilters and coarse scans absorb in their margins.
///
/// The τ grid is [`zigzag_phy::kernel::tau_sweep`], which derives the
/// iteration count from the step instead of accumulating `tau +=
/// tau_step` — the accumulated form silently skipped the `+1.0`
/// endpoint for non-dyadic steps (float drift past the loop bound).
pub fn match_metric_with_step(
    kernel: &mut Kernel,
    buf_a: &[Complex],
    start_a: usize,
    buf_b: &[Complex],
    start_b: usize,
    window: usize,
    tau_step: f64,
) -> f64 {
    kernel.match_score(buf_a, start_a, buf_b, start_b, window, tau_step, None).metric
}

/// Decision threshold for [`is_match`]: matched packets produce metrics
/// near `P_pkt/(P_pkt+P_other+σ²)` (≈ 0.3–0.5 in two-packet collisions);
/// unmatched pairings stay at the `1/√window` noise level (≈ 0.04).
pub const MATCH_THRESHOLD: f64 = 0.15;

/// `true` if the packet starting at `start_a` in `buf_a` and the packet
/// starting at `start_b` in `buf_b` carry the same symbols (§4.2.2).
pub fn is_match(
    kernel: &mut Kernel,
    buf_a: &[Complex],
    start_a: usize,
    buf_b: &[Complex],
    start_b: usize,
) -> bool {
    match_metric(kernel, buf_a, start_a, buf_b, start_b, MATCH_WINDOW) > MATCH_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use zigzag_channel::fading::LinkProfile;
    use zigzag_channel::scenario::hidden_pair;
    use zigzag_phy::frame::{encode_frame, Frame};
    use zigzag_phy::modulation::Modulation;
    use zigzag_phy::preamble::Preamble;

    fn air(src: u16, seq: u16, len: usize) -> zigzag_phy::frame::AirFrame {
        let f = Frame::with_random_payload(0, src, seq, len, src as u64 * 31 + seq as u64);
        encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
    }

    #[test]
    fn matching_collisions_spike() {
        let mut k = Kernel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let a = air(1, 5, 400);
        let b = air(2, 9, 400);
        let hp = hidden_pair(&a, &b, &la, &lb, 600, 150, &mut rng);
        // align at Bob's starts (600 in c1, 150 in c2)
        let m = match_metric(
            &mut k,
            &hp.collision1.buffer,
            600,
            &hp.collision2.buffer,
            150,
            MATCH_WINDOW,
        );
        assert!(m > MATCH_THRESHOLD, "matched metric {m}");
        assert!(is_match(&mut k, &hp.collision1.buffer, 600, &hp.collision2.buffer, 150));
        // aligning at Alice's starts also matches (same Alice packet)
        let ma =
            match_metric(&mut k, &hp.collision1.buffer, 0, &hp.collision2.buffer, 0, MATCH_WINDOW);
        assert!(ma > MATCH_THRESHOLD, "alice metric {ma}");
    }

    #[test]
    fn different_packets_do_not_match() {
        let mut k = Kernel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let lc = LinkProfile::typical(12.0, &mut rng);
        let a = air(1, 5, 400);
        let b = air(2, 9, 400);
        let c = air(3, 2, 400);
        let hp1 = hidden_pair(&a, &b, &la, &lb, 600, 150, &mut rng);
        let hp2 = hidden_pair(&a, &c, &la, &lc, 500, 220, &mut rng);
        // Bob (in hp1 c1 at 600) vs Charlie (in hp2 c1 at 500): unrelated
        let m = match_metric(
            &mut k,
            &hp1.collision1.buffer,
            600,
            &hp2.collision1.buffer,
            500,
            MATCH_WINDOW,
        );
        assert!(m < MATCH_THRESHOLD, "unmatched metric {m}");
    }

    #[test]
    fn misaligned_same_packet_does_not_match() {
        // aligning the same packet at the wrong offset decorrelates it
        let mut k = Kernel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let a = air(1, 5, 400);
        let b = air(2, 9, 400);
        let hp = hidden_pair(&a, &b, &la, &lb, 600, 150, &mut rng);
        let m = match_metric(
            &mut k,
            &hp.collision1.buffer,
            600,
            &hp.collision2.buffer,
            190,
            MATCH_WINDOW,
        );
        assert!(m < MATCH_THRESHOLD, "misaligned metric {m}");
    }

    #[test]
    fn empty_windows_yield_zero() {
        let mut k = Kernel::default();
        let empty: Vec<Complex> = Vec::new();
        assert_eq!(match_metric(&mut k, &empty, 0, &empty, 0, 128), 0.0);
        let buf = vec![Complex::real(1.0); 10];
        assert_eq!(match_metric(&mut k, &buf, 20, &buf, 0, 128), 0.0);
    }

    #[test]
    fn retransmission_with_fresh_carrier_phase_still_matches() {
        // The whole point: per-transmission random carrier phase must not
        // break magnitude-based matching.
        let mut k = Kernel::default();
        let mut rng = StdRng::seed_from_u64(4);
        let la = LinkProfile::typical(10.0, &mut rng);
        let lb = LinkProfile::typical(10.0, &mut rng);
        let a = air(1, 5, 300);
        let b = air(2, 9, 300);
        for seed in 0..5u64 {
            let mut r2 = StdRng::seed_from_u64(100 + seed);
            let hp = hidden_pair(&a, &b, &la, &lb, 400, 100, &mut r2);
            assert!(
                is_match(&mut k, &hp.collision1.buffer, 400, &hp.collision2.buffer, 100),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn non_dyadic_tau_step_reaches_the_full_sweep() {
        // Regression for the float-drift bug: with `tau += 0.2`
        // accumulation the sweep exited one iteration early and never
        // evaluated τ = +1.0. A pair where the *only* perfect alignment
        // is at τ = +1.0 (b delayed by exactly one sample, so reading b
        // at k + 1.0 reproduces a bit-for-bit) used to top out at the
        // τ = 0.8 sinc attenuation (≈ 0.95); the fixed sweep hits 1.0.
        let mut k = Kernel::default();
        let wave = |t: f64| {
            Complex::cis(0.05 * t)
                + Complex::cis(-0.11 * t).scale(0.5)
                + Complex::cis(0.23 * t).scale(0.25)
        };
        let a: Vec<Complex> = (0..300).map(|m| wave(m as f64)).collect();
        let mut b = vec![Complex::default()];
        b.extend_from_slice(&a[..299]);
        let m = match_metric_with_step(&mut k, &a, 40, &b, 40, 200, 0.2);
        assert!(m > 0.99, "τ = +1.0 must be part of the 0.2-step sweep, got {m}");
    }
}
