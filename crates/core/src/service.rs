//! Per-episode decode service: the seam between a MAC-level cell
//! simulator and the signal-level receiver.
//!
//! The cell co-simulator (`zigzag_mac::cell`) resolves the overwhelming
//! majority of traffic symbolically and lowers only *genuine* collisions
//! to IQ samples. Each lowered collision belongs to an **episode** — one
//! set of contending senders retransmitting until resolution — and
//! ZigZag's whole point is that the rounds of an episode are decoded
//! *jointly*: the first collision is stored, the second is matched and
//! peeled against it, and a later clean solo retransmission reaps the
//! still-buried peers out of the store (§4.1).
//!
//! [`CollisionService`] owns that per-episode receiver state. Rounds
//! arrive batched (everything that closed in one simulated slot); the
//! service fans independent episodes across a [`BatchEngine`] while
//! keeping each episode's rounds sequential through its own
//! [`ZigzagReceiver`]. Outputs are returned in input order and are
//! bit-identical across thread counts: episodes share no state, and the
//! engine's dynamic scheduling never reorders results.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::config::{ClientRegistry, DecoderConfig};
use crate::engine::BatchEngine;
use crate::receiver::{ReceiverEvent, ZigzagReceiver};
use zigzag_phy::complex::Complex;

/// One lowered round: the synthesized air of everything that overlapped
/// at the AP during one reception window of one episode (`k ≥ 2`
/// transmitters for a true collision, `k = 1` for a solo retransmission
/// offered to the §4.1 reap path).
#[derive(Clone, Debug)]
pub struct EpisodeRound {
    /// Episode key — rounds with the same key share one receiver.
    pub episode: u64,
    /// Association registry for the episode's receiver. Consulted only
    /// when this round is the first the service sees for the episode;
    /// later rounds may pass an empty registry.
    pub registry: ClientRegistry,
    /// The received IQ buffer.
    pub buffer: Vec<Complex>,
}

/// Stateful per-episode decode service over a worker pool.
pub struct CollisionService {
    engine: BatchEngine,
    cfg: DecoderConfig,
    episodes: HashMap<u64, ZigzagReceiver>,
}

impl CollisionService {
    /// A service decoding with `cfg` over `threads` workers (`0` = one
    /// per CPU). Pass [`DecoderConfig::with_solo_reap`] to enable the
    /// §4.1 clean-retransmission reap — the configuration the cell
    /// simulator's signal resolver wants.
    pub fn new(cfg: DecoderConfig, threads: usize) -> Self {
        Self { engine: BatchEngine::new(threads), cfg, episodes: HashMap::new() }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Episodes currently holding receiver state.
    pub fn active_episodes(&self) -> usize {
        self.episodes.len()
    }

    /// Stored (unresolved) collisions held for `episode`, if it is
    /// active.
    pub fn episode_depth(&self, episode: u64) -> Option<usize> {
        self.episodes.get(&episode).map(ZigzagReceiver::stored_collisions)
    }

    /// Decodes a batch of rounds and returns each round's receiver
    /// events, in input order.
    ///
    /// Rounds of distinct episodes decode in parallel; rounds sharing an
    /// episode run sequentially, in input order, through that episode's
    /// receiver — exactly the semantics of the serial loop, independent
    /// of the worker count.
    pub fn decode_rounds(&mut self, rounds: &[EpisodeRound]) -> Vec<Vec<ReceiverEvent>> {
        // group round indices by episode, first-appearance order
        let mut order: Vec<u64> = Vec::new();
        let mut by_episode: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, r) in rounds.iter().enumerate() {
            by_episode
                .entry(r.episode)
                .or_insert_with(|| {
                    order.push(r.episode);
                    Vec::new()
                })
                .push(i);
        }
        // move each episode's receiver (creating it on first sight) into
        // a work item the pool can claim
        let work: Vec<Mutex<(ZigzagReceiver, Vec<usize>)>> = order
            .iter()
            .map(|&ep| {
                let idxs = by_episode.remove(&ep).expect("grouped above");
                let rx = self.episodes.remove(&ep).unwrap_or_else(|| {
                    ZigzagReceiver::new(self.cfg.clone(), rounds[idxs[0]].registry.clone())
                });
                Mutex::new((rx, idxs))
            })
            .collect();
        let per_group: Vec<Vec<(usize, Vec<ReceiverEvent>)>> = self.engine.map(&work, |_, cell| {
            let mut guard = cell.lock().expect("episode work item poisoned");
            let (rx, idxs) = &mut *guard;
            idxs.clone().into_iter().map(|i| (i, rx.process(&rounds[i].buffer))).collect()
        });
        // reclaim receiver state, then scatter events back to input order
        for (&ep, cell) in order.iter().zip(work) {
            let (rx, _) = cell.into_inner().expect("episode work item poisoned");
            self.episodes.insert(ep, rx);
        }
        let mut out: Vec<Vec<ReceiverEvent>> = vec![Vec::new(); rounds.len()];
        for group in per_group {
            for (i, events) in group {
                out[i] = events;
            }
        }
        out
    }

    /// Drops `episode`'s receiver state (stored collisions included).
    /// Call when the MAC layer knows every member frame is delivered or
    /// abandoned — the stored air can no longer help anyone.
    pub fn retire(&mut self, episode: u64) {
        self.episodes.remove(&episode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClientInfo;
    use crate::receiver::DecodePath;
    use rand::prelude::*;
    use zigzag_channel::fading::LinkProfile;
    use zigzag_channel::scenario::{clean_reception, hidden_pair};
    use zigzag_phy::frame::{encode_frame, Frame};
    use zigzag_phy::modulation::Modulation;
    use zigzag_phy::preamble::Preamble;

    fn air(src: u16, seq: u16, len: usize) -> zigzag_phy::frame::AirFrame {
        let f = Frame::with_random_payload(0, src, seq, len, 4000 + src as u64 * 13 + seq as u64);
        encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
    }

    fn registry_for(links: &[(u16, &LinkProfile)]) -> ClientRegistry {
        let mut reg = ClientRegistry::new();
        for (id, l) in links {
            reg.associate(
                *id,
                ClientInfo { omega: l.association_omega(), snr_db: l.snr_db, taps: l.isi.clone() },
            );
        }
        reg
    }

    /// One episode's material: two collisions of the same pair plus a
    /// clean solo of sender 1.
    struct Episode {
        registry: ClientRegistry,
        collision1: Vec<Complex>,
        collision2: Vec<Complex>,
        solo: Vec<Complex>,
    }

    fn make_episode(seed: u64) -> Episode {
        // benign links at distinct oscillator lanes: the service tests
        // exercise episode routing and state, not decode robustness — the
        // impairment sweeps live in the receiver and testbed tests
        let mut rng = StdRng::seed_from_u64(seed);
        let la = LinkProfile::clean_with_omega(17.0, 0.015);
        let lb = LinkProfile::clean_with_omega(17.0, 0.035);
        let a = air(1, 7, 300);
        let b = air(2, 9, 300);
        let hp = hidden_pair(&a, &b, &la, &lb, 420, 140, &mut rng);
        let solo = clean_reception(&a, &la, &mut rng);
        Episode {
            registry: registry_for(&[(1, &la), (2, &lb)]),
            collision1: hp.collision1.buffer,
            collision2: hp.collision2.buffer,
            solo: solo.buffer,
        }
    }

    fn delivered(events: &[ReceiverEvent]) -> Vec<(u16, DecodePath)> {
        events
            .iter()
            .filter_map(|e| match e {
                ReceiverEvent::Delivered { frame, path } => Some((frame.src, *path)),
                _ => None,
            })
            .collect()
    }

    /// Seeds whose per-transmission draws (sampling offset, phase, noise)
    /// let both rounds of the pair decode — chunk decoding of 300-byte
    /// frames is genuinely marginal, and the cell model's `p_pair < 1`
    /// encodes exactly that. Found by sweeping `make_episode(0..60)`.
    const GOOD_SEEDS: [u64; 4] = [16, 19, 22, 23];

    #[test]
    fn episodes_decode_jointly_and_in_parallel() {
        // four independent episodes, two rounds each, in one batch: the
        // second round of each must peel against the first (Zigzag path),
        // which only works if rounds of one episode share a receiver
        let eps: Vec<Episode> = GOOD_SEEDS.iter().map(|&s| make_episode(s)).collect();
        let mut svc = CollisionService::new(DecoderConfig::with_solo_reap(), 4);
        let mut rounds = Vec::new();
        for (i, ep) in eps.iter().enumerate() {
            rounds.push(EpisodeRound {
                episode: i as u64,
                registry: ep.registry.clone(),
                buffer: ep.collision1.clone(),
            });
        }
        for (i, ep) in eps.iter().enumerate() {
            rounds.push(EpisodeRound {
                episode: i as u64,
                registry: ClientRegistry::new(),
                buffer: ep.collision2.clone(),
            });
        }
        let out = svc.decode_rounds(&rounds);
        assert_eq!(out.len(), 8);
        for i in 0..4 {
            assert_eq!(out[i], vec![ReceiverEvent::CollisionStored], "episode {i} round 1");
            let got = delivered(&out[4 + i]);
            assert_eq!(got.len(), 2, "episode {i} round 2 must deliver both: {:?}", out[4 + i]);
            assert!(got.contains(&(1, DecodePath::Zigzag)));
            assert!(got.contains(&(2, DecodePath::Zigzag)));
        }
        assert_eq!(svc.active_episodes(), 4);
        for i in 0..4 {
            svc.retire(i as u64);
        }
        assert_eq!(svc.active_episodes(), 0);
    }

    #[test]
    fn solo_round_reaps_the_stored_partner() {
        let ep = make_episode(11);
        let mut svc = CollisionService::new(DecoderConfig::with_solo_reap(), 1);
        let out = svc.decode_rounds(&[
            EpisodeRound { episode: 9, registry: ep.registry.clone(), buffer: ep.collision1 },
            EpisodeRound { episode: 9, registry: ClientRegistry::new(), buffer: ep.solo },
        ]);
        assert_eq!(out[0], vec![ReceiverEvent::CollisionStored]);
        let got = delivered(&out[1]);
        assert!(got.contains(&(1, DecodePath::Standard)), "solo decodes standardly: {got:?}");
        assert!(
            got.contains(&(2, DecodePath::InterferenceCancellation)),
            "partner reaped from the store: {got:?}"
        );
        assert_eq!(svc.episode_depth(9), Some(0), "the reaped collision leaves the store");
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let eps: Vec<Episode> = (0..6).map(|i| make_episode(90 + i)).collect();
        let rounds: Vec<EpisodeRound> = eps
            .iter()
            .enumerate()
            .flat_map(|(i, ep)| {
                [
                    EpisodeRound {
                        episode: i as u64,
                        registry: ep.registry.clone(),
                        buffer: ep.collision1.clone(),
                    },
                    EpisodeRound {
                        episode: i as u64,
                        registry: ClientRegistry::new(),
                        buffer: ep.collision2.clone(),
                    },
                ]
            })
            .collect();
        let mut outs = Vec::new();
        for threads in [1, 2, 4] {
            let mut svc = CollisionService::new(DecoderConfig::with_solo_reap(), threads);
            outs.push(svc.decode_rounds(&rounds));
        }
        assert_eq!(outs[0], outs[1], "1 vs 2 threads");
        assert_eq!(outs[0], outs[2], "1 vs 4 threads");
    }
}
