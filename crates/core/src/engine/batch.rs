//! Deterministic fan-out of independent decode work across threads.
//!
//! Collision decoding is embarrassingly parallel across *work units* —
//! receive buffers from distinct clients/APs, matched collision pairs,
//! Monte-Carlo rounds — and strictly sequential within one (the receiver
//! FSM carries state between a client's buffers). A [`BatchEngine`] fans
//! a slice of units across a scoped thread pool and returns outputs in
//! input order.
//!
//! **Determinism.** Results are written by unit index, every unit's RNG is
//! seeded from [`unit_seed`] (a function of the base seed and the unit
//! index only), and no state is shared between units — so the output is
//! bit-for-bit identical for any thread count, including 1. The
//! multi-thread-equals-single-thread test in `tests/engine.rs` pins this.

use crate::config::{ClientRegistry, DecoderConfig};
use crate::receiver::{ReceiverEvent, ZigzagReceiver};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use zigzag_phy::complex::Complex;

/// A scoped worker pool for independent work units.
#[derive(Clone, Copy, Debug)]
pub struct BatchEngine {
    threads: usize,
}

impl BatchEngine {
    /// An engine with `threads` workers; `0` means one worker per
    /// available CPU.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// The single-threaded engine (runs units inline, in order).
    pub fn single_threaded() -> Self {
        Self { threads: 1 }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, fanning across the pool. Outputs are
    /// returned in input order; `f` receives `(index, &item)`.
    ///
    /// Work is distributed by an atomic cursor (dynamic load balancing:
    /// decode times vary wildly between clean buffers and deep zigzag
    /// decodes), which does not affect output order or content.
    pub fn map<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(usize, &T) -> O + Sync,
    {
        self.map_with(items, || (), |_, i, t| f(i, t))
    }

    /// [`Self::map`] with reusable worker-local state: `init` builds one
    /// `S` per worker thread, and `f` receives it mutably for every item
    /// that worker claims. This is how per-thread
    /// [`Scratch`](crate::engine::Scratch) arenas ride a fan-out without either
    /// sharing (they are `!Sync` by design) or re-allocating per item —
    /// e.g. the sharded receiver's parallel detect pre-pass.
    ///
    /// `f` must not let `S` carry information *between* items that
    /// changes outputs (scratch buffers are fine, accumulators are not),
    /// or determinism across thread counts is lost.
    pub fn map_with<T, O, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> O + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            let mut state = init();
            return items.iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<O>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(items.len()) {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let out = f(&mut state, i, &items[i]);
                        *slots[i].lock().expect("result slot poisoned") = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every unit index was claimed by a worker")
            })
            .collect()
    }
}

impl Default for BatchEngine {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Deterministic per-unit RNG seed: a SplitMix64-style mix of the base
/// seed and the unit index. Use this (never a shared RNG) to seed
/// per-unit randomness so results are independent of scheduling.
pub fn unit_seed(base: u64, index: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((index as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One independent receiver workload: a fresh [`ZigzagReceiver`] fed a
/// sequence of receive buffers (e.g. one client's or one AP's traffic).
#[derive(Clone, Debug)]
pub struct DecodeUnit {
    /// Receiver configuration.
    pub cfg: DecoderConfig,
    /// Association registry for this unit's receiver.
    pub registry: ClientRegistry,
    /// Receive buffers, processed in order through one receiver FSM.
    pub buffers: Vec<Vec<Complex>>,
}

/// Decodes every unit through a fresh receiver, in parallel across units,
/// returning each unit's concatenated event stream in input order.
pub fn decode_batch(engine: &BatchEngine, units: &[DecodeUnit]) -> Vec<Vec<ReceiverEvent>> {
    engine.map(units, |_, unit| {
        let mut rx = ZigzagReceiver::new(unit.cfg.clone(), unit.registry.clone());
        let mut events = Vec::new();
        for buffer in &unit.buffers {
            events.extend(rx.process(buffer));
        }
        events
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_indices() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7] {
            let engine = BatchEngine::new(threads);
            let out = engine.map(&items, |i, &v| {
                assert_eq!(i, v);
                v * 3
            });
            assert_eq!(out, items.iter().map(|v| v * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        assert!(BatchEngine::new(0).threads() >= 1);
        assert_eq!(BatchEngine::single_threaded().threads(), 1);
    }

    #[test]
    fn unit_seed_is_index_sensitive_and_stable() {
        let a = unit_seed(42, 0);
        let b = unit_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, unit_seed(42, 0));
        assert_ne!(unit_seed(42, 5), unit_seed(43, 5));
    }

    #[test]
    fn empty_batch_is_empty() {
        let engine = BatchEngine::new(4);
        let out: Vec<u32> = engine.map(&[] as &[u32], |_, &v| v);
        assert!(out.is_empty());
    }
}
