//! # The batched parallel decode engine
//!
//! This subsystem restructures the receiver around three ideas, in
//! service of the ROADMAP's "production-scale, fast as the hardware
//! allows" north star:
//!
//! * **[`stage`]** — the §5.1d receiver flow as a trait-based pipeline of
//!   [`DecodeStage`]s (Detect → StandardDecode → Capture → Match → Plan →
//!   Zigzag → Recover → Store) over a shared [`ReceiverCore`], replacing the old
//!   monolithic `ZigzagReceiver::process` control flow with an
//!   inspectable, reorderable [`Pipeline`] that emits the same
//!   [`ReceiverEvent`](crate::receiver::ReceiverEvent)s. The match/store
//!   stages run the k-way [`crate::matchset`] layer: collisions
//!   accumulate in a client-set-keyed [`CollisionStore`] until a
//!   decodable k×k [`MatchSet`] exists, so §4.5's k-sender story runs
//!   end-to-end through [`ReceiverCore::receive`].
//! * **[`batch`]** — a [`BatchEngine`] that fans independent work units
//!   (buffers from distinct clients/APs, matched collision pairs,
//!   Monte-Carlo rounds) across a scoped thread pool with deterministic
//!   per-unit seeding ([`unit_seed`]), so a multi-threaded run is
//!   bit-for-bit identical to a single-threaded one.
//! * **[`scratch`]** — a [`Scratch`] arena threaded through the
//!   chunk-decode / image-synthesis / subtraction hot loops, turning the
//!   dozens of per-symbol `Vec<Complex>` allocations into reused buffers
//!   (with matching in-place primitives in `zigzag-phy`:
//!   `Fir::apply_into`, `correlate::scan_into`, `mrc::combine_weighted_into`,
//!   `interp::resample_into`). The scratch also carries the
//!   [`zigzag_phy::kernel::Kernel`] — the pluggable scalar/optimized
//!   compute backend every phy hot loop dispatches to, selected once per
//!   decode context via `DecoderConfig::backend`.
//!
//! * **[`shard`]** — the multi-core receiver: N `ReceiverCore` shards on
//!   the scoped pool behind a bounded-queue ingestion front end
//!   ([`IngestQueue`]). Buffers are routed by detected-client-set hash
//!   (a detect-only pre-pass whose detections the shard pipeline
//!   reuses), each shard owns its own `CollisionStore` + `Scratch`,
//!   shards share only the association registry behind the read-mostly
//!   [`SharedRegistry`](crate::config::SharedRegistry) handle, and a
//!   deterministic merge reorders per-shard event streams by buffer
//!   sequence — so multi-shard output is bit-identical to a single
//!   `ReceiverCore`.
//!
//! Remaining scaling work (alternative compute backends, NUMA-aware
//! shard pinning, cross-shard match-set migration) plugs in here: a
//! backend is a `Pipeline` variant, a sharding policy is a routing
//! function over detected client sets.

pub mod batch;
pub mod scratch;
pub mod shard;
pub mod stage;

pub use crate::matchset::{CollisionStore, MatchSet, StoredCollision};
pub use batch::{decode_batch, unit_seed, BatchEngine, DecodeUnit};
pub use scratch::{BufPool, Scratch};
pub use shard::{route_shard, IngestQueue, ShardedReceiver};
pub use stage::{
    CaptureStage, DecodePlan, DecodeStage, DetectStage, Flow, MatchStage, MatchedCollision,
    Pipeline, PlanStage, ReceiverCore, RecoverStage, StandardDecodeStage, StoreStage, UnitCtx,
    ZigzagStage,
};
