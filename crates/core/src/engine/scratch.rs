//! Scratch-arena buffers for the decode hot paths.
//!
//! The signal-level decoder touches the same handful of temporary
//! `Vec<Complex>` shapes for every chunk it processes — the resampled
//! symbol grid, the equalized grid, the synthesized image window, the
//! observed-span copy used for tracking feedback. Before this module
//! existed each of those was allocated fresh, dozens of times per decoded
//! symbol. A [`Scratch`] is threaded through the hot loops instead: the
//! buffers are taken from a small pool, reused, and returned, so steady-
//! state decoding performs no per-chunk heap allocation.
//!
//! A `Scratch` is deliberately cheap to create (empty pool): per-work-unit
//! scratches are how the [`BatchEngine`](crate::engine::BatchEngine) keeps
//! worker threads allocation-isolated from one another.

use crate::view::{ChunkDecode, Image};
use zigzag_phy::complex::Complex;
use zigzag_phy::kernel::{BackendKind, Kernel};

/// A recycling pool of `Vec<Complex>` buffers.
///
/// `take` hands out a cleared buffer (retaining its previous capacity when
/// one is available); `put` returns it. Buffers that are never returned are
/// simply dropped — the pool is an optimisation, not an obligation.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<Vec<Complex>>,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer from the pool (or a fresh one).
    pub fn take(&mut self) -> Vec<Complex> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, mut v: Vec<Complex>) {
        v.clear();
        self.free.push(v);
    }

    /// Number of buffers currently pooled (for tests/diagnostics).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// Reusable working state for one decode context (one receiver, one
/// `BatchEngine` work unit, or one `ZigzagDecoder::decode_with` call).
///
/// Besides the buffer pool, a scratch carries the [`Kernel`] — the phy
/// compute backend plus its SoA staging buffers — so the backend is
/// selected once per decode context and every hot loop below it
/// (correlation scans, FIR equalization, chunk resampling, MRC) runs on
/// the same implementation.
#[derive(Debug, Default)]
pub struct Scratch {
    /// General-purpose complex-buffer pool.
    pub pool: BufPool,
    /// Reused chunk-decode output (soft + hard symbol vectors).
    pub chunk: ChunkDecode,
    /// Reused synthesized-image buffer.
    pub image: Image,
    /// The phy kernel backend (and its SoA temporaries) the hot loops
    /// dispatch to.
    pub kernel: Kernel,
}

impl Scratch {
    /// A fresh scratch with empty buffers and the default backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh scratch pinned to a specific kernel backend.
    pub fn with_backend(kind: BackendKind) -> Self {
        Self { kernel: Kernel::new(kind), ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let mut pool = BufPool::new();
        let mut v = pool.take();
        v.reserve(1024);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.pooled(), 1);
        let v2 = pool.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn take_on_empty_pool_is_fresh() {
        let mut pool = BufPool::new();
        assert_eq!(pool.take().len(), 0);
    }
}
