//! The sharded multi-core receiver: N [`ReceiverCore`]s behind a
//! bounded-queue ingestion front end.
//!
//! The paper's AP decodes every hidden-terminal collision on one receive
//! chain. A production AP serving many concurrent client sets wants one
//! receive chain *per core*: collision contexts from distinct client
//! sets are independent (the message-passing/batch-erasure framings of
//! PAPERS.md assume exactly this), so buffers can be routed by detected
//! client set and decoded in parallel without changing any result.
//!
//! The moving parts:
//!
//! * [`IngestQueue`] — a bounded blocking queue per shard. Ingestion
//!   *blocks* when a queue is full (backpressure; buffers are never
//!   dropped), so detection runs at most `queue_depth` buffers ahead of
//!   each shard's decode — ingest, detection, and zigzag execution
//!   overlap instead of running buffer-at-a-time.
//! * a **detect-only routing pre-pass** — the router runs the ordinary
//!   [`DetectStage`](crate::engine::stage::DetectStage) scan (same
//!   function, same [`Scratch`]) over a window of buffers in parallel on
//!   [`BatchEngine`]'s scoped pool, hashes each buffer's detected
//!   client set ([`route_shard`]), and enqueues the buffer *with its
//!   detections* — the shard pipeline reuses them instead of re-scanning.
//! * [`ShardedReceiver`] — owns one [`ReceiverCore`] per shard (each
//!   with its own [`CollisionStore`](crate::matchset::CollisionStore) and
//!   [`Scratch`]); shards share only the association registry behind the
//!   read-mostly [`SharedRegistry`] handle. A deterministic merge step
//!   reorders per-shard event streams by buffer sequence number.
//!
//! **Determinism.** Events are bit-identical for any shard count,
//! including 1 (which is exactly a single `ReceiverCore`), because the
//! receiver's cross-buffer interactions are local to a detected client
//! set: store eviction is per key, match candidates (pairwise and
//! k-way) come from the same-key index, and routing sends every buffer
//! of a key to one shard, in sequence order, forever. The shard-count
//! invariance proptests in `tests/shard.rs` pin this.
//!
//! The contract's precondition: a client's buffers must keep *one*
//! routing key. Two receiver structures are per-**client**, not
//! per-key — the `(src, seq)` delivery-dedup set and the faulty-weak
//! `weak_versions` store for cross-collision MRC — so if the same
//! client's traffic shows up under two different keys (say a `{1,2}`
//! collision and, after its frame was already delivered there, a
//! clean `{1}` retransmission of the same frame), a single core
//! suppresses the duplicate delivery while separate shards would not.
//! That is the physically sensible deployment anyway (a client
//! contends within one hidden-terminal set at a time), and it is the
//! regime the tests and benches pin; cross-shard client migration is a
//! ROADMAP follow-on.

use crate::config::{ClientInfo, ClientRegistry, DecoderConfig, ShardConfig, SharedRegistry};
use crate::detect::{detect_packets_with, Detection};
use crate::engine::batch::BatchEngine;
use crate::engine::scratch::Scratch;
use crate::engine::stage::{Pipeline, ReceiverCore};
use crate::matchset::collision_key;
use crate::receiver::ReceiverEvent;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use zigzag_phy::complex::Complex;
use zigzag_phy::preamble::Preamble;

/// A bounded blocking queue between the ingestion front end and one
/// receiver shard.
///
/// `push` blocks while the queue is full — backpressure, never loss —
/// and `pop` blocks while it is empty, returning `None` only after
/// [`IngestQueue::close`] with the queue drained.
#[derive(Debug)]
pub struct IngestQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
    stalls: u64,
}

impl<T> IngestQueue<T> {
    /// An open queue holding at most `cap` items (at least 1).
    pub fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
                stalls: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.state.lock().expect("ingest queue poisoned").items.len()
    }

    /// `true` if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest occupancy the queue has reached since creation — how close
    /// the producer has come to saturating this shard.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("ingest queue poisoned").high_water
    }

    /// How many `push` calls found the queue full and had to block
    /// (backpressure events — each one throttled the producer).
    pub fn stalls(&self) -> u64 {
        self.state.lock().expect("ingest queue poisoned").stalls
    }

    /// Enqueues an item, blocking while the queue is full. Returns the
    /// item back if the queue was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("ingest queue poisoned");
        if state.items.len() >= self.cap && !state.closed {
            state.stalls += 1;
        }
        while state.items.len() >= self.cap && !state.closed {
            state = self.not_full.wait(state).expect("ingest queue poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("ingest queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("ingest queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, further pushes fail,
    /// and blocked consumers wake.
    pub fn close(&self) {
        self.state.lock().expect("ingest queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The shard a detected client set routes to: FNV-1a over the key with a
/// SplitMix64-style avalanche finalizer (raw FNV's low bits barely mix,
/// so a power-of-two shard count would collapse onto one shard), modulo
/// the shard count. Stable across runs (no per-process hasher seed), so
/// routing — and therefore every shard's buffer subsequence — is
/// deterministic.
pub fn route_shard(key: &[u16], shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in key {
        for b in c.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h % shards as u64) as usize
}

/// One routed unit of ingest: a receive buffer, its sequence number, and
/// the routing pre-pass's detections (reused by the shard pipeline).
struct Job<'a> {
    seq: usize,
    buffer: &'a [Complex],
    detections: Vec<Detection>,
}

/// One shard's `(sequence, events)` output, awaiting the deterministic
/// merge.
type ShardResults = Mutex<Vec<(usize, Vec<ReceiverEvent>)>>;

/// Closes the given queues when dropped — the panic-safety latch that
/// keeps a dying router or shard worker from leaving the other side
/// blocked forever on a condvar with no waker.
struct CloseOnDrop<'a, T>(&'a [IngestQueue<T>]);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        for q in self.0 {
            q.close();
        }
    }
}

/// The sharded AP receiver: one [`ReceiverCore`] per shard on
/// [`BatchEngine`]'s scoped thread pool, fed through bounded
/// [`IngestQueue`]s by a client-set-hash router.
///
/// # Example
///
/// Process a batch of buffers across two shards; events come back in
/// input order, bit-identical to a single receiver core:
///
/// ```
/// use zigzag_core::config::{ClientRegistry, DecoderConfig, ShardConfig};
/// use zigzag_core::engine::ShardedReceiver;
/// use zigzag_core::ReceiverEvent;
/// use zigzag_phy::complex::Complex;
///
/// let mut rx = ShardedReceiver::new(
///     DecoderConfig::shared_ap(),
///     ShardConfig { shards: 2, queue_depth: 4 },
///     ClientRegistry::new(),
/// );
/// let buffers: Vec<Vec<Complex>> = (0..4).map(|_| vec![Complex::real(0.01); 256]).collect();
/// let events = rx.process_batch(&buffers);
/// assert_eq!(events.len(), buffers.len(), "one event list per buffer, in input order");
/// // no clients associated, so every buffer fails cleanly
/// for ev in &events {
///     assert_eq!(ev[..], [ReceiverEvent::DecodeFailed]);
/// }
/// ```
pub struct ShardedReceiver {
    pub(crate) cfg: DecoderConfig,
    pub(crate) shard_cfg: ShardConfig,
    pub(crate) registry: SharedRegistry,
    pub(crate) pipeline: Pipeline,
    pub(crate) preamble: Preamble,
    pub(crate) cores: Vec<ReceiverCore>,
    router_ws: Scratch,
    pub(crate) loads: Vec<u64>,
    /// Cumulative backpressure stalls per shard queue (every `push` that
    /// found the queue full), accumulated across `process_batch` /
    /// `process_stream` calls.
    pub(crate) stalls: Vec<u64>,
    /// Highest ingest-queue occupancy each shard has seen.
    pub(crate) high_water: Vec<usize>,
}

impl ShardedReceiver {
    /// A sharded receiver running the standard §5.1d pipeline.
    /// `shard_cfg.shards == 0` resolves to one shard per available CPU.
    pub fn new(cfg: DecoderConfig, shard_cfg: ShardConfig, registry: ClientRegistry) -> Self {
        Self::with_pipeline(cfg, shard_cfg, registry, Pipeline::standard())
    }

    /// A sharded receiver over a custom stage pipeline (shared by all
    /// shards; stages are `Send + Sync`).
    pub fn with_pipeline(
        cfg: DecoderConfig,
        shard_cfg: ShardConfig,
        registry: ClientRegistry,
        pipeline: Pipeline,
    ) -> Self {
        let shards = BatchEngine::new(shard_cfg.shards).threads();
        let registry = SharedRegistry::new(registry);
        let cores = (0..shards)
            .map(|_| ReceiverCore::with_registry(cfg.clone(), registry.clone()))
            .collect();
        let router_ws = Scratch::with_backend(cfg.backend);
        Self {
            cfg,
            shard_cfg,
            registry,
            pipeline,
            preamble: Preamble::default_len(),
            cores,
            router_ws,
            loads: vec![0; shards],
            stalls: vec![0; shards],
            high_water: vec![0; shards],
        }
    }

    /// Number of receiver shards.
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// Buffers routed to each shard so far (diagnostics: a workload
    /// "exercises routing" when more than one entry is non-zero).
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Cumulative backpressure stalls per shard: how many times the
    /// ingest front end found that shard's queue full and had to block.
    /// Non-zero entries mean decode was the bottleneck for that shard
    /// (the queue depth was reached and the producer was throttled).
    pub fn shard_stalls(&self) -> &[u64] {
        &self.stalls
    }

    /// Highest ingest-queue occupancy each shard has reached across all
    /// `process_batch` / `process_stream` calls so far — `queue_depth`
    /// means that shard saturated its queue at least once.
    pub fn queue_high_water(&self) -> &[usize] {
        &self.high_water
    }

    /// Read access to the shared association registry.
    pub fn registry(&self) -> &ClientRegistry {
        &self.registry
    }

    /// Read access to the decoder configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.cfg
    }

    /// Total unmatched collisions stored across all shards.
    pub fn stored_collisions(&self) -> usize {
        self.cores.iter().map(|c| c.store().len()).sum()
    }

    /// Associates a client and republishes the registry handle to every
    /// shard (shards only ever *read* it; writes go through the front
    /// end, copy-on-write).
    pub fn associate(&mut self, id: u16, info: ClientInfo) {
        self.registry.associate(id, info);
        for core in &mut self.cores {
            core.set_registry(self.registry.clone());
        }
    }

    /// Forgets delivery history and stored collisions on every shard
    /// (between experiment runs).
    pub fn reset_history(&mut self) {
        for core in &mut self.cores {
            core.reset_history();
        }
        self.loads.iter_mut().for_each(|l| *l = 0);
        self.stalls.iter_mut().for_each(|s| *s = 0);
        self.high_water.iter_mut().for_each(|h| *h = 0);
    }

    /// Processes one receive buffer inline (detect pre-pass, route,
    /// decode on the owning shard — no threads). Streaming counterpart
    /// of [`Self::process_batch`]; same events, same shard state.
    pub fn process(&mut self, buffer: &[Complex]) -> Vec<ReceiverEvent> {
        let detections = detect_packets_with(
            buffer,
            &self.preamble,
            &self.registry,
            &self.cfg,
            &mut self.router_ws,
        );
        let shard = route_shard(&collision_key(&detections, self.cfg.key_window), self.cores.len());
        self.loads[shard] += 1;
        self.cores[shard].receive_detected(&self.pipeline, buffer, detections)
    }

    /// Processes a sequence of receive buffers through the sharded
    /// pipeline, returning each buffer's events in input order (the
    /// deterministic merge: per-shard streams are reordered by buffer
    /// sequence number, so the output is bit-identical to a single
    /// [`ReceiverCore`] fed the same sequence).
    ///
    /// The router (caller thread) detect-scans a window of
    /// `shards × queue_depth` buffers in parallel on the scoped pool,
    /// then dispatches them in sequence order to the shard queues while
    /// the shard workers decode — so detection of window *w+1* overlaps
    /// zigzag execution of window *w*, and a full queue blocks the
    /// router (backpressure) rather than dropping buffers.
    pub fn process_batch(&mut self, buffers: &[Vec<Complex>]) -> Vec<Vec<ReceiverEvent>> {
        let n = self.cores.len();
        if n <= 1 || buffers.len() <= 1 {
            return buffers.iter().map(|b| self.process(b)).collect();
        }
        let depth = self.shard_cfg.queue_depth.max(1);
        let window = n * depth;
        let engine = BatchEngine::new(n);
        let Self { cfg, registry, pipeline, preamble, cores, loads, stalls, high_water, .. } = self;
        let (cfg, registry, pipeline, preamble) = (&*cfg, &*registry, &*pipeline, &*preamble);

        let queues: Vec<IngestQueue<Job<'_>>> = (0..n).map(|_| IngestQueue::new(depth)).collect();
        let results: Vec<ShardResults> = (0..n).map(|_| Mutex::new(Vec::new())).collect();

        std::thread::scope(|s| {
            for ((core, queue), slot) in cores.iter_mut().zip(&queues).zip(&results) {
                s.spawn(move || {
                    // Panic safety: if decode panics, the closing guard
                    // wakes the router out of its blocking push (which
                    // then fails loudly) instead of leaving it asleep on
                    // a condvar nobody will ever signal.
                    let _closer = CloseOnDrop(std::slice::from_ref(queue));
                    let mut local = Vec::new();
                    while let Some(job) = queue.pop() {
                        let ev = core.receive_detected(pipeline, job.buffer, job.detections);
                        local.push((job.seq, ev));
                    }
                    *slot.lock().expect("shard result slot poisoned") = local;
                });
            }

            // Router: windowed parallel detect, in-order dispatch. The
            // guard closes every queue however the router exits (end of
            // batch, or a panic in detection/routing), so shard workers
            // always drain and join.
            let closer = CloseOnDrop(&queues);
            let mut seq = 0usize;
            for chunk in buffers.chunks(window) {
                let dets: Vec<Vec<Detection>> = engine.map_with(
                    chunk,
                    || Scratch::with_backend(cfg.backend),
                    |ws, _, buf| detect_packets_with(buf, preamble, registry, cfg, ws),
                );
                for (i, detections) in dets.into_iter().enumerate() {
                    let shard = route_shard(&collision_key(&detections, cfg.key_window), n);
                    loads[shard] += 1;
                    let job = Job { seq: seq + i, buffer: &chunk[i], detections };
                    if queues[shard].push(job).is_err() {
                        // only a dead (panicked) worker closes its queue
                        // early; surface that instead of dropping input
                        panic!("shard {shard} worker terminated before its ingest completed");
                    }
                }
                seq += chunk.len();
            }
            drop(closer);
        });

        for (i, q) in queues.iter().enumerate() {
            stalls[i] += q.stalls();
            high_water[i] = high_water[i].max(q.high_water());
        }

        let mut out = vec![Vec::new(); buffers.len()];
        for slot in results {
            for (seq, ev) in slot.into_inner().expect("shard result slot poisoned") {
                out[seq] = ev;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn queue_is_fifo_and_drains_after_close() {
        let q = IngestQueue::new(4);
        assert!(q.is_empty());
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        q.close();
        assert_eq!(q.push(9), Err(9), "push after close must fail");
        assert_eq!((q.pop(), q.pop(), q.pop(), q.pop()), (Some(0), Some(1), Some(2), None));
    }

    #[test]
    fn queue_capacity_has_a_floor_of_one() {
        assert_eq!(IngestQueue::<u8>::new(0).capacity(), 1);
    }

    #[test]
    fn queue_telemetry_tracks_occupancy_and_stalls() {
        let q = IngestQueue::new(2);
        assert_eq!((q.high_water(), q.stalls()), (0, 0));
        q.push(1).unwrap();
        assert_eq!(q.high_water(), 1);
        q.push(2).unwrap();
        assert_eq!(q.high_water(), 2);
        // a blocked push on a full queue counts exactly one stall
        std::thread::scope(|s| {
            s.spawn(|| q.push(3).unwrap());
            while q.stalls() == 0 {
                std::thread::yield_now();
            }
            assert_eq!(q.pop(), Some(1));
        });
        assert_eq!(q.stalls(), 1);
        assert_eq!(q.high_water(), 2, "pop before the blocked push lands keeps occupancy ≤ cap");
        // draining does not reset the marks
        assert_eq!((q.pop(), q.pop()), (Some(2), Some(3)));
        assert_eq!((q.high_water(), q.stalls()), (2, 1));
    }

    #[test]
    fn full_queue_blocks_producer_without_dropping() {
        // Backpressure semantics: with capacity 2 and a slow consumer,
        // every one of the 64 pushes must eventually land, the queue
        // never exceeds capacity, and the consumer sees all items in
        // order.
        let q = IngestQueue::new(2);
        let max_seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..64usize {
                    q.push(i).unwrap();
                    max_seen.fetch_max(q.len(), Ordering::Relaxed);
                }
                q.close();
            });
            let mut got = Vec::new();
            while let Some(i) = q.pop() {
                std::thread::yield_now();
                got.push(i);
            }
            assert_eq!(got, (0..64).collect::<Vec<_>>(), "no buffer may be dropped or reordered");
        });
        assert!(max_seen.load(Ordering::Relaxed) <= 2, "bounded queue must stay bounded");
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1, 2, 4, 7] {
            for key in [vec![], vec![1], vec![1, 2], vec![3, 4, 5], vec![65535]] {
                let s = route_shard(&key, shards);
                assert!(s < shards);
                assert_eq!(s, route_shard(&key, shards), "routing must be stable");
            }
        }
        // distinct keys spread (not all on one shard) for a sane hash
        let spread: std::collections::HashSet<usize> =
            (0..16u16).map(|c| route_shard(&[c, c + 16], 4)).collect();
        assert!(spread.len() > 1, "hash must not collapse all keys onto one shard");
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        // A decode panic on a shard worker must unwind out of
        // `process_batch` — the failure mode being prevented is the
        // router sleeping forever on the dead worker's full queue.
        use crate::engine::stage::{DecodeStage, Flow, UnitCtx};
        struct PanicStage;
        impl DecodeStage for PanicStage {
            fn name(&self) -> &'static str {
                "panic"
            }
            fn run(
                &self,
                _rx: &mut ReceiverCore,
                _unit: &mut UnitCtx<'_>,
                _events: &mut Vec<ReceiverEvent>,
            ) -> Flow {
                panic!("injected decode failure");
            }
        }
        let mut rx = ShardedReceiver::with_pipeline(
            DecoderConfig::default(),
            ShardConfig { shards: 2, queue_depth: 1 },
            ClientRegistry::new(),
            Pipeline::from_stages(vec![Box::new(PanicStage)]),
        );
        let buffers: Vec<Vec<Complex>> = (0..8).map(|_| vec![Complex::real(0.1); 64]).collect();
        let out =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rx.process_batch(&buffers)));
        assert!(out.is_err(), "worker panic must propagate, not deadlock");
    }

    #[test]
    fn empty_registry_stream_fails_cleanly_in_order() {
        // No associated clients: every buffer yields [DecodeFailed], and
        // the merge returns them in input order at any shard count.
        let buffers: Vec<Vec<Complex>> =
            (0..6).map(|i| vec![Complex::real(i as f64 * 0.01); 256]).collect();
        for shards in [1, 2, 4] {
            let mut rx = ShardedReceiver::new(
                DecoderConfig::default(),
                ShardConfig { shards, queue_depth: 2 },
                ClientRegistry::new(),
            );
            let out = rx.process_batch(&buffers);
            assert_eq!(out.len(), buffers.len());
            for ev in &out {
                assert_eq!(ev[..], [ReceiverEvent::DecodeFailed]);
            }
            assert_eq!(rx.loads().iter().sum::<u64>(), buffers.len() as u64);
        }
    }
}
