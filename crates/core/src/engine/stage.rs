//! The trait-based decode pipeline.
//!
//! The §5.1d receiver flow — detect → standard decode → capture/IC →
//! match → plan → zigzag → store — used to be one hard-wired call chain
//! inside `ZigzagReceiver::process`. Here each step is a [`DecodeStage`]:
//! an inspectable, reorderable unit that reads/writes the per-buffer
//! [`UnitCtx`], mutates the shared [`ReceiverCore`] state, and appends
//! [`ReceiverEvent`]s. A [`Pipeline`] runs stages in order until one
//! reports [`Flow::Done`].
//!
//! The default stage order ([`Pipeline::standard`]) reproduces the legacy
//! receiver's behaviour event-for-event (verified by the pipeline-vs-
//! legacy equivalence test in `tests/engine.rs`); custom pipelines can
//! drop, reorder, or wrap stages — e.g. skipping capture for
//! equal-power-only deployments, or inserting instrumentation stages.

use crate::capture::{mrc_combine_retry, subtract_decoded_with};
use crate::config::{ClientRegistry, DecoderConfig};
use crate::detect::{detect_packets_with, Detection};
use crate::engine::scratch::Scratch;
use crate::matcher::is_match;
use crate::receiver::{DecodePath, ReceiverEvent};
use crate::standard::{decode_single_with, SingleDecode};
use crate::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use std::collections::{HashSet, VecDeque};
use zigzag_phy::complex::Complex;
use zigzag_phy::preamble::Preamble;

/// A stored unmatched collision (§4.2.2: "the AP stores recent unmatched
/// collisions (i.e., stores the received complex samples)").
#[derive(Clone, Debug)]
pub struct StoredCollision {
    /// The raw receive buffer.
    pub buffer: Vec<Complex>,
    /// The detections found in it.
    pub detections: Vec<Detection>,
}

/// The receiver's long-lived state, shared by every stage: configuration,
/// association registry, the unmatched-collision store, the faulty-weak-
/// version store for cross-collision MRC, the delivery dedup set, and the
/// hot-path [`Scratch`].
pub struct ReceiverCore {
    pub(crate) cfg: DecoderConfig,
    pub(crate) registry: ClientRegistry,
    pub(crate) preamble: Preamble,
    pub(crate) store: VecDeque<StoredCollision>,
    pub(crate) weak_versions: Vec<(u16, SingleDecode)>,
    pub(crate) delivered: HashSet<(u16, u16)>,
    pub(crate) scratch: Scratch,
}

impl ReceiverCore {
    /// Fresh state with the given configuration and registry.
    pub fn new(cfg: DecoderConfig, registry: ClientRegistry) -> Self {
        let scratch = Scratch::with_backend(cfg.backend);
        Self {
            cfg,
            registry,
            preamble: Preamble::default_len(),
            store: VecDeque::new(),
            weak_versions: Vec::new(),
            delivered: HashSet::new(),
            scratch,
        }
    }

    /// Emits a `Delivered` event unless this `(src, seq)` was already
    /// delivered (retransmission dedup).
    pub(crate) fn deliver(
        &mut self,
        frame: zigzag_phy::frame::Frame,
        path: DecodePath,
        out: &mut Vec<ReceiverEvent>,
    ) {
        if self.delivered.insert((frame.src, frame.seq)) {
            out.push(ReceiverEvent::Delivered { frame, path });
        }
        if self.delivered.len() > 4096 {
            self.delivered.clear(); // bounded memory; seq spaces recycle
        }
    }
}

/// A matched pair of collisions ready for ZigZag. The stored collision
/// stays **in the receiver's store** until a consuming stage (the
/// [`ZigzagStage`]) removes it — so dropping or reordering stages can
/// never destroy collision data.
#[derive(Clone, Debug)]
pub struct MatchedCollision {
    /// Index of the matched collision in the receiver's store.
    pub store_index: usize,
    /// The stored collision's detections at match time; consumers
    /// re-validate these against the store entry before using the index
    /// (a custom stage may have mutated the store in between).
    pub stored_detections: Vec<Detection>,
    /// `(current, stored)` detections per packet, first-starting current
    /// packet first.
    pub pairing: [(Detection, Detection); 2],
}

/// The chunk-scheduling inputs planned for the ZigZag executor.
#[derive(Clone, Debug)]
pub struct DecodePlan {
    /// `(packet index, start sample)` in the current buffer.
    pub current_placements: Vec<(usize, usize)>,
    /// `(packet index, start sample)` in the stored buffer.
    pub stored_placements: Vec<(usize, usize)>,
    /// Per-packet specs (client ids).
    pub packets: Vec<PacketSpec>,
}

/// Per-buffer working context flowing through the pipeline.
pub struct UnitCtx<'a> {
    /// The receive buffer being processed.
    pub buffer: &'a [Complex],
    /// Detections (filled by [`DetectStage`]).
    pub detections: Vec<Detection>,
    /// Matched stored collision (filled by [`MatchStage`]).
    pub matched: Option<MatchedCollision>,
    /// ZigZag inputs (filled by [`PlanStage`]).
    pub plan: Option<DecodePlan>,
}

impl<'a> UnitCtx<'a> {
    /// A fresh context over a receive buffer.
    pub fn new(buffer: &'a [Complex]) -> Self {
        Self { buffer, detections: Vec::new(), matched: None, plan: None }
    }
}

/// Whether the pipeline keeps running after a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Hand the unit to the next stage.
    Continue,
    /// The buffer is fully handled; stop the pipeline.
    Done,
}

/// One step of the receive pipeline.
pub trait DecodeStage: Send + Sync {
    /// Stable display name (for inspection/telemetry).
    fn name(&self) -> &'static str;
    /// Processes the unit, possibly emitting events.
    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow;
}

/// An ordered set of stages.
pub struct Pipeline {
    stages: Vec<Box<dyn DecodeStage>>,
}

impl Pipeline {
    /// The §5.1d flow: Detect → StandardDecode → Capture → Match → Plan →
    /// Zigzag → Store.
    pub fn standard() -> Self {
        Self {
            stages: vec![
                Box::new(DetectStage),
                Box::new(StandardDecodeStage),
                Box::new(CaptureStage),
                Box::new(MatchStage),
                Box::new(PlanStage),
                Box::new(ZigzagStage),
                Box::new(StoreStage),
            ],
        }
    }

    /// A pipeline from explicit stages.
    pub fn from_stages(stages: Vec<Box<dyn DecodeStage>>) -> Self {
        Self { stages }
    }

    /// Appends a stage.
    pub fn push(&mut self, stage: Box<dyn DecodeStage>) {
        self.stages.push(stage);
    }

    /// Inserts a stage at `index`.
    pub fn insert(&mut self, index: usize, stage: Box<dyn DecodeStage>) {
        self.stages.insert(index, stage);
    }

    /// The stage names, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs one receive buffer through the pipeline.
    pub fn run(&self, rx: &mut ReceiverCore, buffer: &[Complex]) -> Vec<ReceiverEvent> {
        let mut unit = UnitCtx::new(buffer);
        let mut events = Vec::new();
        for stage in &self.stages {
            if stage.run(rx, &mut unit, &mut events) == Flow::Done {
                break;
            }
        }
        events
    }
}

/// Pairs the detections of two collisions by client id, requiring the
/// same client set and different relative offsets (Δ₁ ≠ Δ₂ would be
/// undecodable anyway). Returns `[(current, stored); 2]` with the
/// first-starting current packet first.
pub(crate) fn pair_collisions(
    current: &[Detection],
    stored: &[Detection],
) -> Option<[(Detection, Detection); 2]> {
    if current.len() < 2 || stored.len() < 2 {
        return None;
    }
    let (c1, c2) = (current[0], current[1]);
    let s1 = stored.iter().find(|d| d.client == c1.client)?;
    let s2 = stored.iter().find(|d| d.client == c2.client)?;
    if s1.pos == s2.pos && c1.pos == c2.pos {
        return None;
    }
    Some([(c1, *s1), (c2, *s2)])
}

/// §4.2.1: scan the buffer for packet starts from every associated client.
pub struct DetectStage;

impl DecodeStage for DetectStage {
    fn name(&self) -> &'static str {
        "detect"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        let ReceiverCore { cfg, registry, preamble, scratch, .. } = rx;
        unit.detections = detect_packets_with(unit.buffer, preamble, registry, cfg, scratch);
        if unit.detections.is_empty() {
            events.push(ReceiverEvent::DecodeFailed);
            return Flow::Done;
        }
        Flow::Continue
    }
}

/// The ordinary single-packet decode — the whole story when there is no
/// collision.
pub struct StandardDecodeStage;

impl DecodeStage for StandardDecodeStage {
    fn name(&self) -> &'static str {
        "standard-decode"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if unit.detections.len() != 1 {
            return Flow::Continue;
        }
        let det = unit.detections[0];
        let decode = {
            let ReceiverCore { cfg, registry, preamble, scratch, .. } = &mut *rx;
            decode_single_with(
                unit.buffer,
                det.pos,
                Some(det.client),
                registry,
                preamble,
                true,
                cfg,
                scratch,
            )
        };
        match decode {
            Some(d) if d.frame.is_some() => {
                let frame = d.frame.clone().unwrap();
                rx.deliver(frame, DecodePath::Standard, events);
            }
            _ => events.push(ReceiverEvent::DecodeFailed),
        }
        Flow::Done
    }
}

/// Capture-effect decode + single-collision interference cancellation +
/// the Fig 4-1d cross-collision MRC retry.
pub struct CaptureStage;

impl DecodeStage for CaptureStage {
    fn name(&self) -> &'static str {
        "capture"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if unit.detections.len() < 2 {
            return Flow::Continue;
        }
        let n_before = events.len();

        // Try each detection as the capture anchor, best score first: a
        // data sidelobe of a strong sender can out-score the (fractionally
        // attenuated) true preamble peak, so correlation strength alone is
        // not a reliable anchor — a CRC-passing decode is (§5.3a: false
        // positives are harmless beyond the wasted attempt).
        let mut by_power = unit.detections.clone();
        by_power.sort_by(|a, b| b.corr.abs().total_cmp(&a.corr.abs()));
        let mut anchor: Option<(Detection, SingleDecode)> = None;
        for cand in by_power.iter().take(4) {
            let d = {
                let ReceiverCore { cfg, registry, preamble, scratch, .. } = &mut *rx;
                decode_single_with(
                    unit.buffer,
                    cand.pos,
                    Some(cand.client),
                    registry,
                    preamble,
                    false,
                    cfg,
                    scratch,
                )
            };
            if let Some(d) = d {
                if d.frame.is_some() {
                    anchor = Some((*cand, d));
                    break;
                }
            }
        }
        let Some((strong, strong_decode)) = anchor else {
            return Flow::Continue;
        };

        let f = strong_decode.frame.clone().unwrap();
        rx.deliver(f, DecodePath::Capture, events);
        // best-scoring other detection outside the anchor's preamble
        let weak_det =
            by_power.iter().find(|d| d.pos.abs_diff(strong.pos) >= rx.preamble.len()).copied();
        if let Some(weak) = weak_det {
            let weak_decode = {
                let ReceiverCore { cfg, registry, preamble, scratch, .. } = &mut *rx;
                let residual =
                    subtract_decoded_with(unit.buffer, &strong_decode, preamble, scratch);
                decode_single_with(
                    &residual,
                    weak.pos,
                    Some(weak.client),
                    registry,
                    preamble,
                    true,
                    cfg,
                    scratch,
                )
            };
            match weak_decode {
                Some(w) if w.frame.is_some() => {
                    let f = w.frame.clone().unwrap();
                    rx.deliver(f, DecodePath::InterferenceCancellation, events);
                }
                Some(w) => {
                    // Fig 4-1d: try MRC with a stored faulty version
                    let mut matched = None;
                    for (i, (client, prev)) in rx.weak_versions.iter().enumerate() {
                        if *client != weak.client {
                            continue;
                        }
                        if let Some(f) = mrc_combine_retry(prev, &w) {
                            matched = Some((i, f));
                            break;
                        }
                    }
                    if let Some((i, f)) = matched {
                        rx.weak_versions.remove(i);
                        rx.deliver(f, DecodePath::MrcRetry, events);
                    } else {
                        rx.weak_versions.push((weak.client, w));
                        if rx.weak_versions.len() > rx.cfg.collision_store {
                            rx.weak_versions.remove(0);
                        }
                    }
                }
                None => {}
            }
        }
        if events.len() > n_before {
            Flow::Done
        } else {
            Flow::Continue
        }
    }
}

/// §4.2.2: match the collision against the unmatched-collision store.
pub struct MatchStage;

impl DecodeStage for MatchStage {
    fn name(&self) -> &'static str {
        "match"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        _events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if unit.detections.len() < 2 {
            return Flow::Continue;
        }
        let mut matched_idx = None;
        for (i, stored) in rx.store.iter().enumerate() {
            if let Some(pairing) = pair_collisions(&unit.detections, &stored.detections) {
                // verify sample-level match on the second packet
                let (cur2, old2) = pairing[1];
                if is_match(unit.buffer, cur2.pos, &stored.buffer, old2.pos) {
                    matched_idx = Some((i, pairing));
                    break;
                }
            }
        }
        if let Some((i, pairing)) = matched_idx {
            // non-destructive: the store entry stays until the consuming
            // stage (ZigzagStage) removes it
            unit.matched = Some(MatchedCollision {
                store_index: i,
                stored_detections: rx.store[i].detections.clone(),
                pairing,
            });
        }
        Flow::Continue
    }
}

/// §4.5: turn a matched pair into the executor's collision layout.
pub struct PlanStage;

impl DecodeStage for PlanStage {
    fn name(&self) -> &'static str {
        "plan"
    }

    fn run(
        &self,
        _rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        _events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        let Some(m) = &unit.matched else {
            return Flow::Continue;
        };
        unit.plan = Some(DecodePlan {
            current_placements: m
                .pairing
                .iter()
                .enumerate()
                .map(|(q, (c, _))| (q, c.pos))
                .collect(),
            stored_placements: m.pairing.iter().enumerate().map(|(q, (_, s))| (q, s.pos)).collect(),
            packets: m.pairing.iter().map(|(c, _)| PacketSpec { client: c.client }).collect(),
        });
        Flow::Continue
    }
}

/// §4.2.3: chunk-by-chunk decode of the matched collision pair.
pub struct ZigzagStage;

impl DecodeStage for ZigzagStage {
    fn name(&self) -> &'static str {
        "zigzag"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        let (Some(m), Some(plan)) = (&unit.matched, &unit.plan) else {
            return Flow::Continue;
        };
        let result = {
            let ReceiverCore { cfg, registry, preamble, scratch, store, .. } = &mut *rx;
            // re-validate the match against the store: a custom stage may
            // have mutated it since MatchStage ran
            let Some(stored) = store.get(m.store_index) else {
                return Flow::Continue;
            };
            if stored.detections != m.stored_detections {
                return Flow::Continue;
            }
            let specs = [
                CollisionSpec { buffer: unit.buffer, placements: plan.current_placements.clone() },
                CollisionSpec {
                    buffer: &stored.buffer,
                    placements: plan.stored_placements.clone(),
                },
            ];
            let dec = ZigzagDecoder::with_preamble(cfg.clone(), registry, preamble.clone());
            dec.decode_with(&specs, &plan.packets, scratch)
        };
        // consume the matched stored collision (decode attempted, like the
        // legacy flow — regardless of whether any frame CRC'd)
        let idx = unit.matched.take().map(|m| m.store_index).unwrap();
        rx.store.remove(idx);
        let mut any = false;
        for p in result.packets {
            if let Some(f) = p.frame {
                rx.deliver(f, DecodePath::Zigzag, events);
                any = true;
            }
        }
        if !any {
            events.push(ReceiverEvent::DecodeFailed);
        }
        Flow::Done
    }
}

/// §4.2.2 fallback: store the unmatched collision for a future match.
pub struct StoreStage;

impl DecodeStage for StoreStage {
    fn name(&self) -> &'static str {
        "store"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        rx.store.push_back(StoredCollision {
            buffer: unit.buffer.to_vec(),
            detections: unit.detections.clone(),
        });
        while rx.store.len() > rx.cfg.collision_store {
            rx.store.pop_front();
        }
        events.push(ReceiverEvent::CollisionStored);
        Flow::Done
    }
}
