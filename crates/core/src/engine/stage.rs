//! The trait-based decode pipeline.
//!
//! The §5.1d receiver flow — detect → standard decode → capture/IC →
//! match → plan → zigzag → store — used to be one hard-wired call chain
//! inside `ZigzagReceiver::process`. Here each step is a [`DecodeStage`]:
//! an inspectable, reorderable unit that reads/writes the per-buffer
//! [`UnitCtx`], mutates the shared [`ReceiverCore`] state, and appends
//! [`ReceiverEvent`]s. A [`Pipeline`] runs stages in order until one
//! reports [`Flow::Done`].
//!
//! The default stage order ([`Pipeline::standard`]) reproduces the legacy
//! receiver's behaviour event-for-event (verified by the pipeline-vs-
//! legacy equivalence test in `tests/engine.rs`); custom pipelines can
//! drop, reorder, or wrap stages — e.g. skipping capture for
//! equal-power-only deployments, or inserting instrumentation stages.

use crate::capture::{mrc_combine_retry, subtract_decoded_with};
use crate::config::{ClientRegistry, DecoderConfig, SharedRegistry};
use crate::detect::{detect_packets_with, Detection};
use crate::engine::scratch::Scratch;
use crate::matchset::{
    classify_match_with, collision_key, find_match_set_with, CollisionStore, MatchOutcome,
    MatchSet, RejectedSet,
};
use crate::receiver::{DecodePath, ReceiverEvent};
use crate::recovery::{group_from_pool, group_from_rejected, solve_group, SalvagePool};
use crate::standard::{decode_single_with, SingleDecode};
use crate::zigzag::{CollisionSpec, PacketSpec, ZigzagDecoder};
use std::collections::HashSet;
use zigzag_phy::complex::Complex;
use zigzag_phy::preamble::Preamble;

/// The receiver's long-lived state, shared by every stage: configuration,
/// a read-mostly handle to the association registry (shard-shareable, see
/// [`SharedRegistry`]), the shard-*owned* indexed unmatched-collision
/// store, the salvage pool of evicted collisions (recovery feed), the
/// faulty-weak-version store for cross-collision MRC, the delivery dedup
/// set, and the hot-path [`Scratch`].
///
/// # Example
///
/// Drive one receive buffer through the standard pipeline:
///
/// ```
/// use zigzag_core::config::{ClientRegistry, DecoderConfig};
/// use zigzag_core::engine::{Pipeline, ReceiverCore};
/// use zigzag_phy::complex::Complex;
///
/// let mut core = ReceiverCore::new(DecoderConfig::default(), ClientRegistry::new());
/// let pipeline = Pipeline::standard();
/// // no clients associated, so a noise buffer fails cleanly
/// let events = core.receive(&pipeline, &vec![Complex::real(0.01); 256]);
/// assert_eq!(events, vec![zigzag_core::ReceiverEvent::DecodeFailed]);
/// ```
pub struct ReceiverCore {
    pub(crate) cfg: DecoderConfig,
    pub(crate) registry: SharedRegistry,
    pub(crate) preamble: Preamble,
    pub(crate) store: CollisionStore,
    pub(crate) salvage: SalvagePool,
    pub(crate) weak_versions: Vec<(u16, SingleDecode)>,
    pub(crate) delivered: HashSet<(u16, u16)>,
    pub(crate) scratch: Scratch,
}

impl ReceiverCore {
    /// Fresh state with the given configuration and registry.
    pub fn new(cfg: DecoderConfig, registry: ClientRegistry) -> Self {
        Self::with_registry(cfg, SharedRegistry::new(registry))
    }

    /// Fresh state over an existing shared registry handle — what the
    /// sharded receiver uses so all shards read one association table.
    pub fn with_registry(cfg: DecoderConfig, registry: SharedRegistry) -> Self {
        let scratch = Scratch::with_backend(cfg.backend);
        let mut store = CollisionStore::with_key_window(cfg.collision_store, cfg.key_window);
        // With recovery on, store evictions are retained and absorbed
        // into the salvage pool (see `store_unmatched`) instead of
        // dropped — the eviction path becomes signal.
        let pool_cap = if cfg.recovery.enabled { cfg.recovery.pool } else { 0 };
        store.set_evicted_capacity(pool_cap);
        Self {
            cfg,
            registry,
            preamble: Preamble::default_len(),
            store,
            salvage: SalvagePool::new(pool_cap),
            weak_versions: Vec::new(),
            delivered: HashSet::new(),
            scratch,
        }
    }

    /// Replaces this core's registry handle (after the owning front end
    /// updated associations through its own handle).
    pub fn set_registry(&mut self, registry: SharedRegistry) {
        self.registry = registry;
    }

    /// Runs one receive buffer through `pipeline` against this state —
    /// the full-stack entry point the front end
    /// ([`ZigzagReceiver::process`](crate::receiver::ZigzagReceiver::process))
    /// and batch drivers use.
    pub fn receive(&mut self, pipeline: &Pipeline, buffer: &[Complex]) -> Vec<ReceiverEvent> {
        pipeline.run(self, buffer)
    }

    /// [`Self::receive`] with the detections already computed (the
    /// sharded receiver's router runs the detect pre-pass to pick a
    /// shard; re-scanning in [`DetectStage`] would double the detection
    /// cost). `detect_packets_with` is deterministic, so the events are
    /// identical to an in-pipeline scan.
    pub fn receive_detected(
        &mut self,
        pipeline: &Pipeline,
        buffer: &[Complex],
        detections: Vec<Detection>,
    ) -> Vec<ReceiverEvent> {
        let mut unit = UnitCtx::with_detections(buffer, detections);
        pipeline.run_unit(self, &mut unit)
    }

    /// Read access to the unmatched-collision store.
    pub fn store(&self) -> &CollisionStore {
        &self.store
    }

    /// Read access to the salvage pool (evicted collisions awaiting a
    /// joint algebraic solve; empty unless `DecoderConfig::recovery` is
    /// enabled).
    pub fn salvage(&self) -> &SalvagePool {
        &self.salvage
    }

    /// Forgets delivery history, stored collisions, salvaged collisions,
    /// and weak versions (between experiment runs).
    pub fn reset_history(&mut self) {
        self.delivered.clear();
        self.store.clear();
        self.salvage.clear();
        self.weak_versions.clear();
    }

    /// Emits a `Delivered` event unless this `(src, seq)` was already
    /// delivered (retransmission dedup).
    pub(crate) fn deliver(
        &mut self,
        frame: zigzag_phy::frame::Frame,
        path: DecodePath,
        out: &mut Vec<ReceiverEvent>,
    ) {
        if self.delivered.insert((frame.src, frame.seq)) {
            out.push(ReceiverEvent::Delivered { frame, path });
        }
        if self.delivered.len() > 4096 {
            self.delivered.clear(); // bounded memory; seq spaces recycle
        }
    }

    /// §4.2.2 fallback, shared by [`StoreStage`] and the legacy flow:
    /// store the unmatched collision (keyed by its client set, bounded,
    /// oldest-first eviction) for a future match.
    pub(crate) fn store_unmatched(
        &mut self,
        buffer: &[Complex],
        detections: &[Detection],
        out: &mut Vec<ReceiverEvent>,
    ) {
        self.store.insert(buffer.to_vec(), detections.to_vec());
        // eviction → salvage: a no-op unless recovery retention is on
        for evicted in self.store.take_evicted() {
            self.salvage.absorb(evicted);
        }
        out.push(ReceiverEvent::CollisionStored);
    }
}

/// A matched set of collisions ready for ZigZag. The matched store
/// entries stay **in the receiver's store** until a consuming stage (the
/// [`ZigzagStage`]) removes them — so dropping or reordering stages can
/// never destroy collision data.
#[derive(Clone, Debug)]
pub struct MatchedCollision {
    /// The k-way alignment of the current collision with the matched
    /// store entries.
    pub set: MatchSet,
    /// Each member's detections at match time, in `set.members` order;
    /// consumers re-validate these against the store entries before using
    /// the ids (a custom stage may have mutated the store in between).
    pub member_detections: Vec<Vec<Detection>>,
}

/// The chunk-scheduling inputs planned for the ZigZag executor.
#[derive(Clone, Debug)]
pub struct DecodePlan {
    /// `(packet index, start sample)` per collision: entry 0 is the
    /// current buffer, entries `1..` the matched store members in
    /// [`MatchSet::members`] order.
    pub placements: Vec<Vec<(usize, usize)>>,
    /// Per-packet specs (client ids).
    pub packets: Vec<PacketSpec>,
}

impl DecodePlan {
    /// The executor layout of a match set (§4.5): one placement list per
    /// collision, one packet spec per matched client.
    pub fn from_set(set: &MatchSet) -> Self {
        Self {
            placements: (0..set.collisions()).map(|j| set.placements(j)).collect(),
            packets: set.clients().into_iter().map(|client| PacketSpec { client }).collect(),
        }
    }
}

/// Per-buffer working context flowing through the pipeline.
pub struct UnitCtx<'a> {
    /// The receive buffer being processed.
    pub buffer: &'a [Complex],
    /// Detections (filled by [`DetectStage`], or pre-filled by a routing
    /// front end — see [`UnitCtx::with_detections`]).
    pub detections: Vec<Detection>,
    /// `true` once `detections` holds a completed scan's result;
    /// [`DetectStage`] skips its own scan then.
    pub detections_ready: bool,
    /// Matched stored collision (filled by [`MatchStage`]).
    pub matched: Option<MatchedCollision>,
    /// A confirmed alignment whose system the chunk scheduler cannot
    /// decode (filled by [`MatchStage`], consumed by [`RecoverStage`]).
    pub rejected: Option<RejectedSet>,
    /// ZigZag inputs (filled by [`PlanStage`]).
    pub plan: Option<DecodePlan>,
}

impl<'a> UnitCtx<'a> {
    /// A fresh context over a receive buffer.
    pub fn new(buffer: &'a [Complex]) -> Self {
        Self {
            buffer,
            detections: Vec::new(),
            detections_ready: false,
            matched: None,
            rejected: None,
            plan: None,
        }
    }

    /// A context whose detections were already computed (e.g. by the
    /// sharded receiver's detect-only routing pre-pass).
    pub fn with_detections(buffer: &'a [Complex], detections: Vec<Detection>) -> Self {
        Self {
            buffer,
            detections,
            detections_ready: true,
            matched: None,
            rejected: None,
            plan: None,
        }
    }
}

/// Whether the pipeline keeps running after a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Hand the unit to the next stage.
    Continue,
    /// The buffer is fully handled; stop the pipeline.
    Done,
}

/// One step of the receive pipeline.
pub trait DecodeStage: Send + Sync {
    /// Stable display name (for inspection/telemetry).
    fn name(&self) -> &'static str;
    /// Processes the unit, possibly emitting events.
    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow;
}

/// An ordered set of stages.
pub struct Pipeline {
    stages: Vec<Box<dyn DecodeStage>>,
}

impl Pipeline {
    /// The §5.1d flow: Detect → StandardDecode → Capture → Match → Plan →
    /// Zigzag → Recover → Store. The recover stage is a no-op unless
    /// `DecoderConfig::recovery` is enabled, so the default configuration
    /// reproduces the historical pipeline event-for-event.
    pub fn standard() -> Self {
        Self {
            stages: vec![
                Box::new(DetectStage),
                Box::new(StandardDecodeStage),
                Box::new(CaptureStage),
                Box::new(MatchStage),
                Box::new(PlanStage),
                Box::new(ZigzagStage),
                Box::new(RecoverStage),
                Box::new(StoreStage),
            ],
        }
    }

    /// A pipeline from explicit stages.
    pub fn from_stages(stages: Vec<Box<dyn DecodeStage>>) -> Self {
        Self { stages }
    }

    /// Appends a stage.
    pub fn push(&mut self, stage: Box<dyn DecodeStage>) {
        self.stages.push(stage);
    }

    /// Inserts a stage at `index`.
    pub fn insert(&mut self, index: usize, stage: Box<dyn DecodeStage>) {
        self.stages.insert(index, stage);
    }

    /// The stage names, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Runs one receive buffer through the pipeline.
    pub fn run(&self, rx: &mut ReceiverCore, buffer: &[Complex]) -> Vec<ReceiverEvent> {
        let mut unit = UnitCtx::new(buffer);
        self.run_unit(rx, &mut unit)
    }

    /// Runs a (possibly pre-seeded) unit context through the pipeline.
    pub fn run_unit(&self, rx: &mut ReceiverCore, unit: &mut UnitCtx<'_>) -> Vec<ReceiverEvent> {
        let mut events = Vec::new();
        for stage in &self.stages {
            if stage.run(rx, unit, &mut events) == Flow::Done {
                break;
            }
        }
        events
    }
}

/// Executes the ZigZag decode of a matched collision set, shared by the
/// [`ZigzagStage`] and the legacy monolithic flow: assembles the
/// [`CollisionSpec`]s (current buffer first, then the matched store
/// members), runs the §4.2.3/§4.5 executor, **consumes** the matched
/// store entries (decode attempted — regardless of whether any frame
/// CRC'd), and delivers recovered frames.
pub(crate) fn zigzag_decode_match(
    rx: &mut ReceiverCore,
    buffer: &[Complex],
    plan: &DecodePlan,
    members: &[u64],
    events: &mut Vec<ReceiverEvent>,
) {
    let result = {
        let ReceiverCore { cfg, registry, preamble, scratch, store, .. } = &mut *rx;
        let mut specs = Vec::with_capacity(plan.placements.len());
        specs.push(CollisionSpec { buffer, placements: plan.placements[0].clone() });
        for (j, &id) in members.iter().enumerate() {
            let entry = store.get(id).expect("matched store entry re-validated by caller");
            specs.push(CollisionSpec {
                buffer: &entry.buffer,
                placements: plan.placements[j + 1].clone(),
            });
        }
        let dec = ZigzagDecoder::with_preamble(cfg.clone(), registry, preamble.clone());
        dec.decode_with(&specs, &plan.packets, scratch)
    };
    for &id in members {
        rx.store.remove(id);
    }
    let mut any = false;
    for p in result.packets {
        if let Some(f) = p.frame {
            rx.deliver(f, DecodePath::Zigzag, events);
            any = true;
        }
    }
    if !any {
        events.push(ReceiverEvent::DecodeFailed);
    }
}

/// §4.1's "collision followed by a clean retransmission" path, shared by
/// [`StandardDecodeStage`] (gated on `DecoderConfig::solo_reap`): the
/// solo decode `solo` of `client` just CRC'd, so its *clean* symbols are
/// known. For every stored collision containing `client`, estimate the
/// client's channel inside the stored buffer, render the known symbols
/// through it, subtract (the ANC primitive — one collision suffices once
/// one packet's content is known, §2.1), and try to decode each buried
/// partner from the residual. A store entry is consumed only when at
/// least one partner actually decodes; otherwise it stays for a future
/// ZigZag match.
pub(crate) fn reap_stored(
    rx: &mut ReceiverCore,
    client: u16,
    solo: &SingleDecode,
    events: &mut Vec<ReceiverEvent>,
) {
    let ids: Vec<u64> = rx.store.iter().filter(|e| e.key.contains(&client)).map(|e| e.id).collect();
    for id in ids {
        let recovered = {
            let ReceiverCore { cfg, registry, preamble, scratch, store, .. } = &mut *rx;
            let Some(entry) = store.get(id) else { continue };
            // best detection of the known client anchors its channel
            // estimate inside the stored collision
            let Some(anchor) = entry
                .detections
                .iter()
                .filter(|d| d.client == client)
                .max_by(|a, b| a.corr.abs().total_cmp(&b.corr.abs()))
            else {
                continue;
            };
            let Some(mut known) = decode_single_with(
                &entry.buffer,
                anchor.pos,
                Some(client),
                registry,
                preamble,
                false,
                cfg,
                scratch,
            ) else {
                continue;
            };
            // swap in the retransmission's clean hard decisions: the
            // stored attempt carries the same MPDU, so these are the true
            // symbols under the stored collision's channel
            if known.decided.len() != solo.decided.len() {
                continue;
            }
            known.decided = solo.decided.clone();
            let residual = subtract_decoded_with(&entry.buffer, &known, preamble, scratch);
            // decode each partner (best detection per distinct client)
            let mut partners: Vec<Detection> = Vec::new();
            for d in entry.detections.iter().filter(|d| d.client != client) {
                match partners.iter_mut().find(|p| p.client == d.client) {
                    Some(p) => {
                        if d.corr.abs() > p.corr.abs() {
                            *p = *d;
                        }
                    }
                    None => partners.push(*d),
                }
            }
            let mut recovered = Vec::new();
            for p in partners {
                if let Some(w) = decode_single_with(
                    &residual,
                    p.pos,
                    Some(p.client),
                    registry,
                    preamble,
                    true,
                    cfg,
                    scratch,
                ) {
                    if let Some(f) = w.frame {
                        recovered.push(f);
                    }
                }
            }
            recovered
        };
        if !recovered.is_empty() {
            rx.store.remove(id);
            for f in recovered {
                rx.deliver(f, DecodePath::InterferenceCancellation, events);
            }
        }
    }
}

/// §4.2.1: scan the buffer for packet starts from every associated client.
pub struct DetectStage;

impl DecodeStage for DetectStage {
    fn name(&self) -> &'static str {
        "detect"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if !unit.detections_ready {
            let ReceiverCore { cfg, registry, preamble, scratch, .. } = rx;
            unit.detections = detect_packets_with(unit.buffer, preamble, registry, cfg, scratch);
            unit.detections_ready = true;
        }
        if unit.detections.is_empty() {
            events.push(ReceiverEvent::DecodeFailed);
            return Flow::Done;
        }
        Flow::Continue
    }
}

/// The ordinary single-packet decode — the whole story when there is no
/// collision. With `DecoderConfig::solo_reap` on, a successful solo
/// decode additionally reaps the collision store (§4.1): the clean
/// packet is subtracted from every stored collision containing its
/// client and the buried partners are decoded from the residuals.
pub struct StandardDecodeStage;

impl DecodeStage for StandardDecodeStage {
    fn name(&self) -> &'static str {
        "standard-decode"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if unit.detections.len() != 1 {
            return Flow::Continue;
        }
        let det = unit.detections[0];
        let decode = {
            let ReceiverCore { cfg, registry, preamble, scratch, .. } = &mut *rx;
            decode_single_with(
                unit.buffer,
                det.pos,
                Some(det.client),
                registry,
                preamble,
                true,
                cfg,
                scratch,
            )
        };
        match decode {
            Some(d) if d.frame.is_some() => {
                let frame = d.frame.clone().unwrap();
                rx.deliver(frame, DecodePath::Standard, events);
                if rx.cfg.solo_reap {
                    reap_stored(rx, det.client, &d, events);
                }
            }
            _ => events.push(ReceiverEvent::DecodeFailed),
        }
        Flow::Done
    }
}

/// Capture-effect decode + single-collision interference cancellation +
/// the Fig 4-1d cross-collision MRC retry.
pub struct CaptureStage;

impl DecodeStage for CaptureStage {
    fn name(&self) -> &'static str {
        "capture"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if unit.detections.len() < 2 {
            return Flow::Continue;
        }
        let n_before = events.len();

        // Try each detection as the capture anchor, best score first: a
        // data sidelobe of a strong sender can out-score the (fractionally
        // attenuated) true preamble peak, so correlation strength alone is
        // not a reliable anchor — a CRC-passing decode is (§5.3a: false
        // positives are harmless beyond the wasted attempt).
        let mut by_power = unit.detections.clone();
        by_power.sort_by(|a, b| b.corr.abs().total_cmp(&a.corr.abs()));
        let mut anchor: Option<(Detection, SingleDecode)> = None;
        for cand in by_power.iter().take(4) {
            let d = {
                let ReceiverCore { cfg, registry, preamble, scratch, .. } = &mut *rx;
                decode_single_with(
                    unit.buffer,
                    cand.pos,
                    Some(cand.client),
                    registry,
                    preamble,
                    false,
                    cfg,
                    scratch,
                )
            };
            if let Some(d) = d {
                if d.frame.is_some() {
                    anchor = Some((*cand, d));
                    break;
                }
            }
        }
        let Some((strong, strong_decode)) = anchor else {
            return Flow::Continue;
        };

        let f = strong_decode.frame.clone().unwrap();
        rx.deliver(f, DecodePath::Capture, events);
        // best-scoring other detection outside the anchor's preamble
        let weak_det =
            by_power.iter().find(|d| d.pos.abs_diff(strong.pos) >= rx.preamble.len()).copied();
        if let Some(weak) = weak_det {
            let weak_decode = {
                let ReceiverCore { cfg, registry, preamble, scratch, .. } = &mut *rx;
                let residual =
                    subtract_decoded_with(unit.buffer, &strong_decode, preamble, scratch);
                decode_single_with(
                    &residual,
                    weak.pos,
                    Some(weak.client),
                    registry,
                    preamble,
                    true,
                    cfg,
                    scratch,
                )
            };
            match weak_decode {
                Some(w) if w.frame.is_some() => {
                    let f = w.frame.clone().unwrap();
                    rx.deliver(f, DecodePath::InterferenceCancellation, events);
                }
                Some(w) => {
                    // Fig 4-1d: try MRC with a stored faulty version
                    let mut matched = None;
                    for (i, (client, prev)) in rx.weak_versions.iter().enumerate() {
                        if *client != weak.client {
                            continue;
                        }
                        if let Some(f) = mrc_combine_retry(prev, &w) {
                            matched = Some((i, f));
                            break;
                        }
                    }
                    if let Some((i, f)) = matched {
                        rx.weak_versions.remove(i);
                        rx.deliver(f, DecodePath::MrcRetry, events);
                    } else {
                        rx.weak_versions.push((weak.client, w));
                        if rx.weak_versions.len() > rx.cfg.collision_store {
                            rx.weak_versions.remove(0);
                        }
                    }
                }
                None => {}
            }
        }
        if events.len() > n_before {
            Flow::Done
        } else {
            Flow::Continue
        }
    }
}

/// §4.2.2/§4.5: match the collision against the unmatched-collision
/// store — pairwise for two distinct clients, k-way match sets for
/// three or more (see [`crate::matchset::find_match_set`]).
pub struct MatchStage;

impl DecodeStage for MatchStage {
    fn name(&self) -> &'static str {
        "match"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        _events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if unit.detections.len() < 2 {
            return Flow::Continue;
        }
        // Full classification (confirming and explaining undecodable
        // alignments) only pays off with a recovery consumer downstream;
        // otherwise take the historical fast path, which skips that
        // signal work entirely.
        let ReceiverCore { cfg, registry, preamble, store, scratch, .. } = rx;
        let search = cfg.match_search;
        let outcome = if cfg.recovery.enabled {
            classify_match_with(
                search,
                scratch,
                unit.buffer,
                &unit.detections,
                store,
                registry,
                preamble,
            )
        } else {
            match find_match_set_with(
                search,
                scratch,
                unit.buffer,
                &unit.detections,
                store,
                registry,
                preamble,
            ) {
                Some(set) => MatchOutcome::Matched(set),
                None => MatchOutcome::NoMatch,
            }
        };
        match outcome {
            MatchOutcome::Matched(set) => {
                // non-destructive: the store entries stay until the
                // consuming stage (ZigzagStage) removes them
                let member_detections = set
                    .members
                    .iter()
                    .map(|&id| rx.store.get(id).expect("matched id").detections.clone())
                    .collect();
                unit.matched = Some(MatchedCollision { set, member_detections });
            }
            MatchOutcome::Undecodable(rejected) => unit.rejected = Some(rejected),
            MatchOutcome::NoMatch => {}
        }
        Flow::Continue
    }
}

/// §4.5: turn a matched collision set into the executor's layout.
pub struct PlanStage;

impl DecodeStage for PlanStage {
    fn name(&self) -> &'static str {
        "plan"
    }

    fn run(
        &self,
        _rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        _events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if let Some(m) = &unit.matched {
            unit.plan = Some(DecodePlan::from_set(&m.set));
        }
        Flow::Continue
    }
}

/// §4.2.3: chunk-by-chunk decode of the matched collision set.
pub struct ZigzagStage;

impl DecodeStage for ZigzagStage {
    fn name(&self) -> &'static str {
        "zigzag"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if unit.matched.is_none() || unit.plan.is_none() {
            return Flow::Continue;
        }
        {
            // re-validate every member against the store: a custom stage
            // may have mutated it since MatchStage ran
            let m = unit.matched.as_ref().unwrap();
            for (&id, snap) in m.set.members.iter().zip(m.member_detections.iter()) {
                match rx.store.get(id) {
                    Some(entry) if entry.detections == *snap => {}
                    _ => return Flow::Continue,
                }
            }
        }
        let m = unit.matched.take().unwrap();
        let plan = unit.plan.as_ref().unwrap();
        zigzag_decode_match(rx, unit.buffer, plan, &m.set.members, events);
        Flow::Done
    }
}

/// Algebraic batch recovery ([`crate::recovery`]): jointly solves
/// collision groups the chunk scheduler cannot peel — confirmed-but-
/// undecodable match sets (e.g. §4.5's Δ₁ = Δ₂ duplicate offsets) and
/// groups recruited from the salvage pool of store evictions. Runs after
/// [`ZigzagStage`] (only buffers ZigZag could not consume reach it), is
/// shard-local (pool and store are keyed by client set), and no-ops
/// unless `DecoderConfig::recovery` is enabled.
pub struct RecoverStage;

impl RecoverStage {
    /// Solves `group` and delivers every CRC-verified frame. The
    /// `(src, seq)` dedup inside [`ReceiverCore::deliver`] makes emission
    /// idempotent, so a packet that already arrived through another path
    /// is never double-emitted. Returns `true` only when **every** packet
    /// of the group resolved — the caller may then consume the group's
    /// buffers. On a partial solve (one packet CRC'd, another did not)
    /// the survivors are delivered but the group's evidence must be
    /// kept: the unresolved packet's equations are still needed, and a
    /// future retransmission can form a better-determined system with
    /// them.
    fn solve_and_deliver(
        rx: &mut ReceiverCore,
        group: &crate::recovery::RecoveryGroup,
        events: &mut Vec<ReceiverEvent>,
    ) -> bool {
        let recovered = {
            let ReceiverCore { cfg, registry, preamble, scratch, .. } = &mut *rx;
            solve_group(group, registry, preamble, cfg, scratch)
        };
        let all = !recovered.is_empty() && recovered.iter().all(|p| p.frame.is_some());
        for packet in recovered {
            if let Some(frame) = packet.frame {
                rx.deliver(frame, DecodePath::Recovered, events);
            }
        }
        all
    }
}

impl DecodeStage for RecoverStage {
    fn name(&self) -> &'static str {
        "recover"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        if !rx.cfg.recovery.enabled || unit.detections.len() < 2 {
            return Flow::Continue;
        }
        // Path (a): the matcher confirmed an alignment whose system
        // peeling cannot decode — solve it jointly across the aligned
        // buffers instead of throwing the confirmation away.
        if let Some(rejected) = unit.rejected.take() {
            if let Some(group) = group_from_rejected(unit.buffer, &rejected, &rx.store) {
                if Self::solve_and_deliver(rx, &group, events) {
                    // the group is decoded: consume its store members
                    for &id in &rejected.set.members {
                        rx.store.remove(id);
                    }
                    return Flow::Done;
                }
            }
        }
        // Path (b): recruit evicted same-key collisions from the salvage
        // pool — the store already lost them, but their equations still
        // combine with the current buffer's into a solvable system.
        let key = collision_key(&unit.detections, rx.store.key_window());
        let max_members = rx.cfg.recovery.max_collisions.saturating_sub(1);
        if let Some((group, used)) = group_from_pool(
            &mut rx.scratch,
            unit.buffer,
            &unit.detections,
            &key,
            &rx.salvage,
            max_members,
            rx.cfg.recovery.min_conditioning,
        ) {
            if Self::solve_and_deliver(rx, &group, events) {
                rx.salvage.consume(&key, &used);
                return Flow::Done;
            }
        }
        Flow::Continue
    }
}

/// §4.2.2 fallback: store the unmatched collision for a future match.
pub struct StoreStage;

impl DecodeStage for StoreStage {
    fn name(&self) -> &'static str {
        "store"
    }

    fn run(
        &self,
        rx: &mut ReceiverCore,
        unit: &mut UnitCtx<'_>,
        events: &mut Vec<ReceiverEvent>,
    ) -> Flow {
        rx.store_unmatched(unit.buffer, &unit.detections, events);
        Flow::Done
    }
}
