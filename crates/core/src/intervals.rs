//! Sorted disjoint interval sets over symbol indices.
//!
//! The greedy chunk scheduler (§4.5) tracks, per packet, which symbol
//! ranges have been decoded so far. With overhanging chunks and multiple
//! collisions, decoded regions are generally a union of disjoint ranges,
//! not a prefix — hence a small interval-set type rather than a counter.

use std::ops::Range;

/// A set of `usize` indices stored as sorted, disjoint, non-adjacent
/// half-open ranges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    ranges: Vec<Range<usize>>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set holding one range.
    pub fn from_range(r: Range<usize>) -> Self {
        let mut s = Self::new();
        s.insert(r);
        s
    }

    /// Inserts a range, merging with any overlapping or adjacent ranges.
    pub fn insert(&mut self, r: Range<usize>) {
        if r.is_empty() {
            return;
        }
        let mut new_start = r.start;
        let mut new_end = r.end;
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        let mut placed = false;
        for existing in self.ranges.drain(..) {
            if existing.end < new_start || existing.start > new_end {
                // disjoint and non-adjacent
                if existing.start > new_end && !placed {
                    out.push(new_start..new_end);
                    placed = true;
                }
                out.push(existing);
            } else {
                new_start = new_start.min(existing.start);
                new_end = new_end.max(existing.end);
            }
        }
        if !placed {
            out.push(new_start..new_end);
        }
        out.sort_by_key(|r| r.start);
        self.ranges = out;
    }

    /// `true` if `idx` is in the set.
    pub fn contains(&self, idx: usize) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if idx < r.start {
                    std::cmp::Ordering::Greater
                } else if idx >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// `true` if the whole range is covered.
    pub fn covers(&self, r: Range<usize>) -> bool {
        if r.is_empty() {
            return true;
        }
        self.ranges.iter().any(|e| e.start <= r.start && r.end <= e.end)
    }

    /// Total number of indices covered.
    pub fn total(&self) -> usize {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }

    /// `true` if nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The covered ranges, sorted.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Iterates over the *gaps* of the set within `within`.
    pub fn gaps(&self, within: Range<usize>) -> Vec<Range<usize>> {
        let mut gaps = Vec::new();
        let mut cursor = within.start;
        for r in &self.ranges {
            if r.end <= within.start {
                continue;
            }
            if r.start >= within.end {
                break;
            }
            if r.start > cursor {
                gaps.push(cursor..r.start.min(within.end));
            }
            cursor = cursor.max(r.end);
        }
        if cursor < within.end {
            gaps.push(cursor..within.end);
        }
        gaps
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // asserting on literal range lists
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = IntervalSet::new();
        s.insert(5..10);
        assert!(s.contains(5) && s.contains(9));
        assert!(!s.contains(4) && !s.contains(10));
    }

    #[test]
    fn merge_overlapping() {
        let mut s = IntervalSet::new();
        s.insert(0..5);
        s.insert(3..8);
        assert_eq!(s.ranges(), &[0..8]);
    }

    #[test]
    fn merge_adjacent() {
        let mut s = IntervalSet::new();
        s.insert(0..5);
        s.insert(5..8);
        assert_eq!(s.ranges(), &[0..8]);
    }

    #[test]
    fn keep_disjoint() {
        let mut s = IntervalSet::new();
        s.insert(0..3);
        s.insert(10..12);
        s.insert(5..7);
        assert_eq!(s.ranges(), &[0..3, 5..7, 10..12]);
        assert_eq!(s.total(), 7);
    }

    #[test]
    fn merge_spanning_many() {
        let mut s = IntervalSet::new();
        s.insert(0..2);
        s.insert(4..6);
        s.insert(8..10);
        s.insert(1..9);
        assert_eq!(s.ranges(), &[0..10]);
    }

    #[test]
    fn covers_range() {
        let mut s = IntervalSet::new();
        s.insert(2..10);
        assert!(s.covers(2..10));
        assert!(s.covers(4..6));
        assert!(!s.covers(0..5));
        assert!(!s.covers(9..11));
        assert!(s.covers(7..7)); // empty range always covered
    }

    #[test]
    fn gaps_basic() {
        let mut s = IntervalSet::new();
        s.insert(3..5);
        s.insert(8..10);
        assert_eq!(s.gaps(0..12), vec![0..3, 5..8, 10..12]);
        assert_eq!(s.gaps(4..9), vec![5..8]);
        assert_eq!(s.gaps(3..5), Vec::<std::ops::Range<usize>>::new());
    }

    #[test]
    fn gaps_of_empty_set() {
        let s = IntervalSet::new();
        assert_eq!(s.gaps(2..6), vec![2..6]);
    }

    #[test]
    fn empty_insert_ignored() {
        let mut s = IntervalSet::new();
        s.insert(5..5);
        assert!(s.is_empty());
    }
}
