//! The ZigZag collision decoder (§4.2.3, §4.3, §4.5).
//!
//! Given k receive buffers ("collisions") and the placements of m packets
//! inside them (from detection + matching), the executor:
//!
//! 1. asks the greedy scheduler ([`crate::schedule`]) for the next
//!    interference-free chunk;
//! 2. decodes it with the black-box chunk decoder
//!    ([`ChannelView::decode_chunk`]);
//! 3. re-encodes it through the per-collision channel estimate and
//!    **subtracts the image from every collision where the packet
//!    appears** (§4.5 Step 2), applying the §4.2.4 tracking feedback;
//! 4. repeats until both/all packets are decoded, learning each packet's
//!    true length and body modulation when its PLCP header emerges;
//! 5. optionally runs the **backward pass** (§4.3b): each packet is
//!    re-decoded in reverse from its *other* copy (original buffer minus
//!    the final images of every other packet), and the two soft streams
//!    are MRC-combined — this is why ZigZag's BER beats collision-free
//!    transmission (every symbol is received twice).

use crate::config::{ClientRegistry, DecoderConfig};
use crate::engine::scratch::Scratch;
use crate::schedule::{CollisionLayout, PlanOutcome, PlanState, Step};
use crate::view::{ChannelView, Direction, PacketLayout};
use zigzag_phy::bits::bits_to_bytes;
use zigzag_phy::complex::Complex;
use zigzag_phy::frame::{decode_mpdu, Frame, PlcpHeader, PLCP_SYMBOLS};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

/// What the receiver knows about one packet before ZigZag starts.
#[derive(Clone, Debug)]
pub struct PacketSpec {
    /// Sender id (keys the association registry for coarse ω and ISI taps).
    pub client: u16,
}

/// One collision buffer plus the packet placements inside it.
#[derive(Clone, Debug)]
pub struct CollisionSpec<'a> {
    /// The received samples.
    pub buffer: &'a [Complex],
    /// `(packet index, start sample)` for every packet present.
    pub placements: Vec<(usize, usize)>,
}

/// Result for one packet.
#[derive(Clone, Debug)]
pub struct PacketResult {
    /// The recovered frame, if its CRC-32 checked out.
    pub frame: Option<Frame>,
    /// Parsed PLCP header, if decodable.
    pub plcp: Option<PlcpHeader>,
    /// Best-effort scrambled MPDU bits (for BER scoring against the
    /// transmitted reference even when the CRC fails).
    pub scrambled_bits: Vec<u8>,
    /// `true` if every symbol was scheduled and decoded.
    pub complete: bool,
}

/// Output of a ZigZag decode.
#[derive(Clone, Debug)]
pub struct ZigzagOutput {
    /// Per-packet results, indexed like the input `PacketSpec`s.
    pub packets: Vec<PacketResult>,
    /// Whether the chunk scheduler completed or got stuck (§4.5 failure).
    pub outcome: PlanOutcome,
}

/// Per-packet working state.
struct PktState {
    layout: PacketLayout,
    /// Hard-decision constellation points by symbol index.
    decided: Vec<Option<Complex>>,
    /// Forward-pass soft symbols.
    soft_fwd: Vec<Option<Complex>>,
    /// Which collision contributed most forward chunks (to pick the other
    /// one for the backward pass).
    fwd_source_count: Vec<usize>,
    plcp: Option<PlcpHeader>,
    client: u16,
}

/// The ZigZag decoder.
pub struct ZigzagDecoder<'r> {
    cfg: DecoderConfig,
    registry: &'r ClientRegistry,
    preamble: Preamble,
}

/// Minimum chunk size (symbols) for reconstruction feedback to fire —
/// tiny chunks carry too little energy for a stable estimate.
const MIN_FEEDBACK_CHUNK: usize = 16;

impl<'r> ZigzagDecoder<'r> {
    /// Creates a decoder bound to an association registry.
    pub fn new(cfg: DecoderConfig, registry: &'r ClientRegistry) -> Self {
        Self { cfg, registry, preamble: Preamble::default_len() }
    }

    /// Creates a decoder with a non-default preamble.
    pub fn with_preamble(cfg: DecoderConfig, registry: &'r ClientRegistry, p: Preamble) -> Self {
        Self { cfg, registry, preamble: p }
    }

    /// Runs ZigZag over the given collisions.
    pub fn decode(&self, collisions: &[CollisionSpec<'_>], packets: &[PacketSpec]) -> ZigzagOutput {
        let mut ws = Scratch::with_backend(self.cfg.backend);
        self.decode_with(collisions, packets, &mut ws)
    }

    /// Scratch-aware variant of [`ZigzagDecoder::decode`]: all per-chunk
    /// temporaries are drawn from `ws`, so a caller decoding many
    /// collisions (the receiver, a [`BatchEngine`](crate::engine::BatchEngine)
    /// work unit) pays no steady-state allocation in the chunk loop.
    pub fn decode_with(
        &self,
        collisions: &[CollisionSpec<'_>],
        packets: &[PacketSpec],
        ws: &mut Scratch,
    ) -> ZigzagOutput {
        let n_pkts = packets.len();
        let n_cols = collisions.len();

        let layouts: Vec<CollisionLayout> = collisions
            .iter()
            .map(|c| CollisionLayout {
                placements: c
                    .placements
                    .iter()
                    .map(|&(p, s)| crate::schedule::Placement { packet: p, start: s })
                    .collect(),
                len: c.buffer.len(),
            })
            .collect();
        // upper-bound packet lengths: to the end of the longest buffer
        let max_lens = crate::schedule::upper_bound_lens(n_pkts, &layouts);

        let mut plan = PlanState::new(max_lens.clone(), layouts);
        let mut residuals: Vec<Vec<Complex>> =
            collisions.iter().map(|c| c.buffer.to_vec()).collect();
        // Accumulated synthesized image per (collision, packet). The
        // residual invariant is `residual[c] = buffer[c] − Σ_q acc[c][q]`:
        // each subtraction renders the packet's image over an *expanded*
        // span from all currently-decided symbols and subtracts only the
        // delta against the accumulator, so chunk-boundary tails (ISI
        // post-cursors, sinc skirts) heal as soon as the neighbouring
        // chunk is decoded instead of polluting the other packet.
        let mut img_acc: Vec<Vec<Vec<Complex>>> = collisions
            .iter()
            .map(|c| (0..n_pkts).map(|_| vec![Complex::default(); c.buffer.len()]).collect())
            .collect();
        let mut views: Vec<Vec<Option<ChannelView>>> =
            (0..n_cols).map(|_| (0..n_pkts).map(|_| None).collect()).collect();
        // views estimated while the preamble was immersed in an
        // interferer; re-estimated (and their images re-rendered) as soon
        // as subtraction exposes the preamble
        let mut immersed: Vec<Vec<bool>> = vec![vec![false; n_pkts]; n_cols];
        let mut pkts: Vec<PktState> = (0..n_pkts)
            .map(|q| PktState {
                layout: PacketLayout::unknown(
                    self.preamble.symbols().to_vec(),
                    PLCP_SYMBOLS,
                    max_lens[q],
                ),
                decided: vec![None; max_lens[q]],
                soft_fwd: vec![None; max_lens[q]],
                fwd_source_count: vec![0; n_cols],
                plcp: None,
                client: packets[q].client,
            })
            .collect();

        // ---------- forward pass ----------
        // One run per iteration, preferring the run closest to its view's
        // decode frontier: the linear phase model is only trustworthy near
        // the last position it was corrected at, so adjacent chunks decode
        // far better than distant overhangs. Overhanging chunks (§4.5
        // Step 1) still get scheduled when they are the only progress
        // available — with the extrapolation penalty physics imposes.
        let mut frontier: Vec<Vec<usize>> = vec![vec![0; n_pkts]; n_cols];
        let outcome = loop {
            if plan.is_complete() {
                break PlanOutcome::Complete;
            }
            let runs = plan.available_runs();
            let best = runs.into_iter().min_by_key(|s| {
                let f = frontier[s.collision][s.packet];
                let dist = s.range.start.abs_diff(f);
                (dist, s.range.start)
            });
            let Some(mut step) = best else {
                break PlanOutcome::Stuck;
            };
            // Until a packet's PLCP is parsed we don't know its body
            // modulation — never decode past the PLCP boundary in one go
            // (the body would be sliced with the wrong constellation and
            // the bad decisions subtracted everywhere).
            {
                let q = step.packet;
                let body = pkts[q].layout.body_start();
                if pkts[q].plcp.is_none() && step.range.start < body && step.range.end > body {
                    step.range.end = body;
                }
            }
            frontier[step.collision][step.packet] = step.range.end;
            self.process_step(
                &step,
                collisions,
                &mut plan,
                &mut residuals,
                &mut img_acc,
                &mut views,
                &mut immersed,
                &mut pkts,
                ws,
            );
            self.reestimate_exposed(
                collisions,
                &plan,
                &mut residuals,
                &mut img_acc,
                &mut views,
                &mut immersed,
                &pkts,
                ws,
            );
        };

        // ---------- backward pass + MRC ----------
        let mut results = Vec::with_capacity(n_pkts);
        for q in 0..n_pkts {
            let result = self.finalize_packet(
                q, outcome, collisions, &plan, &residuals, &img_acc, &views, &pkts, ws,
            );
            results.push(result);
        }
        ZigzagOutput { packets: results, outcome }
    }

    /// Decodes one chunk, stores its symbols, learns the PLCP if it just
    /// completed, and subtracts the chunk image from every collision.
    #[allow(clippy::too_many_arguments)]
    fn process_step(
        &self,
        step: &Step,
        collisions: &[CollisionSpec<'_>],
        plan: &mut PlanState,
        residuals: &mut [Vec<Complex>],
        img_acc: &mut [Vec<Vec<Complex>>],
        views: &mut [Vec<Option<ChannelView>>],
        immersed: &mut [Vec<bool>],
        pkts: &mut [PktState],
        ws: &mut Scratch,
    ) {
        let (c, q) = (step.collision, step.packet);

        // ensure a view exists for (q, c)
        if views[c][q].is_none() {
            if let Some((v, clean)) = self.make_view(q, c, collisions, plan, residuals, pkts) {
                views[c][q] = Some(v);
                immersed[c][q] = !clean;
            }
        }
        let Some(view) = views[c][q].as_mut() else {
            // estimation impossible — mark as decoded to avoid livelock;
            // the packet will simply fail its CRC.
            plan.mark(q, step.range.clone());
            return;
        };

        // decode the chunk from this collision's residual
        let Scratch { pool, chunk, image, kernel } = ws;
        view.decode_chunk_into(
            &residuals[c],
            step.range.clone(),
            &pkts[q].layout,
            Direction::Forward,
            pool,
            kernel,
            chunk,
        );
        let out = &*chunk;
        for (i, n) in step.range.clone().enumerate() {
            if n < pkts[q].decided.len() && pkts[q].decided[n].is_none() {
                pkts[q].decided[n] = Some(out.decided[i]);
                pkts[q].soft_fwd[n] = Some(out.soft[i]);
            }
        }
        if std::env::var_os("ZIGZAG_DEBUG").is_some() {
            let evm: f64 =
                out.soft.iter().zip(out.decided.iter()).map(|(s, d)| (*s - *d).abs()).sum::<f64>()
                    / out.soft.len().max(1) as f64;
            let v = views[c][q].as_ref().unwrap();
            eprintln!(
                "step c{c} q{q} {:?}: evm={evm:.3} gain={:.2} omega={:.5} mu={:.3}",
                step.range,
                v.gain,
                v.phase.omega(),
                v.mu
            );
        }
        pkts[q].fwd_source_count[c] += step.range.len();
        plan.mark(q, step.range.clone());

        // PLCP completion?
        if pkts[q].plcp.is_none() {
            self.try_parse_plcp(q, plan, pkts);
        }

        // subtract the chunk image from every collision containing q,
        // maintaining the accumulated-image invariant (see `decode`)
        for (ci, col) in collisions.iter().enumerate() {
            if !col.placements.iter().any(|&(p, _)| p == q) {
                continue;
            }
            if views[ci][q].is_none() {
                if let Some((v, clean)) = self.make_view(q, ci, collisions, plan, residuals, pkts) {
                    views[ci][q] = Some(v);
                    immersed[ci][q] = !clean;
                }
            }
            let Some(v) = views[ci][q].as_mut() else { continue };
            let decided = &pkts[q].decided;
            let sym_fn = |n: usize| decided.get(n).copied().flatten();
            // expand by the ISI + interpolation margin so boundary tails
            // of previously-subtracted chunks are re-rendered with the
            // newly decided neighbours
            let m2 = v.taps.len() + 9;
            let exp = step.range.start.saturating_sub(m2)
                ..(step.range.end + m2).min(pkts[q].decided.len());
            v.synthesize_into(exp.clone(), &sym_fn, pool, kernel, image);
            let img = &*image;
            let blen = residuals[ci].len();
            let span = img.first.min(blen)..img.range().end.min(blen);
            // actual received image of q over the span (for feedback):
            // residual + old accumulator = buffer − other packets
            let mut observed = pool.take();
            observed.extend(span.clone().map(|p| residuals[ci][p] + img_acc[ci][q][p]));
            // delta-subtract against the accumulator
            for (k, p) in span.clone().enumerate() {
                let new_val = img.samples[k];
                residuals[ci][p] -= new_val - img_acc[ci][q][p];
                img_acc[ci][q][p] = new_val;
            }
            if std::env::var_os("ZIGZAG_DEBUG").is_some() {
                let before = zigzag_phy::complex::mean_power(&observed);
                let after = zigzag_phy::complex::mean_power(&residuals[ci][span.clone()]);
                eprintln!(
                    "    sub q{q} from c{ci} at {:?}: pwr {before:.2} -> {after:.2}",
                    step.range
                );
            }
            if step.range.len() >= MIN_FEEDBACK_CHUNK && observed.len() == img.samples.len() {
                v.feedback_with(&observed, img, exp, &sym_fn, pool, kernel);
            }
            pool.put(observed);
        }
    }

    /// `true` if `q`'s preamble region in collision `c` is currently free
    /// of *live* interference (other packets absent or already subtracted).
    fn preamble_clean(
        &self,
        q: usize,
        c: usize,
        collisions: &[CollisionSpec<'_>],
        plan: &PlanState,
    ) -> bool {
        let Some(&(_, start)) = collisions[c].placements.iter().find(|(p, _)| *p == q) else {
            return false;
        };
        let pre_span = start..start + self.preamble.len();
        collisions[c].placements.iter().all(|&(p, s)| {
            if p == q {
                return true;
            }
            let p_len = plan.len_of(p);
            let lo = pre_span.start.max(s);
            let hi = pre_span.end.min(s + p_len);
            (lo..hi).all(|pos| plan.decoded(p).contains(pos - s))
        })
    }

    /// Creates the (q, c) view: channel from the (possibly immersed)
    /// correlation at the packet's start, ω and ISI taps from the
    /// association registry. Returns the view and whether the preamble
    /// was clean at estimation time.
    fn make_view(
        &self,
        q: usize,
        c: usize,
        collisions: &[CollisionSpec<'_>],
        plan: &PlanState,
        residuals: &[Vec<Complex>],
        pkts: &[PktState],
    ) -> Option<(ChannelView, bool)> {
        let start = collisions[c].placements.iter().find(|(p, _)| *p == q).map(|&(_, s)| s)?;
        let info = self.registry.get(pkts[q].client);
        let omega = info.map(|i| i.omega);
        let taps = info.map(|i| i.taps.clone());
        let clean = self.preamble_clean(q, c, collisions, plan);
        let v = ChannelView::estimate(
            &residuals[c],
            start,
            self.preamble.symbols(),
            omega,
            taps.as_ref(),
            clean,
            &self.cfg,
        )?;
        Some((v, clean))
    }

    /// Re-estimates any immersed view whose preamble has since been
    /// exposed by subtraction, and re-renders its accumulated image with
    /// the improved parameters. This is the big accuracy win of the
    /// matched-collision structure: the crude "preamble immersed in noise"
    /// estimate (§4.2.4a) only has to carry the first chunk or two.
    #[allow(clippy::too_many_arguments)]
    fn reestimate_exposed(
        &self,
        collisions: &[CollisionSpec<'_>],
        plan: &PlanState,
        residuals: &mut [Vec<Complex>],
        img_acc: &mut [Vec<Vec<Complex>>],
        views: &mut [Vec<Option<ChannelView>>],
        immersed: &mut [Vec<bool>],
        pkts: &[PktState],
        ws: &mut Scratch,
    ) {
        let Scratch { pool, image, kernel, .. } = ws;
        for c in 0..collisions.len() {
            for q in 0..pkts.len() {
                if views[c][q].is_none()
                    || !immersed[c][q]
                    || !self.preamble_clean(q, c, collisions, plan)
                {
                    continue;
                }
                let start = collisions[c]
                    .placements
                    .iter()
                    .find(|(p, _)| *p == q)
                    .map(|&(_, s)| s)
                    .unwrap();
                // estimate on "buffer − other packets" = residual + own acc
                let pre_end = (start + self.preamble.len() + 8).min(residuals[c].len());
                let mut pre_buf = pool.take();
                pre_buf.extend_from_slice(&residuals[c][..pre_end]);
                for (p, s) in pre_buf.iter_mut().enumerate() {
                    *s += img_acc[c][q][p];
                }
                let info = self.registry.get(pkts[q].client);
                let estimated = ChannelView::estimate(
                    &pre_buf,
                    start,
                    self.preamble.symbols(),
                    info.map(|i| i.omega),
                    info.map(|i| i.taps.clone()).as_ref(),
                    true,
                    &self.cfg,
                );
                pool.put(pre_buf);
                let Some(new_view) = estimated else {
                    continue;
                };
                immersed[c][q] = false;
                if std::env::var_os("ZIGZAG_DEBUG").is_some() {
                    let old = views[c][q].as_ref().unwrap();
                    eprintln!(
                        "    reest q{q} c{c}: gain {:.2}->{:.2} mu {:.3}->{:.3} phase0 {:.3}->{:.3}",
                        old.gain,
                        new_view.gain,
                        old.mu,
                        new_view.mu,
                        old.phase.at(0.0),
                        new_view.phase.at(0.0)
                    );
                }
                // re-render the accumulated image over all decided ranges
                let decided = &pkts[q].decided;
                let sym_fn = |n: usize| decided.get(n).copied().flatten();
                let m2 = new_view.taps.len() + 9;
                let blen = residuals[c].len();
                for r in plan.decoded(q).ranges() {
                    let exp = r.start.saturating_sub(m2)..(r.end + m2).min(decided.len());
                    new_view.synthesize_into(exp, &sym_fn, pool, kernel, image);
                    let span = image.first.min(blen)..image.range().end.min(blen);
                    for (k, p) in span.enumerate() {
                        let new_val = image.samples[k];
                        residuals[c][p] -= new_val - img_acc[c][q][p];
                        img_acc[c][q][p] = new_val;
                    }
                }
                views[c][q] = Some(new_view);
            }
        }
    }

    /// Parses the PLCP once its symbols are all decided; on success learns
    /// the packet's real length and body modulation.
    fn try_parse_plcp(&self, q: usize, plan: &mut PlanState, pkts: &mut [PktState]) {
        let pre = self.preamble.len();
        let span = pre..pre + PLCP_SYMBOLS;
        if span.end > pkts[q].decided.len() || !span.clone().all(|n| pkts[q].decided[n].is_some()) {
            return;
        }
        let bits: Vec<u8> = span
            .clone()
            .flat_map(|n| Modulation::Bpsk.decide(pkts[q].decided[n].unwrap()).0)
            .collect();
        let bytes = bits_to_bytes(&bits);
        let Some(plcp) = PlcpHeader::from_bytes(&bytes) else {
            return;
        };
        let body_syms = plcp.modulation.symbols_for_bits(plcp.mpdu_len as usize * 8);
        let total = pre + PLCP_SYMBOLS + body_syms;
        pkts[q].plcp = Some(plcp);
        pkts[q].layout.payload_mod = plcp.modulation;
        if total <= pkts[q].layout.total_syms {
            pkts[q].layout.total_syms = total;
            plan.set_len(q, total);
            pkts[q].decided.truncate(total);
            pkts[q].soft_fwd.truncate(total);
        }
    }

    /// Backward pass for one packet + MRC + CRC check.
    #[allow(clippy::too_many_arguments)]
    fn finalize_packet(
        &self,
        q: usize,
        outcome: PlanOutcome,
        collisions: &[CollisionSpec<'_>],
        plan: &PlanState,
        residuals: &[Vec<Complex>],
        img_acc: &[Vec<Vec<Complex>>],
        views: &[Vec<Option<ChannelView>>],
        pkts: &[PktState],
        ws: &mut Scratch,
    ) -> PacketResult {
        let st = &pkts[q];
        let total = st.layout.total_syms;
        let complete = plan.decoded(q).covers(0..total) && st.plcp.is_some();

        // forward soft stream (normalised)
        let soft_fwd: Vec<Complex> =
            (0..total).map(|n| st.soft_fwd.get(n).copied().flatten().unwrap_or_default()).collect();

        let mut streams: Vec<(Vec<Complex>, f64)> = Vec::new();
        let fwd_gain =
            views.iter().filter_map(|vc| vc[q].as_ref()).map(|v| v.gain).fold(0.0f64, f64::max);
        streams.push((soft_fwd, fwd_gain * fwd_gain));

        // backward pass from the least-used collision copy
        if self.cfg.backward && complete && outcome == PlanOutcome::Complete {
            let bwd_col = (0..collisions.len())
                .filter(|&c| collisions[c].placements.iter().any(|&(p, _)| p == q))
                .min_by_key(|&c| st.fwd_source_count[c]);
            if let Some(c) = bwd_col {
                if let Some(base_view) = views[c][q].as_ref() {
                    // rebuild "this packet + noise": residual with q's own
                    // accumulated image added back
                    let Scratch { pool, chunk, kernel, .. } = ws;
                    let mut buf = pool.take();
                    buf.extend_from_slice(&residuals[c]);
                    for (p, b) in buf.iter_mut().enumerate() {
                        *b += img_acc[c][q][p];
                    }
                    let mut v = base_view.clone();
                    v.decode_chunk_into(
                        &buf,
                        0..total,
                        &st.layout,
                        Direction::Backward,
                        pool,
                        kernel,
                        chunk,
                    );
                    pool.put(buf);
                    streams
                        .push((std::mem::take(&mut chunk.soft), base_view.gain * base_view.gain));
                }
            }
        }

        if std::env::var_os("ZIGZAG_DEBUG").is_some() {
            for (i, (s, w)) in streams.iter().enumerate() {
                let quarter = (s.len() / 12).max(1);
                let evms: Vec<f64> = s
                    .chunks(quarter)
                    .map(|ch| {
                        ch.iter()
                            .map(|&v| (v - st.layout.payload_mod.decide(v).1).abs())
                            .sum::<f64>()
                            / ch.len().max(1) as f64
                    })
                    .collect();
                eprintln!("  finalize q{q} stream{i}: w={w:.1} t-evms={evms:.2?}");
            }
        }

        // Quality gate before MRC: a diverged pass (e.g. a BPSK π-slip in
        // a marginal backward decode) is *confidently wrong* — its
        // decision-EVM looks fine while half its bits are flipped, and
        // MRC with such a copy wrecks the good one. Gate the backward
        // stream on its decision agreement with the forward pass: a slip
        // flips a long run and shows up as gross disagreement, while
        // honest noise disagrees on scattered bits only.
        if streams.len() > 1 {
            let body = st.layout.body_start();
            let fwd = &streams[0].0;
            let bwd = &streams[1].0;
            let mut disagree = 0usize;
            let mut n = 0usize;
            for k in body..fwd.len().min(bwd.len()) {
                let m = st.layout.modulation_at(k);
                if m.decide(fwd[k]).0 != m.decide(bwd[k]).0 {
                    disagree += 1;
                }
                n += 1;
            }
            if n > 0 && disagree as f64 / n as f64 > 0.1 {
                streams.truncate(1);
            }
        }

        // MRC and final decision
        let refs: Vec<(&[Complex], f64)> =
            streams.iter().map(|(s, w)| (s.as_slice(), *w)).collect();
        let mut combined = ws.pool.take();
        ws.kernel.combine_weighted_into(&refs, &mut combined);
        let body_start = st.layout.body_start();
        let mut scrambled_bits = Vec::new();
        for (n, &s) in combined.iter().enumerate().skip(body_start) {
            let m = st.layout.modulation_at(n);
            scrambled_bits.extend(m.decide(s).0);
        }

        // try CRC on combined, then per-stream fallbacks
        let mut frame = None;
        if let Some(plcp) = st.plcp {
            let want_bits = plcp.mpdu_len as usize * 8;
            if scrambled_bits.len() >= want_bits {
                frame = decode_mpdu(&scrambled_bits[..want_bits], plcp.seed);
            }
            if frame.is_none() {
                for (s, _) in &streams {
                    let mut bits = Vec::new();
                    for (n, &v) in s.iter().enumerate().skip(body_start) {
                        let m = st.layout.modulation_at(n);
                        bits.extend(m.decide(v).0);
                    }
                    if bits.len() >= want_bits {
                        if let Some(f) = decode_mpdu(&bits[..want_bits], plcp.seed) {
                            frame = Some(f);
                            scrambled_bits = bits;
                            break;
                        }
                    }
                }
            }
        }

        ws.pool.put(combined);
        PacketResult { frame, plcp: st.plcp, scrambled_bits, complete }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use zigzag_channel::fading::LinkProfile;
    use zigzag_channel::scenario::hidden_pair;
    use zigzag_core_test_util::*;
    use zigzag_phy::bits::bit_error_rate;
    use zigzag_phy::frame::encode_frame;

    /// Shared helpers for zigzag executor tests.
    mod zigzag_core_test_util {
        use super::*;
        use crate::config::ClientInfo;

        pub fn airframe(
            src: u16,
            seq: u16,
            payload: usize,
            m: Modulation,
        ) -> zigzag_phy::frame::AirFrame {
            let f = Frame::with_random_payload(0, src, seq, payload, 1000 + src as u64);
            encode_frame(&f, m, &Preamble::default_len())
        }

        /// Registers clients with association-grade knowledge: the nominal
        /// oscillator offset and the true static ISI taps (what the AP
        /// would learn from a clean packet).
        pub fn registry_for(links: &[(u16, &LinkProfile)]) -> ClientRegistry {
            let mut r = ClientRegistry::new();
            for (id, l) in links {
                r.associate(
                    *id,
                    ClientInfo {
                        omega: l.association_omega(),
                        snr_db: l.snr_db,
                        taps: l.isi.clone(),
                    },
                );
            }
            r
        }
    }

    /// Full two-packet hidden-terminal decode; returns BERs of both
    /// packets.
    fn run_pair(
        snr_db: f64,
        payload: usize,
        d1: usize,
        d2: usize,
        cfg: DecoderConfig,
        seed: u64,
        typical_links: bool,
    ) -> (f64, f64, PlanOutcome) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (la, lb) = if typical_links {
            (LinkProfile::typical(snr_db, &mut rng), LinkProfile::typical(snr_db, &mut rng))
        } else {
            (LinkProfile::clean(snr_db), LinkProfile::clean(snr_db))
        };
        let a = airframe(1, 10, payload, Modulation::Bpsk);
        let b = airframe(2, 20, payload, Modulation::Bpsk);
        let hp = hidden_pair(&a, &b, &la, &lb, d1, d2, &mut rng);
        let reg = registry_for(&[(1, &la), (2, &lb)]);
        let dec = ZigzagDecoder::new(cfg, &reg);
        let out = dec.decode(
            &[
                CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, d1)] },
                CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, d2)] },
            ],
            &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
        );
        let ber_a = bit_error_rate(&a.mpdu_bits, &out.packets[0].scrambled_bits);
        let ber_b = bit_error_rate(&b.mpdu_bits, &out.packets[1].scrambled_bits);
        (ber_a, ber_b, out.outcome)
    }

    #[test]
    fn decodes_canonical_pair_clean_links() {
        let (ba, bb, outcome) = run_pair(12.0, 300, 300, 100, DecoderConfig::default(), 42, false);
        assert_eq!(outcome, PlanOutcome::Complete);
        assert!(ba < 1e-3, "BER A {ba}");
        assert!(bb < 1e-3, "BER B {bb}");
    }

    #[test]
    fn decodes_canonical_pair_typical_links() {
        let (ba, bb, outcome) = run_pair(12.0, 300, 300, 100, DecoderConfig::default(), 45, true);
        assert_eq!(outcome, PlanOutcome::Complete);
        assert!(ba < 1e-3, "BER A {ba}");
        assert!(bb < 1e-3, "BER B {bb}");
    }

    #[test]
    fn recovers_full_frames_with_crc() {
        let mut rng = StdRng::seed_from_u64(7);
        let la = LinkProfile::typical(13.0, &mut rng);
        let lb = LinkProfile::typical(11.0, &mut rng);
        let a = airframe(1, 1, 256, Modulation::Bpsk);
        let b = airframe(2, 2, 256, Modulation::Bpsk);
        let hp = hidden_pair(&a, &b, &la, &lb, 250, 90, &mut rng);
        let reg = registry_for(&[(1, &la), (2, &lb)]);
        let dec = ZigzagDecoder::new(DecoderConfig::default(), &reg);
        let out = dec.decode(
            &[
                CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, 250)] },
                CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, 90)] },
            ],
            &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
        );
        let fa = out.packets[0].frame.as_ref().expect("frame A");
        let fb = out.packets[1].frame.as_ref().expect("frame B");
        assert_eq!(fa, &a.frame);
        assert_eq!(fb, &b.frame);
    }

    #[test]
    fn equal_offsets_reported_stuck() {
        let (_, _, outcome) = run_pair(12.0, 200, 150, 150, DecoderConfig::default(), 9, false);
        assert_eq!(outcome, PlanOutcome::Stuck);
    }

    #[test]
    fn small_offset_difference_still_decodes() {
        // δ = Δ1 − Δ2 of a single backoff slot (10 symbols) — smaller than
        // the preamble; the immersed estimator must cope.
        let (ba, bb, outcome) = run_pair(14.0, 200, 110, 100, DecoderConfig::default(), 11, false);
        assert_eq!(outcome, PlanOutcome::Complete);
        assert!(ba < 1e-2, "BER A {ba}");
        assert!(bb < 1e-2, "BER B {bb}");
    }

    #[test]
    fn mixed_modulations_in_one_collision() {
        // §4.2.3a: "the two colliding packets may use different
        // modulation … without requiring any special treatment".
        let mut rng = StdRng::seed_from_u64(5);
        let la = LinkProfile::clean(16.0);
        let lb = LinkProfile::clean(18.0);
        let a = airframe(1, 1, 200, Modulation::Bpsk);
        let b = airframe(2, 2, 200, Modulation::Qpsk);
        let hp = hidden_pair(&a, &b, &la, &lb, 280, 80, &mut rng);
        let reg = registry_for(&[(1, &la), (2, &lb)]);
        let dec = ZigzagDecoder::new(DecoderConfig::default(), &reg);
        let out = dec.decode(
            &[
                CollisionSpec { buffer: &hp.collision1.buffer, placements: vec![(0, 0), (1, 280)] },
                CollisionSpec { buffer: &hp.collision2.buffer, placements: vec![(0, 0), (1, 80)] },
            ],
            &[PacketSpec { client: 1 }, PacketSpec { client: 2 }],
        );
        assert!(out.packets[0].frame.is_some(), "BPSK packet failed");
        assert!(out.packets[1].frame.is_some(), "QPSK packet failed");
        assert_eq!(out.packets[1].plcp.unwrap().modulation, Modulation::Qpsk);
    }

    #[test]
    fn without_tracking_long_packets_fail() {
        // Table 5.1: with tracking 1500 B packets decode; without, the
        // residual frequency error wrecks them.
        let (ba_on, bb_on, _) = run_pair(12.0, 1500, 400, 120, DecoderConfig::default(), 21, true);
        let (ba_off, bb_off, _) =
            run_pair(12.0, 1500, 400, 120, DecoderConfig::without_tracking(), 21, true);
        assert!(ba_on < 1e-3 && bb_on < 1e-3, "with tracking: {ba_on} {bb_on}");
        assert!(
            ba_off > 1e-3 || bb_off > 1e-3,
            "without tracking should fail on 1500B: {ba_off} {bb_off}"
        );
    }

    #[test]
    fn forward_backward_beats_forward_only() {
        // §4.3b: fwd+bwd MRC should (statistically) lower BER. Aggregate
        // over several runs at a marginal SNR.
        let mut sum_fb = 0.0;
        let mut sum_f = 0.0;
        for seed in 0..6 {
            let (ba, bb, _) =
                run_pair(7.5, 200, 260, 80, DecoderConfig::default(), 100 + seed, false);
            sum_fb += ba + bb;
            let (ba, bb, _) =
                run_pair(7.5, 200, 260, 80, DecoderConfig::forward_only(), 100 + seed, false);
            sum_f += ba + bb;
        }
        assert!(sum_fb < sum_f, "fwd+bwd BER {sum_fb:.5} should beat fwd-only {sum_f:.5}");
    }

    #[test]
    fn three_packets_three_collisions() {
        // §4.5 / Fig 4-6: three senders resolved from three collisions.
        let mut rng = StdRng::seed_from_u64(31);
        let links: Vec<LinkProfile> = (0..3).map(|_| LinkProfile::clean(14.0)).collect();
        let airs: Vec<zigzag_phy::frame::AirFrame> =
            (0..3).map(|i| airframe(i as u16 + 1, i as u16, 150, Modulation::Bpsk)).collect();
        let chans: Vec<_> = links.iter().map(|l| l.draw(&mut rng)).collect();
        // offsets per collision: distinct combination structure
        let offs = [[0usize, 200, 420], [0, 380, 150], [60, 0, 300]];
        let mut buffers = Vec::new();
        for o in &offs {
            let placed: Vec<zigzag_channel::scenario::PlacedTx<'_>> = (0..3)
                .map(|i| zigzag_channel::scenario::PlacedTx {
                    air: &airs[i],
                    base: &chans[i],
                    start: o[i],
                })
                .collect();
            let sc = zigzag_channel::scenario::synth_collision(&placed, 1.0, &mut rng);
            buffers.push(sc.buffer);
        }
        let reg = registry_for(&[(1, &links[0]), (2, &links[1]), (3, &links[2])]);
        let dec = ZigzagDecoder::new(DecoderConfig::default(), &reg);
        let specs: Vec<CollisionSpec<'_>> = buffers
            .iter()
            .zip(offs.iter())
            .map(|(b, o)| CollisionSpec {
                buffer: b,
                placements: vec![(0, o[0]), (1, o[1]), (2, o[2])],
            })
            .collect();
        let out = dec.decode(
            &specs,
            &[PacketSpec { client: 1 }, PacketSpec { client: 2 }, PacketSpec { client: 3 }],
        );
        assert_eq!(out.outcome, PlanOutcome::Complete);
        for (i, p) in out.packets.iter().enumerate() {
            let ber = bit_error_rate(&airs[i].mpdu_bits, &p.scrambled_bits);
            assert!(ber < 1e-2, "packet {i} BER {ber}");
        }
    }
}
