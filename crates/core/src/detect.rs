//! Collision detection (§4.2.1) — "Is it a collision?"
//!
//! The AP correlates the known preamble against the received signal,
//! compensating for each associated client's coarse frequency offset.
//! "When the correlation spikes in the middle of a reception, it indicates
//! a collision. Further, the position of the spike corresponds to the
//! beginning of the second packet, and hence shows Δ, the offset between
//! the colliding packets" (Fig 4-2).
//!
//! The detection threshold follows §5.3(a): `Γ'(Δ) > β·L·ĥ` where L is
//! the preamble length and `ĥ` the coarse channel-amplitude estimate of
//! the candidate client (from previously decoded packets); `β = 0.65`
//! balances false positives against false negatives (Table 5.1).

use crate::config::{ClientRegistry, DecoderConfig};
use crate::engine::scratch::Scratch;
use zigzag_channel::noise::amplitude_for_snr_db;
use zigzag_phy::complex::Complex;
use zigzag_phy::correlate::find_peaks;
use zigzag_phy::preamble::Preamble;

/// A detected packet start.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// Sample index where the packet begins.
    pub pos: usize,
    /// The client whose frequency compensation produced the spike.
    pub client: u16,
    /// Correlation value at the spike (≈ `H·L`, §4.2.4a).
    pub corr: Complex,
    /// Detection score: correlation magnitude over this client's
    /// threshold (≥ 1 by construction).
    pub score: f64,
}

/// Scans a receive buffer for packet starts from every associated client.
///
/// Returns detections sorted by position. Spikes from different clients
/// within half a preamble of each other are merged, keeping the highest
/// score (the true client's compensation yields the strongest coherent
/// sum).
pub fn detect_packets(
    buffer: &[Complex],
    preamble: &Preamble,
    registry: &ClientRegistry,
    cfg: &DecoderConfig,
) -> Vec<Detection> {
    let mut ws = Scratch::with_backend(cfg.backend);
    detect_packets_with(buffer, preamble, registry, cfg, &mut ws)
}

/// The §5.3(a) detection threshold for one associated client:
/// `β·L·ĥ`, with `ĥ` the coarse channel-amplitude estimate implied by
/// the client's associated SNR. Shared by the one-shot scan below and
/// the windowed scanner of [`crate::stream`], so both paths gate spikes
/// identically.
pub fn client_threshold(cfg: &DecoderConfig, preamble_len: usize, snr_db: f64) -> f64 {
    cfg.beta * preamble_len as f64 * amplitude_for_snr_db(snr_db)
}

/// Merges near-duplicate detections across clients and sampling grids:
/// sorts by `(pos, score desc)` and collapses runs closer than half a
/// preamble, keeping the highest score (the true client's compensation
/// yields the strongest coherent sum). The windowed scanner replicates
/// this incrementally; this is the one-shot reference both paths share.
pub fn merge_detections(mut all: Vec<Detection>, preamble_len: usize) -> Vec<Detection> {
    all.sort_by(|a, b| a.pos.cmp(&b.pos).then(b.score.total_cmp(&a.score)));
    let mut merged: Vec<Detection> = Vec::new();
    for d in all {
        match merged.last() {
            Some(last) if d.pos.saturating_sub(last.pos) < preamble_len / 2 => {
                if d.score > last.score {
                    *merged.last_mut().unwrap() = d;
                }
            }
            _ => merged.push(d),
        }
    }
    merged
}

/// Scratch-aware variant of [`detect_packets`]: the full-buffer
/// correlation scans (one per associated client per sampling grid — the
/// largest transient buffers in the receive path) are drawn from the
/// scratch pool and run on its kernel backend.
pub fn detect_packets_with(
    buffer: &[Complex],
    preamble: &Preamble,
    registry: &ClientRegistry,
    cfg: &DecoderConfig,
    ws: &mut Scratch,
) -> Vec<Detection> {
    let Scratch { pool, kernel, .. } = ws;
    let l = preamble.len();
    // A packet's fractional sampling offset attenuates the integer-grid
    // correlation peak (by sinc(µ), down to ~0.64 at µ=±0.5) — enough to
    // push marginal preambles under the threshold. Scan a half-sample
    // grid: the buffer interpolated at +0.5 is computed once and shared
    // by all clients.
    let mut half = pool.take();
    kernel.resample_into(buffer, 0.5, 1.0, buffer.len(), &mut half);
    let mut corr = pool.take();
    let mut all: Vec<Detection> = Vec::new();
    for (client, info) in registry.iter() {
        let threshold = client_threshold(cfg, l, info.snr_db);
        for grid in [buffer, half.as_slice()] {
            kernel.scan_into(grid, preamble.symbols(), info.omega, 0..grid.len(), &mut corr);
            for p in find_peaks(&corr, threshold, l) {
                all.push(Detection {
                    pos: p.pos,
                    client,
                    corr: p.value,
                    score: p.mag() / threshold,
                });
            }
        }
    }
    pool.put(corr);
    pool.put(half);
    // merge near-duplicates across clients
    merge_detections(all, l)
}

/// Classifies a buffer: `true` if more than one packet start was detected
/// (or a start appears mid-reception) — the §4.2 decision point "the
/// ZigZag receiver will check whether the packet has suffered a
/// collision".
pub fn is_collision(detections: &[Detection]) -> bool {
    detections.len() > 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClientInfo;
    use rand::prelude::*;
    use zigzag_channel::fading::LinkProfile;
    use zigzag_channel::scenario::{clean_reception, hidden_pair};
    use zigzag_phy::filter::Fir;
    use zigzag_phy::frame::{encode_frame, Frame};
    use zigzag_phy::modulation::Modulation;

    fn setup_registry(links: &[(u16, &LinkProfile)]) -> ClientRegistry {
        let mut r = ClientRegistry::new();
        for (id, l) in links {
            r.associate(
                *id,
                ClientInfo {
                    omega: l.association_omega(),
                    snr_db: l.snr_db,
                    taps: Fir::identity(),
                },
            );
        }
        r
    }

    fn air(src: u16, len: usize) -> zigzag_phy::frame::AirFrame {
        let f = Frame::with_random_payload(0, src, 1, len, src as u64 * 7);
        encode_frame(&f, Modulation::Bpsk, &Preamble::default_len())
    }

    #[test]
    fn detects_single_clean_packet() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = LinkProfile::typical(12.0, &mut rng);
        let a = air(1, 300);
        let rx = clean_reception(&a, &l, &mut rng);
        let reg = setup_registry(&[(1, &l)]);
        let det =
            detect_packets(&rx.buffer, &Preamble::default_len(), &reg, &DecoderConfig::default());
        assert_eq!(det.len(), 1, "{det:?}");
        assert!(det[0].pos <= 1, "pos {}", det[0].pos);
        assert_eq!(det[0].client, 1);
        assert!(!is_collision(&det));
    }

    #[test]
    fn detects_collision_and_offset() {
        // Fig 4-2: the spike mid-reception reveals Δ.
        let mut rng = StdRng::seed_from_u64(2);
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let a = air(1, 400);
        let b = air(2, 400);
        let hp = hidden_pair(&a, &b, &la, &lb, 700, 200, &mut rng);
        let reg = setup_registry(&[(1, &la), (2, &lb)]);
        let det = detect_packets(
            &hp.collision1.buffer,
            &Preamble::default_len(),
            &reg,
            &DecoderConfig::default(),
        );
        assert!(is_collision(&det), "{det:?}");
        let positions: Vec<usize> = det.iter().map(|d| d.pos).collect();
        assert!(positions.iter().any(|&p| p <= 1));
        assert!(
            positions.iter().any(|&p| (699..=701).contains(&p)),
            "offset spike missing: {positions:?}"
        );
    }

    #[test]
    fn attributes_clients_correctly() {
        let mut rng = StdRng::seed_from_u64(3);
        // distinct oscillator offsets so attribution is meaningful
        let mut la = LinkProfile::typical(14.0, &mut rng);
        la.omega_nominal = 0.07;
        let mut lb = LinkProfile::typical(14.0, &mut rng);
        lb.omega_nominal = -0.06;
        let a = air(1, 300);
        let b = air(2, 300);
        let hp = hidden_pair(&a, &b, &la, &lb, 500, 150, &mut rng);
        let reg = setup_registry(&[(1, &la), (2, &lb)]);
        let det = detect_packets(
            &hp.collision1.buffer,
            &Preamble::default_len(),
            &reg,
            &DecoderConfig::default(),
        );
        let first = det.iter().find(|d| d.pos <= 1).expect("first pkt");
        let second = det.iter().find(|d| d.pos >= 490).expect("second pkt");
        assert_eq!(first.client, 1);
        assert_eq!(second.client, 2);
    }

    #[test]
    fn no_detection_in_pure_noise() {
        let mut rng = StdRng::seed_from_u64(4);
        let l = LinkProfile::clean(12.0);
        let buffer = zigzag_channel::noise::awgn_vec(&mut rng, 4000, 1.0);
        let reg = setup_registry(&[(1, &l)]);
        let det =
            detect_packets(&buffer, &Preamble::default_len(), &reg, &DecoderConfig::default());
        assert!(det.is_empty(), "{det:?}");
    }

    #[test]
    fn empty_registry_detects_nothing() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = LinkProfile::clean(12.0);
        let a = air(1, 100);
        let rx = clean_reception(&a, &l, &mut rng);
        let det = detect_packets(
            &rx.buffer,
            &Preamble::default_len(),
            &ClientRegistry::new(),
            &DecoderConfig::default(),
        );
        assert!(det.is_empty());
    }

    #[test]
    fn higher_beta_misses_weak_packets() {
        // The §5.3a trade-off: raising β turns detections into misses.
        let mut rng = StdRng::seed_from_u64(6);
        let l = LinkProfile::clean(6.0);
        let a = air(1, 200);
        let rx = clean_reception(&a, &l, &mut rng);
        let reg = setup_registry(&[(1, &l)]);
        let lo = detect_packets(
            &rx.buffer,
            &Preamble::default_len(),
            &reg,
            &DecoderConfig { beta: 0.65, ..DecoderConfig::default() },
        );
        let hi = detect_packets(
            &rx.buffer,
            &Preamble::default_len(),
            &reg,
            &DecoderConfig { beta: 3.0, ..DecoderConfig::default() },
        );
        assert!(!lo.is_empty());
        assert!(hi.len() <= lo.len());
    }
}
