//! The standard single-packet decoder ("current 802.11" receiver).
//!
//! This is the black box ZigZag builds on (§4.2.3a) and the baseline the
//! evaluation compares against (§5.1e "Current 802.11: this approach uses
//! the same underlying decoder as ZigZag but operates over individual
//! packets"). It decodes one packet from a buffer — synchronise on the
//! preamble, read the PLCP, demodulate the body with PLL/timing tracking,
//! descramble, CRC-check — treating everything else in the buffer as
//! noise.

use crate::config::{ClientRegistry, DecoderConfig};
use crate::engine::scratch::Scratch;
use crate::view::{ChannelView, Direction, PacketLayout};
use zigzag_phy::bits::bits_to_bytes;
use zigzag_phy::complex::Complex;
use zigzag_phy::frame::{decode_mpdu, Frame, PlcpHeader, PLCP_SYMBOLS};
use zigzag_phy::modulation::Modulation;
use zigzag_phy::preamble::Preamble;

/// Output of a single-packet decode attempt.
#[derive(Clone, Debug)]
pub struct SingleDecode {
    /// The recovered frame if the CRC-32 passed.
    pub frame: Option<Frame>,
    /// Parsed PLCP header (None ⇒ even the header was unreadable).
    pub plcp: Option<PlcpHeader>,
    /// Best-effort scrambled MPDU bits for BER scoring.
    pub scrambled_bits: Vec<u8>,
    /// Soft (normalised) symbol estimates over the whole packet.
    pub soft: Vec<Complex>,
    /// Hard-decision constellation points over the whole packet
    /// (data-aided over the preamble) — what the capture path subtracts.
    pub decided: Vec<Complex>,
    /// The channel view after decoding (for subtraction / capture).
    pub view: ChannelView,
    /// Packet start in the buffer.
    pub start: usize,
    /// Total packet length in symbols (from the PLCP).
    pub total_syms: usize,
}

/// Attempts a standard decode of the packet starting at `start`.
///
/// * `client` keys the association registry for coarse ω / ISI taps;
///   `None` falls back to self-estimation on the preamble (valid for
///   clean receptions, e.g. association frames).
/// * `clean` indicates the preamble region is believed interference-free.
///
/// Returns `None` only when not even a channel estimate was possible.
pub fn decode_single(
    buffer: &[Complex],
    start: usize,
    client: Option<u16>,
    registry: &ClientRegistry,
    preamble: &Preamble,
    clean: bool,
    cfg: &DecoderConfig,
) -> Option<SingleDecode> {
    let mut ws = Scratch::with_backend(cfg.backend);
    decode_single_with(buffer, start, client, registry, preamble, clean, cfg, &mut ws)
}

/// Scratch-aware variant of [`decode_single`]: per-chunk temporaries are
/// drawn from `ws` so repeated decodes (receiver, batch engine) reuse
/// their buffers.
#[allow(clippy::too_many_arguments)]
pub fn decode_single_with(
    buffer: &[Complex],
    start: usize,
    client: Option<u16>,
    registry: &ClientRegistry,
    preamble: &Preamble,
    clean: bool,
    cfg: &DecoderConfig,
    ws: &mut Scratch,
) -> Option<SingleDecode> {
    let info = client.and_then(|c| registry.get(c));
    let omega = info.map(|i| i.omega);
    let taps = info.map(|i| i.taps.clone());
    let mut view =
        ChannelView::estimate(buffer, start, preamble.symbols(), omega, taps.as_ref(), clean, cfg)?;

    let mut layout = PacketLayout::unknown(
        preamble.symbols().to_vec(),
        PLCP_SYMBOLS,
        buffer.len().saturating_sub(start),
    );

    let Scratch { pool, chunk, kernel, .. } = ws;

    // 1. preamble + PLCP
    view.decode_chunk_into(
        buffer,
        0..layout.body_start(),
        &layout,
        Direction::Forward,
        pool,
        kernel,
        chunk,
    );
    let mut soft = std::mem::take(&mut chunk.soft);
    let mut decided = std::mem::take(&mut chunk.decided);
    let plcp_bits: Vec<u8> =
        decided[preamble.len()..].iter().flat_map(|&d| Modulation::Bpsk.decide(d).0).collect();
    let plcp = PlcpHeader::from_bytes(&bits_to_bytes(&plcp_bits));

    let (total_syms, body_mod) = match plcp {
        Some(h) => {
            let body = h.modulation.symbols_for_bits(h.mpdu_len as usize * 8);
            ((layout.body_start() + body).min(layout.total_syms), h.modulation)
        }
        // unreadable header: decode what's in the buffer as BPSK so the
        // caller can still score bits / attempt capture subtraction
        None => (layout.total_syms, Modulation::Bpsk),
    };
    layout.payload_mod = body_mod;
    layout.total_syms = total_syms;

    // 2. body
    view.decode_chunk_into(
        buffer,
        layout.body_start()..total_syms,
        &layout,
        Direction::Forward,
        pool,
        kernel,
        chunk,
    );
    soft.extend_from_slice(&chunk.soft);
    decided.extend_from_slice(&chunk.decided);

    let mut scrambled_bits: Vec<u8> = Vec::new();
    for &d in &chunk.decided {
        scrambled_bits.extend(body_mod.decide(d).0);
    }

    let frame = plcp.and_then(|h| {
        let want = h.mpdu_len as usize * 8;
        (scrambled_bits.len() >= want).then(|| decode_mpdu(&scrambled_bits[..want], h.seed))?
    });

    Some(SingleDecode { frame, plcp, scrambled_bits, soft, decided, view, start, total_syms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClientInfo;
    use rand::prelude::*;
    use zigzag_channel::fading::LinkProfile;
    use zigzag_channel::scenario::clean_reception;
    use zigzag_phy::bits::bit_error_rate;
    use zigzag_phy::filter::Fir;
    use zigzag_phy::frame::encode_frame;

    fn air(src: u16, len: usize, m: Modulation) -> zigzag_phy::frame::AirFrame {
        let f = Frame::with_random_payload(0, src, 3, len, 55 + src as u64);
        encode_frame(&f, m, &Preamble::default_len())
    }

    #[test]
    fn decodes_clean_reception_with_registry() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = LinkProfile::typical(12.0, &mut rng);
        let a = air(1, 500, Modulation::Bpsk);
        let rx = clean_reception(&a, &l, &mut rng);
        let mut reg = ClientRegistry::new();
        reg.associate(
            1,
            ClientInfo { omega: l.association_omega(), snr_db: 12.0, taps: l.isi.clone() },
        );
        let out = decode_single(
            &rx.buffer,
            0,
            Some(1),
            &reg,
            &Preamble::default_len(),
            true,
            &DecoderConfig::default(),
        )
        .expect("decode");
        assert_eq!(out.frame.as_ref(), Some(&a.frame));
        assert_eq!(out.total_syms, a.len());
    }

    #[test]
    fn decodes_without_registry_association_case() {
        // Association frames arrive before the AP knows the client.
        let mut rng = StdRng::seed_from_u64(3);
        let l = LinkProfile::typical(14.0, &mut rng);
        let a = air(7, 200, Modulation::Bpsk);
        let rx = clean_reception(&a, &l, &mut rng);
        let out = decode_single(
            &rx.buffer,
            0,
            None,
            &ClientRegistry::new(),
            &Preamble::default_len(),
            true,
            &DecoderConfig::default(),
        )
        .expect("decode");
        let ber = bit_error_rate(&a.mpdu_bits, &out.scrambled_bits);
        assert!(ber < 1e-2, "BER {ber}");
        // at 14 dB a clean association frame should CRC
        assert!(out.frame.is_some());
    }

    #[test]
    fn decodes_qam_bodies() {
        // Dense constellations are exercised at a small fractional timing
        // offset: at one sample per symbol the fractional-delay
        // interpolation of a full-band signal has a truncation error floor
        // (≈0.2 RMS at µ=0.5) that swamps 16/64-QAM margins — the paper's
        // prototype ran 2 samples/symbol (§5.1c) where this vanishes. See
        // DESIGN.md §2. BPSK/QPSK are unaffected at any µ.
        use zigzag_channel::fading::ChannelParams;
        use zigzag_channel::noise::{add_awgn, amplitude_for_snr_db};
        let mut rng = StdRng::seed_from_u64(3);
        for (m, snr) in
            [(Modulation::Qpsk, 20.0), (Modulation::Qam16, 24.0), (Modulation::Qam64, 32.0)]
        {
            let a = air(1, 300, m);
            let ch = ChannelParams {
                gain: Complex::from_polar(amplitude_for_snr_db(snr), 0.8),
                omega: 0.02,
                sampling_offset: 0.08,
                ..ChannelParams::ideal()
            };
            let mut buffer = ch.apply(&a.symbols, &mut rng);
            buffer.extend(std::iter::repeat_n(Complex::default(), 32));
            add_awgn(&mut rng, &mut buffer, 1.0);
            let mut reg = ClientRegistry::new();
            reg.associate(1, ClientInfo { omega: 0.02, snr_db: snr, taps: Fir::identity() });
            let out = decode_single(
                &buffer,
                0,
                Some(1),
                &reg,
                &Preamble::default_len(),
                true,
                &DecoderConfig::default(),
            )
            .expect("decode");
            assert_eq!(out.plcp.unwrap().modulation, m);
            let ber = bit_error_rate(&a.mpdu_bits, &out.scrambled_bits);
            assert!(ber < 1e-3, "{m:?} BER {ber}");
            if m != Modulation::Qam64 {
                assert_eq!(out.frame.as_ref(), Some(&a.frame), "{m:?}");
            }
        }
    }

    #[test]
    fn collision_breaks_standard_decode() {
        // The §1 premise: a standard receiver cannot decode overlapping
        // equal-power packets.
        let mut rng = StdRng::seed_from_u64(4);
        let la = LinkProfile::typical(12.0, &mut rng);
        let lb = LinkProfile::typical(12.0, &mut rng);
        let a = air(1, 400, Modulation::Bpsk);
        let b = air(2, 400, Modulation::Bpsk);
        let hp = zigzag_channel::scenario::hidden_pair(&a, &b, &la, &lb, 120, 40, &mut rng);
        let mut reg = ClientRegistry::new();
        reg.associate(
            1,
            ClientInfo { omega: la.association_omega(), snr_db: 12.0, taps: la.isi.clone() },
        );
        let out = decode_single(
            &hp.collision1.buffer,
            0,
            Some(1),
            &reg,
            &Preamble::default_len(),
            true,
            &DecoderConfig::default(),
        );
        let ok = out.map(|o| o.frame.is_some()).unwrap_or(false);
        assert!(!ok, "equal-power collision should not decode");
    }

    #[test]
    fn low_snr_fails_crc_but_returns_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = LinkProfile::clean(-2.0);
        let a = air(1, 200, Modulation::Bpsk);
        let rx = clean_reception(&a, &l, &mut rng);
        let out = decode_single(
            &rx.buffer,
            0,
            None,
            &ClientRegistry::new(),
            &Preamble::default_len(),
            true,
            &DecoderConfig::default(),
        );
        if let Some(o) = out {
            assert!(o.frame.is_none());
        }
    }
}
